"""Tests for the CLIs (python -m repro / python -m repro.bench)."""

import pytest

from repro.__main__ import main as repro_main
from repro.bench.__main__ import main as bench_main


class TestBenchCLI:
    def test_unknown_experiment_rejected(self, capsys):
        assert bench_main(["not-a-figure"]) == 2
        out = capsys.readouterr().out
        assert "unknown experiments" in out
        assert "fig7" in out  # the help lists what exists

    def test_single_experiment_runs(self, capsys):
        assert bench_main(["headline"]) == 0
        out = capsys.readouterr().out
        assert "LIST 1000 detailed" in out
        assert "regenerated in" in out

    def test_scale_banner(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        bench_main(["headline"])
        assert "scale=quick" in capsys.readouterr().out


class TestReproCLI:
    def test_overview(self, capsys):
        assert repro_main([]) == 0
        out = capsys.readouterr().out
        assert "H2Cloud" in out
        assert "demo | repair | scrub | rebalance | partition | bench" in out

    def test_demo(self, capsys):
        assert repro_main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "quick access path" in out
        assert "deployment report" in out

    def test_repair(self, capsys):
        assert repro_main(["repair"]) == 0
        out = capsys.readouterr().out
        assert "REPAIRED" in out
        assert "fsck: CLEAN" in out
        assert "repaired objects back to full replication" in out

    def test_scrub(self, capsys):
        assert repro_main(["scrub"]) == 0
        out = capsys.readouterr().out
        assert "silently corrupted:" in out
        assert "REPAIRED" in out
        assert "second pass:" in out and "CLEAN" in out

    def test_bench_forwarding(self, capsys):
        assert repro_main(["bench", "headline"]) == 0
        assert "headline" in capsys.readouterr().out

    def test_unknown_subcommand(self, capsys):
        assert repro_main(["frobnicate"]) == 2
