"""Tests for CSV/JSON result export."""

import csv
import json

import pytest

from repro.bench import ExperimentResult
from repro.bench.export import (
    export_results,
    load_result_json,
    result_to_dict,
    result_to_rows,
    write_csv,
    write_json,
)


@pytest.fixture
def result() -> ExperimentResult:
    result = ExperimentResult("figX", "Sample", "n", unit="ms")
    result.expectation = "grows"
    for system in ("alpha", "beta"):
        series = result.series_for(system)
        series.add(10, 1.5)
        series.add(100, 15.0)
    result.note("a note")
    return result


class TestRows:
    def test_long_format(self, result):
        rows = result_to_rows(result)
        assert len(rows) == 4
        assert rows[0] == {
            "experiment": "figX",
            "system": "alpha",
            "x": 10,
            "value": 1.5,
            "unit": "ms",
        }

    def test_dict_carries_everything(self, result):
        data = result_to_dict(result)
        assert data["title"] == "Sample"
        assert data["notes"] == ["a note"]
        assert data["series"]["beta"] == [(10, 1.5), (100, 15.0)]


class TestFiles:
    def test_csv_round_trip(self, result, tmp_path):
        path = write_csv(result, tmp_path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert rows[-1]["system"] == "beta"
        assert float(rows[-1]["value"]) == 15.0

    def test_json_round_trip(self, result, tmp_path):
        path = write_json(result, tmp_path)
        data = load_result_json(path)
        assert data["experiment_id"] == "figX"
        assert data["series"]["alpha"] == [[10, 1.5], [100, 15.0]]

    def test_export_results_writes_both(self, result, tmp_path):
        written = export_results([result], tmp_path / "out")
        assert sorted(p.name for p in written) == ["figX.csv", "figX.json"]
        assert all(p.exists() for p in written)


class TestCLIExport:
    def test_out_flag(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        assert main(["--out", str(tmp_path), "headline"]) == 0
        assert (tmp_path / "headline.csv").exists()
        assert (tmp_path / "headline.json").exists()
        data = json.loads((tmp_path / "headline.json").read_text())
        assert data["experiment_id"] == "headline"

    def test_out_flag_missing_dir(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--out"]) == 2
