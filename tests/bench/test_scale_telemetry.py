"""Scale bench telemetry: passivity, determinism, attribution quality.

This file carries the PR's acceptance gates: turning telemetry on must
not move a scenario digest, two same-seed runs must produce
byte-identical timeline/attribution/alert artifacts (sha256 asserted),
and every graded op class must get a non-null dominant blame bucket
whose per-op sums match root wall time exactly.
"""

import hashlib
import json

import pytest

from repro.bench.scale import (
    OP_CLASSES,
    SCALE_SAMPLE_INTERVAL_US,
    run_scenario,
)
from repro.obs.alerts import DEFAULT_RULES, alerts_json, evaluate_rules
from repro.obs.critpath import critpath_json
from repro.workloads.scenarios import build_scenario


def _spec():
    return build_scenario("sync-storm", tier="micro", seed=7)


def _telemetry_run():
    return run_scenario(
        _spec(),
        capture_trace=True,
        sample_interval_us=SCALE_SAMPLE_INTERVAL_US // 100,
    )


@pytest.fixture(scope="module")
def telemetry_report():
    return _telemetry_run()


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class TestPassivity:
    def test_telemetry_never_moves_the_digest(self, telemetry_report):
        """Acceptance: sampling + tracing are passive observers."""
        plain = run_scenario(_spec())
        assert plain.digest == telemetry_report.digest
        assert plain.cards_text() == telemetry_report.cards_text()

    def test_plain_run_carries_no_telemetry_sections(self):
        plain = run_scenario(_spec())
        assert plain.timeline is None
        assert plain.critpath is None
        assert "timeline" not in plain.document
        assert "tail_attribution" not in plain.document


class TestDeterminism:
    def test_artifacts_byte_identical_across_runs(self, telemetry_report):
        """Acceptance: same seed -> identical timeline, attribution,
        and alert bytes (digest-for-digest)."""
        again = _telemetry_run()

        def artifact_digests(report):
            timeline = json.dumps(report.timeline, sort_keys=True)
            alerts = alerts_json(evaluate_rules(report.timeline, DEFAULT_RULES))
            return (
                _sha(timeline),
                _sha(critpath_json(report.critpath)),
                _sha(json.dumps(report.tenant_attribution, sort_keys=True)),
                _sha(alerts),
                _sha(json.dumps(report.document, sort_keys=True)),
            )

        assert artifact_digests(again) == artifact_digests(telemetry_report)


class TestTimelineSection:
    def test_document_gains_timeline(self, telemetry_report):
        doc = telemetry_report.document
        assert doc["timeline"]["samples"] > 0
        for window in doc["timeline"]["windows"]:
            assert window["span_ms"] > 0
        # graded sections untouched (the digest commits to the cards)
        assert doc["format"] and doc["worst_tenant"] and doc["digest"]

    def test_windows_saw_client_traffic(self, telemetry_report):
        rates = {}
        for window in telemetry_report.timeline["windows"]:
            for key, value in window["fleet"]["rates"].items():
                rates[key] = rates.get(key, 0.0) + value
        assert any(k.startswith("op.") and k.endswith(".count") for k in rates)
        assert any(k.startswith("store.") for k in rates)


class TestTailAttribution:
    def test_every_class_names_a_dominant_bucket(self, telemetry_report):
        """Acceptance: each op class beyond its p99 gets a blame name."""
        classes = telemetry_report.critpath["classes"]
        # SLO classes plus any unmapped op kinds (classed by op name)
        assert set(classes) & set(OP_CLASSES.values())
        assert classes, "no op classes attributed"
        for name, doc in classes.items():
            if doc["count"] == 0:  # all ops failed -> zeroed entry
                continue
            assert doc["tail"]["count"] >= 1, name
            assert doc["tail"]["dominant"] is not None, name
            blame = doc["tail"]["blame"]
            # zero-duration classes blame op_self with no time table
            assert doc["tail"]["dominant"] in blame or not blame, name

    def test_blame_shares_cover_the_tail_exactly(self, telemetry_report):
        """Acceptance: bucket time sums to root wall time (shares sum
        to 1 within rounding -- the partition itself is exact)."""
        for name, doc in telemetry_report.critpath["classes"].items():
            for section in ("all", "tail"):
                blame = doc[section]["blame"]
                if not blame:
                    continue
                total = sum(b["share"] for b in blame.values())
                assert total == pytest.approx(1.0, abs=0.01), (name, section)

    def test_tenant_attribution_targets_worst_tenants(self, telemetry_report):
        tenants = telemetry_report.tenant_attribution
        assert tenants, "no tenants attributed"
        p99s = [doc["p99_ms"] for doc in tenants.values()]
        assert p99s == sorted(p99s, reverse=True)
        for account, doc in tenants.items():
            assert account.startswith("t")
            assert doc["ops"] >= 1
            assert doc["tail"]["dominant"] is not None

    def test_document_tail_attribution_section(self, telemetry_report):
        section = telemetry_report.document["tail_attribution"]
        assert section["fleet"]["format"] == "h2cloud-critpath-v1"
        assert section["tenants"] == telemetry_report.tenant_attribution


class TestAlertGate:
    def test_default_rules_quiet_on_committed_scenario(self, telemetry_report):
        """The nightly catalog gate: stock rules stay silent on a clean
        committed scenario run."""
        doc = evaluate_rules(telemetry_report.timeline, DEFAULT_RULES)
        assert doc["alerts"] == [], doc["alerts"]
        assert doc["windows_evaluated"] == telemetry_report.timeline["samples"]
