"""Smoke tests: every experiment regenerates at tiny scale.

The full-shape assertions live in ``benchmarks/``; here each entry in
the registry runs at the smallest meaningful scale so a refactor that
breaks an experiment's plumbing fails in the unit suite.
"""

import pytest

from repro.bench import (
    ALL_EXPERIMENTS,
    fig7_move_rename,
    fig9_list_vs_n,
    fig12_mkdir,
    fig13_file_access,
    fig14_15_storage,
    headline_numbers,
)


class TestRegistry:
    def test_registry_covers_every_figure_and_table(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1",
            "scalability",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14_15",
            "rtt",
            "trace",
            "headline",
        }


class TestTinyRuns:
    def test_fig7_tiny(self):
        result = fig7_move_rename(ns=[5, 20])
        assert set(result.series) == {"h2cloud", "swift", "dropbox"}
        swift = result.series_for("swift")
        assert swift.ms_at(20) > swift.ms_at(5)

    def test_fig9_tiny(self):
        result = fig9_list_vs_n(ns=[20, 40], m=5)
        for system in result.series.values():
            assert len(system.points) == 2

    def test_fig12_tiny(self):
        result = fig12_mkdir(ns=[5, 10])
        h2 = result.series_for("h2cloud")
        assert h2.ms_at(5) == pytest.approx(h2.ms_at(10), rel=0.5)

    def test_fig13_tiny(self):
        result = fig13_file_access(depths=[1, 4])
        h2 = result.series_for("h2cloud")
        assert h2.ms_at(4) > h2.ms_at(1)

    def test_fig14_15_tiny(self):
        fig14, fig15 = fig14_15_storage(user_counts=[2])
        h2_count = fig14.series_for("h2cloud").ms_at(2)
        swift_count = fig14.series_for("swift").ms_at(2)
        assert h2_count > swift_count
        h2_mb = fig15.series_for("h2cloud").ms_at(2)
        swift_mb = fig15.series_for("swift").ms_at(2)
        assert h2_mb == pytest.approx(swift_mb, rel=0.05)

    def test_headline(self):
        result = headline_numbers()
        assert len(result.notes) == 2
        assert result.series_for("h2cloud").ms_at(1) > 0

    def test_scalability_tiny(self):
        from repro.bench import scalability

        result = scalability(frontend_counts=[1, 4], ops=8)
        h2 = dict(result.series_for("h2cloud").points)
        assert h2[4] < h2[1]
        namenode = dict(result.series_for("single-index").points)
        assert namenode[4] == namenode[1]
