"""Tests for the experiment runner and result containers."""

import pytest

from repro.bench import ExperimentResult, Series, measure_op, run_sweep, sweep_points
from repro.bench.harness import bench_scale
from repro.core import H2CloudFS
from repro.simcloud import SwiftCluster


class TestSeries:
    def test_add_and_query(self):
        series = Series(system="x")
        series.add(10, 1.5)
        series.add(100, 2.5)
        assert series.ms_at(10) == 1.5
        with pytest.raises(KeyError):
            series.ms_at(99)


class TestExperimentResult:
    def test_series_autocreated(self):
        result = ExperimentResult("t", "title", "x")
        result.series_for("sys").add(1, 1.0)
        assert result.series["sys"].points == [(1, 1.0)]

    def test_notes(self):
        result = ExperimentResult("t", "title", "x")
        result.note("hello")
        assert result.notes == ["hello"]


class TestScale:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "quick"
        assert sweep_points([1], [2]) == [1]

    def test_full_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert sweep_points([1], [2]) == [2]


class TestMeasureOp:
    def test_cold_cache_measurement(self):
        fs = H2CloudFS(SwiftCluster.rack_scale(), account="a")
        fs.makedirs("/x/y")
        cost1 = measure_op(fs, lambda: fs.stat("/x/y"))
        cost2 = measure_op(fs, lambda: fs.stat("/x/y"))
        assert cost1 > 0
        assert cost2 == pytest.approx(cost1, rel=0.3)  # caches dropped both times


class TestRunSweep:
    def test_generic_loop(self):
        result = ExperimentResult("t", "title", "n")
        run_sweep(
            result,
            ("h2cloud",),
            [5, 10],
            setup=lambda fs, n: [fs.write(f"/f{i}", b"x") for i in range(n)],
            operation=lambda fs, n: (lambda: fs.listdir("/", detailed=True)),
        )
        points = result.series_for("h2cloud").points
        assert [x for x, _ in points] == [5, 10]
        assert all(ms > 0 for _, ms in points)

    def test_repeats_average(self):
        result = ExperimentResult("t", "title", "n")
        run_sweep(
            result,
            ("h2cloud",),
            [3],
            setup=lambda fs, n: fs.mkdir("/d"),
            operation=lambda fs, n: (lambda: fs.listdir("/d")),
            repeats=3,
        )
        assert len(result.series_for("h2cloud").points) == 1
