"""Tests for the scale bench: scenario replay, SLO cards, guard wiring."""

import json
import shutil
from pathlib import Path

import pytest

from repro.bench.guard import _guarded_metrics, run_guard
from repro.bench.scale import (
    OP_CLASSES,
    SCALE_FORMAT,
    TenantCard,
    run_scale_schedule,
    run_scenario,
    scenario_main,
)
from repro.dst.schedule import Schedule
from repro.workloads.scenarios import ScenarioExplorer, build_scenario, scenario_env

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def micro_report():
    return run_scenario(build_scenario("sync-storm", tier="micro", seed=7))


class TestScenarioRun:
    def test_clean_run_is_ok(self, micro_report):
        result = micro_report.result
        assert result.ok, result.violations
        assert result.counters["denied"] == 0
        assert result.counters["unavailable"] == 0

    def test_every_op_step_graded(self, micro_report):
        doc = micro_report.document
        assert doc["fleet"]["ops"] == micro_report.result.schedule.op_count()

    def test_deterministic_digest_and_cards(self, micro_report):
        again = run_scenario(build_scenario("sync-storm", tier="micro", seed=7))
        assert again.digest == micro_report.digest
        assert again.cards_text() == micro_report.cards_text()
        assert again.document == micro_report.document

    def test_replay_from_json_matches(self, micro_report):
        schedule = ScenarioExplorer(
            build_scenario("sync-storm", tier="micro", seed=7)
        ).explore()
        replayed = run_scale_schedule(Schedule.loads(schedule.dumps()))
        assert replayed.digest == micro_report.digest

    def test_lazy_materialization(self, micro_report):
        population = micro_report.document["population"]
        assert 0 < population["activated"] <= population["declared"]
        assert population["heavy_activated"] >= 1  # the anchor showed up
        assert population["seeded_files"] > 0

    def test_faulty_run_still_deterministic(self):
        spec = build_scenario(
            "steady-mix",
            tier="micro",
            seed=5,
            env=scenario_env(faulty=True, corruption=True, membership=True),
        )
        a = run_scenario(spec)
        b = run_scenario(spec)
        assert a.digest == b.digest
        assert a.cards_text() == b.cards_text()


class TestReportCards:
    def test_card_shape(self, micro_report):
        assert micro_report.cards, "no tenants graded"
        known_classes = set(OP_CLASSES.values())
        for card in micro_report.cards:
            assert card["account"].startswith("t")
            assert card["errors"] == card["denied"] + card["unavailable"]
            assert set(card["classes"]) <= known_classes
            for stats in card["classes"].values():
                assert stats["count"] > 0
                assert stats["p50_ms"] <= stats["p99_ms"] <= stats["max_ms"]

    def test_cards_sorted_by_account(self, micro_report):
        accounts = [card["account"] for card in micro_report.cards]
        assert accounts == sorted(accounts)

    def test_degraded_reads_only_on_read_classes(self):
        card = TenantCard("t000001", heavy=False)
        card.observe("write", 100, degraded=3)  # writes never degrade
        assert int(card.degraded_reads) == 0
        card.observe("read", 50, degraded=2)
        assert int(card.degraded_reads) == 2

    def test_percentiles_match_registry(self):
        card = TenantCard("t000002", heavy=True)
        for us in (100, 200, 300, 400, 1000):
            card.observe("read", us)
        snapshot = card.registry.snapshot()
        assert card.to_json()["latency"]["p99_ms"] == round(
            snapshot["slo.all_us.p99"] / 1000.0, 3
        )


class TestScaleDocument:
    def test_required_fields(self, micro_report):
        doc = micro_report.document
        assert doc["format"] == SCALE_FORMAT
        assert doc["scale"] == "micro"
        assert doc["sim_makespan_ms"] > 0
        fleet = doc["fleet"]
        assert fleet["ops_per_sec"] > 0
        assert fleet["latency"]["p99_ms"] >= fleet["latency"]["p50_ms"]
        assert doc["worst_tenant"]["p99_ms"] > 0
        assert doc["digest"] == micro_report.digest

    def test_guard_reads_scale_metrics(self, micro_report):
        metrics = _guarded_metrics(micro_report.document)
        assert "fleet.ms_per_kop" in metrics
        assert "fleet.p99_ms" in metrics
        assert "worst_tenant.p99_ms" in metrics
        assert any(key.startswith("fleet.data_write") for key in metrics)

    def test_throughput_guarded_as_inverse(self, micro_report):
        """An ops/sec drop must register as a ms-per-kop increase."""
        doc = micro_report.document
        slower = json.loads(json.dumps(doc))
        slower["fleet"]["ops_per_sec"] = doc["fleet"]["ops_per_sec"] / 2
        assert (
            _guarded_metrics(slower)["fleet.ms_per_kop"]
            > _guarded_metrics(doc)["fleet.ms_per_kop"] * 1.2
        )


class TestGuardEndToEnd:
    def _artifact_dir(self, tmp_path, name, scale_doc) -> Path:
        out = tmp_path / name
        out.mkdir()
        for artifact in (
            "BENCH_headline.json",
            "BENCH_maintenance.json",
            "BENCH_rebalance.json",
            "BENCH_partition.json",
            "BENCH_hugedir.json",
        ):
            shutil.copy(REPO_ROOT / artifact, out / artifact)
        (out / "BENCH_scale.json").write_text(
            json.dumps(scale_doc, indent=2, sort_keys=True) + "\n"
        )
        return out

    def test_identical_artifacts_pass(self, tmp_path, micro_report, capsys):
        base = self._artifact_dir(tmp_path, "base", micro_report.document)
        cand = self._artifact_dir(tmp_path, "cand", micro_report.document)
        assert run_guard(base, cand) == 0

    def test_scale_regression_fails(self, tmp_path, micro_report, capsys):
        base = self._artifact_dir(tmp_path, "base", micro_report.document)
        worse = json.loads(json.dumps(micro_report.document))
        worse["fleet"]["ops_per_sec"] /= 2  # throughput halved
        worse["worst_tenant"]["p99_ms"] *= 3  # tail blown up
        cand = self._artifact_dir(tmp_path, "cand", worse)
        assert run_guard(base, cand) == 1
        out = capsys.readouterr().out
        assert "ms_per_kop" in out
        assert "worst_tenant.p99_ms" in out

    def test_missing_scale_artifact_errors(self, tmp_path, micro_report):
        base = self._artifact_dir(tmp_path, "base", micro_report.document)
        cand = self._artifact_dir(tmp_path, "cand", micro_report.document)
        (cand / "BENCH_scale.json").unlink()
        assert run_guard(base, cand) == 2


class TestScenarioCli:
    def test_list_catalog(self, capsys):
        assert scenario_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "sync-storm" in out
        assert "tier micro" in out

    def test_micro_run_writes_artifacts(self, tmp_path, capsys):
        code = scenario_main(
            [
                "sync-storm",
                "--tier",
                "micro",
                "--seed",
                "7",
                "--out",
                str(tmp_path),
                "--cards",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "digest:" in out
        doc = json.loads((tmp_path / "BENCH_scale.json").read_text())
        assert doc["scenario"] == "sync-storm"
        cards = json.loads((tmp_path / "SLO_cards.json").read_text())
        assert cards and all("latency" in card for card in cards)

    def test_save_then_replay_round_trips(self, tmp_path, capsys):
        saved = tmp_path / "schedule.json"
        assert (
            scenario_main(
                ["steady-mix", "--tier", "micro", "--seed", "3",
                 "--save", str(saved)]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert scenario_main(["--replay", str(saved)]) == 0
        second = capsys.readouterr().out
        digest = [l for l in first.splitlines() if l.startswith("digest:")]
        assert digest == [
            l for l in second.splitlines() if l.startswith("digest:")
        ]

    def test_name_required_without_replay(self, capsys):
        with pytest.raises(SystemExit):
            scenario_main([])
