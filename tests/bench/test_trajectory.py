"""Bench-trajectory artifacts: shape, determinism, CLI plumbing."""

import json

from repro.bench.__main__ import main as bench_main
from repro.bench.trajectory import (
    FORMAT,
    headline_trajectory,
    maintenance_trajectory,
    write_bench_artifacts,
)


class TestHeadline:
    def test_shape(self):
        doc = headline_trajectory()
        assert doc["format"] == FORMAT
        assert doc["artifact"] == "headline"
        assert doc["sim_makespan_ms"] > 0
        for op in ("mkdir", "write", "read", "list", "move", "delete"):
            stats = doc["ops"][op]
            assert stats["count"] > 0
            assert 0 < stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]
            assert stats["p99_ms"] <= stats["max_ms"]
        assert doc["store"]["puts"] > 0
        assert 0 <= doc["fd_cache_hit_rate"] <= 1

    def test_deterministic(self):
        assert headline_trajectory() == headline_trajectory()


class TestMaintenance:
    def test_shape(self):
        doc = maintenance_trajectory()
        assert doc["artifact"] == "maintenance"
        totals = doc["totals"]
        assert totals["patches_submitted"] > 0
        assert totals["merges"] > 0
        assert totals["patches_applied"] >= totals["merges"]
        assert len(doc["per_node"]) == 3
        assert doc["gossip"]["rumors_delivered"] > 0
        assert doc["gc"]["swept"] > 0


class TestArtifacts:
    def test_write_all_files(self, tmp_path):
        written = write_bench_artifacts(tmp_path)
        assert [p.name for p in written] == [
            "BENCH_headline.json",
            "BENCH_maintenance.json",
            "BENCH_rebalance.json",
            "BENCH_partition.json",
            "BENCH_scale.json",
            "BENCH_hugedir.json",
        ]
        for path in written[:4]:
            doc = json.loads(path.read_text())
            assert doc["format"] == FORMAT
        scale_doc = json.loads(written[4].read_text())
        assert scale_doc["format"] == "h2cloud-bench-scale-v1"
        assert scale_doc["scale"] == "smoke"
        hugedir_doc = json.loads(written[5].read_text())
        assert hugedir_doc["artifact"] == "hugedir"

    def test_bench_cli_trajectory(self, tmp_path, capsys):
        assert bench_main(["trajectory", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "BENCH_headline.json" in out
        assert (tmp_path / "BENCH_maintenance.json").exists()
        assert (tmp_path / "BENCH_rebalance.json").exists()
