"""Giant-directory bench: the sharding win and its artifact shape."""

from repro.bench.hugedir import (
    SHARDED,
    _hotspot_side,
    _measure_side,
    write_hugedir_artifact,
)
from repro.workloads import HugeDirSpec


class TestSweepSides:
    def test_sharded_insert_bytes_sublinear(self):
        """Past the split threshold a one-child insert must move a
        shard's worth of bytes, not the whole ring -- the tentpole."""
        m = 5_000
        mono = _measure_side(m, sharded=False)
        shard = _measure_side(m, sharded=True)
        assert shard["insert"]["bytes_in"] < mono["insert"]["bytes_in"] / 4
        # Correctness floor: both sides listed the same page volume.
        assert shard["list_page"]["bytes_out"] > 0

    def test_below_threshold_sides_identical(self):
        """Under the split threshold the sharded config must take the
        monolithic path byte for byte (the default-off guarantee)."""
        m = SHARDED.shard_split_threshold // 2
        assert _measure_side(m, sharded=False) == _measure_side(m, sharded=True)

    def test_measure_deterministic(self):
        m = 2_000
        assert _measure_side(m, sharded=True) == _measure_side(m, sharded=True)


class TestHotspotPhase:
    def test_shape_and_determinism(self):
        spec = HugeDirSpec(children=1_500, ops=60, seed=9)
        side = _hotspot_side(spec, sharded=True)
        assert side["sim_makespan_ms"] > 0
        assert side["classes"]["lookup"]["count"] > 0
        assert side == _hotspot_side(spec, sharded=True)


class TestArtifact:
    def test_writer(self, tmp_path):
        path = write_hugedir_artifact(tmp_path)
        assert path.name == "BENCH_hugedir.json"
        import json

        doc = json.loads(path.read_text())
        assert doc["artifact"] == "hugedir"
        assert doc["policy"]["split_threshold"] == SHARDED.shard_split_threshold
        sweep = doc["sweep"]
        assert [p["m"] for p in sweep] == [512, 5_000]
        # The headline claim the guard pins: sub-linear per-op bytes at
        # the largest swept m.
        assert sweep[-1]["insert_bytes_ratio"] < 0.25
