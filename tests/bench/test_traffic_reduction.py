"""The tentpole's acceptance thresholds, pinned as tests.

The bench trajectory's traffic sections must keep showing the paper's
traffic wins with the flags on: >= 30% fewer store GETs on the fig 13
cold-walk + ``exists()``-heavy workload, and >= 2x fewer PUTs on the
fig 12 mkdir storm.  Both workloads are deterministic, so these are
exact-behaviour tests, not flaky perf assertions.
"""

from dataclasses import replace

from repro.bench.guard import TOLERANCE, compare, run_guard
from repro.bench.trajectory import (
    _lookup_workload_traffic,
    _mkdir_storm_traffic,
    headline_trajectory,
    maintenance_trajectory,
)
from repro.core.middleware import H2Config


class TestLookupTraffic:
    def test_get_reduction_meets_threshold(self):
        base = _lookup_workload_traffic(H2Config())
        opt = _lookup_workload_traffic(H2Config().with_traffic_flags())
        assert base["store_gets"] > 0
        reduction = 1.0 - opt["store_gets"] / base["store_gets"]
        assert reduction >= 0.30
        # The win comes from the negative cache absorbing revalidations.
        assert base["negative_hits"] == 0
        assert opt["negative_hits"] > 0
        assert opt["revalidations"] < base["revalidations"]

    def test_read_only_workload(self):
        stats = _lookup_workload_traffic(H2Config())
        assert stats["store_puts"] == 0


class TestMkdirStormTraffic:
    def test_put_ratio_meets_threshold(self):
        base = _mkdir_storm_traffic(H2Config())
        opt = _mkdir_storm_traffic(
            replace(
                H2Config().with_traffic_flags(),
                group_commit_window_us=2_000_000,
            )
        )
        assert base["store_puts"] / opt["store_puts"] >= 2.0
        # Group commit and rumor coalescing both have to fire for the
        # ratio to hold -- pin them so a silent flag-off shows up here.
        assert base["group_commits"] == 0
        assert opt["group_commits"] > 0
        assert opt["patches_coalesced"] > 0
        assert opt["rumors_sent"] < base["rumors_sent"]


class TestArtifactSections:
    def test_headline_embeds_traffic_section(self):
        doc = headline_trajectory()
        traffic = doc["traffic"]
        assert traffic["get_reduction"] >= 0.30
        assert traffic["baseline"]["store_gets"] > traffic["optimized"]["store_gets"]

    def test_maintenance_embeds_traffic_section(self):
        doc = maintenance_trajectory()
        traffic = doc["traffic"]
        assert traffic["put_ratio"] >= 2.0
        assert traffic["baseline"]["store_puts"] > traffic["optimized"]["store_puts"]


class TestGuard:
    def _write_pair(self, directory, headline, maintenance):
        import json

        (directory / "BENCH_headline.json").write_text(json.dumps(headline))
        (directory / "BENCH_maintenance.json").write_text(json.dumps(maintenance))
        # A guard run needs the full artifact set; the rebalance doc is
        # constant across these scenarios.
        rebalance = {
            "scale": headline["scale"],
            "sim_makespan_ms": 300.0,
            "steady": {"read_p99_ms": 5.0, "write_p99_ms": 20.0},
            "migration": {"read_p99_ms": 6.0, "write_p99_ms": 22.0},
        }
        (directory / "BENCH_rebalance.json").write_text(json.dumps(rebalance))
        scale = {
            "scale": headline["scale"],
            "sim_makespan_ms": 400.0,
            "fleet": {
                "ops_per_sec": 1000.0,
                "latency": {"p99_ms": 8.0},
                "classes": {"data_read": {"p99_ms": 4.0}},
            },
            "worst_tenant": {"p99_ms": 12.0},
        }
        (directory / "BENCH_scale.json").write_text(json.dumps(scale))
        partition = {
            "scale": headline["scale"],
            "sim_makespan_ms": 500.0,
            "hints_off": {"ack_rate": 0.8, "write_p99_ms": 50.0},
            "hints_on": {"ack_rate": 1.0, "write_p99_ms": 52.0},
        }
        (directory / "BENCH_partition.json").write_text(json.dumps(partition))
        hugedir = {
            "scale": headline["scale"],
            "sim_makespan_ms": 600.0,
            "sweep": [],
            "hotspot": {},
        }
        (directory / "BENCH_hugedir.json").write_text(json.dumps(hugedir))

    def _docs(self):
        headline = {
            "scale": "quick",
            "sim_makespan_ms": 100.0,
            "ops": {"mkdir": {"mean_ms": 50.0}},
            "traffic": {"optimized": {"store_gets": 100, "store_puts": 0}},
        }
        maintenance = {
            "scale": "quick",
            "sim_makespan_ms": 200.0,
            "background_ms": 40.0,
            "traffic": {"optimized": {"store_gets": 10, "store_puts": 30}},
        }
        return headline, maintenance

    def test_identical_pair_passes(self, tmp_path):
        headline, maintenance = self._docs()
        base, cand = tmp_path / "base", tmp_path / "cand"
        base.mkdir(), cand.mkdir()
        self._write_pair(base, headline, maintenance)
        self._write_pair(cand, headline, maintenance)
        assert compare(base, cand) == []
        assert run_guard(base, cand) == 0

    def test_slowdown_past_tolerance_fails(self, tmp_path):
        headline, maintenance = self._docs()
        base, cand = tmp_path / "base", tmp_path / "cand"
        base.mkdir(), cand.mkdir()
        self._write_pair(base, headline, maintenance)
        headline["ops"]["mkdir"]["mean_ms"] *= TOLERANCE + 0.05
        maintenance["traffic"]["optimized"]["store_puts"] *= 2
        self._write_pair(cand, headline, maintenance)
        violations = compare(base, cand)
        assert any("ops.mkdir.mean_ms" in v for v in violations)
        assert any("traffic.optimized.store_puts" in v for v in violations)
        assert run_guard(base, cand) == 1

    def test_within_tolerance_passes(self, tmp_path):
        headline, maintenance = self._docs()
        base, cand = tmp_path / "base", tmp_path / "cand"
        base.mkdir(), cand.mkdir()
        self._write_pair(base, headline, maintenance)
        headline["ops"]["mkdir"]["mean_ms"] *= 1.10  # inside 20%
        self._write_pair(cand, headline, maintenance)
        assert compare(base, cand) == []

    def test_missing_artifact_is_usage_error(self, tmp_path):
        headline, maintenance = self._docs()
        base, cand = tmp_path / "base", tmp_path / "cand"
        base.mkdir(), cand.mkdir()
        self._write_pair(base, headline, maintenance)
        assert run_guard(base, cand) == 2

    def test_scale_mismatch_is_a_violation(self, tmp_path):
        headline, maintenance = self._docs()
        base, cand = tmp_path / "base", tmp_path / "cand"
        base.mkdir(), cand.mkdir()
        self._write_pair(base, headline, maintenance)
        headline["scale"] = maintenance["scale"] = "full"
        self._write_pair(cand, headline, maintenance)
        assert any("scale mismatch" in v for v in compare(base, cand))

    def test_committed_baseline_matches_regenerated(self, tmp_path):
        """The repo-root artifacts must stay in sync with the code."""
        from pathlib import Path

        from repro.bench.harness import bench_scale
        from repro.bench.trajectory import write_bench_artifacts

        repo_root = Path(__file__).resolve().parents[2]
        if not (repo_root / "BENCH_headline.json").exists():
            import pytest

            pytest.skip("no committed baseline at the repo root")
        import json

        committed = json.loads((repo_root / "BENCH_headline.json").read_text())
        if committed.get("scale") != bench_scale():
            import pytest

            pytest.skip("committed baseline generated at a different scale")
        write_bench_artifacts(tmp_path)
        assert run_guard(repo_root, tmp_path) == 0
