"""Tests for result rendering."""

from repro.bench import ExperimentResult, ascii_chart, format_result, format_table, markdown_table


def sample_result() -> ExperimentResult:
    result = ExperimentResult("figX", "Sample sweep", "n")
    result.expectation = "grows"
    for system, factor in (("alpha", 1.0), ("beta", 10.0)):
        series = result.series_for(system)
        for x in (10, 100, 1000):
            series.add(x, factor * x / 10)
    result.note("a note")
    return result


class TestFormatTable:
    def test_contains_every_point(self):
        text = format_table(sample_result())
        assert "alpha" in text and "beta" in text
        assert "10" in text and "1000" in text

    def test_units_scale(self):
        result = ExperimentResult("t", "t", "x")
        result.series_for("s").add(1, 0.5)  # 500 us
        result.series_for("s").add(2, 50.0)  # 50 ms
        result.series_for("s").add(3, 50_000.0)  # 50 s
        text = format_table(result)
        assert "us" in text and "ms" in text and " s" in text

    def test_missing_points_dashed(self):
        result = ExperimentResult("t", "t", "x")
        result.series_for("a").add(1, 1.0)
        result.series_for("b").add(2, 2.0)
        assert "-" in format_table(result)

    def test_empty(self):
        assert "(no series)" in format_table(ExperimentResult("t", "t", "x"))


class TestAsciiChart:
    def test_chart_renders_markers_and_legend(self):
        chart = ascii_chart(sample_result())
        assert "o=alpha" in chart
        assert "x=beta" in chart
        assert "o" in chart.splitlines()[3] or any(
            "o" in line for line in chart.splitlines()
        )

    def test_degenerate_points_no_crash(self):
        result = ExperimentResult("t", "t", "x")
        result.series_for("s").add(5, 5.0)
        assert ascii_chart(result)  # single point: still renders


class TestFormatResult:
    def test_full_block(self):
        text = format_result(sample_result())
        assert text.startswith("== figX")
        assert "paper expectation: grows" in text
        assert "a note" in text


class TestMarkdownTable:
    def test_pipes_and_rows(self):
        md = markdown_table(sample_result())
        lines = md.splitlines()
        assert lines[0].startswith("| n |")
        assert lines[1].startswith("|---")
        assert len(lines) == 2 + 3  # header + sep + three x values
