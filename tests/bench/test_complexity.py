"""Tests for the power-law fitting and complexity classification."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import classify, consistent_with, fit_power_law, is_flat, is_linear
from repro.bench.complexity import fit_sweep


def curve(fn, xs=(8, 32, 128, 512, 2048)):
    return [(x, fn(x)) for x in xs]


class TestFitPowerLaw:
    def test_linear_data(self):
        fit = fit_power_law(curve(lambda x: 3.0 * x))
        assert abs(fit.exponent - 1.0) < 0.01
        assert fit.r_squared > 0.99
        assert fit.label == "O(x)"

    def test_constant_data(self):
        fit = fit_power_law(curve(lambda x: 42.0))
        assert abs(fit.exponent) < 0.01
        assert fit.label == "O(1)"

    def test_quadratic_data(self):
        fit = fit_power_law(curve(lambda x: 0.5 * x * x))
        assert abs(fit.exponent - 2.0) < 0.05
        assert fit.label.startswith("O(x^")

    def test_log_data(self):
        fit = fit_power_law(curve(lambda x: 10 * math.log2(x)))
        assert 0.1 < fit.exponent < 0.6

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([(1, 1)])

    @given(
        st.floats(min_value=0.0, max_value=2.0),
        st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=50)
    def test_recovers_exponent(self, k, c):
        points = curve(lambda x: c * x**k)
        fit = fit_power_law(points)
        assert abs(fit.exponent - k) < 0.05


class TestFitSweep:
    def test_additive_constant_does_not_mask_linearity(self):
        """t = 100 + 0.5x must classify as linear, not log."""
        fit = fit_sweep(curve(lambda x: 100 + 0.5 * x))
        assert fit.exponent > 0.7

    def test_flat_with_jitter_is_constant(self):
        rng = random.Random(1)
        points = [(x, 50.0 * rng.uniform(0.95, 1.05)) for x in (8, 64, 512)]
        assert fit_sweep(points).label == "O(1)"

    def test_pure_linear_still_linear(self):
        assert fit_sweep(curve(lambda x: 2.0 * x)).exponent > 0.8

    def test_constant_plus_depth_linear(self):
        """The H2 lookup shape: a + b*d over small d."""
        points = [(d, 10 + 10 * d) for d in (1, 2, 4, 8, 16)]
        assert fit_sweep(points).exponent > 0.7


class TestClassify:
    def test_bands(self):
        assert classify(0.05) == "O(1)"
        assert classify(0.4) == "O(log x)"
        assert classify(1.0) == "O(x)"
        assert classify(2.0) == "O(x^2.0)"


class TestConsistency:
    def test_o1_claim_accepts_flat_only(self):
        flat = curve(lambda x: 30.0)
        linear = curve(lambda x: 30.0 + 2.0 * x)
        assert consistent_with(flat, "O(1)")
        assert not consistent_with(linear, "O(1)")

    def test_linear_claims(self):
        linear = curve(lambda x: 5 + 0.8 * x)
        assert consistent_with(linear, "O(n)")
        assert consistent_with(linear, "O(N)")
        assert consistent_with(linear, "O(m·logN)")
        assert not consistent_with(curve(lambda x: 30.0), "O(n)")

    def test_or_claims(self):
        assert consistent_with(curve(lambda x: 30.0), "O(1) or O(d)")
        assert consistent_with(curve(lambda x: 4 * x), "O(1) or O(d)")

    def test_helpers(self):
        assert is_flat(curve(lambda x: 9.0))
        assert is_linear(curve(lambda x: 2 * x))
        assert not is_linear(curve(lambda x: 9.0))
