"""Tests for cross-system migration (adoption + backup/restore)."""

import pytest

from repro.baselines import make_system
from repro.core import H2CloudFS
from repro.simcloud import SwiftCluster
from repro.testing import snapshot_of
from repro.tools import migrate, verify_equivalent
from repro.workloads import TreeSpec, generate, populate


def seeded_fs(system: str):
    fs = make_system(system, SwiftCluster.fast())
    tree = generate(TreeSpec(seed=3, target_files=40, max_depth=4))
    populate(fs, tree, sparse=False)
    fs.pump()
    return fs


class TestMigrate:
    @pytest.mark.parametrize(
        "src,dst",
        [
            ("swift", "h2cloud"),  # adopting H2Cloud
            ("h2cloud", "compressed-snapshot"),  # Cumulus backup
            ("compressed-snapshot", "h2cloud"),  # restore
            ("dynamic-partition", "h2cloud"),  # leaving the index cloud
        ],
    )
    def test_migrations_preserve_trees(self, src, dst):
        source = seeded_fs(src)
        target = make_system(dst, SwiftCluster.fast())
        report = migrate(source, target)
        assert report.files == 40
        assert report.directories > 0
        assert verify_equivalent(source, target)

    def test_report_counts_bytes(self):
        source = H2CloudFS(SwiftCluster.fast(), account="a")
        source.mkdir("/d")
        source.write("/d/f", b"0123456789")
        target = H2CloudFS(SwiftCluster.fast(), account="b")
        report = migrate(source, target)
        assert report.logical_bytes == 10
        assert report.files == 1
        assert report.directories == 1

    def test_subtree_migration(self):
        source = H2CloudFS(SwiftCluster.fast(), account="a")
        source.makedirs("/keep/deep")
        source.write("/keep/deep/f", b"x")
        source.mkdir("/ignore")
        target = H2CloudFS(SwiftCluster.fast(), account="b")
        migrate(source, target, top="/keep")
        assert target.read("/keep/deep/f") == b"x"
        assert not target.exists("/ignore")

    def test_migration_cost_is_measurable(self):
        source = seeded_fs("swift")
        target = make_system("h2cloud", SwiftCluster.rack_scale())
        report = migrate(source, target)
        assert report.elapsed_us > 0

    def test_round_trip_backup_restore(self):
        original = seeded_fs("h2cloud")
        backup = make_system("compressed-snapshot", SwiftCluster.fast())
        migrate(original, backup)
        # Disaster: restore into a brand-new H2Cloud deployment.
        restored = make_system("h2cloud", SwiftCluster.fast())
        migrate(backup, restored)
        assert snapshot_of(restored) == snapshot_of(original)
