"""Tests for the H2 consistency checker."""

import pytest

from repro.core import H2CloudFS, H2Config, Namespace, directory_key, file_key, namering_key
from repro.simcloud import SwiftCluster
from repro.tools import H2Fsck
from repro.workloads import TreeSpec, generate, populate


@pytest.fixture
def fs() -> H2CloudFS:
    fs = H2CloudFS(SwiftCluster.fast(), account="alice")
    fs.makedirs("/a/b")
    fs.write("/a/f1", b"one")
    fs.write("/a/b/f2", b"two")
    fs.pump()
    return fs


def fsck(fs) -> "FsckReport":
    return H2Fsck(fs.middlewares[0]).check()


class TestCleanDeployments:
    def test_fresh_tree_is_clean(self, fs):
        report = fsck(fs)
        assert report.clean, report.errors
        assert report.directories_checked == 3  # root, a, b
        assert report.files_checked == 2
        assert "CLEAN" in report.summary()

    def test_synthetic_corpus_is_clean(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        populate(fs, generate(TreeSpec(seed=5, target_files=150)))
        fs.pump()
        report = fsck(fs)
        assert report.clean, report.errors[:3]
        assert report.files_checked == 150

    def test_after_churn_and_gc(self, fs):
        fs.move("/a/b", "/top")
        fs.copy("/a", "/a2")
        fs.delete("/a/f1")
        fs.rmdir("/a2")
        fs.gc()
        report = fsck(fs)
        assert report.clean, report.errors
        assert report.garbage == []

    def test_tombstones_count_as_garbage_not_errors(self, fs):
        fs.delete("/a/f1")  # fake deletion: bytes remain
        fs.pump()
        report = fsck(fs)
        assert report.clean
        assert any(name.startswith("f:") for name in report.garbage)

    def test_multi_account(self):
        cluster = SwiftCluster.fast()
        a = H2CloudFS(cluster, account="alice")
        b = H2CloudFS(cluster, account="bob")
        a.write("/f", b"1")
        b.write("/g", b"2")
        report = H2Fsck(a.middlewares[0]).check()
        assert report.accounts_checked == 2
        assert report.clean


class TestFsckProperty:
    """Whatever valid operations run, the graph stays fsck-clean."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    _PATHS = st.sampled_from(["/a", "/b", "/a/x", "/a/y", "/a/x/z"])
    _OPS = st.lists(
        st.one_of(
            st.tuples(st.just("mkdir"), _PATHS),
            st.tuples(st.just("write"), _PATHS, st.binary(max_size=8)),
            st.tuples(st.just("delete"), _PATHS),
            st.tuples(st.just("rmdir"), _PATHS),
            st.tuples(st.just("move"), _PATHS, _PATHS),
            st.tuples(st.just("copy"), _PATHS, _PATHS),
        ),
        max_size=25,
    )

    @given(ops=_OPS)
    @settings(max_examples=30, deadline=None)
    def test_invariants_hold_under_random_ops(self, ops):
        from repro.simcloud import FilesystemError

        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        for op in ops:
            try:
                getattr(fs, op[0])(*op[1:])
            except FilesystemError:
                pass
        fs.pump()
        report = fsck(fs)
        assert report.clean, report.errors[:3]
        fs.gc()
        after_gc = fsck(fs)
        assert after_gc.clean, after_gc.errors[:3]
        assert after_gc.garbage == []


class TestCorruptionDetection:
    def test_missing_content_object(self, fs):
        fs.store.delete("f:" + fs.relative_path_of("/a/f1"))
        report = fsck(fs)
        assert any("I3" in e and "content object missing" in e for e in report.errors)

    def test_size_mismatch(self, fs):
        key = "f:" + fs.relative_path_of("/a/f1")
        fs.store.put(key, b"wrong-length-entirely")
        report = fsck(fs)
        assert any("I3" in e and "size" in e for e in report.errors)

    def test_missing_namering(self, fs):
        mw = fs.middlewares[0]
        ns = mw.lookup.resolve_dir("alice", "/a/b")
        fs.store.delete(namering_key(ns))
        mw.fd_cache.drop_clean()
        report = fsck(fs)
        assert any("NameRing missing" in e for e in report.errors)

    def test_unparseable_record(self, fs):
        mw = fs.middlewares[0]
        ns = mw.lookup.resolve_dir("alice", "/a")
        fs.store.put(directory_key(ns), b"not a directory record")
        report = fsck(fs)
        assert any("unparseable record" in e for e in report.errors)

    def test_missing_root(self):
        cluster = SwiftCluster.fast()
        fs = H2CloudFS(cluster, account="alice")
        fs.store.delete(directory_key(Namespace.root("alice")))
        report = fsck(fs)
        assert any("I1" in e for e in report.errors)

    def test_degraded_replicas_reported(self, fs):
        key = "f:" + fs.relative_path_of("/a/f1")
        victim = fs.cluster.ring.nodes_for(key)[0]
        fs.cluster.nodes[victim].wipe()
        report = fsck(fs)
        assert report.degraded_replicas  # I5 finding, not an error
        fs.store.repair()
        assert not fsck(fs).degraded_replicas

    def test_pending_patches_not_garbage(self):
        fs = H2CloudFS(
            SwiftCluster.fast(),
            account="alice",
            config=H2Config(auto_merge=False),
        )
        fs.write("/f", b"x")  # patch chained, unmerged
        report = fsck(fs)
        assert not any(name.startswith("patch:") for name in report.garbage)


class TestIntegrityPass:
    def test_corrupt_replica_reported_as_i8(self, fs):
        key = "f:" + fs.relative_path_of("/a/f1")
        victim = fs.cluster.ring.nodes_for(key)[0]
        fs.cluster.nodes[victim].corrupt_object(key)
        report = fsck(fs)
        assert report.clean  # a finding, not an error: repair can heal it
        assert any(
            "I8" in c and key in c and f"node {victim}" in c
            for c in report.corrupt_replicas
        )
        assert "1 corrupt replicas" in report.summary()

    def test_scrub_clears_i8_findings(self, fs):
        key = "f:" + fs.relative_path_of("/a/f1")
        victim = fs.cluster.ring.nodes_for(key)[0]
        fs.cluster.nodes[victim].corrupt_object(key)
        fs.scrub()
        assert fsck(fs).corrupt_replicas == []

    def test_unrecoverable_namering_reported_not_crashed(self, fs):
        mw = fs.middlewares[0]
        ns = mw.lookup.resolve_dir("alice", "/a/b")
        key = namering_key(ns)
        for node_id in fs.store.ring.nodes_for(key):
            fs.store.nodes[node_id].corrupt_object(key)
        mw.fd_cache.drop_clean()
        report = fsck(fs)
        assert any(
            "I8" in c and "unrecoverable" in c for c in report.corrupt_replicas
        )
