"""Index-server family specifics: partitioning, migration, CAP, scale."""

import pytest

from repro.baselines import (
    DropboxLikeFS,
    DynamicPartitionFS,
    SharedDiskDPFS,
    SingleIndexFS,
    StaticPartitionFS,
)
from repro.simcloud import CrossDeviceMove, ServiceUnavailable, SwiftCluster


class TestSingleIndex:
    def test_everything_on_one_server(self):
        fs = SingleIndexFS(SwiftCluster.fast())
        fs.makedirs("/a/b/c")
        assert fs.namenode.dir_count == 4  # root + 3

    def test_move_is_metadata_only(self):
        fs = SingleIndexFS(SwiftCluster.fast())
        fs.mkdir("/d")
        fs.write("/d/f", b"payload")
        puts_before = fs.store.ledger.puts
        fs.move("/d", "/d2")
        assert fs.store.ledger.puts == puts_before
        assert fs.read("/d2/f") == b"payload"

    def test_saturation_scales_linearly(self):
        fs = SingleIndexFS(SwiftCluster.fast())
        assert fs.saturation_factor(8) == 8.0
        with pytest.raises(ValueError):
            fs.saturation_factor(0)


class TestStaticPartition:
    def test_volumes_distributed_by_hash(self):
        fs = StaticPartitionFS(SwiftCluster.fast(), partitions=4)
        for i in range(16):
            fs.mkdir(f"/vol{i}")
        used = {
            sid for sid, count in fs.table.dirs_by_server().items() if count > 0
        }
        assert len(used) >= 3  # hashing spreads volumes

    def test_subtree_stays_in_volume(self):
        fs = StaticPartitionFS(SwiftCluster.fast(), partitions=4)
        fs.makedirs("/vol/a/b/c")
        servers = {
            fs.table.placement_of(d)
            for d in list(fs.table._placement)
            if d != "d0"
        }
        assert len(servers) == 1

    def test_strict_cross_volume_move_rejected(self):
        fs = StaticPartitionFS(SwiftCluster.fast(), partitions=8, strict=True)
        # Find two top-level names hashing to different partitions.
        fs.mkdir("/srcvol")
        src_server = fs._initial_server("d0", "/srcvol")
        dst = next(
            f"/dst{i}"
            for i in range(64)
            if fs._initial_server("d0", f"/dst{i}") != src_server
        )
        with pytest.raises(CrossDeviceMove):
            fs.move("/srcvol", dst)
        assert fs.exists("/srcvol")  # veto happened before mutation

    def test_lenient_cross_volume_move_migrates(self):
        fs = StaticPartitionFS(SwiftCluster.fast(), partitions=8, strict=False)
        fs.makedirs("/srcvol/sub")
        fs.write("/srcvol/sub/f", b"x")
        src_server = fs._initial_server("d0", "/srcvol")
        dst = next(
            f"/dst{i}"
            for i in range(64)
            if fs._initial_server("d0", f"/dst{i}") != src_server
        )
        fs.move("/srcvol", dst)
        assert fs.read(dst + "/sub/f") == b"x"
        dir_id = fs._resolve_dir_id(dst)
        assert fs.table.placement_of(dir_id) == fs._initial_server("d0", dst)

    def test_imbalance_reported(self):
        fs = StaticPartitionFS(SwiftCluster.fast(), partitions=4)
        fs.mkdir("/onlyvol")
        for i in range(20):
            fs.mkdir(f"/onlyvol/sub{i}")
        assert fs.imbalance() > 1.5  # one volume hogs a partition


class TestDynamicPartition:
    def test_children_colocate_with_parent(self):
        fs = DynamicPartitionFS(SwiftCluster.fast(), index_servers=4,
                                rebalance_every=0)
        fs.makedirs("/a/b/c")
        placements = {fs.table.placement_of(d) for d in list(fs.table._placement)}
        assert placements == {0}

    def test_rebalance_spreads_directories(self):
        fs = DynamicPartitionFS(SwiftCluster.fast(), index_servers=4,
                                rebalance_every=0)
        for i in range(40):
            fs.mkdir(f"/d{i:02d}")
        assert fs.spread() > 2.0
        moved = fs.rebalance()
        assert moved > 0
        assert fs.spread() <= 2.5

    def test_rebalance_preserves_tree(self):
        from repro.testing import snapshot_of

        fs = DynamicPartitionFS(SwiftCluster.fast(), index_servers=3,
                                rebalance_every=0)
        for i in range(10):
            fs.makedirs(f"/d{i}/sub")
            fs.write(f"/d{i}/sub/f", bytes([i]))
        before = snapshot_of(fs)
        fs.rebalance()
        assert snapshot_of(fs) == before

    def test_auto_rebalance_triggers(self):
        fs = DynamicPartitionFS(SwiftCluster.fast(), index_servers=4,
                                rebalance_every=16)
        for i in range(40):
            fs.mkdir(f"/d{i:02d}")
        assert fs.spread() <= 2.5  # background rebalancing kept up

    def test_dropbox_profile_slower_than_generic_dp(self):
        generic = DynamicPartitionFS(SwiftCluster.rack_scale())
        dropbox = DropboxLikeFS(SwiftCluster.rack_scale())
        _, g = generic.clock.measure(lambda: generic.mkdir("/d"))
        _, d = dropbox.clock.measure(lambda: dropbox.mkdir("/d"))
        assert d > 10 * g
        assert 120_000 < d < 350_000  # the paper's 150-200 ms band


class TestSharedDiskCAP:
    def test_mutations_pay_lock_cost(self):
        plain = DynamicPartitionFS(SwiftCluster.rack_scale(), index_servers=4,
                                   rebalance_every=0)
        shared = SharedDiskDPFS(SwiftCluster.rack_scale(), index_servers=4)
        _, p = plain.clock.measure(lambda: plain.mkdir("/d"))
        _, s = shared.clock.measure(lambda: shared.mkdir("/d"))
        assert s > p
        assert shared.locks_taken >= 1

    def test_partition_blocks_mutations_not_reads(self):
        fs = SharedDiskDPFS(SwiftCluster.fast())
        fs.mkdir("/d")
        fs.write("/d/f", b"x")
        fs.partition_fabric()
        with pytest.raises(ServiceUnavailable):
            fs.mkdir("/d2")
        with pytest.raises(ServiceUnavailable):
            fs.write("/d/g", b"y")
        assert fs.read("/d/f") == b"x"  # reads keep working
        fs.heal_fabric()
        fs.mkdir("/d2")

    def test_h2_keeps_accepting_writes_under_node_failure(self):
        """The contrast the paper draws: eventual consistency rides on."""
        from repro.core import H2CloudFS

        cluster = SwiftCluster.fast()
        fs = H2CloudFS(cluster, account="alice")
        victim = next(iter(cluster.nodes))
        cluster.nodes[victim].crash()
        fs.mkdir("/still-works")  # quorum writes tolerate one node down
        assert fs.exists("/still-works")
