"""Cost-shape tests: the complexity classes of Table 1, measured.

These are the reproduction's heart: for each system we measure
simulated operation time at two workload scales and assert the growth
(or flatness) the paper's Table 1 claims.  The full sweeps live in
``benchmarks/``; here we pin the minimal version so a regression in
any cost model fails fast.
"""

import pytest

from repro.baselines import make_system
from repro.core import H2CloudFS
from repro.simcloud import SwiftCluster


def timed(fs, thunk):
    _, cost = fs.clock.measure(thunk)
    return cost


def populate_flat(fs, n: int, prefix: str = "/dir", size: int = 64):
    fs.mkdir(prefix)
    for i in range(n):
        fs.write(f"{prefix}/f{i:05d}", b"x" * size)


def grows_linearly(cost_small, cost_big, factor=10, slack=3.0):
    """cost grew by >= factor/slack when the workload grew by factor."""
    return cost_big > cost_small * factor / slack


def roughly_flat(cost_small, cost_big, tolerance=3.0):
    return cost_big < cost_small * tolerance


class TestMoveShapes:
    """Fig 7: Swift MOVE is O(n); H2 and DP are O(1)."""

    def two_scale_move(self, name, small=20, big=200):
        costs = []
        for n in (small, big):
            fs = make_system(name, SwiftCluster.rack_scale())
            populate_flat(fs, n)
            fs.pump()
            fs.drop_caches()
            costs.append(timed(fs, lambda: fs.move("/dir", "/dir2")))
        return costs

    def test_swift_move_linear(self):
        small, big = self.two_scale_move("swift")
        assert grows_linearly(small, big)

    def test_h2_move_flat(self):
        small, big = self.two_scale_move("h2cloud")
        assert roughly_flat(small, big)

    def test_dp_move_flat(self):
        small, big = self.two_scale_move("dynamic-partition")
        assert roughly_flat(small, big)

    def test_h2_beats_swift_at_scale(self):
        _, swift_big = self.two_scale_move("swift")
        _, h2_big = self.two_scale_move("h2cloud")
        assert h2_big < swift_big / 5


class TestRmdirShapes:
    """Fig 8: same story as MOVE."""

    def two_scale_rmdir(self, name, small=20, big=200):
        costs = []
        for n in (small, big):
            fs = make_system(name, SwiftCluster.rack_scale())
            populate_flat(fs, n)
            fs.pump()
            fs.drop_caches()
            costs.append(timed(fs, lambda: fs.rmdir("/dir")))
        return costs

    def test_swift_rmdir_linear(self):
        small, big = self.two_scale_rmdir("swift")
        assert grows_linearly(small, big)

    def test_h2_rmdir_flat(self):
        small, big = self.two_scale_rmdir("h2cloud")
        assert roughly_flat(small, big)

    def test_single_index_rmdir_flat(self):
        small, big = self.two_scale_rmdir("single-index")
        assert roughly_flat(small, big)


class TestListShapes:
    """Figs 9-10: LIST depends on m; Swift pays the log N tax serially."""

    def list_cost(self, name, m):
        fs = make_system(name, SwiftCluster.rack_scale())
        populate_flat(fs, m)
        fs.pump()
        fs.drop_caches()
        return timed(fs, lambda: fs.listdir("/dir", detailed=True))

    def test_h2_list_linear_in_m(self):
        # Fixed costs (resolution + ring GET) dominate tiny listings, so
        # compare scales where the per-child HEAD batches dominate.
        assert self.list_cost("h2cloud", 1000) > 4 * self.list_cost("h2cloud", 50)

    def test_swift_list_linear_in_m(self):
        assert grows_linearly(self.list_cost("swift", 20), self.list_cost("swift", 200))

    def test_swift_slower_than_h2(self):
        assert self.list_cost("swift", 200) > 2 * self.list_cost("h2cloud", 200)

    def test_h2_names_only_list_flat_in_m(self):
        """Paper: names-only LIST is O(1) -- one NameRing GET."""
        def names_cost(m):
            fs = make_system("h2cloud", SwiftCluster.rack_scale())
            populate_flat(fs, m)
            fs.pump()
            fs.drop_caches()
            return timed(fs, lambda: fs.listdir("/dir"))

        assert roughly_flat(names_cost(20), names_cost(400), tolerance=3.0)

    def test_consistent_hash_list_scales_with_N_not_m(self):
        """Plain CH scans everything: a big *sibling* tree slows LIST."""
        def ch_cost(extra):
            fs = make_system("consistent-hash", SwiftCluster.rack_scale())
            populate_flat(fs, 10)
            if extra:
                populate_flat(fs, extra, prefix="/other")
            fs.drop_caches()
            return timed(fs, lambda: fs.listdir("/dir", detailed=True))

        assert ch_cost(3000) > 3 * ch_cost(0)

    def test_swift_list_insensitive_to_N(self):
        """...whereas Swift's DB only pays log N for the same siblings."""
        def swift_cost(extra):
            fs = make_system("swift", SwiftCluster.rack_scale())
            populate_flat(fs, 10)
            if extra:
                populate_flat(fs, extra, prefix="/other")
            fs.drop_caches()
            return timed(fs, lambda: fs.listdir("/dir", detailed=True))

        assert swift_cost(800) < 2 * swift_cost(0)


class TestCopyShapes:
    """Fig 11: COPY is O(n) for everyone -- the three curves overlap."""

    def copy_cost(self, name, n):
        fs = make_system(name, SwiftCluster.rack_scale())
        populate_flat(fs, n)
        fs.pump()
        fs.drop_caches()
        return timed(fs, lambda: fs.copy("/dir", "/copy"))

    @pytest.mark.parametrize("name", ["h2cloud", "swift", "dynamic-partition"])
    def test_copy_linear(self, name):
        assert grows_linearly(self.copy_cost(name, 20), self.copy_cost(name, 200))

    def test_three_systems_within_an_order_of_magnitude(self):
        costs = [
            self.copy_cost(name, 100)
            for name in ("h2cloud", "swift", "dynamic-partition")
        ]
        assert max(costs) < 10 * min(costs)


class TestAccessShapes:
    """Fig 13: Swift flat ~10 ms; H2 grows with d; DP roughly flat."""

    def access_cost(self, name, depth):
        fs = make_system(name, SwiftCluster.rack_scale())
        path = ""
        for i in range(depth):
            path += f"/d{i}"
            fs.mkdir(path)
        fs.write(path + "/leaf", b"x")
        fs.pump()
        fs.drop_caches()
        return timed(fs, lambda: fs.stat(path + "/leaf"))

    def test_swift_access_flat_near_10ms(self):
        shallow = self.access_cost("swift", 1)
        deep = self.access_cost("swift", 15)
        assert roughly_flat(shallow, deep, tolerance=2.0)
        assert 4_000 < shallow < 25_000  # ~10 ms, the paper's number

    def test_h2_access_linear_in_depth(self):
        shallow = self.access_cost("h2cloud", 1)
        deep = self.access_cost("h2cloud", 15)
        assert deep > shallow * 4

    def test_h2_average_depth_access_tens_of_ms(self):
        """Paper: ~61 ms at the workload-average depth of 4."""
        cost = self.access_cost("h2cloud", 3)  # leaf at d=4
        assert 25_000 < cost < 120_000

    def test_dp_access_roughly_flat(self):
        shallow = self.access_cost("dynamic-partition", 1)
        deep = self.access_cost("dynamic-partition", 15)
        assert roughly_flat(shallow, deep, tolerance=4.0)

    def test_cumulus_access_scales_with_N(self):
        def cost(n):
            fs = make_system("compressed-snapshot", SwiftCluster.rack_scale())
            populate_flat(fs, n)
            return timed(fs, lambda: fs.read("/dir/f00001"))

        assert cost(1500) > 4 * cost(30)


class TestMkdirShapes:
    """Fig 12: MKDIR ~constant everywhere; Swift fastest; H2 & Dropbox
    in the 150-200 ms band."""

    def mkdir_cost(self, name, preload=50):
        fs = make_system(name, SwiftCluster.rack_scale())
        fs.makedirs("/a/b/c")
        for i in range(preload):
            fs.write(f"/a/b/c/f{i}", b"x")
        fs.pump()
        fs.drop_caches()
        return timed(fs, lambda: fs.mkdir("/a/b/c/new"))

    def test_swift_fastest(self):
        swift = self.mkdir_cost("swift")
        h2 = self.mkdir_cost("h2cloud")
        dropbox = self.mkdir_cost("dropbox")
        assert swift < h2 < 350_000
        assert swift < dropbox

    def test_h2_mkdir_in_paper_band(self):
        cost = self.mkdir_cost("h2cloud")
        assert 60_000 < cost < 300_000  # paper band 150-200 ms, wide slack

    def test_dropbox_mkdir_in_paper_band(self):
        cost = self.mkdir_cost("dropbox")
        assert 120_000 < cost < 350_000

    def test_mkdir_flat_in_directory_size(self):
        small = self.mkdir_cost("h2cloud", preload=5)
        big = self.mkdir_cost("h2cloud", preload=300)
        assert roughly_flat(small, big, tolerance=3.0)


class TestCASShapes:
    def test_cas_mutation_scales_with_N(self):
        """Table 1: CAS MKDIR is O(N) -- the index rewrite."""
        def cost(n):
            fs = make_system("cas", SwiftCluster.rack_scale())
            populate_flat(fs, n)
            return timed(fs, lambda: fs.mkdir("/newdir"))

        assert cost(3000) > 2.5 * cost(50)

    def test_cas_access_by_hash_constant(self):
        fs = make_system("cas", SwiftCluster.rack_scale())
        populate_flat(fs, 100)
        digest = fs.hash_of("/dir/f00050")
        fs2 = make_system("cas", SwiftCluster.rack_scale())
        populate_flat(fs2, 5)
        digest2 = fs2.hash_of("/dir/f00001")
        _, big = fs.clock.measure(lambda: fs.read_by_hash(digest))
        _, small = fs2.clock.measure(lambda: fs2.read_by_hash(digest2))
        assert roughly_flat(small, big, tolerance=2.0)
