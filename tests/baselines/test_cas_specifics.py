"""CAS-baseline specifics: deduplication, Merkle structure, hash access."""

import pytest

from repro.baselines import CASFS
from repro.simcloud import PathNotFound, SwiftCluster


@pytest.fixture
def fs() -> CASFS:
    return CASFS(SwiftCluster.fast(), account="alice")


class TestDeduplication:
    def test_identical_content_stored_once(self, fs):
        fs.write("/a", b"same bytes")
        blobs_before = sum(1 for n in fs.store.names() if n.startswith("cas:b:"))
        fs.write("/b", b"same bytes")
        blobs_after = sum(1 for n in fs.store.names() if n.startswith("cas:b:"))
        assert blobs_after == blobs_before

    def test_copy_moves_no_file_bytes(self, fs):
        fs.mkdir("/d")
        fs.write("/d/big", b"z" * 50_000)
        bytes_before = fs.store.ledger.bytes_in
        fs.copy("/d", "/d2")
        added = fs.store.ledger.bytes_in - bytes_before
        assert added < 10_000  # pointer blocks + index, not the 50 KB blob
        assert fs.read("/d2/big") == b"z" * 50_000

    def test_same_hash_same_path_content(self, fs):
        fs.write("/x", b"payload")
        fs.write("/y", b"payload")
        assert fs.hash_of("/x") == fs.hash_of("/y")


class TestHashAccess:
    def test_read_by_hash(self, fs):
        fs.write("/f", b"content")
        digest = fs.hash_of("/f")
        assert fs.read_by_hash(digest) == b"content"

    def test_read_by_unknown_hash(self, fs):
        with pytest.raises(PathNotFound):
            fs.read_by_hash("0" * 40)

    def test_hash_survives_move(self, fs):
        """Content addressing: MOVE cannot change a file's address."""
        fs.mkdir("/d")
        fs.write("/d/f", b"stable")
        digest = fs.hash_of("/d/f")
        fs.move("/d", "/e")
        assert fs.hash_of("/e/f") == digest
        assert fs.read_by_hash(digest) == b"stable"


class TestMerkleStructure:
    def test_mutation_changes_root(self, fs):
        root_before = fs._root_digest()
        fs.mkdir("/d")
        assert fs._root_digest() != root_before

    def test_equal_trees_have_equal_roots(self):
        a = CASFS(SwiftCluster.fast(), account="alice")
        cluster = SwiftCluster.fast()
        b = CASFS(cluster, account="bob")
        for fs in (a, b):
            fs.makedirs("/x/y")
            fs.write("/x/f", b"data")
        assert a._root_digest() == b._root_digest()

    def test_sibling_mutation_preserves_unrelated_subtree_blocks(self, fs):
        fs.makedirs("/stable/deep")
        fs.write("/stable/deep/f", b"1")
        stable_digest = fs._walk("/stable")[1]
        fs.mkdir("/other")
        # /stable's block is untouched: structural sharing.
        assert fs._walk("/stable")[1] == stable_digest
