"""Cumulus-baseline specifics: log semantics, segments, compaction."""

import pytest

from repro.baselines import CompressedSnapshotFS
from repro.baselines.compressed_snapshot import LOG_CHUNK_ENTRIES, LogEntry
from repro.simcloud import SwiftCluster


@pytest.fixture
def fs() -> CompressedSnapshotFS:
    return CompressedSnapshotFS(SwiftCluster.fast(), account="alice")


class TestLogEntry:
    def test_line_round_trip(self):
        entry = LogEntry("file", "/weird|name\nhere", 3, 128, 42)
        assert LogEntry.from_line(entry.to_line()) == entry


class TestLogSemantics:
    def test_later_entry_supersedes(self, fs):
        fs.write("/f", b"old")
        fs.write("/f", b"newer")
        assert fs.read("/f") == b"newer"

    def test_subtree_tombstone_hides_then_resurrects(self, fs):
        fs.mkdir("/d")
        fs.write("/d/f", b"1")
        fs.rmdir("/d")
        assert not fs.exists("/d/f")
        fs.mkdir("/d")
        fs.write("/d/f", b"2")
        assert fs.read("/d/f") == b"2"

    def test_move_is_metadata_only(self, fs):
        """MOVE re-points log entries at the same segment slices."""
        fs.mkdir("/d")
        fs.write("/d/f", b"payload")
        bytes_before = fs.store.ledger.bytes_in
        fs.move("/d", "/d2")
        appended = fs.store.ledger.bytes_in - bytes_before
        assert appended < 4096  # log lines only, no 'payload' re-upload
        assert fs.read("/d2/f") == b"payload"

    def test_log_rolls_into_chunks(self, fs):
        for i in range(LOG_CHUNK_ENTRIES + 10):
            fs.write(f"/f{i:05d}", b"")
        assert fs._log_chunks == 2


class TestSegments:
    def test_small_files_pack_into_one_segment(self, fs):
        for i in range(10):
            fs.write(f"/f{i}", b"x" * 100)
        seg_keys = [n for n in fs.store.names() if ":seg:" in n]
        assert len(seg_keys) == 1

    def test_large_writes_roll_segments(self, fs):
        fs.write("/a", b"x" * 3_000_000)
        fs.write("/b", b"y" * 3_000_000)
        seg_keys = [n for n in fs.store.names() if ":seg:" in n]
        assert len(seg_keys) == 2

    def test_reads_slice_correctly(self, fs):
        blobs = {f"/f{i}": bytes([i]) * (i + 1) for i in range(8)}
        for path, blob in blobs.items():
            fs.write(path, blob)
        for path, blob in blobs.items():
            assert fs.read(path) == blob


class TestCompaction:
    def test_compaction_preserves_tree(self, fs):
        fs.makedirs("/a/b")
        fs.write("/a/f", b"live")
        fs.write("/dead", b"x")
        fs.delete("/dead")
        fs.write("/a/f", b"live2")  # superseded entry
        from repro.testing import snapshot_of

        before = snapshot_of(fs)
        fs.compact()
        assert snapshot_of(fs) == before
        assert fs.read("/a/f") == b"live2"

    def test_compaction_shrinks_log(self, fs):
        for i in range(LOG_CHUNK_ENTRIES * 2):
            fs.write("/same", bytes([i % 251]))
        chunks_before, chunks_after = fs.compact()
        assert chunks_before > chunks_after
        assert chunks_after == 1

    def test_compaction_reclaims_segment_bytes(self, fs):
        fs.write("/big", b"x" * 100_000)
        fs.write("/big", b"y" * 10)  # 100 KB now dead in the segment
        fs.compact()
        _, nbytes = fs.store.census(f"cumulus:alice:seg:")
        assert nbytes < 1_000

    def test_scans_cheaper_after_compaction(self):
        fs = CompressedSnapshotFS(SwiftCluster.rack_scale(), account="alice")
        for i in range(300):
            fs.write("/churn", bytes([i % 251]))
        _, before = fs.clock.measure(lambda: fs.exists("/churn"))
        fs.compact()
        _, after = fs.clock.measure(lambda: fs.exists("/churn"))
        assert after < before / 2
