"""Unit tests for the metadata index-server substrate."""

import pytest

from repro.baselines import DirTable, EntryRec, IndexProfile, IndexServer
from repro.simcloud import ServiceUnavailable, SimClock


def make_server(server_id=0, profile=None, clock=None) -> IndexServer:
    return IndexServer(
        server_id, clock or SimClock(), profile or IndexProfile.zero()
    )


def rec(name: str, kind: str = "file", target: str = "t") -> EntryRec:
    return EntryRec(name=name, kind=kind, target=target)


class TestIndexServer:
    def test_create_lookup_remove(self):
        server = make_server()
        server.create_dir("d1")
        server.upsert("d1", rec("a"))
        assert server.lookup("d1", "a").target == "t"
        server.remove("d1", "a")
        assert server.lookup("d1", "a") is None

    def test_list_entries_sorted(self):
        server = make_server()
        server.create_dir("d1")
        for name in ["z", "a", "m"]:
            server.upsert("d1", rec(name))
        assert [e.name for e in server.list_entries("d1")] == ["a", "m", "z"]

    def test_costs_charged(self):
        clock = SimClock()
        server = make_server(profile=IndexProfile(100, 0, 10, 50), clock=clock)
        server.create_dir("d1")  # commit: 50
        server.upsert("d1", rec("a"))  # op 10 + commit 50
        server.lookup("d1", "a")  # op 10
        assert clock.now_us == 50 + 60 + 10

    def test_load_counter(self):
        server = make_server()
        server.create_dir("d1")
        server.upsert("d1", rec("a"))
        server.lookup("d1", "a")
        assert server.load == 2

    def test_unavailable_rejects_everything(self):
        server = make_server()
        server.create_dir("d1")
        server.available = False
        with pytest.raises(ServiceUnavailable):
            server.lookup("d1", "a")
        with pytest.raises(ServiceUnavailable):
            server.upsert("d1", rec("a"))

    def test_export_import_moves_table(self):
        a, b = make_server(0), make_server(1)
        a.create_dir("d1")
        a.upsert("d1", rec("x"))
        table = a.export_dir("d1")
        b.import_dir("d1", table)
        assert a.dir_count == 0
        assert b.lookup("d1", "x") is not None


class TestDirTable:
    def make(self, n=3):
        clock = SimClock()
        servers = [make_server(i, clock=clock) for i in range(n)]
        return DirTable(servers, clock), servers, clock

    def test_requires_servers(self):
        with pytest.raises(ValueError):
            DirTable([], SimClock())

    def test_placement(self):
        table, servers, _ = self.make()
        table.place("d1", 2)
        assert table.server_of("d1") is servers[2]
        assert table.placement_of("d1") == 2

    def test_place_unknown_server(self):
        table, _, _ = self.make()
        with pytest.raises(KeyError):
            table.place("d1", 99)

    def test_hop_charges_only_on_server_change(self):
        table, _, clock = self.make()
        profile = IndexProfile(0, hop_rtt_us=100, op_us=0, commit_us=0)
        table.place("a", 0)
        table.place("b", 0)
        table.place("c", 1)
        table.begin_request(profile)
        table.hop_to("a", profile)  # first touch: no hop charge
        t0 = clock.now_us
        table.hop_to("b", profile)  # same server: free
        assert clock.now_us == t0
        table.hop_to("c", profile)  # server change: one RTT
        assert clock.now_us == t0 + 100

    def test_begin_request_charges_service(self):
        table, _, clock = self.make()
        profile = IndexProfile(request_service_us=77, hop_rtt_us=0, op_us=0, commit_us=0)
        table.begin_request(profile)
        assert clock.now_us == 77

    def test_dirs_by_server(self):
        table, _, _ = self.make()
        table.place("a", 0)
        table.place("b", 0)
        table.place("c", 2)
        assert table.dirs_by_server() == {0: 2, 1: 0, 2: 1}

    def test_forget(self):
        table, _, _ = self.make()
        table.place("a", 0)
        table.forget("a")
        with pytest.raises(KeyError):
            table.placement_of("a")

    def test_subtree_ids(self):
        table, servers, _ = self.make(1)
        children = {"root": ["a", "b"], "a": ["a1"], "b": [], "a1": []}
        ids = table.subtree_ids("root", lambda d: children[d])
        assert set(ids) == {"root", "a", "b", "a1"}
