"""Swift-baseline specifics: DB/object consistency, delimiter listing."""

import pytest

from repro.baselines import SwiftFS
from repro.simcloud import SwiftCluster


@pytest.fixture
def fs() -> SwiftFS:
    return SwiftFS(SwiftCluster.fast(), account="alice")


class TestDBConsistency:
    def test_rows_track_objects_through_churn(self, fs):
        fs.makedirs("/a/b")
        fs.write("/a/f", b"1")
        fs.write("/a/b/g", b"2")
        fs.copy("/a", "/c")
        fs.move("/a/b", "/top")
        fs.delete("/c/f")
        fs.rmdir("/c")
        fs.check_consistency()

    def test_row_count_matches_tree(self, fs):
        fs.makedirs("/x/y")
        fs.write("/x/f1", b"")
        fs.write("/x/y/f2", b"")
        # rows: /x/, /x/y/, /x/f1, /x/y/f2
        assert len(fs.db) == 4

    def test_overwrite_keeps_single_row(self, fs):
        fs.write("/f", b"1")
        fs.write("/f", b"22")
        assert len(fs.db) == 1
        assert fs.db.get("/f")["size"] == 2


class TestDelimiterListing:
    def test_detailed_listing_needs_no_object_heads(self, fs):
        fs.mkdir("/d")
        for i in range(10):
            fs.write(f"/d/f{i}", b"xyz")
        heads_before = fs.store.ledger.heads
        entries = fs.listdir("/d", detailed=True)
        # Sizes come from DB rows, not HEADs (Swift's whole point): the
        # only HEADs are the two constant existence probes on /d itself.
        assert all(e.size == 3 for e in entries)
        assert fs.store.ledger.heads - heads_before <= 2

    def test_listing_collapses_subdirs(self, fs):
        fs.makedirs("/d/sub")
        for i in range(5):
            fs.write(f"/d/sub/f{i}", b"")
        fs.write("/d/top", b"")
        names = fs.listdir("/d")
        assert names == ["sub", "top"]

    def test_db_read_counter_scales_with_children(self, fs):
        fs.mkdir("/d")
        for i in range(50):
            fs.write(f"/d/f{i:03d}", b"")
        before = fs.store.ledger.db_reads
        fs.listdir("/d")
        queries = fs.store.ledger.db_reads - before
        assert queries >= 50  # one marker query per child


class TestSwiftMoveInternals:
    def test_move_copies_and_deletes_every_member(self, fs):
        fs.mkdir("/d")
        for i in range(7):
            fs.write(f"/d/f{i}", b"x")
        ledger = fs.store.ledger
        copies_before, deletes_before = ledger.copies, ledger.deletes
        fs.move("/d", "/d2")
        assert ledger.copies - copies_before >= 7
        assert ledger.deletes - deletes_before >= 7

    def test_h2_move_touches_no_file_objects(self):
        """Contrast test: same workload on H2Cloud copies nothing."""
        from repro.core import H2CloudFS

        h2 = H2CloudFS(SwiftCluster.fast(), account="alice")
        h2.mkdir("/d")
        for i in range(7):
            h2.write(f"/d/f{i}", b"x")
        copies_before = h2.store.ledger.copies
        h2.move("/d", "/d2")
        assert h2.store.ledger.copies == copies_before
