"""Property test: every Table-1 system is logically a filesystem.

The same random schedules that validated H2Cloud run against each
baseline; trees and per-op error outcomes must match the dict oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import make_system
from repro.simcloud import FilesystemError, SwiftCluster
from repro.testing import ModelFS, snapshot_of

SYSTEMS = [
    "compressed-snapshot",
    "cas",
    "consistent-hash",
    "swift",
    "single-index",
    "static-partition",
    "dynamic-partition",
    "shared-disk-dp",
]

_PATHS = st.sampled_from(["/a", "/b", "/a/x", "/a/y", "/b/x", "/a/x/deep"])
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("mkdir"), _PATHS),
        st.tuples(st.just("write"), _PATHS, st.binary(max_size=12)),
        st.tuples(st.just("delete"), _PATHS),
        st.tuples(st.just("rmdir"), _PATHS),
        st.tuples(st.just("move"), _PATHS, _PATHS),
        st.tuples(st.just("copy"), _PATHS, _PATHS),
    ),
    max_size=20,
)


def apply(fs, op):
    try:
        kind = op[0]
        if kind == "mkdir":
            fs.mkdir(op[1])
        elif kind == "write":
            fs.write(op[1], op[2])
        elif kind == "delete":
            fs.delete(op[1])
        elif kind == "rmdir":
            fs.rmdir(op[1])
        elif kind == "move":
            fs.move(op[1], op[2])
        elif kind == "copy":
            fs.copy(op[1], op[2])
        return True, None
    except FilesystemError as exc:
        return False, type(exc).__name__


@pytest.mark.parametrize("system", SYSTEMS)
@given(ops=_OPS)
@settings(max_examples=25, deadline=None)
def test_system_matches_model(system, ops):
    fs = make_system(system, SwiftCluster.fast())
    model = ModelFS()
    for op in ops:
        got = apply(fs, op)
        want = apply(model, op)
        assert got == want, f"{system} diverged on {op}: {got} != {want}"
    assert snapshot_of(fs) == model.snapshot(), f"{system} tree mismatch"


@pytest.mark.parametrize("system", SYSTEMS)
def test_read_contents_match_after_churn(system):
    """Deterministic deeper scenario with overwrites and re-creation."""
    fs = make_system(system, SwiftCluster.fast())
    model = ModelFS()
    script = [
        ("mkdir", "/docs"),
        ("write", "/docs/a", b"v1"),
        ("write", "/docs/a", b"v2"),
        ("mkdir", "/docs/sub"),
        ("write", "/docs/sub/b", b"bb"),
        ("copy", "/docs", "/backup"),
        ("delete", "/docs/a"),
        ("write", "/docs/a", b"v3"),
        ("move", "/docs/sub", "/top-sub"),
        ("rmdir", "/backup"),
        ("mkdir", "/backup"),
        ("write", "/backup/fresh", b"new"),
    ]
    for op in script:
        assert apply(fs, op) == apply(model, op), f"{system}: {op}"
    assert snapshot_of(fs) == model.snapshot()
    assert fs.read("/docs/a") == b"v3"
    assert fs.read("/top-sub/b") == b"bb"
