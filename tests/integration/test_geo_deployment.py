"""Geo-distributed deployments (paper §4.1).

When the object cloud spans data centers, every primitive pays an
inter-DC RTT.  The complexity relationships of Table 1 are latency-
scale-invariant -- H2's O(d) walks amplify the higher RTT while
Swift's O(1) access pays it once -- which these tests pin down.
"""

import pytest

from repro.baselines import SwiftFS
from repro.core import H2CloudFS
from repro.simcloud import ClusterConfig, LatencyModel, SwiftCluster
from repro.workloads import chain_directories


def geo_cluster() -> SwiftCluster:
    return SwiftCluster(ClusterConfig(), LatencyModel.geo_scale())


class TestGeoPreset:
    def test_geo_rtt_dominates_rack_rtt(self):
        geo, rack = LatencyModel.geo_scale(), LatencyModel.rack_scale()
        assert geo.lan_rtt_us > 10 * rack.lan_rtt_us

    def test_everything_still_works(self):
        fs = H2CloudFS(geo_cluster(), account="alice")
        fs.makedirs("/a/b")
        fs.write("/a/b/f", b"cross-dc")
        fs.move("/a/b", "/top")
        assert fs.read("/top/f") == b"cross-dc"
        assert fs.gc().swept >= 0

    def test_ops_cost_more_than_on_the_rack(self):
        def mkdir_cost(cluster):
            fs = H2CloudFS(cluster, account="alice")
            _, cost = fs.clock.measure(lambda: fs.mkdir("/d"))
            return cost

        assert mkdir_cost(geo_cluster()) > 2 * mkdir_cost(SwiftCluster.rack_scale())


class TestShapesSurviveGeo:
    def test_h2_depth_slope_amplified(self):
        """O(d) lookups pay d inter-DC RTTs: the Fig 13 slope steepens
        in absolute terms but stays linear."""
        def access(cluster, d):
            fs = H2CloudFS(cluster, account="alice")
            for path in chain_directories(d - 1):
                fs.mkdir(path)
            parent = chain_directories(d - 1)[-1] if d > 1 else ""
            fs.write(parent + "/leaf", b"x")
            fs.pump()
            fs.drop_caches()
            _, cost = fs.clock.measure(lambda: fs.stat(parent + "/leaf"))
            return cost

        geo_step = access(geo_cluster(), 8) - access(geo_cluster(), 4)
        rack_step = access(SwiftCluster.rack_scale(), 8) - access(
            SwiftCluster.rack_scale(), 4
        )
        # Each level now adds an inter-DC hop on top of the disk time:
        # the per-level step is ~2.5x the rack's (15 ms RTT + ~9 ms disk
        # vs ~9 ms disk-dominated).
        assert geo_step > 2 * rack_step

    def test_swift_flat_access_survives_geo(self):
        fs = SwiftFS(geo_cluster(), account="alice")
        fs.makedirs("/a/b/c/d")
        fs.write("/a/b/c/d/leaf", b"x")
        fs.write("/top", b"y")
        _, deep = fs.clock.measure(lambda: fs.stat("/a/b/c/d/leaf"))
        _, shallow = fs.clock.measure(lambda: fs.stat("/top"))
        assert deep < shallow * 2  # still one hash + one GET

    def test_h2_move_still_flat_under_geo(self):
        def move_cost(n):
            fs = H2CloudFS(geo_cluster(), account="alice")
            fs.mkdir("/dir")
            fs.write_many("/dir", [(f"f{i}", b"x") for i in range(n)])
            fs.pump()
            fs.drop_caches()
            _, cost = fs.clock.measure(lambda: fs.move("/dir", "/dir2"))
            return cost

        assert move_cost(200) < 2 * move_cost(10)
