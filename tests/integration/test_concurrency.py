"""Concurrent-update semantics across middlewares (paper §3.3.3).

The asynchronous protocol resolves conflicting NameRing updates by
per-child last-writer-wins; these tests pin down the user-visible
outcomes: later timestamps win, fake deletion avoids lost-update
races, and nothing resurrects after compaction.

Two layers:

* the fixed-interleaving classes below pin exact winners for the
  canonical two-node races (one hand-picked order each);
* ``TestScheduledInterleavings`` feeds the same scenario families
  through the DST scheduler (``repro.dst``), which re-runs each race
  under many explorer-chosen interleavings of client ops, merger
  steps, gossip deliveries, cache drops and GC passes -- with the
  model-differential oracle and all post-quiesce invariants asserting
  the outcome for every seed instead of one scripted order.
"""

import pytest

from repro.core import H2CloudFS, H2Config
from repro.dst import ClientOp, DstConfig, OpGenerator, payload_for
from repro.dst.explorer import interleave_sessions
from repro.dst.runner import run_schedule
from repro.simcloud import MessageLoss, SwiftCluster
from repro.testing import snapshot_of


def two_node_fs(auto_merge: bool = True, loss: float = 0.0) -> H2CloudFS:
    return H2CloudFS(
        SwiftCluster.fast(),
        account="alice",
        middlewares=2,
        config=H2Config(auto_merge=auto_merge),
        message_loss=MessageLoss(loss, seed=21) if loss else None,
    )


class TestLastWriterWins:
    def test_concurrent_writes_latest_timestamp_wins(self):
        fs = two_node_fs(auto_merge=False)
        mw1, mw2 = fs.middlewares
        mw1.write_file("alice", "/f", b"from-node-1")
        mw2.write_file("alice", "/f", b"from-node-2")  # later timestamp
        fs.pump()
        assert fs.read("/f") == b"from-node-2"

    def test_delete_vs_recreate_ordering(self):
        fs = two_node_fs(auto_merge=False)
        mw1, mw2 = fs.middlewares
        mw1.write_file("alice", "/f", b"v1")
        fs.pump()
        mw1.delete_file("alice", "/f")  # ts T1
        mw2.write_file("alice", "/f", b"v2")  # ts T2 > T1: recreate wins
        fs.pump()
        assert fs.read("/f") == b"v2"

    def test_concurrent_mkdir_same_name(self):
        """Both nodes mkdir '/d' before merging: LWW keeps one namespace
        and the tree stays consistent (one directory, usable)."""
        fs = two_node_fs(auto_merge=False)
        mw1, mw2 = fs.middlewares
        mw1.mkdir("alice", "/d")
        mw2.mkdir("alice", "/d")
        fs.pump()
        assert fs.listdir("/") == ["d"]
        fs.write("/d/f", b"x")
        fs.pump()
        assert fs.read("/d/f") == b"x"

    def test_rename_vs_delete_race(self):
        fs = two_node_fs(auto_merge=False)
        mw1, mw2 = fs.middlewares
        mw1.write_file("alice", "/f", b"data")
        fs.pump()
        mw1.move("alice", "/f", "/renamed")  # tombstone(/f)+insert(/renamed)
        mw2.delete_file("alice", "/f")  # later tombstone on /f
        fs.pump()
        # /f is gone either way; the rename's insert is untouched.
        assert not fs.exists("/f")
        assert fs.read("/renamed") == b"data"

    def test_views_identical_after_conflicts(self):
        fs = two_node_fs(auto_merge=False, loss=0.5)
        mw1, mw2 = fs.middlewares
        for i in range(8):
            (mw1 if i % 2 else mw2).write_file("alice", f"/f{i % 3}", bytes([i]))
        fs.pump()
        views = []
        for mw in fs.middlewares:
            ns = mw.lookup.resolve_dir("alice", "/")
            views.append(mw.load_ring(ns).ring.live_names())
        assert views[0] == views[1]


class TestNoResurrection:
    def test_compaction_cannot_resurrect_deleted_children(self):
        """The in-use compaction guard: stale gossip must not bring a
        compacted-away child back to life."""
        fs = two_node_fs(auto_merge=True)
        mw1, mw2 = fs.middlewares
        mw1.write_file("alice", "/doomed", b"x")
        fs.pump()
        mw1.delete_file("alice", "/doomed")
        fs.pump()
        # Use the ring on both nodes (triggers compaction when safe).
        mw1.list_dir("alice", "/")
        mw2.list_dir("alice", "/")
        fs.pump()
        for _ in range(3):
            fs.network.converge()
            assert not fs.exists("/doomed")

    def test_gc_then_continue_operating(self):
        fs = two_node_fs()
        fs.write("/keep", b"1")
        fs.write("/drop", b"2")
        fs.delete("/drop")
        fs.gc()
        fs.write("/after-gc", b"3")
        fs.pump()
        assert snapshot_of(fs) == {"/keep": b"1", "/after-gc": b"3"}


class TestInterleavedWorkloads:
    def test_round_robin_transparency(self):
        """Clients see one filesystem regardless of which middleware
        serves each call."""
        fs = two_node_fs()
        fs.mkdir("/a")  # mw1
        fs.write("/a/f", b"1")  # mw2
        fs.pump()
        assert fs.read("/a/f") == b"1"  # whichever node serves
        fs.move("/a", "/b")
        fs.pump()
        assert fs.read("/b/f") == b"1"

    def test_three_middlewares_heavy_interleave(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice", middlewares=3)
        for i in range(30):
            fs.mkdir(f"/d{i:02d}")
            fs.write(f"/d{i:02d}/f", bytes([i]))
        fs.pump()
        dirs, files = fs.tree_size()
        assert (dirs, files) == (30, 30)
        for i in range(0, 30, 2):
            fs.rmdir(f"/d{i:02d}")
        fs.pump()
        dirs, files = fs.tree_size()
        assert (dirs, files) == (15, 15)


SEEDS = range(6)  # every scenario runs under >=5 distinct interleavings


def run_race(ops_by_session, seed, **overrides):
    """One scenario under one explorer-chosen interleaving.

    The runner mirrors every successful op into a ModelFS and checks
    model equivalence, view convergence, fsck, GC accounting and
    replica agreement after quiesce -- so a bare ``result.ok`` asserts
    far more than the fixed-order tests above can.
    """
    knobs = {"middlewares": 2, "check_model": True, **overrides}
    cfg = DstConfig(sessions=len(ops_by_session), **knobs)
    schedule = interleave_sessions(ops_by_session, seed, cfg)
    result = run_schedule(schedule, keep_fs=True)
    assert result.ok, (seed, [str(v) for v in result.violations])
    return result, schedule


class TestScheduledInterleavings:
    """The race families above, re-run through the DST scheduler."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_concurrent_shared_writes_lww(self, seed):
        a = ClientOp("write", "/shared/k0", tag=1)
        b = ClientOp("write", "/shared/k0", tag=2)
        result, schedule = run_race([[a], [b]], seed)
        # Timestamps are minted in schedule order, so whichever write
        # the explorer scheduled later must own the file everywhere.
        later = [s.op for s in schedule.steps if s.kind == "op"][-1]
        assert result.fs.read("/shared/k0") == payload_for(later)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_delete_vs_recreate(self, seed):
        run_race(
            [
                [ClientOp("write", "/shared/k1", tag=1), ClientOp("delete", "/shared/k1")],
                [ClientOp("write", "/shared/k1", tag=2)],
            ],
            seed,
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rename_vs_delete(self, seed):
        result, schedule = run_race(
            [
                [
                    ClientOp("write", "/shared/k2", tag=3),
                    ClientOp("move", "/shared/k2", dest="/shared/moved"),
                ],
                [ClientOp("delete", "/shared/k2")],
            ],
            seed,
        )
        # If the move won the race, its insert must survive the
        # concurrent delete of the *source* name.
        ops = [s for s in schedule.steps if s.kind == "op"]
        move_outcome = result.outcomes[
            schedule.steps.index(next(s for s in ops if s.op.kind == "move"))
        ]
        if move_outcome == "ok":
            assert result.fs.read("/shared/moved") == payload_for(
                ClientOp("write", "/shared/k2", tag=3)
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_concurrent_mkdir_same_name(self, seed):
        """Both sessions mkdir '/dup', then write under it concurrently.

        Paper semantics: the name conflict resolves by LWW, so exactly
        one '/dup' *namespace* survives; a child written through the
        losing middleware before convergence lands in the losing
        namespace and is orphaned (then reclaimed by GC), not grafted
        into the winner.  An all-or-nothing model cannot express that,
        so this scenario runs without V1 and asserts the structural
        invariants instead: views converge, fsck is clean, no garbage
        outlives GC, and the surviving directory stays usable.
        """
        result, _ = run_race(
            [
                [ClientOp("mkdir", "/dup"), ClientOp("write", "/dup/from-s0", tag=1)],
                [ClientOp("mkdir", "/dup"), ClientOp("write", "/dup/from-s1", tag=2)],
            ],
            seed,
            check_model=False,
        )
        # LWW keeps exactly one /dup namespace and it stays usable.
        assert result.fs.exists("/dup")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_workload_stays_consistent(self, seed):
        """Three sessions of generated traffic (own subtrees + shared
        pool + root mints) under an explored interleaving: the full
        invariant battery must hold at quiesce."""
        streams = OpGenerator(seed).streams(3, 15)
        run_race(streams, seed, middlewares=3)
