"""Failure injection against the full H2Cloud stack."""

import pytest

from repro.core import H2CloudFS
from repro.simcloud import QuorumError, SwiftCluster


class TestNodeFailures:
    def test_operations_continue_with_one_node_down(self):
        cluster = SwiftCluster.fast()
        fs = H2CloudFS(cluster, account="alice")
        fs.makedirs("/a/b")
        fs.write("/a/b/f", b"before")
        victim = next(iter(cluster.nodes))
        cluster.nodes[victim].crash()
        # Every operation class still works on 7/8 nodes.
        fs.write("/a/b/g", b"during")
        fs.mkdir("/a/c")
        fs.move("/a/b/g", "/a/c/g")
        assert fs.read("/a/c/g") == b"during"
        assert sorted(fs.listdir("/a")) == ["b", "c"]
        fs.rmdir("/a/c")
        cluster.nodes[victim].recover()
        assert fs.read("/a/b/f") == b"before"

    def test_recovered_node_heals_via_repair(self):
        cluster = SwiftCluster.fast()
        fs = H2CloudFS(cluster, account="alice")
        victim = next(iter(cluster.nodes))
        cluster.nodes[victim].crash()
        fs.write("/written-while-down", b"x")
        cluster.nodes[victim].recover()
        cluster.store.repair()
        # Now even if the *other* replicas die, the data survives.
        key = "f:" + fs.relative_path_of("/written-while-down")
        present, expected = cluster.store.replica_health(key)
        assert present == expected

    def test_scheduled_outage_window(self):
        cluster = SwiftCluster.rack_scale()
        fs = H2CloudFS(cluster, account="alice")
        victim = next(iter(cluster.nodes))
        cluster.failures.crash_at(cluster.clock.now_us + 1, victim)
        cluster.failures.recover_at(cluster.clock.now_us + 50_000_000, victim)
        fs.write("/f1", b"1")  # advances the clock past the crash point
        cluster.failures.pump()
        assert cluster.nodes[victim].is_down
        fs.write("/f2", b"2")  # runs during the outage
        cluster.clock.advance(60_000_000)
        cluster.failures.pump()
        assert not cluster.nodes[victim].is_down
        assert fs.read("/f1") == b"1"
        assert fs.read("/f2") == b"2"

    def test_total_replica_loss_is_loud(self):
        """When every replica of an object is unreachable, reads fail
        with a QuorumError -- not silent corruption."""
        cluster = SwiftCluster.fast()
        fs = H2CloudFS(cluster, account="alice")
        fs.write("/f", b"x")
        key = "f:" + fs.relative_path_of("/f")
        for node_id in cluster.ring.nodes_for(key):
            cluster.nodes[node_id].crash()
        with pytest.raises(QuorumError):
            fs.read("/f")
        # Metadata on other nodes still serves.
        assert fs.listdir("/") == ["f"]


class TestMiddlewareFailover:
    def test_surviving_middleware_carries_on(self):
        """Middlewares are stateless-ish: losing one loses no data
        (its unmerged patches are durable objects; its cache is soft
        state) -- the paper's §1 argument for the single-cloud design."""
        fs = H2CloudFS(SwiftCluster.fast(), account="alice", middlewares=2)
        fs.write("/by-mw1", b"1")  # round robin: mw1
        fs.write("/by-mw2", b"2")  # mw2
        fs.pump()
        # "Fail" middleware 1 by never routing to it again.
        survivor = fs.middlewares[1]
        assert [e.name for e in survivor.list_dir("alice", "/")] == [
            "by-mw1",
            "by-mw2",
        ]
        survivor.write_file("alice", "/after-failover", b"3")
        assert survivor.read_file("alice", "/after-failover") == b"3"
