"""Hostile file names across every system.

The formatter escapes structural characters, the container DB sorts
raw strings, CAS serializes pointer blocks, Cumulus packs log lines --
each has its own wire format, and all of them must round-trip any name
the path validator admits (no '/', no '::', no control characters).
"""

import pytest

from repro.baselines import make_system
from repro.simcloud import InvalidPath, SwiftCluster

HOSTILE_NAMES = [
    "plain",
    "with space",
    "pipe|pipe",
    "percent%20encoded",
    "unicode-файл-名前-📁",
    "dots.every.where",
    "trailing.",
    "-leading-dash",
    "quote'and\"quote",
    "tab\tinside",
    "very" + "long" * 40,
    "=equals&amp;",
]

SYSTEMS = [
    "h2cloud",
    "swift",
    "consistent-hash",
    "compressed-snapshot",
    "cas",
    "single-index",
    "dynamic-partition",
]


@pytest.mark.parametrize("system", SYSTEMS)
def test_hostile_names_round_trip(system):
    fs = make_system(system, SwiftCluster.fast())
    fs.mkdir("/dir")
    for i, name in enumerate(HOSTILE_NAMES):
        fs.write(f"/dir/{name}", bytes([i]) * 3)
    fs.pump()
    assert fs.listdir("/dir") == sorted(HOSTILE_NAMES)
    for i, name in enumerate(HOSTILE_NAMES):
        assert fs.read(f"/dir/{name}") == bytes([i]) * 3


@pytest.mark.parametrize("system", ["h2cloud", "swift"])
def test_hostile_directory_names(system):
    fs = make_system(system, SwiftCluster.fast())
    for name in HOSTILE_NAMES[:6]:
        fs.mkdir(f"/{name}")
        fs.write(f"/{name}/f", name.encode())
    fs.pump()
    for name in HOSTILE_NAMES[:6]:
        assert fs.read(f"/{name}/f") == name.encode()
    # Rename a hostile-named directory.
    fs.move(f"/{HOSTILE_NAMES[2]}", "/renamed|target")
    fs.pump()
    assert fs.read("/renamed|target/f") == HOSTILE_NAMES[2].encode()


class TestRejectedNames:
    @pytest.mark.parametrize("system", ["h2cloud", "swift"])
    @pytest.mark.parametrize(
        "bad", ["/a/../b", "/a/./b", "/a//b", "a/rel", "/nm::spaced", "/nl\ninside"]
    )
    def test_invalid_paths_rejected_everywhere(self, system, bad):
        fs = make_system(system, SwiftCluster.fast())
        with pytest.raises(InvalidPath):
            fs.write(bad, b"x")
        with pytest.raises(InvalidPath):
            fs.mkdir(bad)


def test_h2_namering_wire_stays_ascii():
    """Whatever the names, the stored NameRing objects remain ASCII."""
    fs = make_system("h2cloud", SwiftCluster.fast())
    fs.mkdir("/d")
    for name in HOSTILE_NAMES:
        fs.write(f"/d/{name}", b"")
    fs.pump()
    for obj_name in fs.store.names():
        if obj_name.startswith("nr:"):
            fs.store.get(obj_name).data.decode("ascii")  # must not raise
