"""Acceptance: a faulty, crashing cluster masks everything from clients.

The scenario ISSUE'd for the fault-tolerance layer: a seeded FaultPlan
injecting >=5% transient faults, one storage-node crash/recover cycle
mid-workload, a 1000-operation client workload that completes with
zero client-visible errors, and a post-recovery repair sweep that
restores full replication (verified by replica counts and fsck).
Everything is deterministic under the fixed seeds.
"""

import random

from repro.core import H2CloudFS
from repro.simcloud import FaultPlan, SwiftCluster
from repro.tools import H2Fsck, repair_and_verify

SEED = 42
CRASH_AT_US = 5_000_000
RECOVER_AT_US = 25_000_000
OPS = 1_000


def run_scenario() -> dict:
    """The full drill; returns a digest of everything observable."""
    cluster = SwiftCluster.rack_scale()
    plan = cluster.install_fault_plan(
        FaultPlan(seed=SEED, io_error_rate=0.04, timeout_rate=0.02)
    )
    fs = H2CloudFS(cluster, account="load")
    victim = 3
    cluster.failures.crash_at(CRASH_AT_US, node_id=victim)
    cluster.failures.recover_at(RECOVER_AT_US, node_id=victim)

    rng = random.Random(SEED)
    dirs = ["/"]
    files: list[str] = []
    # Zero client-visible errors: any exception below fails the test.
    for op_index in range(OPS):
        cluster.failures.pump()
        roll = rng.random()
        if roll < 0.08 and len(dirs) < 20:
            path = f"/dir-{len(dirs):02d}"
            fs.mkdir(path)
            dirs.append(path)
        elif roll < 0.45 or not files:
            parent = rng.choice(dirs).rstrip("/")
            path = f"{parent}/file-{op_index:04d}"
            fs.write(path, bytes([op_index % 256]) * rng.randrange(16, 2048))
            files.append(path)
        elif roll < 0.70:
            assert fs.read(rng.choice(files)) is not None
        elif roll < 0.90:
            fs.listdir(rng.choice(dirs))
        else:
            fs.delete(files.pop(rng.randrange(len(files))))
    cluster.failures.pump()  # apply any event the workload outran

    assert plan.total_injected >= OPS * 0.05  # the storm was real
    assert not cluster.nodes[victim].is_down

    # The crash window left the victim's replicas stale/missing; the
    # sweep must restore full replication, confirmed two ways.
    fs.pump()
    report, fsck = repair_and_verify(fs, verbose=False)
    assert report.replicas_written > 0
    assert not report.unrecoverable
    assert fsck.clean
    assert not fsck.degraded_replicas
    health = {
        name: fs.store.replica_health(name) for name in fs.store.names()
    }
    assert all(present == expected for present, expected in health.values())

    # Degraded-stale serving is allowed *at most* during the outage
    # window; with two of three replicas alive throughout, LIST never
    # needed it -- and no descriptor may stay stale after recovery.
    mw = fs.middlewares[0]
    assert not any(fd.stale for fd in mw.fd_cache.descriptors())
    serves_after_heal = mw.degraded_serves
    for path in dirs:
        fs.listdir(path)
    assert mw.degraded_serves == serves_after_heal
    assert H2Fsck(mw).check().clean  # listing compaction broke nothing

    resilience = fs.store.resilience.snapshot()
    assert resilience["retries"] > 0
    return {
        "clock_us": cluster.clock.now_us,
        "injected": dict(plan.injected),
        "resilience": resilience,
        "tree": [(d, tuple(sorted(fs.listdir(d)))) for d in sorted(dirs)],
        "objects": sorted(fs.store.names()),
        "repaired": report.replicas_written,
        "breaker_trips": sum(b.trips for b in fs.store.breakers.values()),
    }


class TestFaultToleranceAcceptance:
    def test_workload_survives_storm_and_crash_then_heals(self):
        digest = run_scenario()
        assert digest["repaired"] > 0
        assert digest["injected"]["io_error"] > 0
        assert digest["injected"]["timeout"] > 0
        assert digest["breaker_trips"] >= 1  # the crashed node tripped

    def test_the_whole_scenario_is_deterministic(self):
        assert run_scenario() == run_scenario()
