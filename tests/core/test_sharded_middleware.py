"""End-to-end sharded-NameRing behaviour through the middleware.

Thresholds are tuned down so small directories cross the split point,
then every layer above the shard store is exercised: listings (paged
and whole), per-op shard traffic, gossip convergence between nodes,
collapse after deletes + GC, fsck's I9 walker, and account teardown.
"""

import pytest

from repro.core import H2CloudFS, H2Config, formatter, shards
from repro.core.namespace import namering_key
from repro.simcloud import SwiftCluster
from repro.tools.fsck import H2Fsck

CFG = H2Config(
    sharded_rings=True,
    shard_split_threshold=8,
    shard_merge_threshold=3,
    shard_target_entries=5,
)


def sharded_fs(middlewares: int = 2) -> H2CloudFS:
    return H2CloudFS(
        SwiftCluster.fast(), account="alice", middlewares=middlewares, config=CFG
    )


def stored_nr(fs, path="/big"):
    mw = fs.middlewares[0]
    ns = mw.lookup.resolve_dir("alice", path)
    return ns, fs.store.get(namering_key(ns)).data


def populate(fs, n: int, path="/big") -> list[str]:
    fs.mkdir(path)
    names = [f"f{i:04d}" for i in range(n)]
    fs.write_many(path, [(name, b"x") for name in names])
    fs.pump()
    return names


class TestShardedLifecycle:
    def test_directory_splits_past_threshold(self):
        fs = sharded_fs()
        populate(fs, 20)
        ns, data = stored_nr(fs)
        assert formatter.is_manifest(data)
        manifest = formatter.loads_manifest(data)
        assert manifest.total_entries == 20
        loaded = shards.read_stored(fs.store, ns)
        assert sorted(loaded.ring.live_names()) == [f"f{i:04d}" for i in range(20)]

    def test_flag_off_never_splits(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice", middlewares=1)
        populate(fs, 20)
        _, data = stored_nr(fs)
        assert not formatter.is_manifest(data)

    def test_listing_correct_and_paged(self):
        fs = sharded_fs()
        names = populate(fs, 25)
        assert fs.listdir("/big") == names
        # Page through with marker/limit; pages concatenate to the whole.
        pages, marker = [], None
        while True:
            page = fs.listdir("/big", marker=marker, limit=7)
            if not page:
                break
            pages.extend(page)
            marker = page[-1]
        assert pages == names

    def test_single_insert_touches_one_shard(self):
        fs = sharded_fs(middlewares=1)
        # 30 entries across 8 shards: one more stays below the reshard
        # point (8 * 5 target = 40), so this is the steady-state path.
        populate(fs, 30)
        ledger = fs.store.ledger
        puts_before = ledger.puts
        fs.write("/big/zz-new", b"y")
        fs.pump()
        _, data = stored_nr(fs)
        count = formatter.loads_manifest(data).shard_count
        # f: body + patch + one shard + manifest (+ patch retirement is
        # a delete, not a put) -- far fewer than one PUT per shard.
        assert ledger.puts - puts_before < 4 + count // 2

    def test_gossip_converges_across_nodes(self):
        fs = sharded_fs(middlewares=2)
        names = populate(fs, 18)
        mw0, mw1 = fs.middlewares
        fs.pump()
        for mw in (mw0, mw1):
            listing = [e.name for e in mw.list_dir("alice", "/big")]
            assert listing == names

    def test_collapse_after_deletes_and_gc(self):
        fs = sharded_fs(middlewares=1)
        names = populate(fs, 12)
        for name in names[2:]:
            fs.delete(f"/big/{name}")
        fs.pump()
        fs.gc()  # compaction strips the tombstones -> collapse to mono
        _, data = stored_nr(fs)
        assert not formatter.is_manifest(data)
        assert fs.listdir("/big") == names[:2]

    def test_fsck_clean_and_shards_reachable(self):
        fs = sharded_fs()
        populate(fs, 20)
        report = H2Fsck(fs.middlewares[0]).check()
        assert report.clean, report.errors
        assert report.garbage == []  # shard payloads are not garbage
        assert report.stale_manifests == []

    def test_fsck_flags_missing_shard(self):
        fs = sharded_fs(middlewares=1)
        populate(fs, 20)
        ns, data = stored_nr(fs)
        manifest = formatter.loads_manifest(data)
        fs.store.delete(shards.shard_keys(ns, manifest)[0])
        report = H2Fsck(fs.middlewares[0]).check()
        assert any("I9" in err and "missing" in err for err in report.errors)

    def test_fsck_reports_stale_manifest_as_advisory(self):
        fs = sharded_fs(middlewares=1)
        populate(fs, 20)
        ns, data = stored_nr(fs)
        manifest = formatter.loads_manifest(data)
        # Age one digest: pretend the shard was rewritten after the
        # manifest flip (a torn write-back leaves exactly this state).
        bad = shards.ShardManifest(
            shard_count=manifest.shard_count,
            epoch=manifest.epoch,
            digests=(
                formatter.ShardDigest(
                    version=manifest.digests[0].version,
                    crc=manifest.digests[0].crc ^ 1,
                    entries=manifest.digests[0].entries,
                ),
            )
            + manifest.digests[1:],
        )
        fs.store.put(namering_key(ns), formatter.dumps_manifest(bad))
        report = H2Fsck(fs.middlewares[0]).check()
        assert report.clean  # advisory, not an error
        assert report.stale_manifests

    def test_gc_heals_stale_manifest(self):
        fs = sharded_fs(middlewares=1)
        populate(fs, 20)
        ns, data = stored_nr(fs)
        manifest = formatter.loads_manifest(data)
        bad = shards.ShardManifest(
            shard_count=manifest.shard_count,
            epoch=manifest.epoch,
            digests=(
                formatter.ShardDigest(
                    version=manifest.digests[0].version,
                    crc=manifest.digests[0].crc ^ 1,
                    entries=manifest.digests[0].entries,
                ),
            )
            + manifest.digests[1:],
        )
        fs.store.put(namering_key(ns), formatter.dumps_manifest(bad))
        fs.pump()
        fs.gc()
        healed = formatter.loads_manifest(fs.store.get(namering_key(ns)).data)
        assert healed.digests == manifest.digests

    def test_delete_account_removes_shard_payloads(self):
        fs = sharded_fs(middlewares=1)
        populate(fs, 20, path="/big")
        mw = fs.middlewares[0]
        mw.delete_account("alice", force=True)
        # The subtree (including /big's manifest + shard payloads) is
        # unreachable garbage now; the next GC pass sweeps all of it.
        fs.gc()
        leftover = [n for n in fs.store.names() if n.startswith("nr:")]
        assert leftover == []

    def test_deep_tree_with_one_giant_level(self):
        fs = sharded_fs()
        fs.makedirs("/a/b")
        fs.mkdir("/a/b/huge")
        names = [f"n{i:03d}" for i in range(15)]
        fs.write_many("/a/b/huge", [(n, b"z") for n in names])
        fs.pump()
        assert fs.listdir("/a/b/huge") == names
        assert fs.read("/a/b/huge/n007") == b"z"
        report = H2Fsck(fs.middlewares[0]).check()
        assert report.clean, report.errors
