"""Exact primitive-count accounting for H2 operations.

The figures rest on each operation issuing a known set of object
primitives; these tests pin that set down so a refactor that silently
adds (or drops) a round trip fails loudly.  Counts are for the
write-through configuration on a cold cache (the benchmark setup).
"""

import pytest

from repro.core import H2CloudFS
from repro.simcloud import SwiftCluster


@pytest.fixture
def fs() -> H2CloudFS:
    fs = H2CloudFS(SwiftCluster.fast(), account="alice")
    fs.makedirs("/a/b")
    fs.write("/a/b/f", b"payload")
    fs.pump()
    fs.drop_caches()
    return fs


def delta(fs, thunk) -> dict[str, int]:
    before = fs.store.ledger.snapshot()
    thunk()
    return fs.store.ledger.diff(before)


class TestPrimitiveCounts:
    def test_stat_is_pure_gets(self, fs):
        counts = delta(fs, lambda: fs.stat("/a/b/f"))
        assert counts["gets"] == 3  # root, a, b NameRings
        assert counts["puts"] == counts["heads"] == counts["copies"] == 0

    def test_warm_stat_is_free(self, fs):
        fs.stat("/a/b/f")
        counts = delta(fs, lambda: fs.stat("/a/b/f"))
        assert counts["gets"] == counts["puts"] == counts["heads"] == 0

    def test_quick_access_is_one_get(self, fs):
        rel = fs.relative_path_of("/a/b/f")
        fs.drop_caches()
        counts = delta(fs, lambda: fs.read_relative(rel))
        assert counts["gets"] == 1
        assert counts["bytes_out"] == 7
        assert counts["puts"] == 0

    def test_mkdir_issues_fixed_primitive_set(self, fs):
        counts = delta(fs, lambda: fs.mkdir("/a/b/new"))
        # resolve (3 ring GETs) + dir record PUT + empty ring PUT +
        # patch PUT + write-through merge (stored-ring GET + merged
        # ring PUT) + patch retirement DELETE.
        assert counts["gets"] == 4
        assert counts["puts"] == 4
        assert counts["deletes"] == 1
        assert counts["copies"] == 0

    def test_rmdir_is_one_patch_cycle(self, fs):
        counts = delta(fs, lambda: fs.rmdir("/a/b"))
        # resolve (2 GETs) + patch PUT + merge (GET + PUT) + retire.
        assert counts["gets"] == 3
        assert counts["puts"] == 2
        assert counts["deletes"] == 1

    def test_dir_move_touches_no_file_objects(self, fs):
        counts = delta(fs, lambda: fs.move("/a/b", "/a/c"))
        assert counts["copies"] == 0
        assert counts["bytes_in"] < 4096  # rings/patches only

    def test_file_move_is_one_server_side_copy(self, fs):
        counts = delta(fs, lambda: fs.move("/a/b/f", "/a/b/g"))
        assert counts["copies"] == 1

    def test_names_only_list_is_one_get_warm_parentage(self, fs):
        fs.stat("/a/b/f")  # warm the chain
        counts = delta(fs, lambda: fs.listdir("/a/b"))
        assert counts["gets"] == counts["heads"] == counts["puts"] == 0

    def test_detailed_list_heads_each_child(self, fs):
        for i in range(5):
            fs.write(f"/a/b/x{i}", b"1")
        fs.pump()
        fs.drop_caches()
        counts = delta(fs, lambda: fs.listdir("/a/b", detailed=True))
        assert counts["heads"] == 6  # f + x0..x4
        assert counts["gets"] == 3  # the resolution walk

    def test_write_streams_then_patches(self, fs):
        counts = delta(fs, lambda: fs.write("/a/b/new", b"x" * 100))
        # object PUT + patch PUT + merged ring PUT; resolve 3 GETs +
        # stored-ring GET; retire 1 DELETE.
        assert counts["puts"] == 3
        assert counts["bytes_in"] >= 100
        assert counts["deletes"] == 1

    def test_background_merge_not_on_foreground_ledger(self):
        from repro.core import H2Config

        fs = H2CloudFS(
            SwiftCluster.rack_scale(),
            account="alice",
            config=H2Config(auto_merge=False),
        )
        fs.mkdir("/d")
        t = fs.clock.now_us
        bg = fs.store.ledger.background_us
        fs.pump()
        assert fs.clock.now_us == t
        assert fs.store.ledger.background_us > bg
