"""Tests for deferred deletion: fake delete now, garbage collect later."""

import pytest

from repro.core import GarbageCollector, H2CloudFS
from repro.simcloud import SwiftCluster


@pytest.fixture
def fs() -> H2CloudFS:
    return H2CloudFS(SwiftCluster.fast(), account="alice")


class TestFakeDeletionLeavesBytes:
    def test_deleted_file_object_survives_until_gc(self, fs):
        fs.write("/f", b"0123456789")
        fs.delete("/f")
        # Fake deletion: the content object is still in the store...
        assert any(n.startswith("f:") for n in fs.store.names())
        report = fs.gc()
        # ...until the collector sweeps it.
        assert report.swept >= 1
        assert report.reclaimed_bytes >= 10
        assert not any(n.startswith("f:") for n in fs.store.names())

    def test_rmdir_subtree_swept(self, fs):
        fs.makedirs("/a/b")
        for i in range(5):
            fs.write(f"/a/b/f{i}", b"x" * 100)
        objects_before = fs.store.object_count
        fs.rmdir("/a")
        report = fs.gc()
        # 2 dirs (2 records + 2 rings) + 5 files = 9 unreachable objects
        assert report.swept == 9
        assert fs.store.object_count < objects_before

    def test_live_data_never_swept(self, fs):
        fs.makedirs("/keep/deep")
        fs.write("/keep/deep/f", b"precious")
        fs.write("/root-file", b"also precious")
        fs.gc()
        assert fs.read("/keep/deep/f") == b"precious"
        assert fs.read("/root-file") == b"also precious"

    def test_gc_idempotent(self, fs):
        fs.write("/f", b"x")
        fs.delete("/f")
        fs.gc()
        second = fs.gc()
        assert second.swept == 0
        assert second.reclaimed_bytes == 0

    def test_gc_compacts_tombstoned_rings(self, fs):
        fs.write("/a", b"")
        fs.write("/b", b"")
        fs.delete("/a")
        # Disable in-use compaction interference by collecting directly.
        report = fs.gc()
        assert report.compacted_rings >= 0
        mw = fs.middlewares[0]
        from repro.core import Namespace, namering_key, loads_ring

        ring_obj = fs.store.get(namering_key(Namespace.root("alice")))
        ring = loads_ring(ring_obj.data)
        assert not ring.needs_compaction
        assert ring.live_names() == ["b"]

    def test_gc_refuses_while_chains_dirty(self):
        from repro.core import H2Config

        fs = H2CloudFS(
            SwiftCluster.fast(),
            account="alice",
            config=H2Config(auto_merge=False),
        )
        fs.write("/f", b"x")  # patch still chained, not merged
        report = GarbageCollector(fs.middlewares[0], ["alice"]).collect()
        assert report.swept == 0  # declined to run
        fs.pump()
        assert fs.read("/f") == b"x"

    def test_gc_runs_in_background_time(self, fs):
        cluster = SwiftCluster.rack_scale()
        fs = H2CloudFS(cluster, account="alice")
        fs.write("/f", b"x" * 1000)
        fs.delete("/f")
        t = fs.clock.now_us
        fs.gc()
        assert fs.clock.now_us == t
        assert fs.store.ledger.background_us > 0

    def test_gc_multi_account_scoped(self):
        cluster = SwiftCluster.fast()
        alice = H2CloudFS(cluster, account="alice")
        bob = H2CloudFS(cluster, account="bob")
        alice.write("/mine", b"a")
        bob.write("/theirs", b"b")
        alice.delete("/mine")
        # Collector told about both accounts: bob's data must survive.
        alice.pump()
        bob.pump()
        report = GarbageCollector(
            alice.middlewares[0], ["alice", "bob"]
        ).collect()
        assert report.swept >= 1
        assert bob.read("/theirs") == b"b"
