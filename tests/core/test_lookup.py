"""Tests for the H2 Lookup module: O(d) walks, caching, error paths."""

import pytest

from repro.core import H2CloudFS
from repro.simcloud import NotADirectory, PathNotFound, SwiftCluster


@pytest.fixture
def fs() -> H2CloudFS:
    fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
    fs.makedirs("/a/b/c/d")
    fs.write("/a/b/c/d/leaf", b"x")
    fs.write("/top", b"y")
    fs.pump()
    return fs


def mw(fs):
    return fs.middlewares[0]


class TestResolution:
    def test_root_resolution(self, fs):
        resolution = mw(fs).lookup.resolve("alice", "/")
        assert resolution.is_root
        assert resolution.is_dir
        assert resolution.dir_ns.is_root

    def test_chain_length_matches_depth(self, fs):
        resolution = mw(fs).lookup.resolve("alice", "/a/b/c/d/leaf")
        assert len(resolution.ns_chain) == 5  # root, a, b, c, d

    def test_file_resolution(self, fs):
        resolution = mw(fs).lookup.resolve("alice", "/top")
        assert not resolution.is_dir
        assert resolution.child.kind == "file"

    def test_dir_ns_of_file_rejected(self, fs):
        resolution = mw(fs).lookup.resolve("alice", "/top")
        with pytest.raises(NotADirectory):
            resolution.dir_ns

    def test_missing_leaf(self, fs):
        with pytest.raises(PathNotFound) as err:
            mw(fs).lookup.resolve("alice", "/a/b/ghost")
        assert err.value.path == "/a/b/ghost"

    def test_missing_intermediate_reports_prefix(self, fs):
        with pytest.raises(PathNotFound) as err:
            mw(fs).lookup.resolve("alice", "/a/ghost/leaf")
        assert err.value.path == "/a/ghost"

    def test_file_as_intermediate(self, fs):
        with pytest.raises(NotADirectory) as err:
            mw(fs).lookup.resolve("alice", "/top/below")
        assert err.value.path == "/top"

    def test_try_resolve(self, fs):
        assert mw(fs).lookup.try_resolve("alice", "/a/b") is not None
        assert mw(fs).lookup.try_resolve("alice", "/zz") is None

    def test_resolve_parent_at_root(self, fs):
        parent_ns, base = mw(fs).lookup.resolve_parent("alice", "/top")
        assert parent_ns.is_root
        assert base == "top"


class TestLookupCosts:
    def test_cold_lookup_linear_in_depth(self, fs):
        """Paper Fig 13: the regular access method is O(d)."""
        clock = fs.clock
        costs = {}
        for path, depth in [("/top", 1), ("/a/b/c/d/leaf", 5)]:
            fs.drop_caches()
            _, cost = clock.measure(lambda p=path: fs.stat(p))
            costs[depth] = cost
        assert costs[5] > costs[1] * 3  # ~5x the ring loads

    def test_warm_lookup_much_cheaper(self, fs):
        fs.drop_caches()
        _, cold = fs.clock.measure(lambda: fs.stat("/a/b/c/d/leaf"))
        _, warm = fs.clock.measure(lambda: fs.stat("/a/b/c/d/leaf"))
        assert warm == 0  # every ring served from the descriptor cache

    def test_quick_access_constant_in_depth(self, fs):
        """Paper §3.2: relative-path access is O(1) -- one object GET."""
        rel_deep = fs.relative_path_of("/a/b/c/d/leaf")
        rel_shallow = fs.relative_path_of("/top")
        fs.drop_caches()
        _, deep = fs.clock.measure(lambda: fs.read_relative(rel_deep))
        _, shallow = fs.clock.measure(lambda: fs.read_relative(rel_shallow))
        assert abs(deep - shallow) < max(deep, shallow) * 0.5

    def test_cache_hit_rate_reported(self, fs):
        fs.stat("/a/b/c/d/leaf")
        fs.stat("/a/b/c/d/leaf")
        assert mw(fs).fd_cache.stats.hits > 0
