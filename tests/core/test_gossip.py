"""Gossip protocol tests: propagation, loopback avoidance, convergence.

These exercise the paper's §3.3.2 Phase 2 step 2 across multiple
H2Middlewares sharing one object cloud, including convergence under
message loss (anti-entropy backstop) and the hypothesis-driven
"any operation schedule converges" property.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GossipNetwork, H2CloudFS, Namespace, Rumor
from repro.simcloud import MessageLoss, SwiftCluster


def multi_fs(n: int = 3, loss: float = 0.0, fanout: int = 2) -> H2CloudFS:
    return H2CloudFS(
        SwiftCluster.fast(),
        account="alice",
        middlewares=n,
        gossip_fanout=fanout,
        message_loss=MessageLoss(loss, seed=5) if loss else None,
    )


def ring_views(fs: H2CloudFS, path: str = "/") -> list[list[str]]:
    """Each middleware's local view of a directory's live children."""
    views = []
    for mw in fs.middlewares:
        ns = mw.lookup.resolve_dir(fs.account, path)
        fd = mw.load_ring(ns, use_cache=True)
        views.append(fd.ring.live_names())
    return views


class TestNetworkMechanics:
    def test_fanout_validated(self):
        with pytest.raises(ValueError):
            GossipNetwork(fanout=0)

    def test_duplicate_join_rejected(self):
        fs = multi_fs(2)
        with pytest.raises(ValueError):
            fs.network.join(fs.middlewares[0])

    def test_peers_of_excludes_self(self):
        fs = multi_fs(3)
        assert fs.network.peers_of(1) == [2, 3]

    def test_announce_queues_fanout_rumors(self):
        fs = multi_fs(3, fanout=2)
        rumor = Rumor(
            ns=Namespace("1.1.1"),
            origin=1,
            ts=fs.store.timestamps.next(),
        )
        before = fs.network.in_flight
        fs.network.announce(1, rumor)
        assert fs.network.in_flight == before + 2

    def test_single_member_network_sends_nothing(self):
        cluster = SwiftCluster.fast()
        fs = H2CloudFS(cluster, middlewares=2)
        # Only 1 peer exists for each sender; fanout 2 clips to 1.
        fs.mkdir("/d")
        fs.network.run_until_quiet()


class TestPropagation:
    def test_update_visible_on_other_middleware_after_pump(self):
        fs = multi_fs(2)
        mw1, mw2 = fs.middlewares
        mw1.mkdir("alice", "/fromnode1")
        fs.network.run_until_quiet()
        names = mw2.list_dir("alice", "/")
        assert [e.name for e in names] == ["fromnode1"]

    def test_loopback_avoidance_stops_storm(self):
        """Rumors die once every node is up to date (quiescence)."""
        fs = multi_fs(4)
        fs.middlewares[0].mkdir("alice", "/d")
        rounds = fs.network.run_until_quiet(max_rounds=100)
        assert rounds < 20

    def test_stale_rumor_not_forwarded(self):
        fs = multi_fs(2)
        mw1, mw2 = fs.middlewares
        mw1.mkdir("alice", "/d")
        fs.network.run_until_quiet()
        ns = Namespace.root("alice")
        old = Rumor(ns=ns, origin=1, ts=mw2.fd_cache.get_or_create(ns).local_version)
        assert mw2.on_gossip(old) is False

    def test_concurrent_updates_from_different_nodes_union(self):
        fs = multi_fs(2)
        mw1, mw2 = fs.middlewares
        mw1.mkdir("alice", "/from1")
        mw2.mkdir("alice", "/from2")
        fs.pump()
        assert ring_views(fs) == [["from1", "from2"], ["from1", "from2"]]

    def test_delete_propagates(self):
        fs = multi_fs(2)
        mw1, mw2 = fs.middlewares
        mw1.write_file("alice", "/f", b"x")
        fs.pump()
        mw2.delete_file("alice", "/f")
        fs.pump()
        assert ring_views(fs) == [[], []]

    def test_gossip_work_is_background_accounted(self):
        fs = multi_fs(3)
        fs.middlewares[0].mkdir("alice", "/d")
        before = fs.clock.now_us
        bg_before = fs.store.ledger.background_us
        fs.network.run_until_quiet()
        assert fs.clock.now_us == before  # zero-latency cluster anyway
        assert fs.store.ledger.background_us >= bg_before


class TestConvergenceUnderLoss:
    def test_rumor_loss_healed_by_anti_entropy(self):
        fs = multi_fs(4, loss=0.6)
        mw1 = fs.middlewares[0]
        for i in range(10):
            mw1.write_file("alice", f"/f{i}", b"x")
        fs.network.converge()
        views = ring_views(fs)
        assert all(v == views[0] for v in views)
        assert len(views[0]) == 10

    def test_total_loss_still_converges(self):
        fs = multi_fs(3, loss=1.0)
        fs.middlewares[0].mkdir("alice", "/only-antientropy")
        fs.network.converge()
        views = ring_views(fs)
        assert all(v == ["only-antientropy"] for v in views)


class TestConvergenceProperty:
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 2),  # which middleware
                st.sampled_from(["mkdir", "write", "delete"]),
                st.sampled_from(["a", "b", "c", "d"]),
            ),
            max_size=25,
        ),
        loss=st.sampled_from([0.0, 0.4]),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_schedule_converges_to_identical_views(self, ops, loss):
        """Eventual consistency: after convergence every middleware's
        view of '/' is identical, whatever ops ran wherever."""
        fs = multi_fs(3, loss=loss)
        for mw_idx, op, name in ops:
            mw = fs.middlewares[mw_idx]
            try:
                if op == "mkdir":
                    mw.mkdir("alice", f"/{name}")
                elif op == "write":
                    mw.write_file("alice", f"/{name}", b"data")
                else:
                    mw.delete_file("alice", f"/{name}")
            except Exception:
                # AlreadyExists / PathNotFound / IsADirectory races are
                # application-level outcomes; convergence must hold anyway.
                pass
        fs.network.converge()
        views = ring_views(fs)
        assert all(v == views[0] for v in views)
