"""Degraded reads: serving last-known rings through a total replica outage.

When every replica of a NameRing object is unreachable (QuorumError,
not a clean miss), a middleware with ``H2Config.degraded_reads`` serves
the cached descriptor flagged stale instead of failing LIST/resolve.
Staleness is observable (``degraded_serves``, Monitor gauges) and ends
the moment one replica answers again.
"""

import pytest

from repro.core import H2CloudFS, H2Config, Monitor, deployment_report
from repro.core.namespace import namering_key
from repro.simcloud import PathNotFound, QuorumError, SwiftCluster


def outage_fs(config: H2Config | None = None):
    """An fs with /d/{a,b}, plus the crash list for /d's ring replicas."""
    cluster = SwiftCluster.fast()
    fs = H2CloudFS(cluster, account="alice", config=config)
    fs.mkdir("/d")
    fs.write("/d/a", b"one")
    fs.write("/d/b", b"two")
    mw = fs.middlewares[0]
    ns = mw.lookup.resolve_dir("alice", "/d")
    victims = cluster.ring.nodes_for(namering_key(ns))
    return fs, mw, ns, victims


class TestDegradedReads:
    def test_total_outage_serves_the_stale_ring(self):
        fs, mw, ns, victims = outage_fs()
        for node_id in victims:
            fs.cluster.nodes[node_id].crash()
        fd = mw.load_ring(ns, use_cache=False)
        assert fd.stale
        assert mw.degraded_serves == 1
        assert fd.ring.live_names() == ["a", "b"]

    def test_stale_descriptor_reprobes_every_use(self):
        fs, mw, ns, victims = outage_fs()
        for node_id in victims:
            fs.cluster.nodes[node_id].crash()
        mw.load_ring(ns, use_cache=False)
        # Even cache-friendly loads re-probe now: still degraded.
        mw.load_ring(ns, use_cache=True)
        assert mw.degraded_serves == 2

    def test_listdir_stays_up_through_the_outage(self):
        fs, mw, ns, victims = outage_fs()
        for node_id in victims:
            fs.cluster.nodes[node_id].crash()
        mw.load_ring(ns, use_cache=False)  # outage noticed: fd now stale
        assert fs.listdir("/d") == ["a", "b"]

    def test_recovery_clears_staleness(self):
        fs, mw, ns, victims = outage_fs()
        for node_id in victims:
            fs.cluster.nodes[node_id].crash()
        fd = mw.load_ring(ns, use_cache=False)
        assert fd.stale
        for node_id in victims:
            fs.cluster.nodes[node_id].recover()
        fd = mw.load_ring(ns)  # stale forces a re-probe; store answers
        assert not fd.stale
        serves_during_outage = mw.degraded_serves
        fs.listdir("/d")
        assert mw.degraded_serves == serves_during_outage

    def test_disabled_config_propagates_the_quorum_error(self):
        fs, mw, ns, victims = outage_fs(H2Config(degraded_reads=False))
        for node_id in victims:
            fs.cluster.nodes[node_id].crash()
        with pytest.raises(QuorumError):
            mw.load_ring(ns, use_cache=False)
        assert mw.degraded_serves == 0

    def test_never_loaded_descriptor_cannot_be_served(self):
        # Degraded mode replays a ring we once read; with no last-known
        # state there is nothing safe to serve.
        fs, mw, ns, victims = outage_fs()
        mw.fd_cache.purge(ns)
        for node_id in victims:
            fs.cluster.nodes[node_id].crash()
        with pytest.raises(QuorumError):
            mw.load_ring(ns, use_cache=False)

    def test_clean_miss_is_not_an_outage(self):
        # ObjectNotFound proves absence; serving stale would resurrect.
        fs, mw, ns, victims = outage_fs()
        fs.store.delete(namering_key(ns))
        with pytest.raises(PathNotFound):
            mw.load_ring(ns, use_cache=False)
        assert mw.degraded_serves == 0

    def test_monitor_exposes_degraded_gauges(self):
        fs, mw, ns, victims = outage_fs()
        for node_id in victims:
            fs.cluster.nodes[node_id].crash()
        mw.load_ring(ns, use_cache=False)
        metrics = Monitor(mw).snapshot()
        assert metrics["degraded.serves"] == 1
        assert metrics["degraded.stale_rings"] == 1
        assert "degraded serves" in deployment_report(fs)

    def test_stale_ring_skips_in_use_compaction(self):
        # Compaction rewrites the ring; never rewrite what you cannot
        # read back.  Tombstones must survive a degraded LIST untouched.
        fs, mw, ns, victims = outage_fs()
        fs.delete("/d/a")  # leaves a tombstone in the ring
        fd = mw.load_ring(ns, use_cache=False)
        tombstones_before = len(fd.ring.children) - len(fd.ring.live_names())
        assert tombstones_before >= 1
        for node_id in victims:
            fs.cluster.nodes[node_id].crash()
        mw.load_ring(ns, use_cache=False)
        assert fs.listdir("/d") == ["b"]
        tombstones_after = len(fd.ring.children) - len(fd.ring.live_names())
        assert tombstones_after == tombstones_before
