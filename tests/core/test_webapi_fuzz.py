"""Property tests: the web API layer never crashes, never lies.

Whatever bytes arrive, the handler must return a well-formed response
with a known status code -- filesystem errors map to 4xx/5xx, never to
raw exceptions escaping the service.
"""

from urllib.parse import quote, unquote

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import H2Middleware, H2WebAPI, Request
from repro.dst import HOSTILE_NAMES, ILLEGAL_NAMES
from repro.simcloud import SwiftCluster
from repro.core.webapi import _STATUS_REASON

_METHODS = st.sampled_from(["GET", "PUT", "POST", "DELETE", "HEAD", "PATCH"])
_SEGMENTS = st.lists(
    st.sampled_from(
        ["v1", "v2", "alice", "bob", "~rel", "d", "f.txt", "..", ".", "a::b",
         "%2F", "deep", ""]
    ),
    max_size=6,
)
_QUERY = st.sampled_from(
    ["", "?dir=1", "?list=names", "?list=detail", "?list=junk",
     "?op=move&dst=/x", "?op=copy", "?op=junk&dst=/y", "?dir=1&recursive=0"]
)


def api() -> H2WebAPI:
    service = H2WebAPI(H2Middleware(node_id=1, store=SwiftCluster.fast().store))
    service.put("/v1/alice")
    service.put("/v1/alice/d?dir=1")
    service.put("/v1/alice/d/f.txt", b"seed")
    return service


class TestFuzz:
    @given(method=_METHODS, segments=_SEGMENTS, query=_QUERY, body=st.binary(max_size=32))
    @settings(max_examples=150, deadline=None)
    def test_any_request_gets_a_valid_response(self, method, segments, query, body):
        service = api()
        path = "/" + "/".join(segments) + query
        response = service.handle(Request(method, path, body))
        assert response.status in _STATUS_REASON
        assert isinstance(response.body, bytes)

    @given(segments=_SEGMENTS, query=_QUERY)
    @settings(max_examples=80, deadline=None)
    def test_get_never_mutates(self, segments, query):
        """GETs are safe: the store's key set must not change."""
        service = api()
        names_before = service.middleware.store.names()
        path = "/" + "/".join(segments) + query
        service.handle(Request("GET", path))
        assert service.middleware.store.names() == names_before

    @given(body=st.binary(max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_put_then_get_round_trips_any_body(self, body):
        service = api()
        assert service.put("/v1/alice/blob", body).status == 201
        assert service.get("/v1/alice/blob").body == body


class TestDeleteThenRecreate:
    """Fake-delete resurrection through the web layer: a DELETE leaves a
    tombstone in the NameRing; a later PUT of the same name must mint a
    newer tuple that overrides it, never resurrect the old content."""

    @given(first=st.binary(max_size=32), second=st.binary(max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_file_recreate_serves_the_new_body(self, first, second):
        service = api()
        assert service.put("/v1/alice/f", first).status == 201
        assert service.handle(Request("DELETE", "/v1/alice/f")).status == 204
        assert service.get("/v1/alice/f").status == 404
        assert service.put("/v1/alice/f", second).status == 201
        assert service.get("/v1/alice/f").body == second

    @given(rounds=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_repeated_delete_recreate_cycles(self, rounds):
        service = api()
        for generation in range(rounds):
            body = f"gen-{generation}".encode()
            assert service.put("/v1/alice/cycle", body).status == 201
            assert service.get("/v1/alice/cycle").body == body
            assert (
                service.handle(Request("DELETE", "/v1/alice/cycle")).status
                == 204
            )
        assert service.get("/v1/alice/cycle").status == 404

    def test_directory_recreate_starts_empty(self):
        service = api()
        assert service.put("/v1/alice/dir?dir=1").status == 201
        assert service.put("/v1/alice/dir/child", b"x").status == 201
        status = service.handle(
            Request("DELETE", "/v1/alice/dir?dir=1&recursive=1")
        ).status
        assert status == 204
        assert service.put("/v1/alice/dir?dir=1").status == 201
        listing = service.get("/v1/alice/dir?list=names")
        assert listing.status == 200
        assert b"child" not in listing.body


class TestHostileNames:
    """Names from the DST generator's hostile pool (unicode, spaces,
    lookalikes): legal at the filesystem layer, so the web layer must
    round-trip them -- URL-encoded or raw -- without a single 5xx."""

    _ROUNDTRIPPABLE = tuple(
        name for name in HOSTILE_NAMES if unquote(name) == name
    )

    @given(
        name=st.sampled_from(_ROUNDTRIPPABLE), body=st.binary(max_size=32)
    )
    @settings(max_examples=60, deadline=None)
    def test_put_get_delete_round_trip(self, name, body):
        service = api()
        path = f"/v1/alice/{name}"
        assert service.put(path, body).status == 201
        assert service.get(path).body == body
        assert service.handle(Request("DELETE", path)).status == 204
        assert service.get(path).status == 404

    @given(
        name=st.sampled_from(_ROUNDTRIPPABLE), body=st.binary(max_size=16)
    )
    @settings(max_examples=40, deadline=None)
    def test_url_quoted_spelling_reaches_the_same_file(self, name, body):
        service = api()
        assert service.put(f"/v1/alice/{quote(name)}", body).status == 201
        assert service.get(f"/v1/alice/{name}").body == body

    def test_percent_2f_decodes_to_a_clean_rejection(self):
        """'%2F' decodes to '/', which no single name may contain: the
        web layer must answer 4xx, not create a phantom hierarchy."""
        service = api()
        assert service.put("/v1/alice/%2F", b"x").status == 400

    @given(name=st.sampled_from([n for n in ILLEGAL_NAMES if n not in ("", ".", "..")]))
    @settings(max_examples=20, deadline=None)
    def test_illegal_names_get_a_clean_4xx(self, name):
        service = api()
        response = service.put(f"/v1/alice/{name}", b"x")
        assert 400 <= response.status < 500
