"""Property tests: the web API layer never crashes, never lies.

Whatever bytes arrive, the handler must return a well-formed response
with a known status code -- filesystem errors map to 4xx/5xx, never to
raw exceptions escaping the service.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import H2Middleware, H2WebAPI, Request
from repro.simcloud import SwiftCluster
from repro.core.webapi import _STATUS_REASON

_METHODS = st.sampled_from(["GET", "PUT", "POST", "DELETE", "HEAD", "PATCH"])
_SEGMENTS = st.lists(
    st.sampled_from(
        ["v1", "v2", "alice", "bob", "~rel", "d", "f.txt", "..", ".", "a::b",
         "%2F", "deep", ""]
    ),
    max_size=6,
)
_QUERY = st.sampled_from(
    ["", "?dir=1", "?list=names", "?list=detail", "?list=junk",
     "?op=move&dst=/x", "?op=copy", "?op=junk&dst=/y", "?dir=1&recursive=0"]
)


def api() -> H2WebAPI:
    service = H2WebAPI(H2Middleware(node_id=1, store=SwiftCluster.fast().store))
    service.put("/v1/alice")
    service.put("/v1/alice/d?dir=1")
    service.put("/v1/alice/d/f.txt", b"seed")
    return service


class TestFuzz:
    @given(method=_METHODS, segments=_SEGMENTS, query=_QUERY, body=st.binary(max_size=32))
    @settings(max_examples=150, deadline=None)
    def test_any_request_gets_a_valid_response(self, method, segments, query, body):
        service = api()
        path = "/" + "/".join(segments) + query
        response = service.handle(Request(method, path, body))
        assert response.status in _STATUS_REASON
        assert isinstance(response.body, bytes)

    @given(segments=_SEGMENTS, query=_QUERY)
    @settings(max_examples=80, deadline=None)
    def test_get_never_mutates(self, segments, query):
        """GETs are safe: the store's key set must not change."""
        service = api()
        names_before = service.middleware.store.names()
        path = "/" + "/".join(segments) + query
        service.handle(Request("GET", path))
        assert service.middleware.store.names() == names_before

    @given(body=st.binary(max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_put_then_get_round_trips_any_body(self, body):
        service = api()
        assert service.put("/v1/alice/blob", body).status == 201
        assert service.get("/v1/alice/blob").body == body
