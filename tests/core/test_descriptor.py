"""Tests for file descriptors and the LRU descriptor cache (paper §4.5)."""

import pytest

from repro.core import (
    Child,
    FileDescriptor,
    FileDescriptorCache,
    KIND_FILE,
    NameRing,
    Namespace,
    Patch,
)
from repro.simcloud import Timestamp


def ns(i: int) -> Namespace:
    return Namespace(f"{i}.1.0")


def dirty(fd: FileDescriptor) -> None:
    child = Child(name="x", timestamp=Timestamp(1, 1, 0), kind=KIND_FILE)
    fd.chain.append(
        Patch(
            target_ns=fd.ns,
            node_id=1,
            patch_seq=len(fd.chain.patches),
            payload=NameRing(children={"x": child}),
        )
    )


class TestFileDescriptor:
    def test_fresh_descriptor_clean_and_unloaded(self):
        fd = FileDescriptor(ns=ns(1))
        assert not fd.dirty
        assert not fd.loaded
        assert fd.local_version == Timestamp.ZERO

    def test_dirty_tracks_chain(self):
        fd = FileDescriptor(ns=ns(1))
        dirty(fd)
        assert fd.dirty
        fd.chain.clear()
        assert not fd.dirty

    def test_chain_bound_to_namespace(self):
        fd = FileDescriptor(ns=ns(7))
        assert fd.chain.target_ns == ns(7)


class TestCache:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FileDescriptorCache(capacity=0)

    def test_miss_then_hit(self):
        cache = FileDescriptorCache(capacity=4)
        assert cache.lookup(ns(1)) is None
        fd = cache.get_or_create(ns(1))
        assert cache.lookup(ns(1)) is fd
        assert cache.stats.misses == 2  # lookup + get_or_create's probe
        assert cache.stats.hits == 1

    def test_lru_eviction_order(self):
        cache = FileDescriptorCache(capacity=2)
        a = cache.get_or_create(ns(1))
        cache.get_or_create(ns(2))
        cache.lookup(ns(1))  # touch a: now 2 is LRU
        cache.get_or_create(ns(3))  # evicts 2
        assert ns(2) not in cache
        assert cache.lookup(ns(1)) is a
        assert cache.stats.evictions == 1

    def test_dirty_descriptors_pinned(self):
        cache = FileDescriptorCache(capacity=2)
        fd1 = cache.get_or_create(ns(1))
        dirty(fd1)
        cache.get_or_create(ns(2))
        cache.get_or_create(ns(3))  # would evict fd1, but it's dirty
        assert ns(1) in cache
        assert ns(2) not in cache  # the clean one went instead

    def test_invalidate_skips_dirty(self):
        cache = FileDescriptorCache(capacity=4)
        fd = cache.get_or_create(ns(1))
        dirty(fd)
        cache.invalidate(ns(1))
        assert ns(1) in cache
        fd.chain.clear()
        cache.invalidate(ns(1))
        assert ns(1) not in cache

    def test_drop_clean_keeps_dirty(self):
        cache = FileDescriptorCache(capacity=8)
        fd1 = cache.get_or_create(ns(1))
        dirty(fd1)
        cache.get_or_create(ns(2))
        cache.get_or_create(ns(3))
        dropped = cache.drop_clean()
        assert dropped == 2
        assert len(cache) == 1
        assert ns(1) in cache

    def test_dirty_descriptors_listing(self):
        cache = FileDescriptorCache(capacity=8)
        fd1 = cache.get_or_create(ns(1))
        cache.get_or_create(ns(2))
        dirty(fd1)
        assert cache.dirty_descriptors() == [fd1]

    def test_hit_rate(self):
        cache = FileDescriptorCache(capacity=4)
        cache.get_or_create(ns(1))
        cache.lookup(ns(1))
        cache.lookup(ns(1))
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_empty(self):
        assert FileDescriptorCache().stats.hit_rate == 0.0
