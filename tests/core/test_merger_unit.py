"""Direct unit tests for the Background Merger."""

import pytest

from repro.core import Child, H2Config, H2Middleware, KIND_FILE, NameRing, Namespace
from repro.simcloud import SwiftCluster


@pytest.fixture
def mw() -> H2Middleware:
    middleware = H2Middleware(
        node_id=1,
        store=SwiftCluster.fast().store,
        config=H2Config(auto_merge=False),
    )
    middleware.create_account("alice")
    return middleware


def submit(mw, ns, name, deleted=False):
    child = Child(
        name=name,
        timestamp=mw.next_timestamp(),
        kind=KIND_FILE,
        deleted=deleted,
    )
    return mw.submit_patch(ns, [child])


class TestMergeRing:
    def test_merge_applies_and_clears_chain(self, mw):
        root = Namespace.root("alice")
        submit(mw, root, "f")
        fd = mw.fd_cache.get_or_create(root)
        assert fd.dirty
        assert mw.merger.merge_ring(root, foreground=True)
        assert not fd.dirty
        assert fd.ring.get("f") is not None

    def test_merge_noop_on_clean_ring(self, mw):
        root = Namespace.root("alice")
        assert not mw.merger.merge_ring(root)

    def test_chain_order_respected(self, mw):
        root = Namespace.root("alice")
        submit(mw, root, "f")
        submit(mw, root, "f", deleted=True)  # later: tombstone wins
        mw.merger.merge_ring(root, foreground=True)
        fd = mw.fd_cache.get_or_create(root)
        assert fd.ring.get("f") is None
        assert fd.ring.get_any("f").deleted

    def test_counters(self, mw):
        root = Namespace.root("alice")
        submit(mw, root, "a")
        submit(mw, root, "b")
        mw.merger.merge_ring(root, foreground=True)
        assert mw.merger.merges == 1
        assert mw.merger.patches_applied == 2

    def test_run_until_clean_covers_many_rings(self, mw):
        root = Namespace.root("alice")
        mw.mkdir("alice", "/d1")
        mw.mkdir("alice", "/d2")
        assert len(mw.fd_cache.dirty_descriptors()) >= 1
        merged = mw.merger.run_until_clean()
        assert merged >= 1
        assert not mw.fd_cache.dirty_descriptors()

    def test_merged_ring_visible_in_store(self, mw):
        from repro.core import loads_ring, namering_key

        root = Namespace.root("alice")
        submit(mw, root, "durable")
        mw.merger.merge_ring(root, foreground=True)
        stored = loads_ring(mw.store.get(namering_key(root)).data)
        assert stored.get("durable") is not None

    def test_patch_objects_retired_after_merge(self, mw):
        root = Namespace.root("alice")
        patch = submit(mw, root, "f")
        assert mw.store.exists(patch.object_name)
        mw.merger.merge_ring(root, foreground=True)
        assert not mw.store.exists(patch.object_name)

    def test_blocked_merge_defers_and_reports_false(self, mw):
        root = Namespace.root("alice")
        submit(mw, root, "f")
        mw.block_merging()
        assert not mw.merger.merge_ring(root, foreground=True)
        assert mw.fd_cache.get_or_create(root).dirty
        mw.unblock_merging()
        assert mw.merger.merge_ring(root, foreground=True)
