"""Regression tests for the PR 5 background write-back fixes.

Two paths used to write rings to the store without merging the stored
version first, so entries the store gained from *peers* (and which the
local cache never absorbed, e.g. under message loss) could be durably
erased:

* ``_compact_in_use``'s compaction write-back (now
  ``_write_back_compacted``, read-merge-write) -- the clobber is also
  pinned as DST corpus case ``seed5-396e4dcbd98e.json`` via the
  ``tests.dst.tweaks:blind_compaction_write`` tweak;
* ``BackgroundMerger._apply``, which folded the chain into the cached
  ring and PUT the result -- now unified on ``store_ring_merged``.
"""

import pytest

from repro.core import Child, H2CloudFS, H2Config, KIND_FILE, NameRing
from repro.simcloud import MessageLoss, SwiftCluster
from repro.simcloud.errors import ObjectNotFound


def lost_gossip_pair() -> H2CloudFS:
    """Two middlewares that can only communicate through the store."""
    return H2CloudFS(
        SwiftCluster.fast(),
        account="alice",
        middlewares=2,
        message_loss=MessageLoss(1.0, seed=11),
    )


def stored_ring(mw, ns) -> NameRing:
    from repro.core import formatter
    from repro.core.namespace import namering_key

    return formatter.loads_ring(mw.store.get(namering_key(ns)).data)


class TestCompactionWriteBack:
    def build_stale_cache(self, fs):
        """mw0 caches /d with a tombstone; the store additionally holds
        ``peer-only`` (merged by mw1, never gossiped to mw0)."""
        mw0, mw1 = fs.middlewares
        mw0.mkdir("alice", "/d")
        mw0.write_file("alice", "/d/doomed", b"x")
        mw0.delete_file("alice", "/d/doomed")  # mw0's ring: tombstone
        mw1.write_file("alice", "/d/peer-only", b"y")
        ns = mw0.lookup.resolve_dir("alice", "/d")
        mw1.fd_cache.drop_clean()  # only the store still holds peer-only
        return mw0, ns

    def test_compaction_preserves_store_only_entries(self):
        fs = lost_gossip_pair()
        mw0, ns = self.build_stale_cache(fs)
        fd = mw0.fd_cache.get_or_create(ns)
        assert fd.ring.needs_compaction
        mw0.list_dir("alice", "/d")  # triggers compact-in-use
        assert not fd.ring.needs_compaction  # the compaction did run
        stored = stored_ring(mw0, ns)
        assert stored.get("peer-only") is not None  # ...without clobbering
        assert stored.get_any("doomed") is None  # tombstone really gone

    def test_write_back_never_resurrects_a_deleted_ring(self):
        """If the ring object vanished (rmdir + GC) the compaction
        write-back must not recreate it from the cache."""
        fs = lost_gossip_pair()
        mw0, ns = self.build_stale_cache(fs)
        from repro.core.namespace import namering_key

        mw0.store.delete(namering_key(ns))
        fd = mw0.fd_cache.get_or_create(ns)
        mw0._write_back_compacted(fd)
        with pytest.raises(ObjectNotFound):
            mw0.store.get(namering_key(ns))


class TestMergerUsesMergedWritePath:
    def test_apply_preserves_concurrent_store_entries(self):
        """A merge folding mw0's chain must not erase a child another
        middleware merged into the stored ring in the meantime."""
        fs = H2CloudFS(
            SwiftCluster.fast(),
            account="alice",
            middlewares=2,
            config=H2Config(auto_merge=False),
            message_loss=MessageLoss(1.0, seed=11),
        )
        mw0, mw1 = fs.middlewares
        mw0.mkdir("alice", "/d")
        mw0.merger.run_until_clean()
        ns = mw0.lookup.resolve_dir("alice", "/d")
        # mw0 has a pending (unmerged) patch...
        mw0.submit_patch(
            ns,
            [Child("local", mw0.next_timestamp(), kind=KIND_FILE)],
        )
        # ...while mw1 writes and merges a different child.
        mw1.write_file("alice", "/d/remote", b"z")
        mw1.merger.run_until_clean()
        # mw0's merge folds its chain; read-merge-write keeps "remote".
        assert mw0.merger.merge_ring(ns, foreground=True)
        stored = stored_ring(mw0, ns)
        assert stored.get("local") is not None
        assert stored.get("remote") is not None
