"""Tests for streaming writes and the §3.3.3b blocking rule."""

import pytest

from repro.core import H2CloudFS, H2Config
from repro.simcloud import IsADirectory, InvalidPath, SparseData, SwiftCluster


@pytest.fixture
def fs() -> H2CloudFS:
    return H2CloudFS(SwiftCluster.fast(), account="alice")


class TestFileWriter:
    def test_chunked_write_round_trip(self, fs):
        writer = fs.open_write("/movie.mkv")
        writer.write(b"part1-").write(b"part2-").write(b"part3")
        child = writer.close()
        assert child.size == len(b"part1-part2-part3")
        assert fs.read("/movie.mkv") == b"part1-part2-part3"

    def test_context_manager_closes(self, fs):
        with fs.open_write("/f") as writer:
            writer.write(b"data")
        assert fs.read("/f") == b"data"

    def test_context_manager_aborts_on_error(self, fs):
        with pytest.raises(RuntimeError):
            with fs.open_write("/f") as writer:
                writer.write(b"partial")
                raise RuntimeError("client died")
        assert not fs.exists("/f")
        assert not fs.middlewares[0].merge_blocked

    def test_abort_leaves_no_trace(self, fs):
        writer = fs.open_write("/f")
        writer.write(b"never")
        writer.abort()
        assert not fs.exists("/f")
        names = [n for n in fs.store.names() if n.startswith("f:")]
        assert names == []

    def test_empty_stream(self, fs):
        fs.open_write("/empty").close()
        assert fs.read("/empty") == b""

    def test_sparse_chunks(self, fs):
        writer = fs.open_write("/huge")
        writer.write(SparseData(size=1 << 30, tag="a"))
        writer.write(SparseData(size=1 << 30, tag="b"))
        child = writer.close()
        assert child.size == 2 << 30

    def test_write_after_close_rejected(self, fs):
        writer = fs.open_write("/f")
        writer.close()
        with pytest.raises(InvalidPath):
            writer.write(b"late")

    def test_bad_chunk_type(self, fs):
        writer = fs.open_write("/f")
        with pytest.raises(TypeError):
            writer.write("a string")
        writer.abort()

    def test_directory_target_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.open_write("/d")

    def test_bytes_buffered(self, fs):
        writer = fs.open_write("/f")
        writer.write(b"12345").write(SparseData(10, tag="x"))
        assert writer.bytes_buffered == 15
        writer.abort()


class TestBlockingRule:
    def test_merging_deferred_while_stream_open(self):
        fs = H2CloudFS(
            SwiftCluster.fast(),
            account="alice",
            config=H2Config(auto_merge=False),
        )
        mw = fs.middlewares[0]
        fs.mkdir("/d")  # leaves a patch chained (auto_merge off)
        assert mw.fd_cache.dirty_descriptors()
        writer = fs.open_write("/stream")
        assert mw.merge_blocked
        assert mw.merger.run_once() == 0  # blocked: nothing merges
        assert mw.fd_cache.dirty_descriptors()
        writer.write(b"data").close()
        assert not mw.merge_blocked
        assert mw.merger.run_until_clean() > 0
        assert fs.read("/stream") == b"data"

    def test_patch_submitted_after_payload_durable(self, fs):
        """The ordering guarantee: bytes land before the ring points."""
        ledger = fs.store.ledger
        writer = fs.open_write("/ordered")
        puts_before = ledger.puts
        writer.write(b"payload")
        assert ledger.puts == puts_before  # nothing stored mid-stream
        writer.close()
        assert ledger.puts > puts_before
        assert fs.listdir("/") == ["ordered"]

    def test_nested_streams_block_until_all_closed(self, fs):
        mw = fs.middlewares[0]
        a = fs.open_write("/a")
        b = fs.open_write("/b")
        a.write(b"1").close()
        assert mw.merge_blocked  # b is still open
        b.write(b"2").close()
        assert not mw.merge_blocked
        assert fs.read("/a") == b"1"
        assert fs.read("/b") == b"2"

    def test_unbalanced_unblock_rejected(self, fs):
        with pytest.raises(RuntimeError):
            fs.middlewares[0].unblock_merging()
