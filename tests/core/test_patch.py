"""Tests for patches, patch chains and patch numbering (paper §3.3.2)."""

import pytest

from repro.core import Child, KIND_FILE, NameRing, Namespace, Patch, PatchChain, PatchCounter
from repro.simcloud import Timestamp


NS = Namespace("97.1.100")


def payload(name: str, t: int, deleted: bool = False) -> NameRing:
    child = Child(name=name, timestamp=Timestamp(t, t, 0), kind=KIND_FILE, deleted=deleted)
    return NameRing(children={name: child})


def make_patch(seq: int, name: str = "f", t: int = 1, node: int = 1) -> Patch:
    return Patch(target_ns=NS, node_id=node, patch_seq=seq, payload=payload(name, t))


class TestPatch:
    def test_object_name_encodes_ring_node_and_seq(self):
        patch = make_patch(3, node=1)
        assert patch.object_name == "patch:97.1.100:Node01.Patch000003"

    def test_wire_round_trip(self):
        patch = make_patch(2, name="hello", t=9)
        back = Patch.from_bytes(NS, 1, 2, patch.to_bytes())
        assert back.payload.children == patch.payload.children
        assert back.object_name == patch.object_name


class TestPatchChain:
    def test_append_and_fold_in_order(self):
        chain = PatchChain(target_ns=NS)
        chain.append(make_patch(0, t=1))
        chain.append(make_patch(1, t=5))
        chain.append(make_patch(2, t=3))
        folded = chain.fold()
        # front-to-back LWW: the t=5 tuple survives the t=3 one
        assert folded.get("f").timestamp == Timestamp(5, 5, 0)
        assert len(chain) == 3

    def test_fold_combines_distinct_children(self):
        chain = PatchChain(target_ns=NS)
        chain.append(make_patch(0, name="a"))
        chain.append(
            Patch(target_ns=NS, node_id=1, patch_seq=1, payload=payload("b", 2))
        )
        assert set(chain.fold().children) == {"a", "b"}

    def test_wrong_target_rejected(self):
        chain = PatchChain(target_ns=Namespace("1.1.1"))
        with pytest.raises(ValueError):
            chain.append(make_patch(0))

    def test_non_increasing_seq_rejected(self):
        chain = PatchChain(target_ns=NS)
        chain.append(make_patch(5))
        with pytest.raises(ValueError):
            chain.append(make_patch(5))
        with pytest.raises(ValueError):
            chain.append(make_patch(4))

    def test_clear_drains(self):
        chain = PatchChain(target_ns=NS)
        chain.append(make_patch(0))
        drained = chain.clear()
        assert len(drained) == 1
        assert not chain
        assert chain.fold().children == {}

    def test_deletion_patch_tombstones(self):
        chain = PatchChain(target_ns=NS)
        chain.append(make_patch(0, name="f", t=1))
        dead = Patch(
            target_ns=NS,
            node_id=1,
            patch_seq=1,
            payload=payload("f", 9, deleted=True),
        )
        chain.append(dead)
        folded = chain.fold()
        assert folded.get("f") is None
        assert folded.get_any("f").deleted


class TestPatchCounter:
    def test_per_ring_sequences(self):
        counter = PatchCounter(node_id=1)
        a, b = Namespace("1.1.1"), Namespace("2.1.1")
        assert counter.next_seq(a) == 0
        assert counter.next_seq(a) == 1
        assert counter.next_seq(b) == 0
        assert counter.next_seq(a) == 2
