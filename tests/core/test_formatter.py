"""Formatter round-trip and robustness tests (paper §4.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Child,
    DirectoryRecord,
    FormatError,
    KIND_DIR,
    KIND_FILE,
    NameRing,
    dumps_directory,
    dumps_patch,
    dumps_ring,
    loads_directory,
    loads_patch,
    loads_ring,
)
from repro.simcloud import Timestamp


def ring_of(*children: Child) -> NameRing:
    return NameRing(children={c.name: c for c in children})


SAMPLE = ring_of(
    Child(name="cat", timestamp=Timestamp(10, 1, 0), kind=KIND_FILE, size=5, etag="e1"),
    Child(name="bin", timestamp=Timestamp(11, 2, 1), kind=KIND_DIR, ns="5.1.9"),
    Child(name="gone", timestamp=Timestamp(12, 3, 0), kind=KIND_FILE, deleted=True),
)


class TestNameRingFormat:
    def test_round_trip(self):
        assert loads_ring(dumps_ring(SAMPLE)).children == SAMPLE.children

    def test_output_is_ascii(self):
        dumps_ring(SAMPLE).decode("ascii")  # must not raise

    def test_tuples_alphabetical(self):
        """Paper §4.4: tuples are alphabetically sorted by name."""
        text = dumps_ring(SAMPLE).decode()
        lines = [ln.split("|")[0] for ln in text.splitlines()[1:]]
        assert lines == sorted(lines)

    def test_empty_ring(self):
        data = dumps_ring(NameRing.empty())
        assert loads_ring(data).children == {}

    def test_unicode_names_survive(self):
        ring = ring_of(
            Child(name="файл-θ.txt", timestamp=Timestamp(1, 1, 0), kind=KIND_FILE)
        )
        data = dumps_ring(ring)
        data.decode("ascii")  # wire stays ASCII
        assert loads_ring(data).get("файл-θ.txt") is not None

    def test_structural_chars_in_names_survive(self):
        evil = "a|b%c\nd"
        ring = ring_of(Child(name=evil, timestamp=Timestamp(1, 1, 0), kind=KIND_FILE))
        assert loads_ring(dumps_ring(ring)).get(evil) is not None

    def test_bad_magic_rejected(self):
        with pytest.raises(FormatError):
            loads_ring(b"NOTRING 1\n")

    def test_patch_magic_differs(self):
        data = dumps_patch(SAMPLE)
        assert data.startswith(b"H2PATCH")
        with pytest.raises(FormatError):
            loads_ring(data)  # a patch is not a NameRing object
        assert loads_patch(data).children == SAMPLE.children

    def test_truncated_tuple_rejected(self):
        with pytest.raises(FormatError):
            loads_ring(b"H2NR 1\nname|only|three\n")

    def test_non_ascii_bytes_rejected(self):
        with pytest.raises(FormatError):
            loads_ring("H2NR 1\nf\xff|1.1.1|file|-|-|0|-\n".encode("latin-1"))

    def test_version_mismatch_rejected(self):
        with pytest.raises(FormatError):
            loads_ring(b"H2NR 99\n")

    def test_empty_object_rejected(self):
        with pytest.raises(FormatError):
            loads_ring(b"")


_any_name = st.text(min_size=1, max_size=20).filter(
    lambda s: "\x00" not in s
)
_children = st.builds(
    lambda name, wall, seq, node, kind, deleted, size, etag: Child(
        name=name,
        timestamp=Timestamp(wall, seq, node),
        kind=kind,
        deleted=deleted,
        ns="9.9.9" if kind == KIND_DIR else None,
        size=size,
        etag=etag,
    ),
    _any_name,
    st.integers(0, 10**9),
    st.integers(0, 10**4),
    st.integers(0, 64),
    st.sampled_from([KIND_FILE, KIND_DIR]),
    st.booleans(),
    st.integers(0, 10**12),
    st.sampled_from(["", "abc123", "d41d8cd98f00b204e9800998ecf8427e"]),
)


class TestRoundTripProperty:
    @given(st.lists(_children, max_size=10))
    @settings(max_examples=150)
    def test_any_ring_round_trips(self, children):
        ring = NameRing(children={c.name: c for c in children})
        recovered = loads_ring(dumps_ring(ring))
        assert recovered.children == ring.children

    @given(st.lists(_children, max_size=6))
    @settings(max_examples=50)
    def test_serialization_canonical(self, children):
        """Equal rings serialize identically (etag-stable objects)."""
        ring = NameRing(children={c.name: c for c in children})
        assert dumps_ring(ring) == dumps_ring(
            NameRing(children=dict(reversed(list(ring.children.items()))))
        )


class TestDirectoryFormat:
    def test_round_trip(self):
        record = DirectoryRecord(
            name="ubuntu", ns="6.1.1469346604539", parent_ns="root.alice",
            created=Timestamp(5, 1, 2),
        )
        assert loads_directory(dumps_directory(record)) == record

    def test_root_record_has_no_parent(self):
        record = DirectoryRecord(
            name="/", ns="root.a", parent_ns=None, created=Timestamp(0, 1, 0)
        )
        assert loads_directory(dumps_directory(record)).parent_ns is None

    def test_unicode_dir_name(self):
        record = DirectoryRecord(
            name="папка", ns="1.1.1", parent_ns="root.a", created=Timestamp(1, 1, 1)
        )
        data = dumps_directory(record)
        data.decode("ascii")
        assert loads_directory(data).name == "папка"

    def test_bad_magic(self):
        with pytest.raises(FormatError):
            loads_directory(b"H2NR 1\n")

    def test_missing_field(self):
        with pytest.raises(FormatError):
            loads_directory(b"H2DIR 1\nname x\nns 1.1.1\n")


class TestParserErrorTaxonomy:
    """Corrupt-but-readable bytes must surface as FormatError, never as
    an uncaught ValueError (the bugfix sweep's parser-taxonomy half)."""

    def test_non_numeric_ring_version_is_format_error(self):
        with pytest.raises(FormatError):
            loads_ring(b"H2NR one\n")

    def test_non_numeric_patch_version_is_format_error(self):
        with pytest.raises(FormatError):
            loads_patch(b"H2PATCH x1\n")

    def test_malformed_timestamp_is_format_error(self):
        with pytest.raises(FormatError):
            loads_ring(b"H2NR 1\nf|not-a-ts|file|-|-|0|-\n")

    def test_malformed_size_is_format_error(self):
        with pytest.raises(FormatError):
            loads_ring(b"H2NR 1\nf|1.1.1|file|-|-|big|-\n")

    def test_duplicate_tuple_name_is_format_error(self):
        data = b"H2NR 1\nf|1.1.1|file|-|-|0|-\nf|2.1.1|file|-|-|0|-\n"
        with pytest.raises(FormatError):
            loads_ring(data)

    def test_directory_version_enforced(self):
        with pytest.raises(FormatError):
            loads_directory(b"H2DIR 99\nname x\nns 1.1.1\nparent -\ncreated 1.1.1\n")
        with pytest.raises(FormatError):
            loads_directory(b"H2DIR abc\nname x\nns 1.1.1\nparent -\ncreated 1.1.1\n")

    def test_directory_missing_version_token(self):
        with pytest.raises(FormatError):
            loads_directory(b"H2DIR\nname x\nns 1.1.1\nparent -\ncreated 1.1.1\n")

    def test_directory_duplicate_field_is_format_error(self):
        data = (
            b"H2DIR 1\nname x\nname y\nns 1.1.1\nparent -\ncreated 1.1.1\n"
        )
        with pytest.raises(FormatError):
            loads_directory(data)

    def test_directory_malformed_created_is_format_error(self):
        data = b"H2DIR 1\nname x\nns 1.1.1\nparent -\ncreated nope\n"
        with pytest.raises(FormatError):
            loads_directory(data)


class TestManifestFormat:
    def _manifest(self):
        from repro.core import ShardDigest, ShardManifest

        return ShardManifest(
            shard_count=2,
            epoch=3,
            digests=(
                ShardDigest(version=Timestamp(5, 1, 0), crc=123, entries=7),
                ShardDigest(version=Timestamp(9, 2, 1), crc=0, entries=0),
            ),
        )

    def test_round_trip(self):
        from repro.core import dumps_manifest, loads_manifest

        manifest = self._manifest()
        assert loads_manifest(dumps_manifest(manifest)) == manifest

    def test_is_manifest_dispatch(self):
        from repro.core import dumps_manifest
        from repro.core.formatter import is_manifest

        assert is_manifest(dumps_manifest(self._manifest()))
        assert not is_manifest(dumps_ring(SAMPLE))
        assert not is_manifest(b"")

    def test_ring_parser_rejects_manifest(self):
        from repro.core import dumps_manifest

        with pytest.raises(FormatError):
            loads_ring(dumps_manifest(self._manifest()))

    def test_manifest_parser_rejects_ring(self):
        from repro.core import loads_manifest

        with pytest.raises(FormatError):
            loads_manifest(dumps_ring(SAMPLE))

    def test_shard_count_mismatch_rejected(self):
        from repro.core import dumps_manifest, loads_manifest

        data = dumps_manifest(self._manifest())
        truncated = b"\n".join(data.splitlines()[:-1]) + b"\n"
        with pytest.raises(FormatError):
            loads_manifest(truncated)

    def test_non_numeric_manifest_version_is_format_error(self):
        from repro.core import loads_manifest

        with pytest.raises(FormatError):
            loads_manifest(b"H2NRM vv\nshards 1\nepoch 1\n")

    def test_shard_payload_round_trip(self):
        from repro.core.formatter import dumps_shard, loads_shard

        data = dumps_shard(SAMPLE)
        assert data.startswith(b"H2NRS ")
        assert loads_shard(data).children == SAMPLE.children
        with pytest.raises(FormatError):
            loads_ring(data)  # shard payloads are not mono rings
