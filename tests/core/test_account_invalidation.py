"""Regression: account deletion must invalidate peer FD caches.

``delete_account`` used to remove the root ring and directory objects
but left any peer middleware that had the ring cached serving LISTs for
a dead account.  Deletion now purges the local descriptor and gossips
an invalidation rumor that purges every peer's copy.
"""

import pytest

from repro.core import H2CloudFS, Namespace, Rumor
from repro.simcloud import PathNotFound, SwiftCluster


def warm_peers(n: int = 3) -> H2CloudFS:
    """A 3-middleware deployment where every peer has the root cached."""
    fs = H2CloudFS(SwiftCluster.fast(), account="alice", middlewares=n)
    fs.mkdir("/d")
    fs.pump()
    root = Namespace.root("alice")
    for mw in fs.middlewares:
        mw.load_ring(root)  # warm every cache with the doomed ring
        assert root in mw.fd_cache
    return fs


class TestAccountInvalidation:
    def test_delete_account_purges_every_peer_cache(self):
        fs = warm_peers()
        root = Namespace.root("alice")
        fs.middlewares[0].delete_account("alice", force=True)
        fs.network.converge()
        for mw in fs.middlewares:
            assert root not in mw.fd_cache

    def test_peers_stop_serving_the_dead_account(self):
        fs = warm_peers()
        fs.middlewares[0].delete_account("alice", force=True)
        fs.network.converge()
        for mw in fs.middlewares:
            assert not mw.account_exists("alice")
            with pytest.raises(PathNotFound):
                mw.list_dir("alice", "/")

    def test_deleting_middleware_purges_itself_without_gossip(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")  # no network
        root = Namespace.root("alice")
        mw = fs.middlewares[0]
        mw.load_ring(root)
        assert root in mw.fd_cache
        mw.delete_account("alice", force=True)
        assert root not in mw.fd_cache

    def test_invalidation_rumor_forwards_only_while_it_drops(self):
        fs = warm_peers()
        root = Namespace.root("alice")
        second = fs.middlewares[1]
        # A peer that already dropped its copy stops the broadcast.
        second.fd_cache.purge(root)
        rumor = Rumor(
            ns=root, origin=1, ts=second.next_timestamp(), invalidate=True
        )
        assert not second.on_gossip(rumor)
        # A peer still holding the ring drops it and forwards.
        third = fs.middlewares[2]
        assert third.on_gossip(rumor)
        assert root not in third.fd_cache

    def test_dirty_peer_descriptors_are_dropped_too(self):
        # A pinned (dirty) descriptor for a dead account would leak
        # forever: purge must override the dirty-pinning rule.
        from repro.core.namering import NameRing
        from repro.core.patch import Patch

        fs = warm_peers()
        root = Namespace.root("alice")
        third = fs.middlewares[2]
        fd = third.fd_cache.get_or_create(root)
        fd.chain.append(
            Patch(
                target_ns=root,
                node_id=third.node_id,
                patch_seq=1,
                payload=NameRing.empty(),
            )
        )
        assert fd.dirty
        fs.middlewares[0].delete_account("alice", force=True)
        fs.network.converge()
        assert root not in third.fd_cache
        assert fd not in third.fd_cache.dirty_descriptors()
