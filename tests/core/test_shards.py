"""Unit tests for :mod:`repro.core.shards` -- policy math, the shard
hash, and the crash-ordered write/read round-trip on a real store."""

import pytest

from repro.core import Child, KIND_FILE, NameRing, ShardPolicy
from repro.core import formatter, shards
from repro.core.namespace import Namespace, namering_key, ring_shard_key
from repro.simcloud import SwiftCluster, Timestamp
from repro.simcloud.errors import ObjectNotFound


def ring_of(n: int, deleted: int = 0) -> NameRing:
    children = {}
    for i in range(n + deleted):
        name = f"f{i:05d}"
        children[name] = Child(
            name=name,
            timestamp=Timestamp(i + 1, 1, 0),
            kind=KIND_FILE,
            deleted=i >= n,
        )
    return NameRing(children=children)


POLICY = ShardPolicy(
    enabled=True, split_threshold=8, merge_threshold=3, target_entries=5
)


class TestShardPolicy:
    def test_defaults_disabled(self):
        assert not ShardPolicy().enabled
        assert not ShardPolicy().should_split(10**6)

    def test_hysteresis_band(self):
        assert POLICY.should_split(8)
        assert not POLICY.should_split(7)
        assert POLICY.should_collapse(3)
        assert not POLICY.should_collapse(4)
        # The band between merge and split thresholds is sticky in both
        # directions: a directory at 5 entries neither splits nor merges.
        assert not POLICY.should_split(5)
        assert not POLICY.should_collapse(5)

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            ShardPolicy(split_threshold=4, merge_threshold=4)
        with pytest.raises(ValueError):
            ShardPolicy(target_entries=0)

    def test_desired_count_power_of_two(self):
        for entries in (0, 1, 9, 10, 11, 40, 41, 1000):
            count = POLICY.desired_count(entries)
            assert count & (count - 1) == 0 and count >= 2
            assert count * POLICY.target_entries >= entries or (
                count == shards.MAX_SHARDS
            )
        assert POLICY.desired_count(11) == 4  # 2 shards * 5 < 11

    def test_desired_count_capped(self):
        assert POLICY.desired_count(10**9) == shards.MAX_SHARDS


class TestSplitMath:
    def test_split_partitions_exactly(self):
        ring = ring_of(40, deleted=5)
        pieces = shards.split_ring(ring, 4)
        assert len(pieces) == 4
        rebuilt = {}
        for k, piece in enumerate(pieces):
            for name in piece.children:
                assert shards.shard_of(name, 4) == k
            rebuilt.update(piece.children)
        assert rebuilt == dict(ring.children)  # tombstones ride along

    def test_empty_slots_materialized(self):
        pieces = shards.split_ring(ring_of(1), 8)
        assert len(pieces) == 8
        assert sum(len(p.children) for p in pieces) == 1

    def test_manifest_of_digests(self):
        ring = ring_of(20)
        pieces = shards.split_ring(ring, 4)
        manifest = shards.manifest_of(pieces, epoch=1)
        assert manifest.total_entries == 20
        assert manifest.version == ring.version
        for k, piece in enumerate(pieces):
            assert manifest.digests[k] == shards.digest_of(piece)


class TestStoredRoundTrip:
    def _store(self):
        return SwiftCluster.fast().store

    def _ns(self):
        return Namespace("7.1.42")

    def test_mono_when_small(self):
        store, ns = self._store(), self._ns()
        ring = ring_of(4)
        manifest = shards.write_stored(store, ns, ring, POLICY, None)
        assert manifest is None
        loaded = shards.read_stored(store, ns)
        assert loaded.manifest is None
        assert loaded.ring.children == ring.children

    def test_split_and_read_back(self):
        store, ns = self._store(), self._ns()
        ring = ring_of(40)
        manifest = shards.write_stored(store, ns, ring, POLICY, None)
        assert manifest is not None and manifest.epoch == 1
        assert formatter.is_manifest(store.get(namering_key(ns)).data)
        loaded = shards.read_stored(store, ns)
        assert loaded.ring.children == ring.children
        assert loaded.manifest == manifest

    def test_reshard_bumps_epoch_and_drops_old_payloads(self):
        store, ns = self._store(), self._ns()
        m1 = shards.write_stored(store, ns, ring_of(10), POLICY, None)
        m2 = shards.write_stored(store, ns, ring_of(200), POLICY, m1)
        assert m2.epoch == m1.epoch + 1
        assert m2.shard_count > m1.shard_count
        for key in shards.shard_keys(ns, m1):
            assert not store.exists(key)
        assert shards.read_stored(store, ns).ring.children == ring_of(200).children

    def test_collapse_back_to_mono(self):
        store, ns = self._store(), self._ns()
        m1 = shards.write_stored(store, ns, ring_of(40), POLICY, None)
        small = ring_of(2)
        m2 = shards.write_stored(store, ns, small, POLICY, m1)
        assert m2 is None
        assert not formatter.is_manifest(store.get(namering_key(ns)).data)
        for key in shards.shard_keys(ns, m1):
            assert not store.exists(key)
        assert shards.read_stored(store, ns).ring.children == small.children

    def test_steady_state_touches_only_dirty_shards(self):
        store, ns = self._store(), self._ns()
        # 30 entries across 8 shards leaves headroom: +1 entry stays
        # below the reshard point (8 shards * 5 target = 40).
        ring = ring_of(30)
        m1 = shards.write_stored(store, ns, ring, POLICY, None)
        # One new child lands in exactly one shard.
        extra = Child(name="zzz-new", timestamp=Timestamp(999, 1, 0), kind=KIND_FILE)
        updated = ring.merge(NameRing(children={extra.name: extra}))
        before = {
            key: store.get(key).etag for key in shards.shard_keys(ns, m1)
        }
        m2 = shards.write_stored(store, ns, updated, POLICY, m1)
        assert m2.epoch == m1.epoch
        touched = [
            key
            for key in shards.shard_keys(ns, m2)
            if store.get(key).etag != before[key]
        ]
        assert len(touched) == 1
        assert touched[0] == ring_shard_key(
            ns, m1.epoch, shards.shard_of(extra.name, m1.shard_count)
        )

    def test_unchanged_write_elides_everything(self):
        store, ns = self._store(), self._ns()
        ring = ring_of(40)
        m1 = shards.write_stored(store, ns, ring, POLICY, None)
        nr_etag = store.get(namering_key(ns)).etag
        m2 = shards.write_stored(store, ns, ring, POLICY, m1)
        assert m2 == m1
        assert store.get(namering_key(ns)).etag == nr_etag

    def test_delete_stored_removes_payloads(self):
        store, ns = self._store(), self._ns()
        m1 = shards.write_stored(store, ns, ring_of(40), POLICY, None)
        shards.delete_stored(store, ns)
        assert not store.exists(namering_key(ns))
        for key in shards.shard_keys(ns, m1):
            assert not store.exists(key)

    def test_read_missing_raises(self):
        with pytest.raises(ObjectNotFound):
            shards.read_stored(self._store(), self._ns())

    def test_missing_listed_shard_reads_empty(self):
        """A torn write that lost one payload degrades to partial data,
        not a crash -- fsck reports it, repair/gossip refill it."""
        store, ns = self._store(), self._ns()
        m1 = shards.write_stored(store, ns, ring_of(40), POLICY, None)
        victim = shards.shard_keys(ns, m1)[0]
        dropped = len(formatter.loads_shard(store.get(victim).data).children)
        store.delete(victim)
        loaded = shards.read_stored(store, ns)
        assert len(loaded.ring.children) == 40 - dropped

    def test_disabled_policy_always_collapses(self):
        """Turning the flag off after a split heals back to mono on the
        next write -- no stranded manifests."""
        store, ns = self._store(), self._ns()
        m1 = shards.write_stored(store, ns, ring_of(40), POLICY, None)
        off = ShardPolicy()
        m2 = shards.write_stored(store, ns, ring_of(40), off, m1)
        assert m2 is None
        assert not formatter.is_manifest(store.get(namering_key(ns)).data)
