"""Tests for the monitoring module."""

import pytest

from repro.core import H2CloudFS
from repro.core.monitoring import LatencyHistogram, Monitor, deployment_report
from repro.simcloud import SwiftCluster


class TestLatencyHistogram:
    def test_observe_and_mean(self):
        histogram = LatencyHistogram()
        for us in (1_000, 2_000, 3_000):
            histogram.observe(us)
        assert histogram.samples == 3
        assert histogram.mean_us == 2_000
        assert histogram.max_us == 3_000

    def test_buckets_cover_range(self):
        histogram = LatencyHistogram()
        histogram.observe(500)  # <=1ms
        histogram.observe(20_000)  # <=50ms
        histogram.observe(20_000_000)  # >10s overflow
        assert histogram.counts[0] == 1
        assert histogram.counts[2] == 1
        assert histogram.counts[-1] == 1

    def test_percentile_bucket(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.observe(5_000)
        histogram.observe(900_000)
        assert histogram.percentile_bucket(0.5) == "<=10ms"
        assert histogram.percentile_bucket(1.0) == "<=1000ms"

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile_bucket(0.0)
        assert LatencyHistogram().percentile_bucket(0.5) == "n/a"


class TestMonitor:
    def test_timed_records_ops(self):
        fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
        monitor = Monitor(fs.middlewares[0])
        monitor.timed("mkdir", lambda: fs.mkdir("/d"))
        monitor.timed("mkdir", lambda: fs.mkdir("/d2"))
        monitor.timed("list", lambda: fs.listdir("/"))
        snapshot = monitor.snapshot()
        assert snapshot["op.mkdir.count"] == 2
        assert snapshot["op.mkdir.mean_ms"] > 0
        assert snapshot["op.list.count"] == 1

    def test_snapshot_core_gauges(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        fs.write("/f", b"12345")
        snapshot = Monitor(fs.middlewares[0]).snapshot()
        assert snapshot["maintenance.patches_submitted"] == 1
        assert snapshot["store.puts"] > 0
        assert snapshot["store.bytes_in"] >= 5
        assert snapshot["fd_cache.size"] >= 1
        assert "gossip.rumors_sent" not in snapshot  # single middleware

    def test_gossip_gauges_with_network(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice", middlewares=2)
        fs.mkdir("/d")
        fs.pump()
        snapshot = Monitor(fs.middlewares[0]).snapshot()
        assert snapshot["gossip.rumors_sent"] >= 1
        assert snapshot["gossip.in_flight"] == 0

    def test_merge_blocked_gauge(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        writer = fs.open_write("/stream")
        assert Monitor(fs.middlewares[0]).snapshot()["maintenance.merge_blocked"] == 1
        writer.abort()
        assert Monitor(fs.middlewares[0]).snapshot()["maintenance.merge_blocked"] == 0


class TestDeploymentReport:
    def test_report_mentions_everything(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice", middlewares=2)
        fs.write("/f", b"x")
        fs.pump()
        report = deployment_report(fs)
        assert "alice" in report
        assert "middleware 1" in report and "middleware 2" in report
        assert "node 1" in report
        assert "patches" in report
