"""Tests for the monitoring module."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import H2CloudFS
from repro.core.monitoring import LatencyHistogram, Monitor, deployment_report
from repro.simcloud import SwiftCluster


class TestLatencyHistogram:
    def test_observe_and_mean(self):
        histogram = LatencyHistogram()
        for us in (1_000, 2_000, 3_000):
            histogram.observe(us)
        assert histogram.samples == 3
        assert histogram.mean_us == 2_000
        assert histogram.max_us == 3_000

    def test_buckets_cover_range(self):
        histogram = LatencyHistogram()
        histogram.observe(500)  # <=1ms
        histogram.observe(20_000)  # <=50ms
        histogram.observe(20_000_000)  # >10s overflow
        assert histogram.counts[0] == 1
        assert histogram.counts[2] == 1
        assert histogram.counts[-1] == 1

    def test_percentile_bucket(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.observe(5_000)
        histogram.observe(900_000)
        assert histogram.percentile_bucket(0.5) == "<=10ms"
        assert histogram.percentile_bucket(1.0) == "<=1000ms"

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile_bucket(0.0)
        assert LatencyHistogram().percentile_bucket(0.5) == "n/a"

    def test_interpolated_percentile(self):
        histogram = LatencyHistogram()
        for _ in range(9):
            histogram.observe(5_000)
        histogram.observe(9_999)  # all ten land in the (1ms, 10ms] bucket
        # rank 5 of 10: interpolate halfway into the bucket's range
        assert histogram.percentile(0.5) == pytest.approx(5_500.0)
        # q=1.0 clamps to the true maximum, not the bucket's upper bound
        assert histogram.percentile(1.0) == 9_999.0

    def test_percentile_empty_and_validation(self):
        assert LatencyHistogram().percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.01)

    def test_float_boundary_rank_regression(self):
        """``0.3 * 10`` is ``3.0000000000000004`` in binary floating
        point; the seed's ``ceil(q * samples)`` put p30-of-10 at rank 4.
        Observations 1..10ms spread one per boundary make any off-by-one
        rank visible as a bucket jump."""
        histogram = LatencyHistogram()
        for us in (400, 5_000, 9_000, 40_000, 90_000, 400_000,
                   900_000, 4_000_000, 9_000_000, 20_000_000):
            histogram.observe(us)
        assert histogram._rank(0.3) == 3
        assert histogram._rank(1.0) == 10
        assert histogram.percentile_bucket(0.3) == "<=10ms"
        assert histogram.percentile_bucket(1.0) == ">10s"


class TestLatencyHistogramProperties:
    @given(
        st.lists(
            st.integers(min_value=1, max_value=50_000_000),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=0.001, max_value=1.0),
    )
    def test_rank_is_valid_and_monotone(self, values, q):
        histogram = LatencyHistogram()
        for us in values:
            histogram.observe(us)
        rank = histogram._rank(q)
        assert 1 <= rank <= histogram.samples
        assert histogram._rank(1.0) == histogram.samples
        if q < 1.0:
            assert histogram._rank(q) <= histogram._rank(1.0)

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
    )
    def test_exact_boundary_ranks(self, k, n):
        """q = k/n over n samples must land exactly on rank k, for every
        representable fraction -- the seed failed whenever k/n * n
        rounded up."""
        if k > n:
            k, n = n, k
        histogram = LatencyHistogram()
        for _ in range(n):
            histogram.observe(1)
        assert histogram._rank(k / n) == k

    @given(
        st.lists(
            st.integers(min_value=1, max_value=50_000_000),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=0.001, max_value=1.0),
    )
    def test_percentile_bounded_and_monotone_in_q(self, values, q):
        histogram = LatencyHistogram()
        for us in values:
            histogram.observe(us)
        p = histogram.percentile(q)
        assert 0.0 <= p <= histogram.max_us
        assert histogram.percentile(1.0) >= p


class TestMonitor:
    def test_ops_recorded_automatically(self):
        # The Inbound API is instrumented at construction: no explicit
        # ``timed()`` wrapping needed (and wrapping would double-count).
        fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
        fs.mkdir("/d")
        fs.mkdir("/d2")
        fs.listdir("/")
        snapshot = fs.middlewares[0].monitor.snapshot()
        assert snapshot["op.mkdir.count"] == 2
        assert snapshot["op.mkdir.mean_ms"] > 0
        assert snapshot["op.mkdir.p99_ms"] >= snapshot["op.mkdir.p50_ms"]
        assert snapshot["op.list.count"] == 1

    def test_adhoc_monitor_shares_registry(self):
        # A hand-built Monitor binds to the middleware's registry: it
        # sees history (the seed rebuilt a fresh Monitor per report and
        # always saw empty op histograms).
        fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
        fs.mkdir("/d")
        monitor = Monitor(fs.middlewares[0])
        assert monitor.registry is fs.middlewares[0].metrics
        assert monitor.snapshot()["op.mkdir.count"] == 1

    def test_timed_custom_op(self):
        fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
        monitor = fs.middlewares[0].monitor
        monitor.timed("batch_import", lambda: fs.write("/f", b"x"))
        snapshot = monitor.snapshot()
        assert snapshot["op.batch_import.count"] == 1
        # The inner write is still recorded under its own op name.
        assert snapshot["op.write.count"] == 1

    def test_timed_failure_counts_error(self):
        from repro.simcloud.errors import PathNotFound

        fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
        with pytest.raises(PathNotFound):
            fs.read("/missing")
        snapshot = fs.middlewares[0].monitor.snapshot()
        assert snapshot["op.read.errors"] == 1
        assert "op.read.count" not in snapshot or snapshot["op.read.count"] == 0

    def test_snapshot_core_gauges(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        fs.write("/f", b"12345")
        snapshot = Monitor(fs.middlewares[0]).snapshot()
        assert snapshot["maintenance.patches_submitted"] == 1
        assert snapshot["store.puts"] > 0
        assert snapshot["store.bytes_in"] >= 5
        assert snapshot["fd_cache.size"] >= 1
        assert "gossip.rumors_sent" not in snapshot  # single middleware

    def test_gossip_gauges_with_network(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice", middlewares=2)
        fs.mkdir("/d")
        fs.pump()
        snapshot = Monitor(fs.middlewares[0]).snapshot()
        assert snapshot["gossip.rumors_sent"] >= 1
        assert snapshot["gossip.in_flight"] == 0

    def test_merge_blocked_gauge(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        writer = fs.open_write("/stream")
        assert Monitor(fs.middlewares[0]).snapshot()["maintenance.merge_blocked"] == 1
        writer.abort()
        assert Monitor(fs.middlewares[0]).snapshot()["maintenance.merge_blocked"] == 0


class TestDeploymentReport:
    def test_report_mentions_everything(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice", middlewares=2)
        fs.write("/f", b"x")
        fs.pump()
        report = deployment_report(fs)
        assert "alice" in report
        assert "middleware 1" in report and "middleware 2" in report
        assert "node 1" in report
        assert "patches" in report
