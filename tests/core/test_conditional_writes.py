"""Conditional (If-Match) writes: optimistic concurrency for sync clients."""

import pytest

from repro.core import H2CloudFS, H2Middleware, H2WebAPI
from repro.simcloud import PreconditionFailed, SwiftCluster


@pytest.fixture
def fs() -> H2CloudFS:
    fs = H2CloudFS(SwiftCluster.fast(), account="alice")
    fs.write("/doc", b"version-1")
    return fs


class TestIfMatch:
    def test_matching_etag_writes(self, fs):
        etag = fs.etag_of("/doc")
        fs.write("/doc", b"version-2", if_match=etag)
        assert fs.read("/doc") == b"version-2"

    def test_stale_etag_rejected_without_storing(self, fs):
        stale = fs.etag_of("/doc")
        fs.write("/doc", b"version-2")  # someone else updated
        with pytest.raises(PreconditionFailed) as err:
            fs.write("/doc", b"my-clobber", if_match=stale)
        assert err.value.expected == stale
        assert fs.read("/doc") == b"version-2"  # nothing clobbered

    def test_create_only_semantics(self, fs):
        fs.write("/fresh", b"first", if_match="")
        with pytest.raises(PreconditionFailed):
            fs.write("/fresh", b"second", if_match="")

    def test_unconditional_write_unaffected(self, fs):
        fs.write("/doc", b"v2")
        fs.write("/doc", b"v3")
        assert fs.read("/doc") == b"v3"

    def test_sync_client_conflict_loop(self, fs):
        """The retry dance: read -> conditional write -> on 412 re-read."""
        mine = fs.etag_of("/doc")
        fs.write("/doc", b"their-update")  # concurrent writer wins the race
        try:
            fs.write("/doc", b"my-update", if_match=mine)
            raise AssertionError("conflict went undetected")
        except PreconditionFailed:
            merged = fs.read("/doc") + b"+my-update"
            fs.write("/doc", merged, if_match=fs.etag_of("/doc"))
        assert fs.read("/doc") == b"their-update+my-update"

    def test_etag_of_directory_rejected(self, fs):
        from repro.simcloud import IsADirectory

        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.etag_of("/d")


class TestWebAPIConditional:
    def test_412_surface(self):
        api = H2WebAPI(H2Middleware(node_id=1, store=SwiftCluster.fast().store))
        api.put("/v1/alice")
        first = api.put("/v1/alice/f", b"one")
        etag = first.headers["ETag"]
        assert api.put(f"/v1/alice/f?if_match={etag}", b"two").status == 201
        stale = api.put(f"/v1/alice/f?if_match={etag}", b"three")
        assert stale.status == 412
        assert stale.reason == "Precondition Failed"
        assert api.get("/v1/alice/f").body == b"two"

    def test_create_only_via_query(self):
        api = H2WebAPI(H2Middleware(node_id=1, store=SwiftCluster.fast().store))
        api.put("/v1/alice")
        assert api.put("/v1/alice/new?if_match=", b"x").status == 201
        assert api.put("/v1/alice/new?if_match=", b"y").status == 412
