"""Tests for the bulk loader (write_many: one patch per batch)."""

import pytest

from repro.core import H2CloudFS
from repro.simcloud import IsADirectory, PathNotFound, SwiftCluster
from repro.testing import snapshot_of


@pytest.fixture
def fs() -> H2CloudFS:
    fs = H2CloudFS(SwiftCluster.fast(), account="alice")
    fs.mkdir("/d")
    return fs


class TestWriteMany:
    def test_equivalent_to_individual_writes(self, fs):
        fs.write_many("/d", [(f"f{i}", bytes([i])) for i in range(10)])
        other = H2CloudFS(SwiftCluster.fast(), account="alice")
        other.mkdir("/d")
        for i in range(10):
            other.write(f"/d/f{i}", bytes([i]))
        assert snapshot_of(fs) == snapshot_of(other)

    def test_single_patch_for_whole_batch(self, fs):
        before = fs.middlewares[0].patches_submitted
        fs.write_many("/d", [(f"f{i}", b"") for i in range(50)])
        assert fs.middlewares[0].patches_submitted == before + 1

    def test_reads_work_after_bulk(self, fs):
        fs.write_many("/d", [("a", b"1"), ("b", b"2")])
        assert fs.read("/d/a") == b"1"
        assert fs.read("/d/b") == b"2"
        assert fs.listdir("/d") == ["a", "b"]

    def test_empty_batch_is_noop(self, fs):
        before = fs.middlewares[0].patches_submitted
        fs.write_many("/d", [])
        assert fs.middlewares[0].patches_submitted == before

    def test_overwrite_directory_rejected_before_any_put(self, fs):
        fs.mkdir("/d/sub")
        puts_before = fs.store.ledger.puts
        with pytest.raises(IsADirectory):
            fs.write_many("/d", [("ok", b"1"), ("sub", b"2")])
        assert fs.store.ledger.puts == puts_before  # atomic veto

    def test_missing_directory(self, fs):
        with pytest.raises(PathNotFound):
            fs.write_many("/nope", [("f", b"")])

    def test_bulk_into_root(self, fs):
        fs.write_many("/", [("rootfile", b"r")])
        assert fs.read("/rootfile") == b"r"

    def test_bulk_cheaper_than_individual(self):
        def cost(bulk: bool) -> int:
            fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
            fs.mkdir("/d")
            items = [(f"f{i:03d}", b"x") for i in range(100)]
            if bulk:
                _, c = fs.clock.measure(lambda: fs.write_many("/d", items))
            else:
                def loop():
                    for name, data in items:
                        fs.write(f"/d/{name}", data)
                _, c = fs.clock.measure(loop)
            return c

        assert cost(bulk=True) < cost(bulk=False) / 3
