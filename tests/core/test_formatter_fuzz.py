"""Parser fuzzing: arbitrary bytes never escape the FormatError taxonomy.

The wire parsers (`loads_ring`, `loads_patch`, `loads_directory`,
`loads_manifest`, `loads_shard`) are fed attacker-ish inputs -- random
bytes, mutated valid payloads, and structured near-misses -- and must
either return a parsed value or raise :class:`FormatError`.  A bare
``ValueError``/``KeyError``/``UnicodeDecodeError`` leaking out is the
bug class the parser-taxonomy sweep fixed: callers catch FormatError to
route corrupt objects into the degraded/repair path, so any other
exception type crashes the middleware instead of healing the object.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Child,
    KIND_DIR,
    KIND_FILE,
    FormatError,
    NameRing,
    ShardDigest,
    ShardManifest,
    dumps_manifest,
    dumps_ring,
    loads_directory,
    loads_manifest,
    loads_patch,
    loads_ring,
)
from repro.core.formatter import dumps_shard, loads_shard
from repro.simcloud import Timestamp

PARSERS = [loads_ring, loads_patch, loads_directory, loads_manifest, loads_shard]

_line = st.text(
    alphabet=st.characters(min_codepoint=0, max_codepoint=0x7F), max_size=40
)

# Fragments biased toward the parsers' own grammar so mutations reach
# deep into field validation, not just the magic check.
_fragments = st.sampled_from(
    [b"H2NR 1\n", b"H2PATCH 1\n", b"H2DIR 1\n", b"H2NRM 1\n", b"H2NRS 1\n",
     b"name|1.1.1|file|-|-|0|-\n", b"shards 2\n", b"epoch 1\n",
     b"s 0|1.1.0|123|4\n", b"name x\n", b"ns 1.1.1\n", b"parent -\n",
     b"created 1.1.1\n", b"|||", b"%0A", b"0", b"-", b"\xff", b"\n"]
)


def _assert_taxonomy(parser, data: bytes) -> None:
    try:
        parser(data)
    except FormatError:
        pass  # the contract: corrupt bytes -> FormatError
    # Any other exception type propagates and fails the test.


class TestArbitraryBytes:
    @given(st.binary(max_size=200))
    @settings(max_examples=300)
    def test_random_bytes(self, data):
        for parser in PARSERS:
            _assert_taxonomy(parser, data)

    @given(st.lists(_fragments, max_size=12))
    @settings(max_examples=300)
    def test_grammar_shaped_bytes(self, parts):
        data = b"".join(parts)
        for parser in PARSERS:
            _assert_taxonomy(parser, data)

    @given(st.text(max_size=120))
    @settings(max_examples=200)
    def test_arbitrary_text(self, text):
        data = text.encode("utf-8")
        for parser in PARSERS:
            _assert_taxonomy(parser, data)


class TestMutatedValidPayloads:
    """Flip one byte of a valid object; parse must stay in-taxonomy."""

    _ring_bytes = dumps_ring(
        NameRing(
            children={
                "cat": Child(
                    name="cat", timestamp=Timestamp(10, 1, 0),
                    kind=KIND_FILE, size=5, etag="e1",
                ),
                "bin": Child(
                    name="bin", timestamp=Timestamp(11, 2, 1),
                    kind=KIND_DIR, ns="5.1.9",
                ),
            }
        )
    )
    _manifest_bytes = dumps_manifest(
        ShardManifest(
            shard_count=2,
            epoch=1,
            digests=(
                ShardDigest(version=Timestamp(5, 1, 0), crc=99, entries=3),
                ShardDigest(version=Timestamp.ZERO, crc=0, entries=0),
            ),
        )
    )

    @given(st.data())
    @settings(max_examples=300)
    def test_single_byte_mutations(self, data):
        base = data.draw(
            st.sampled_from([self._ring_bytes, self._manifest_bytes])
        )
        pos = data.draw(st.integers(0, len(base) - 1))
        byte = data.draw(st.integers(0, 255))
        mutated = base[:pos] + bytes([byte]) + base[pos + 1:]
        for parser in PARSERS:
            _assert_taxonomy(parser, mutated)

    @given(st.data())
    @settings(max_examples=150)
    def test_truncations(self, data):
        base = data.draw(
            st.sampled_from([self._ring_bytes, self._manifest_bytes])
        )
        cut = data.draw(st.integers(0, len(base)))
        for parser in PARSERS:
            _assert_taxonomy(parser, base[:cut])


_ts = st.builds(
    Timestamp, st.integers(0, 10**9), st.integers(0, 10**4), st.integers(0, 64)
)
_digest = st.builds(
    ShardDigest, _ts, st.integers(0, 2**32 - 1), st.integers(0, 10**6)
)


class TestManifestProperty:
    @given(
        st.integers(1, 16).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.integers(1, 99),
                st.lists(_digest, min_size=n, max_size=n),
            )
        )
    )
    @settings(max_examples=150)
    def test_any_manifest_round_trips(self, spec):
        count, epoch, digests = spec
        manifest = ShardManifest(
            shard_count=count, epoch=epoch, digests=tuple(digests)
        )
        assert loads_manifest(dumps_manifest(manifest)) == manifest

    def test_shard_crc_matches_zlib_of_payload_lines(self):
        """The digest CRC is pinned to the shard's tuple bytes, so two
        replicas holding the same children always agree on it."""
        from repro.core import formatter

        ring = NameRing(
            children={
                "a": Child(name="a", timestamp=Timestamp(1, 1, 0), kind=KIND_FILE)
            }
        )
        crc = formatter.shard_crc(ring)
        again = formatter.shard_crc(
            NameRing(children=dict(ring.children))
        )
        assert crc == again
        assert 0 <= crc < 2**32

    def test_manifest_requires_full_digest_cover(self):
        with pytest.raises(ValueError):
            ShardManifest(
                shard_count=2,
                epoch=1,
                digests=(ShardDigest(Timestamp.ZERO, 0, 0),),
            )
