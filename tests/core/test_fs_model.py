"""Property test: H2CloudFS is logically equivalent to the dict oracle.

Random operation schedules run against H2Cloud (on a zero-latency
cluster) and :class:`repro.testing.ModelFS` side by side; after every
schedule the two trees -- and the success/failure of every step -- must
agree exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import H2CloudFS
from repro.simcloud import FilesystemError, SwiftCluster
from repro.testing import ModelFS, snapshot_of

_PATHS = st.sampled_from(
    ["/a", "/b", "/a/x", "/a/y", "/b/x", "/a/x/deep", "/c"]
)
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("mkdir"), _PATHS),
        st.tuples(st.just("write"), _PATHS, st.binary(max_size=16)),
        st.tuples(st.just("delete"), _PATHS),
        st.tuples(st.just("rmdir"), _PATHS),
        st.tuples(st.just("move"), _PATHS, _PATHS),
        st.tuples(st.just("copy"), _PATHS, _PATHS),
    ),
    max_size=30,
)


def apply(fs, op):
    """Run one op; returns (ok, error_type_name)."""
    try:
        kind = op[0]
        if kind == "mkdir":
            fs.mkdir(op[1])
        elif kind == "write":
            fs.write(op[1], op[2])
        elif kind == "delete":
            fs.delete(op[1])
        elif kind == "rmdir":
            fs.rmdir(op[1])
        elif kind == "move":
            fs.move(op[1], op[2])
        elif kind == "copy":
            fs.copy(op[1], op[2])
        return True, None
    except FilesystemError as exc:
        return False, type(exc).__name__


class TestModelEquivalence:
    @given(_OPS)
    @settings(max_examples=80, deadline=None)
    def test_same_tree_and_same_errors(self, ops):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        model = ModelFS()
        for op in ops:
            got = apply(fs, op)
            want = apply(model, op)
            assert got == want, f"divergence on {op}: fs={got} model={want}"
        assert snapshot_of(fs) == model.snapshot()

    @given(_OPS)
    @settings(max_examples=30, deadline=None)
    def test_equivalence_survives_gc(self, ops):
        """Sweeping garbage must never change the logical tree."""
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        model = ModelFS()
        for op in ops:
            apply(fs, op)
            apply(model, op)
        fs.gc()
        assert snapshot_of(fs) == model.snapshot()

    @given(_OPS)
    @settings(max_examples=20, deadline=None)
    def test_equivalence_with_three_middlewares(self, ops):
        """Round-robined middlewares + gossip: same logical outcome."""
        fs = H2CloudFS(SwiftCluster.fast(), account="alice", middlewares=3)
        model = ModelFS()
        for op in ops:
            got = apply(fs, op)
            want = apply(model, op)
            fs.pump()  # settle before comparing error behaviour
            assert got == want, f"divergence on {op}: fs={got} model={want}"
        fs.pump()
        assert snapshot_of(fs) == model.snapshot()
