"""Unit tests for the four traffic-reduction mechanisms (PR 5).

Each mechanism is flag-gated in :class:`H2Config`; these tests pin the
flag-on semantics (fewer round trips, same answers) and the flag-off
default (byte-identical to the pre-PR behaviour, which the DST corpus
digests also enforce).
"""

import pytest

from repro.core import (
    Child,
    GossipNetwork,
    H2CloudFS,
    H2Config,
    H2Middleware,
    KIND_FILE,
    NameRing,
    Namespace,
    Rumor,
)
from repro.core import formatter
from repro.simcloud import MessageLoss, SwiftCluster
from repro.simcloud.errors import QuorumError


def make_mw(cluster=None, **flags) -> H2Middleware:
    mw = H2Middleware(
        node_id=1,
        store=(cluster or SwiftCluster.fast()).store,
        config=H2Config(**flags),
    )
    mw.create_account("alice")
    return mw


def entry(mw, name, deleted=False) -> Child:
    return Child(
        name=name,
        timestamp=mw.next_timestamp(),
        kind=KIND_FILE,
        deleted=deleted,
    )


def counter(mw, name: str) -> int:
    return int(mw.metrics.counter(f"traffic.{name}").value)


class TestNegativeCache:
    def fs(self, **flags) -> H2CloudFS:
        return H2CloudFS(
            SwiftCluster.fast(),
            account="alice",
            config=H2Config(**flags),
        )

    def test_repeat_probe_skips_the_double_get(self):
        fs = self.fs(negative_cache=True)
        fs.mkdir("/d")
        ledger = fs.store.ledger
        assert not fs.exists("/d/missing")  # revalidates, caches the miss
        gets_after_first = ledger.gets
        for _ in range(5):
            assert not fs.exists("/d/missing")
        assert ledger.gets == gets_after_first  # all 5 were free
        mw = fs.middlewares[0]
        assert counter(mw, "negative_hits") == 5
        assert counter(mw, "revalidations") == 1

    def test_flag_off_pays_a_revalidation_per_probe(self):
        fs = self.fs()  # defaults: negative_cache off
        fs.mkdir("/d")
        ledger = fs.store.ledger
        assert not fs.exists("/d/missing")
        gets_after_first = ledger.gets
        assert not fs.exists("/d/missing")
        assert ledger.gets == gets_after_first + 1  # the §3.2 double-GET
        assert counter(fs.middlewares[0], "negative_hits") == 0

    def test_local_write_invalidates_the_cached_miss(self):
        fs = self.fs(negative_cache=True)
        fs.mkdir("/d")
        assert not fs.exists("/d/f")
        fs.write("/d/f", b"now it exists")
        assert fs.exists("/d/f")

    def test_gossip_absorb_invalidates_cached_misses(self):
        fs = H2CloudFS(
            SwiftCluster.fast(),
            account="alice",
            middlewares=2,
            config=H2Config(negative_cache=True),
        )
        mw0, mw1 = fs.middlewares
        mw0.mkdir("alice", "/d")
        fs.pump()
        assert mw0.exists("alice", "/d/f") is False  # cached miss on mw0
        mw1.write_file("alice", "/d/f", b"written elsewhere")
        fs.pump()  # rumor absorbed on mw0 clears its negative entries
        assert mw0.exists("alice", "/d/f") is True

    def test_degraded_serve_never_caches_absence(self):
        """A stale ring carries no authority about what is missing."""
        fs = self.fs(negative_cache=True)
        fs.mkdir("/d")
        assert not fs.exists("/d/other")  # warm every level's descriptor
        mw = fs.middlewares[0]
        ns = mw.lookup.resolve_dir("alice", "/d")
        fd = mw.fd_cache.get_or_create(ns)
        fd.negative.clear()
        real_get = mw.store.get
        mw.store.get = lambda name, *a, **kw: (_ for _ in ()).throw(
            QuorumError(name, wanted=2, got=0)
        )
        try:
            # The store is unreachable: every load degrades to the
            # stale cached ring, so the miss must not be cached.
            assert not fs.exists("/d/missing")
            assert "missing" not in fd.negative
        finally:
            mw.store.get = real_get


class TestRevalidationWriteBack:
    """Satellite 2: the ``use_cache=False`` reload must land back in
    the descriptor cache, so the GET is paid once per staleness, not
    once per miss."""

    def deployment(self) -> H2CloudFS:
        # Full message loss keeps gossip out of the picture: mw0 only
        # learns about mw1's write through the revalidation reload.
        return H2CloudFS(
            SwiftCluster.fast(),
            account="alice",
            middlewares=2,
            message_loss=MessageLoss(1.0, seed=7),
        )

    def test_reload_is_written_back(self):
        fs = self.deployment()
        mw0, mw1 = fs.middlewares
        mw0.mkdir("alice", "/d")
        assert mw0.exists("alice", "/d/f") is False  # /d cached on mw0
        mw1.write_file("alice", "/d/f", b"x")  # mw0's cache is now stale
        ledger = fs.store.ledger
        gets_before = ledger.gets
        assert mw0.exists("alice", "/d/f") is True  # miss -> revalidate
        assert ledger.gets == gets_before + 1  # exactly the one reload
        # The reload refreshed the cached descriptor: subsequent
        # positive lookups on mw0 are store-free.
        gets_before = ledger.gets
        assert mw0.exists("alice", "/d/f") is True
        assert ledger.gets == gets_before
        assert counter(mw0, "revalidations") == 2  # first+second probe

    def test_cache_holds_the_reloaded_ring(self):
        fs = self.deployment()
        mw0, mw1 = fs.middlewares
        mw0.mkdir("alice", "/d")
        ns = mw0.lookup.resolve_dir("alice", "/d")
        mw1.write_file("alice", "/d/f", b"x")
        assert mw0.exists("alice", "/d/f") is True
        fd = mw0.fd_cache.peek(ns)
        assert fd is not None and fd.loaded
        assert fd.ring.get("f") is not None


class TestGroupCommit:
    def mw(self, **overrides) -> H2Middleware:
        flags = {"group_commit": True, "auto_merge": False}
        flags.update(overrides)
        return make_mw(**flags)

    def test_window_coalesces_into_one_put(self):
        mw = self.mw()
        root = Namespace.root("alice")
        ledger = mw.store.ledger
        puts_before = ledger.puts
        for name in ("a", "b", "c"):
            mw.submit_patch(root, [entry(mw, name)])
        assert ledger.puts == puts_before  # nothing flushed yet
        fd = mw.fd_cache.get_or_create(root)
        assert fd.dirty  # the open group pins the descriptor
        assert fd.group.absorbed == 2
        assert counter(mw, "patches_coalesced") == 2
        assert mw.flush_patch_groups() == 1
        assert ledger.puts == puts_before + 1  # one patch object
        assert len(fd.chain) == 1
        assert set(fd.chain.fold().children) == {"a", "b", "c"}
        assert counter(mw, "group_commits") == 1

    def test_view_includes_pending_group_entries(self):
        """Read-your-writes holds while the window is open."""
        mw = self.mw()
        root = Namespace.root("alice")
        mw.submit_patch(root, [entry(mw, "pending")])
        fd = mw.fd_cache.get_or_create(root)
        assert fd.view().get("pending") is not None

    def test_expired_window_flushes_before_the_next_submit(self):
        mw = self.mw(group_commit_window_us=1_000)
        root = Namespace.root("alice")
        mw.submit_patch(root, [entry(mw, "first")])
        mw.clock.advance(2_000)
        mw.submit_patch(root, [entry(mw, "second")])
        fd = mw.fd_cache.get_or_create(root)
        assert counter(mw, "group_commits") == 1  # first window flushed
        assert fd.group.payload.get("second") is not None
        assert fd.group.payload.get("first") is None

    def test_grouped_result_is_merge_equivalent(self):
        """One flushed group == the same patches submitted one by one:
        the per-entry timestamps ride along unchanged."""
        grouped, plain = self.mw(), make_mw(auto_merge=False)
        root = Namespace.root("alice")
        entries = [entry(grouped, n) for n in ("a", "b", "c")]
        for e in entries:
            grouped.submit_patch(root, [e])
            plain.submit_patch(root, [e])
        grouped.merger.merge_ring(root, foreground=True)
        plain.merger.merge_ring(root, foreground=True)
        g = grouped.fd_cache.get_or_create(root).ring
        p = plain.fd_cache.get_or_create(root).ring
        assert g.children == p.children

    def test_flush_put_failure_keeps_the_group(self):
        mw = self.mw()
        root = Namespace.root("alice")
        mw.submit_patch(root, [entry(mw, "acked")])
        fd = mw.fd_cache.get_or_create(root)
        real_put = mw.store.put
        mw.store.put = lambda *a, **kw: (_ for _ in ()).throw(
            QuorumError("injected", wanted=2, got=0)
        )
        with pytest.raises(QuorumError):
            mw.flush_patch_group(fd)
        assert fd.group is not None  # the acked update is still pending
        assert fd.dirty
        mw.store.put = real_put
        assert mw.flush_patch_group(fd) is not None
        assert fd.group is None

    def test_merger_drains_open_groups(self):
        mw = self.mw()
        root = Namespace.root("alice")
        mw.submit_patch(root, [entry(mw, "straggler")])
        assert mw.merger.run_until_clean()
        fd = mw.fd_cache.get_or_create(root)
        assert fd.group is None and not fd.chain
        assert fd.ring.get("straggler") is not None


class TestGossipCoalescing:
    def rumor(self, net, ns="1.1.1", origin=1, invalidate=False) -> Rumor:
        ts = self.ts_factory.next()
        return Rumor(
            ns=Namespace(ns), origin=origin, ts=ts, invalidate=invalidate
        )

    def setup_method(self):
        self.ts_factory = SwiftCluster.fast().store.timestamps

    def net(self, coalesce=True) -> GossipNetwork:
        net = GossipNetwork(fanout=2, coalesce=coalesce)

        class FakeMw:
            def __init__(self, node_id):
                self.node_id = node_id

        for node in (1, 2, 3):
            net.join(FakeMw(node))
        return net

    def test_same_ring_rumors_collapse_to_the_newest(self):
        net = self.net()
        old, new = self.rumor(net), self.rumor(net)
        net.announce(1, old)
        net.announce(1, new)
        assert net.in_flight == 2  # one per peer, not two
        assert net.rumors_coalesced == 2
        assert all(r.ts == new.ts for _, r in net._queue)

    def test_older_rumor_does_not_replace_newer(self):
        net = self.net()
        old, new = self.rumor(net), self.rumor(net)
        net.announce(1, new)
        net.announce(1, old)
        assert net.in_flight == 2
        assert all(r.ts == new.ts for _, r in net._queue)

    def test_different_rings_do_not_coalesce(self):
        net = self.net()
        net.announce(1, self.rumor(net, ns="1.1.1"))
        net.announce(1, self.rumor(net, ns="2.2.2"))
        assert net.in_flight == 4
        assert net.rumors_coalesced == 0

    def test_invalidations_never_coalesce(self):
        """Cache-invalidation broadcasts must each be delivered."""
        net = self.net()
        net.announce(1, self.rumor(net, invalidate=True))
        net.announce(1, self.rumor(net, invalidate=True))
        assert net.in_flight == 4
        assert net.rumors_coalesced == 0

    def test_flag_off_queues_every_rumor(self):
        net = self.net(coalesce=False)
        net.announce(1, self.rumor(net))
        net.announce(1, self.rumor(net))
        assert net.in_flight == 4


class TestDigestAntiEntropy:
    def pair(self, **flags) -> tuple[H2Middleware, H2Middleware]:
        cluster = SwiftCluster.fast()
        config = H2Config(**flags)
        a = H2Middleware(node_id=1, store=cluster.store, config=config)
        a.create_account("alice")
        b = H2Middleware(node_id=2, store=cluster.store, config=config)
        return a, b

    def test_agreeing_rings_are_skipped(self):
        a, b = self.pair(gossip_digests=True)
        root = Namespace.root("alice")
        a.mkdir("alice", "/d")
        b.load_ring(root)  # same stored version on both sides
        assert b.pull_state_from(a) == 0
        assert counter(b, "digest_skips") >= 1

    def test_differing_rings_still_ship(self):
        a, b = self.pair(gossip_digests=True, auto_merge=False)
        root = Namespace.root("alice")
        b.load_ring(root)
        a.submit_patch(root, [entry(a, "only-on-a")])
        a.merger.merge_ring(root, foreground=True)
        assert b.pull_state_from(a) == 1
        fd = b.fd_cache.get_or_create(root)
        assert fd.ring.get("only-on-a") is not None

    def test_flag_off_never_counts_skips(self):
        a, b = self.pair()
        root = Namespace.root("alice")
        a.mkdir("alice", "/d")
        b.load_ring(root)
        b.pull_state_from(a)
        assert counter(b, "digest_skips") == 0


class TestSerializationMemo:
    def test_dumps_ring_is_memoized_per_instance(self):
        ring = NameRing.empty()
        assert formatter.dumps_ring(ring) is formatter.dumps_ring(ring)

    def test_ring_crc_is_stable_and_content_keyed(self):
        mw = make_mw()
        a = NameRing(children={"f": entry(mw, "f")})
        b = NameRing(children=dict(a.children))
        assert formatter.ring_crc(a) == formatter.ring_crc(b)
        assert formatter.ring_crc(a) == formatter.ring_crc(a)

    def test_unchanged_ring_elides_the_put(self):
        mw = make_mw(memoize_serialization=True)
        root = Namespace.root("alice")
        fd = mw.load_ring(root)
        ledger = mw.store.ledger
        puts_before = ledger.puts
        mw.store_ring_merged(fd)  # cache == store: nothing to write
        assert ledger.puts == puts_before
        assert counter(mw, "put_elisions") == 1

    def test_changed_ring_still_puts(self):
        mw = make_mw(memoize_serialization=True, auto_merge=False)
        root = Namespace.root("alice")
        fd = mw.load_ring(root)
        ledger = mw.store.ledger
        puts_before = ledger.puts
        mw.store_ring_merged(
            fd, extra=NameRing(children={"f": entry(mw, "f")})
        )
        assert ledger.puts == puts_before + 1
        assert counter(mw, "put_elisions") == 0

    def test_flag_off_always_puts(self):
        mw = make_mw()
        root = Namespace.root("alice")
        fd = mw.load_ring(root)
        ledger = mw.store.ledger
        puts_before = ledger.puts
        mw.store_ring_merged(fd)
        assert ledger.puts == puts_before + 1


class TestAllFlagsTogether:
    def test_workload_answers_match_flags_off(self):
        """The same deterministic workload gives identical answers with
        the whole traffic layer on -- only the round-trip count drops."""

        def drive(config):
            # One middleware: group commit defers cross-node visibility
            # by up to a window (the DST oracle models that), but
            # read-your-writes must hold unconditionally per node.
            fs = H2CloudFS(
                SwiftCluster.fast(),
                account="alice",
                config=config,
            )
            for d in range(3):
                fs.mkdir(f"/d{d}")
                for f in range(3):
                    fs.write(f"/d{d}/f{f}", b"z" * 32)
            fs.delete("/d0/f1")
            fs.pump()
            answers = []
            for d in range(3):
                answers.append(sorted(fs.listdir(f"/d{d}")))
                answers.append(fs.exists(f"/d{d}/f0"))
                answers.append(fs.exists(f"/d{d}/nope"))
            answers.append(fs.read("/d1/f2"))
            return answers, fs.store.ledger.total_requests

        base_answers, base_requests = drive(H2Config())
        opt_answers, opt_requests = drive(H2Config().with_traffic_flags())
        assert opt_answers == base_answers
        assert opt_requests < base_requests
