"""Filesystem-operation semantics of H2CloudFS (single middleware)."""

import pytest

from repro.core import H2CloudFS
from repro.simcloud import (
    AlreadyExists,
    DirectoryNotEmpty,
    InvalidPath,
    IsADirectory,
    NotADirectory,
    PathNotFound,
    SwiftCluster,
)


@pytest.fixture
def fs() -> H2CloudFS:
    return H2CloudFS(SwiftCluster.fast(), account="alice")


class TestMkdir:
    def test_mkdir_then_list(self, fs):
        fs.mkdir("/home")
        assert fs.listdir("/") == ["home"]
        assert fs.listdir("/home") == []

    def test_nested(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        fs.mkdir("/a/b/c")
        assert fs.listdir("/a/b") == ["c"]

    def test_duplicate_rejected(self, fs):
        fs.mkdir("/a")
        with pytest.raises(AlreadyExists):
            fs.mkdir("/a")

    def test_missing_parent_rejected(self, fs):
        with pytest.raises(PathNotFound):
            fs.mkdir("/no/such/parent")

    def test_makedirs(self, fs):
        fs.makedirs("/x/y/z")
        assert fs.is_dir("/x/y/z")
        fs.makedirs("/x/y/z")  # idempotent

    def test_mkdir_under_file_rejected(self, fs):
        fs.write("/f", b"")
        with pytest.raises(NotADirectory):
            fs.mkdir("/f/sub")


class TestWriteRead:
    def test_round_trip(self, fs):
        fs.write("/hello.txt", b"hi")
        assert fs.read("/hello.txt") == b"hi"

    def test_overwrite(self, fs):
        fs.write("/f", b"v1")
        fs.write("/f", b"v2")
        assert fs.read("/f") == b"v2"
        assert fs.listdir("/").count("f") == 1

    def test_write_over_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.write("/d", b"x")

    def test_read_missing(self, fs):
        with pytest.raises(PathNotFound):
            fs.read("/ghost")

    def test_read_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.read("/d")

    def test_empty_file(self, fs):
        fs.write("/empty", b"")
        assert fs.read("/empty") == b""

    def test_binary_content(self, fs):
        blob = bytes(range(256)) * 10
        fs.write("/bin", blob)
        assert fs.read("/bin") == blob

    def test_quick_relative_access(self, fs):
        """Paper §3.2: the O(1) namespace-decorated access method."""
        fs.mkdir("/home")
        fs.write("/home/f", b"quick")
        rel = fs.relative_path_of("/home/f")
        assert "::" in rel
        assert fs.read_relative(rel) == b"quick"

    def test_relative_access_missing(self, fs):
        with pytest.raises(PathNotFound):
            fs.read_relative("9.9.9::nothing")


class TestDelete:
    def test_delete_hides_file(self, fs):
        fs.write("/f", b"x")
        fs.delete("/f")
        assert fs.listdir("/") == []
        assert not fs.exists("/f")
        with pytest.raises(PathNotFound):
            fs.read("/f")

    def test_delete_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.delete("/d")

    def test_recreate_after_delete(self, fs):
        fs.write("/f", b"old")
        fs.delete("/f")
        fs.write("/f", b"new")
        assert fs.read("/f") == b"new"

    def test_delete_missing(self, fs):
        with pytest.raises(PathNotFound):
            fs.delete("/nope")


class TestRmdir:
    def test_rmdir_hides_subtree(self, fs):
        fs.makedirs("/a/b")
        fs.write("/a/b/f", b"x")
        fs.rmdir("/a")
        assert fs.listdir("/") == []
        assert not fs.exists("/a/b/f")

    def test_rmdir_o1_is_nonrecursive_check_optional(self, fs):
        fs.mkdir("/d")
        fs.write("/d/f", b"x")
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/d", recursive=False)
        fs.delete("/d/f")
        fs.rmdir("/d", recursive=False)
        assert not fs.exists("/d")

    def test_rmdir_root_rejected(self, fs):
        with pytest.raises(InvalidPath):
            fs.rmdir("/")

    def test_rmdir_file_rejected(self, fs):
        fs.write("/f", b"")
        with pytest.raises(NotADirectory):
            fs.rmdir("/f")

    def test_recreate_directory_after_rmdir(self, fs):
        fs.mkdir("/d")
        fs.write("/d/old", b"1")
        fs.rmdir("/d")
        fs.mkdir("/d")
        assert fs.listdir("/d") == []  # fresh namespace, no ghosts


class TestMoveRename:
    def test_rename_file(self, fs):
        fs.write("/old", b"data")
        fs.rename("/old", "/new")
        assert not fs.exists("/old")
        assert fs.read("/new") == b"data"

    def test_move_file_across_dirs(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/b")
        fs.write("/a/f", b"data")
        fs.move("/a/f", "/b/g")
        assert fs.listdir("/a") == []
        assert fs.read("/b/g") == b"data"

    def test_move_directory_carries_subtree(self, fs):
        fs.makedirs("/a/deep/tree")
        fs.write("/a/deep/tree/f", b"x")
        fs.move("/a", "/z")
        assert fs.read("/z/deep/tree/f") == b"x"
        assert not fs.exists("/a")

    def test_rename_directory_in_place(self, fs):
        fs.mkdir("/dir")
        fs.write("/dir/f", b"1")
        fs.rename("/dir", "/dir2")
        assert fs.listdir("/") == ["dir2"]
        assert fs.read("/dir2/f") == b"1"

    def test_move_to_existing_rejected(self, fs):
        fs.write("/a", b"1")
        fs.write("/b", b"2")
        with pytest.raises(AlreadyExists):
            fs.move("/a", "/b")

    def test_move_root_rejected(self, fs):
        with pytest.raises(InvalidPath):
            fs.move("/", "/elsewhere")

    def test_move_into_own_subtree_rejected(self, fs):
        fs.makedirs("/a/b")
        with pytest.raises(InvalidPath):
            fs.move("/a", "/a/b/a2")

    def test_move_missing_source(self, fs):
        with pytest.raises(PathNotFound):
            fs.move("/ghost", "/elsewhere")

    def test_move_preserves_relative_access_of_dir_children(self, fs):
        """Directory MOVE is O(1): children keep their namespace keys."""
        fs.mkdir("/d")
        fs.write("/d/f", b"stay")
        rel = fs.relative_path_of("/d/f")
        fs.move("/d", "/renamed")
        assert fs.read_relative(rel) == b"stay"


class TestCopy:
    def test_copy_file(self, fs):
        fs.write("/src", b"payload")
        fs.copy("/src", "/dst")
        assert fs.read("/src") == b"payload"
        assert fs.read("/dst") == b"payload"

    def test_copy_tree(self, fs):
        fs.makedirs("/a/b")
        fs.write("/a/f1", b"1")
        fs.write("/a/b/f2", b"2")
        copied = fs.copy("/a", "/a2")
        assert copied >= 4  # 2 dirs + 2 files
        assert fs.read("/a2/f1") == b"1"
        assert fs.read("/a2/b/f2") == b"2"

    def test_copies_are_independent(self, fs):
        fs.mkdir("/a")
        fs.write("/a/f", b"orig")
        fs.copy("/a", "/b")
        fs.write("/b/f", b"changed")
        assert fs.read("/a/f") == b"orig"

    def test_copy_to_existing_rejected(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/b")
        with pytest.raises(AlreadyExists):
            fs.copy("/a", "/b")

    def test_copy_gets_fresh_namespaces(self, fs):
        fs.mkdir("/a")
        fs.write("/a/f", b"x")
        fs.copy("/a", "/b")
        assert fs.relative_path_of("/a/f") != fs.relative_path_of("/b/f")


class TestListStat:
    def test_list_names_sorted(self, fs):
        fs.mkdir("/d")
        for name in ["zz", "aa", "mm"]:
            fs.write(f"/d/{name}", b"")
        assert fs.listdir("/d") == ["aa", "mm", "zz"]

    def test_detailed_listing_metadata(self, fs):
        fs.mkdir("/d")
        fs.write("/d/f", b"12345")
        fs.mkdir("/d/sub")
        entries = {e.name: e for e in fs.listdir("/d", detailed=True)}
        assert entries["f"].kind == "file"
        assert entries["f"].size == 5
        assert entries["sub"].kind == "dir"
        assert entries["sub"].ns is not None

    def test_list_missing_dir(self, fs):
        with pytest.raises(PathNotFound):
            fs.listdir("/nope")

    def test_list_file_rejected(self, fs):
        fs.write("/f", b"")
        with pytest.raises(NotADirectory):
            fs.listdir("/f")

    def test_stat_depth(self, fs):
        fs.makedirs("/a/b")
        fs.write("/a/b/f", b"")
        resolution = fs.stat("/a/b/f")
        assert len(resolution.ns_chain) == 3  # root, a, b
        assert resolution.child.name == "f"

    def test_exists(self, fs):
        fs.mkdir("/d")
        assert fs.exists("/d")
        assert fs.exists("/")
        assert not fs.exists("/e")

    def test_walk(self, fs):
        fs.makedirs("/a/b")
        fs.write("/a/f1", b"")
        fs.write("/a/b/f2", b"")
        walked = list(fs.walk("/"))
        assert walked[0] == ("/", ["a"], [])
        assert ("/a", ["b"], ["f1"]) in walked
        assert ("/a/b", [], ["f2"]) in walked

    def test_tree_size(self, fs):
        fs.makedirs("/a/b")
        fs.write("/a/f", b"")
        assert fs.tree_size("/") == (2, 1)


class TestMultiAccount:
    def test_accounts_isolated(self):
        cluster = SwiftCluster.fast()
        alice = H2CloudFS(cluster, account="alice")
        bob = H2CloudFS(cluster, account="bob")
        alice.write("/secret", b"alice's")
        assert bob.listdir("/") == []
        bob.write("/secret", b"bob's")
        assert alice.read("/secret") == b"alice's"
        assert bob.read("/secret") == b"bob's"
