"""Tests for the web API layer (paper §4.3's three API families)."""

import pytest

from repro.core import H2Middleware, H2WebAPI, Request
from repro.simcloud import SwiftCluster


@pytest.fixture
def api() -> H2WebAPI:
    cluster = SwiftCluster.fast()
    api = H2WebAPI(H2Middleware(node_id=1, store=cluster.store))
    assert api.put("/v1/alice").status == 201
    return api


class TestAccountAPIs:
    def test_create_account(self, api):
        response = api.put("/v1/bob")
        assert response.status == 201
        assert api.head("/v1/bob").status == 204

    def test_duplicate_account_conflicts(self, api):
        assert api.put("/v1/alice").status == 409

    def test_missing_account_404(self, api):
        assert api.head("/v1/ghost").status == 404
        assert api.get("/v1/ghost").status == 404

    def test_account_root_listing(self, api):
        api.put("/v1/alice/docs?dir=1")
        response = api.get("/v1/alice")
        assert response.status == 200
        assert response.text() == "docs\n"

    def test_delete_empty_account(self, api):
        api.put("/v1/temp")
        assert api.delete("/v1/temp").status == 204
        assert api.head("/v1/temp").status == 404

    def test_delete_populated_account_needs_force(self, api):
        api.put("/v1/full")
        api.put("/v1/full/f", b"x")
        assert api.delete("/v1/full").status == 409
        assert api.delete("/v1/full?force=1").status == 204
        assert api.head("/v1/full").status == 404

    def test_delete_missing_account(self, api):
        assert api.delete("/v1/ghost").status == 404

    def test_deleted_account_objects_reclaimed_by_gc(self, api):
        from repro.core import GarbageCollector

        api.put("/v1/doomed")
        api.put("/v1/doomed/f", b"bytes")
        api.delete("/v1/doomed?force=1")
        report = GarbageCollector(api.middleware).collect()
        assert report.swept >= 1
        assert not any(
            n.startswith("f:") for n in api.middleware.store.names()
        )

    def test_unknown_version(self, api):
        assert api.get("/v2/alice").status == 400

    def test_method_not_allowed(self, api):
        assert api.handle(Request("PATCH", "/v1/alice")).status == 405


class TestDirectoryAPIs:
    def test_mkdir_and_list(self, api):
        assert api.put("/v1/alice/photos?dir=1").status == 201
        assert api.put("/v1/alice/photos/2018?dir=1").status == 201
        response = api.get("/v1/alice/photos?list=names")
        assert response.ok
        assert response.text() == "2018\n"

    def test_detailed_listing(self, api):
        api.put("/v1/alice/d?dir=1")
        api.put("/v1/alice/d/f.txt", b"12345")
        response = api.get("/v1/alice/d?list=detail")
        line = response.text().strip()
        name, kind, size, etag = line.split("\t")
        assert (name, kind, size) == ("f.txt", "file", "5")
        assert etag != "-"

    def test_bad_list_mode(self, api):
        api.put("/v1/alice/d?dir=1")
        assert api.get("/v1/alice/d?list=zzz").status == 400

    def test_mkdir_conflict(self, api):
        api.put("/v1/alice/d?dir=1")
        assert api.put("/v1/alice/d?dir=1").status == 409

    def test_mkdir_missing_parent(self, api):
        assert api.put("/v1/alice/no/such?dir=1").status == 404

    def test_rmdir(self, api):
        api.put("/v1/alice/d?dir=1")
        assert api.delete("/v1/alice/d?dir=1").status == 204
        assert api.get("/v1/alice/d?list=names").status == 404

    def test_rmdir_nonrecursive_on_populated(self, api):
        api.put("/v1/alice/d?dir=1")
        api.put("/v1/alice/d/f", b"x")
        assert api.delete("/v1/alice/d?dir=1&recursive=0").status == 409

    def test_move(self, api):
        api.put("/v1/alice/old?dir=1")
        api.put("/v1/alice/old/f", b"data")
        response = api.post("/v1/alice/old?op=move&dst=/new")
        assert response.status == 201
        assert response.headers["Location"] == "/new"
        assert api.get("/v1/alice/new/f").body == b"data"

    def test_copy(self, api):
        api.put("/v1/alice/src?dir=1")
        api.put("/v1/alice/src/f", b"1")
        assert api.post("/v1/alice/src?op=copy&dst=/dst").status == 201
        assert api.get("/v1/alice/src/f").ok
        assert api.get("/v1/alice/dst/f").ok

    def test_bad_op(self, api):
        api.put("/v1/alice/d?dir=1")
        assert api.post("/v1/alice/d?op=teleport&dst=/x").status == 400
        assert api.post("/v1/alice/d?op=move").status == 400


class TestFileAPIs:
    def test_write_read_round_trip(self, api):
        response = api.put("/v1/alice/hello.txt", b"hi there")
        assert response.status == 201
        assert "ETag" in response.headers
        assert response.headers["Content-Length"] == "8"
        assert api.get("/v1/alice/hello.txt").body == b"hi there"

    def test_read_missing(self, api):
        assert api.get("/v1/alice/nope").status == 404

    def test_head_reports_metadata(self, api):
        api.put("/v1/alice/f", b"123")
        response = api.head("/v1/alice/f")
        assert response.status == 204
        assert response.headers["X-Kind"] == "file"
        assert response.headers["Content-Length"] == "3"
        assert "::" in response.headers["X-Relative-Path"]

    def test_delete(self, api):
        api.put("/v1/alice/f", b"x")
        assert api.delete("/v1/alice/f").status == 204
        assert api.get("/v1/alice/f").status == 404

    def test_get_on_directory_lists(self, api):
        api.put("/v1/alice/d?dir=1")
        api.put("/v1/alice/d/f", b"x")
        response = api.get("/v1/alice/d")
        assert response.ok
        assert response.text() == "f\n"

    def test_write_over_directory_400(self, api):
        api.put("/v1/alice/d?dir=1")
        assert api.put("/v1/alice/d", b"x").status == 400

    def test_unicode_path_segments(self, api):
        api.put("/v1/alice/%D0%BF%D0%B0%D0%BF%D0%BA%D0%B0?dir=1")
        response = api.get("/v1/alice")
        assert "папка" in response.text()


class TestQuickAccess:
    def test_relative_get(self, api):
        api.put("/v1/alice/d?dir=1")
        api.put("/v1/alice/d/f", b"quick")
        rel = api.head("/v1/alice/d/f").headers["X-Relative-Path"]
        assert api.get(f"/v1/~rel/{rel}").body == b"quick"

    def test_relative_get_unknown(self, api):
        assert api.get("/v1/~rel/9.9.9::ghost").status == 404

    def test_relative_requires_get(self, api):
        assert api.put("/v1/~rel/1.1.1::x", b"no").status == 405


class TestStatusMapping:
    def test_counters(self, api):
        before = api.requests_served
        api.get("/v1/alice")
        api.get("/v1/alice/missing")
        assert api.requests_served == before + 2

    def test_reason_strings(self, api):
        assert api.put("/v1/alice").reason == "Conflict"
        assert api.get("/v1/alice/missing").reason == "Not Found"
