"""Patch recovery under fault injection (robustness satellite).

``test_patch_recovery.py`` shows the happy path: a fresh middleware
recovering durable-but-unmerged patches.  These tests re-run that story
with the fault machinery armed -- transient faults firing during both
the original writes and the recovery, and a storage node wiped between
patch PUT and recovery -- and show the recovery still converging.
"""

from repro.core import H2CloudFS, H2Config, H2Middleware
from repro.simcloud import FaultPlan, RepairSweeper, SwiftCluster
from repro.tools import H2Fsck


def crashy_fs(cluster: SwiftCluster | None = None) -> H2CloudFS:
    """A deployment whose middleware defers all merging."""
    return H2CloudFS(
        cluster or SwiftCluster.fast(),
        account="alice",
        config=H2Config(auto_merge=False),
    )


class TestRecoveryUnderFaults:
    def test_recovery_rides_through_transient_faults(self):
        cluster = SwiftCluster.fast()
        cluster.install_fault_plan(
            FaultPlan(seed=21, io_error_rate=0.15, timeout_rate=0.05)
        )
        fs = crashy_fs(cluster)
        fs.mkdir("/d")
        fs.write("/d/f", b"precious")
        # Middleware "crash": its in-memory chains die with it, the
        # patch objects do not.  A fresh instance recovers them while
        # the same faults keep firing.
        replacement = H2Middleware(node_id=9, store=fs.store)
        assert replacement.merger.recover_orphaned_patches() >= 2
        assert replacement.read_file("alice", "/d/f") == b"precious"
        assert fs.store.resilience.retries > 0  # the faults were real

    def test_node_wiped_between_patch_put_and_recovery(self):
        cluster = SwiftCluster.fast()
        fs = crashy_fs(cluster)
        fs.write("/f", b"survives-the-wipe")
        patch_name = next(
            n for n in fs.store.names() if n.startswith("patch:")
        )
        # One replica holder of the durable patch loses its disk before
        # any merger ran; the surviving replicas carry the recovery.
        victim = cluster.ring.nodes_for(patch_name)[0]
        cluster.nodes[victim].wipe()
        replacement = H2Middleware(node_id=9, store=fs.store)
        assert replacement.merger.recover_orphaned_patches() >= 1
        assert replacement.read_file("alice", "/f") == b"survives-the-wipe"

    def test_wipe_then_recovery_then_sweep_is_fsck_clean(self):
        cluster = SwiftCluster.fast()
        fs = crashy_fs(cluster)
        fs.mkdir("/d")
        fs.write("/d/f", b"x" * 256)
        victim = next(iter(cluster.nodes))
        cluster.nodes[victim].crash()
        cluster.nodes[victim].wipe()
        cluster.nodes[victim].recover()
        replacement = H2Middleware(node_id=9, store=fs.store)
        replacement.merger.recover_orphaned_patches()
        RepairSweeper(fs.store).sweep()
        report = H2Fsck(replacement).check()
        assert report.clean
        assert not report.degraded_replicas
        for name in fs.store.names():
            present, expected = fs.store.replica_health(name)
            assert present == expected

    def test_recovery_down_node_does_not_block_it(self):
        cluster = SwiftCluster.fast()
        fs = crashy_fs(cluster)
        fs.write("/f", b"quorum-carried")
        patch_name = next(
            n for n in fs.store.names() if n.startswith("patch:")
        )
        victim = cluster.ring.nodes_for(patch_name)[0]
        cluster.nodes[victim].crash()  # still down during recovery
        replacement = H2Middleware(node_id=9, store=fs.store)
        assert replacement.merger.recover_orphaned_patches() >= 1
        assert replacement.read_file("alice", "/f") == b"quorum-carried"
