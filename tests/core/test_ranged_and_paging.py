"""Tests for ranged reads, listing pagination, and du accounting."""

import pytest

from repro.core import H2CloudFS, H2Middleware, H2WebAPI
from repro.simcloud import SparseData, SwiftCluster


@pytest.fixture
def fs() -> H2CloudFS:
    fs = H2CloudFS(SwiftCluster.fast(), account="alice")
    fs.mkdir("/d")
    fs.write("/d/movie", bytes(range(200)))
    return fs


class TestRangedReads:
    def test_window_contents(self, fs):
        assert fs.read_range("/d/movie", 10, 5) == bytes(range(10, 15))

    def test_window_clamped_at_eof(self, fs):
        assert fs.read_range("/d/movie", 190, 100) == bytes(range(190, 200))
        assert fs.read_range("/d/movie", 500, 10) == b""

    def test_negative_range_rejected(self, fs):
        with pytest.raises(ValueError):
            fs.read_range("/d/movie", -1, 5)

    def test_sparse_window(self, fs):
        fs.write("/d/huge", SparseData(size=1 << 30, tag="h"))
        window = fs.read_range("/d/huge", 1 << 20, 4096)
        assert isinstance(window, SparseData)
        assert len(window) == 4096

    def test_range_cheaper_than_full_read(self):
        fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
        fs.write("/big", SparseData(size=100 << 20, tag="b"))
        fs.pump()
        fs.drop_caches()
        _, full = fs.clock.measure(lambda: fs.read("/big"))
        fs.drop_caches()
        _, window = fs.clock.measure(lambda: fs.read_range("/big", 0, 4096))
        assert window < full / 10

    def test_webapi_partial_content(self):
        api = H2WebAPI(H2Middleware(node_id=1, store=SwiftCluster.fast().store))
        api.put("/v1/alice")
        api.put("/v1/alice/f", b"0123456789")
        response = api.get("/v1/alice/f?offset=2&length=3")
        assert response.status == 206
        assert response.body == b"234"
        assert api.get("/v1/alice/f?offset=junk").status == 400


class TestListingPagination:
    @pytest.fixture
    def paged(self) -> H2CloudFS:
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        fs.mkdir("/d")
        fs.write_many("/d", [(f"f{i:02d}", b"") for i in range(10)])
        return fs

    def test_limit(self, paged):
        assert paged.listdir("/d", limit=3) == ["f00", "f01", "f02"]

    def test_marker_is_exclusive(self, paged):
        assert paged.listdir("/d", marker="f07") == ["f08", "f09"]

    def test_full_pagination_walk(self, paged):
        seen, marker = [], None
        while True:
            page = paged.listdir("/d", marker=marker, limit=4)
            if not page:
                break
            seen.extend(page)
            marker = page[-1]
        assert seen == [f"f{i:02d}" for i in range(10)]

    def test_limit_zero(self, paged):
        assert paged.listdir("/d", limit=0) == []

    def test_detailed_pagination_bounds_heads(self):
        fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
        fs.mkdir("/d")
        fs.write_many("/d", [(f"f{i:02d}", b"x") for i in range(30)])
        fs.pump()
        fs.drop_caches()
        heads_before = fs.store.ledger.heads
        fs.listdir("/d", detailed=True, limit=5)
        assert fs.store.ledger.heads - heads_before == 5

    def test_webapi_pagination(self, paged):
        api = H2WebAPI(paged.middlewares[0])
        response = api.get("/v1/alice/d?list=names&limit=2&marker=f05")
        assert response.text() == "f06\nf07\n"


class TestDu:
    def test_du_counts_and_bytes(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        fs.makedirs("/a/b")
        fs.write("/a/f1", b"12345")
        fs.write("/a/b/f2", b"1234567890")
        dirs, files, nbytes = fs.du("/")
        assert (dirs, files, nbytes) == (2, 2, 15)
        assert fs.du("/a/b") == (0, 1, 10)

    def test_du_never_reads_file_objects(self):
        fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
        fs.mkdir("/d")
        fs.write("/d/big", SparseData(size=1 << 30, tag="b"))
        fs.pump()
        before = fs.store.ledger.snapshot()
        dirs, files, nbytes = fs.du("/")
        moved = fs.store.ledger.diff(before)
        assert nbytes == 1 << 30
        assert moved["bytes_out"] < 4096  # rings only, never the GB

    def test_du_ignores_tombstones(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        fs.write("/f", b"123")
        fs.delete("/f")
        assert fs.du("/") == (0, 0, 0)
