"""Property-based proofs of the NameRing CRDT laws (paper §3.3.2).

Gossip converges only because the per-directory merge is a join:
commutative (given unique timestamps), associative, idempotent, and
order-independent over whole patch chains.  Fake deletion depends on
one more law: a newer ``Deleted`` tuple beats any older live tuple no
matter which merge order delivers it.  Hypothesis searches for
counterexamples to each law, and a stateful machine gossips random
writes/deletes between replicas checking they always converge to the
newest-writer state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.namering import Child, NameRing, merge_all
from repro.dst import HOSTILE_NAMES
from repro.simcloud.clock import Timestamp

NAMES = ("a", "b", "c", "readme.txt") + HOSTILE_NAMES[:4]


def _ring_from(children: list[Child]) -> NameRing:
    ring = NameRing.empty()
    for child in children:
        ring = ring.merge(NameRing(children={child.name: child}))
    return ring


@st.composite
def children_with_unique_timestamps(draw, max_size: int = 12) -> list[Child]:
    """Children whose timestamps are globally distinct (what the shared
    per-cluster TimestampFactory guarantees in production)."""
    seqs = draw(
        st.lists(st.integers(1, 10_000), unique=True, max_size=max_size)
    )
    return [
        Child(
            name=draw(st.sampled_from(NAMES)),
            timestamp=Timestamp(wall_us=0, seq=seq, node_id=1),
            deleted=draw(st.booleans()),
        )
        for seq in seqs
    ]


def arbitrary_ring(max_size: int = 8):
    """Rings with possibly *colliding* timestamps (distinct replicas can
    not mint these, but the laws that hold regardless are tested on the
    larger space)."""
    return st.builds(
        _ring_from,
        st.lists(
            st.builds(
                Child,
                name=st.sampled_from(NAMES),
                timestamp=st.builds(
                    Timestamp,
                    wall_us=st.integers(0, 50),
                    seq=st.integers(0, 5),
                    node_id=st.integers(1, 3),
                ),
                deleted=st.booleans(),
            ),
            max_size=max_size,
        ),
    )


class TestMergeLaws:
    @given(pool=children_with_unique_timestamps(), cut=st.integers(0, 12))
    @settings(max_examples=200, deadline=None)
    def test_commutative_with_unique_timestamps(self, pool, cut):
        a = _ring_from(pool[: cut % (len(pool) + 1)])
        b = _ring_from(pool[cut % (len(pool) + 1):])
        assert a.merge(b) == b.merge(a)

    @given(a=arbitrary_ring(), b=arbitrary_ring())
    @settings(max_examples=200, deadline=None)
    def test_commutative_even_with_timestamp_ties(self, a, b):
        """The PR 5 tie-break fix: before it, equal timestamps let the
        *left* operand win, so ``a.merge(b) != b.merge(a)`` whenever a
        synthetic history minted a collision."""
        assert a.merge(b) == b.merge(a)

    @given(a=arbitrary_ring(), b=arbitrary_ring(), c=arbitrary_ring())
    @settings(max_examples=200, deadline=None)
    def test_associative_even_with_timestamp_ties(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(a=arbitrary_ring())
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, a):
        assert a.merge(a) == a

    @given(a=arbitrary_ring(), b=arbitrary_ring())
    @settings(max_examples=100, deadline=None)
    def test_merge_never_loses_names(self, a, b):
        merged = a.merge(b)
        assert set(merged.children) == set(a.children) | set(b.children)

    @given(
        pool=children_with_unique_timestamps(),
        permutation=st.randoms(use_true_random=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_merge_all_is_order_independent(self, pool, permutation):
        """A patch chain folds to the same ring under any delivery
        order -- why gossip needs no ordering guarantees at all."""
        rings = [NameRing(children={c.name: c}) for c in pool]
        baseline = merge_all(rings)
        shuffled = list(rings)
        permutation.shuffle(shuffled)
        assert merge_all(shuffled) == baseline


class TestFakeDeletionWins:
    @given(
        pool=children_with_unique_timestamps(max_size=8),
        name=st.sampled_from(NAMES),
        permutation=st.randoms(use_true_random=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_newest_tombstone_survives_any_merge_order(
        self, pool, name, permutation
    ):
        latest = max(
            (c.timestamp for c in pool), default=Timestamp(0, 0, 1)
        )
        tombstone = Child(
            name, Timestamp(latest.wall_us, latest.seq + 1, 1), deleted=True
        )
        rings = [NameRing(children={c.name: c}) for c in pool]
        rings.append(NameRing(children={name: tombstone}))
        permutation.shuffle(rings)
        merged = merge_all(rings)
        assert merged.get(name) is None  # hidden from every listing
        assert merged.get_any(name) == tombstone  # but the marker rides on

    @given(
        ts=st.builds(
            Timestamp,
            wall_us=st.integers(0, 50),
            seq=st.integers(0, 5),
            node_id=st.integers(1, 3),
        ),
        name=st.sampled_from(NAMES),
        live_etag=st.text(max_size=4),
        dead_etag=st.text(max_size=4),
    )
    @settings(max_examples=150, deadline=None)
    def test_tombstone_wins_timestamp_ties_both_ways(
        self, ts, name, live_etag, dead_etag
    ):
        """A same-instant delete must beat a same-instant insert no
        matter which side of the merge it arrives on."""
        live = NameRing(children={name: Child(name, ts, etag=live_etag)})
        dead = NameRing(
            children={name: Child(name, ts, deleted=True, etag=dead_etag)}
        )
        for merged in (live.merge(dead), dead.merge(live)):
            assert merged.get(name) is None
            assert merged.get_any(name).deleted

    @given(
        ts=st.builds(
            Timestamp,
            wall_us=st.integers(0, 50),
            seq=st.integers(0, 5),
            node_id=st.integers(1, 3),
        ),
        name=st.sampled_from(NAMES),
        etags=st.tuples(st.text(max_size=4), st.text(max_size=4)),
        sizes=st.tuples(st.integers(0, 99), st.integers(0, 99)),
    )
    @settings(max_examples=150, deadline=None)
    def test_equal_status_ties_break_on_stable_key(
        self, ts, name, etags, sizes
    ):
        """Live-vs-live (and deleted-vs-deleted) ties settle on the
        attribute key, so both merge orders pick the same winner."""
        a = NameRing(
            children={name: Child(name, ts, size=sizes[0], etag=etags[0])}
        )
        b = NameRing(
            children={name: Child(name, ts, size=sizes[1], etag=etags[1])}
        )
        assert a.merge(b) == b.merge(a)

    @given(pool=children_with_unique_timestamps())
    @settings(max_examples=100, deadline=None)
    def test_compaction_drops_exactly_the_tombstones(self, pool):
        ring = _ring_from(pool)
        compacted = ring.compacted()
        assert not compacted.needs_compaction
        assert compacted.live_children() == ring.live_children()
        assert compacted.tombstones() == []


class GossipConvergence(RuleBasedStateMachine):
    """Replicas exchanging random writes/deletes in random order must
    converge to the per-name newest state once fully synced."""

    REPLICAS = 3

    def __init__(self):
        super().__init__()
        self.replicas = [NameRing.empty() for _ in range(self.REPLICAS)]
        self.seq = 0
        self.newest: dict[str, Child] = {}  # per-name newest tuple minted

    def _mint(self, name: str, deleted: bool) -> NameRing:
        self.seq += 1
        child = Child(name, Timestamp(0, self.seq, 1), deleted=deleted)
        self.newest[name] = child
        return NameRing(children={name: child})

    @rule(
        replica=st.integers(0, REPLICAS - 1), name=st.sampled_from(NAMES)
    )
    def local_write(self, replica, name):
        self.replicas[replica] = self.replicas[replica].merge(
            self._mint(name, deleted=False)
        )

    @rule(
        replica=st.integers(0, REPLICAS - 1), name=st.sampled_from(NAMES)
    )
    def local_delete(self, replica, name):
        self.replicas[replica] = self.replicas[replica].merge(
            self._mint(name, deleted=True)
        )

    @rule(
        sender=st.integers(0, REPLICAS - 1),
        receiver=st.integers(0, REPLICAS - 1),
    )
    def gossip_one_way(self, sender, receiver):
        """A rumor delivery: receiver absorbs the sender's state."""
        self.replicas[receiver] = self.replicas[receiver].merge(
            self.replicas[sender]
        )

    @rule()
    def anti_entropy(self):
        """Full sync: afterwards every replica must hold exactly the
        newest tuple ever minted for every name any replica has seen."""
        full = merge_all(self.replicas)
        self.replicas = [r.merge(full) for r in self.replicas]
        assert all(r == self.replicas[0] for r in self.replicas)
        assert self.replicas[0].children == {
            name: child
            for name, child in self.newest.items()
            if name in full.children
        }

    @invariant()
    def replicas_never_hold_unminted_state(self):
        for ring in self.replicas:
            for name, child in ring.children.items():
                assert child.timestamp <= self.newest[name].timestamp


TestGossipConvergence = GossipConvergence.TestCase
TestGossipConvergence.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)


class TestStatsMemoConsistency:
    """The O(1) stats memos must never drift from a fresh recompute.

    ``version``/``__len__``/``needs_compaction`` are memoized on the
    frozen instance (the hot-path O(m)->O(1) bugfix); because rings are
    immutable the memo can only go wrong if a merge hands back an
    instance whose cache predates its children -- exactly what these
    properties hunt for across arbitrary merge chains.
    """

    @staticmethod
    def _brute(ring: NameRing):
        version = Timestamp.ZERO
        live = tombstones = 0
        for child in ring.children.values():
            if child.deleted:
                tombstones += 1
            else:
                live += 1
            if child.timestamp > version:
                version = child.timestamp
        return version, live, tombstones > 0

    def _assert_memos_fresh(self, ring: NameRing) -> None:
        version, live, needs = self._brute(ring)
        # Interrogate twice: first touch populates the memo, the second
        # must serve the identical answer from cache.
        for _ in range(2):
            assert ring.version == version
            assert len(ring) == live
            assert ring.needs_compaction == needs
        fresh = NameRing(children=dict(ring.children))
        assert ring.version == fresh.version
        assert len(ring) == len(fresh)

    @given(rings=st.lists(arbitrary_ring(), min_size=1, max_size=6))
    @settings(max_examples=150, deadline=None)
    def test_memo_matches_recompute_across_merges(self, rings):
        merged = NameRing.empty()
        for ring in rings:
            # Touch the memos *before* merging so a buggy merge that
            # reused a stale instance would be caught red-handed.
            self._assert_memos_fresh(merged)
            self._assert_memos_fresh(ring)
            merged = merged.merge(ring)
        self._assert_memos_fresh(merged)

    @given(a=arbitrary_ring(), b=arbitrary_ring())
    @settings(max_examples=150, deadline=None)
    def test_merge_changes_names_exactly_the_updates(self, a, b):
        merged, changed = a.merge_changes(b)
        for name in changed:
            assert merged.children[name] != a.children.get(name)
        for name, child in merged.children.items():
            if name not in changed:
                assert a.children.get(name) == child

    @given(a=arbitrary_ring(), b=arbitrary_ring())
    @settings(max_examples=100, deadline=None)
    def test_noop_merge_preserves_instance(self, b, a):
        merged = a.merge(b)
        again, changed = merged.merge_changes(b)
        assert again is merged
        assert changed == ()

    @given(pool=children_with_unique_timestamps())
    @settings(max_examples=100, deadline=None)
    def test_live_view_memos_stay_sorted_and_consistent(self, pool):
        ring = _ring_from(pool)
        names = ring.live_names()
        assert list(names) == sorted(c.name for c in ring.live_children())
        # Served from cache on the second call -- same object, same data.
        assert ring.live_names() is names
