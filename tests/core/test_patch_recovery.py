"""Crash recovery: durable patches survive middleware loss.

Phase 1 of the maintenance protocol PUTs every patch as an object
before it is applied; these tests kill a middleware with unmerged
chains and show a fresh middleware recovering the updates from the
store alone -- the §1 claim that the application tier is effectively
stateless.
"""

import pytest

from repro.core import H2CloudFS, H2Config, H2Middleware
from repro.simcloud import SwiftCluster


def crashy_fs() -> H2CloudFS:
    """A deployment whose middleware defers all merging."""
    return H2CloudFS(
        SwiftCluster.fast(), account="alice", config=H2Config(auto_merge=False)
    )


class TestRecovery:
    def test_unmerged_patches_survive_middleware_loss(self):
        fs = crashy_fs()
        fs.mkdir("/d")
        fs.write("/d/f", b"precious")
        # The middleware dies before its Background Merger ever ran:
        # its in-memory chains are gone, but the patch objects are not.
        assert fs.middlewares[0].fd_cache.dirty_descriptors()
        replacement = H2Middleware(node_id=9, store=fs.store)
        recovered = replacement.merger.recover_orphaned_patches()
        assert recovered >= 2  # the mkdir patch + the write patch
        assert [e.name for e in replacement.list_dir("alice", "/")] == ["d"]
        assert replacement.read_file("alice", "/d/f") == b"precious"

    def test_recovery_retires_patch_objects(self):
        fs = crashy_fs()
        fs.write("/f", b"x")
        assert any(n.startswith("patch:") for n in fs.store.names())
        replacement = H2Middleware(node_id=9, store=fs.store)
        replacement.merger.recover_orphaned_patches()
        assert not any(n.startswith("patch:") for n in fs.store.names())

    def test_recovery_is_idempotent(self):
        fs = crashy_fs()
        fs.write("/f", b"x")
        replacement = H2Middleware(node_id=9, store=fs.store)
        assert replacement.merger.recover_orphaned_patches() >= 1
        assert replacement.merger.recover_orphaned_patches() == 0
        assert replacement.read_file("alice", "/f") == b"x"

    def test_recovery_respects_own_pending_chains(self):
        """A middleware recovering others' patches must not re-apply
        (and must not retire) patches still chained locally."""
        fs = crashy_fs()
        mw = fs.middlewares[0]
        fs.write("/own", b"local")
        chained = {
            p.object_name
            for fd in mw.fd_cache.dirty_descriptors()
            for p in fd.chain.patches
        }
        assert chained
        assert mw.merger.recover_orphaned_patches() == 0
        assert chained <= set(fs.store.names())
        fs.pump()  # the normal path still applies them
        assert fs.read("/own") == b"local"

    def test_recovery_multiple_nodes_folds_in_order(self):
        """Patches from several dead nodes on one ring: LWW sorts it."""
        cluster = SwiftCluster.fast()
        config = H2Config(auto_merge=False)
        a = H2Middleware(node_id=1, store=cluster.store, config=config)
        a.create_account("alice")
        b = H2Middleware(node_id=2, store=cluster.store, config=config)
        a.write_file("alice", "/f", b"from-a")
        b.write_file("alice", "/f", b"from-b")  # later timestamp
        replacement = H2Middleware(node_id=9, store=cluster.store)
        assert replacement.merger.recover_orphaned_patches() == 2
        assert replacement.read_file("alice", "/f") == b"from-b"

    def test_recovered_deletion_stays_deleted(self):
        fs = crashy_fs()
        fs.write("/f", b"x")
        fs.pump()
        fs.delete("/f")  # tombstone patch, unmerged
        replacement = H2Middleware(node_id=9, store=fs.store)
        replacement.merger.recover_orphaned_patches()
        assert not replacement.exists("alice", "/f")
