"""NameRing semantics + CRDT laws of the merge algorithm (paper §3.3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KIND_DIR, KIND_FILE, Child, NameRing, merge, merge_all
from repro.simcloud import Timestamp


def ts(n: int) -> Timestamp:
    return Timestamp(wall_us=n, seq=n, node_id=0)


def file_child(name: str, t: int, deleted: bool = False, size: int = 0) -> Child:
    return Child(name=name, timestamp=ts(t), kind=KIND_FILE, deleted=deleted, size=size)


def dir_child(name: str, t: int, ns: str = "1.1.1") -> Child:
    return Child(name=name, timestamp=ts(t), kind=KIND_DIR, ns=ns)


class TestChild:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            Child(name="x", timestamp=ts(1), kind="symlink")

    def test_live_dir_needs_namespace(self):
        with pytest.raises(ValueError):
            Child(name="d", timestamp=ts(1), kind=KIND_DIR)

    def test_deleted_dir_allows_missing_namespace(self):
        Child(name="d", timestamp=ts(1), kind=KIND_DIR, deleted=True)

    def test_tombstone_keeps_identity(self):
        child = file_child("f", 1, size=42)
        dead = child.tombstone(ts(9))
        assert dead.deleted
        assert dead.name == "f"
        assert dead.size == 42
        assert dead.timestamp == ts(9)


class TestQueries:
    def test_empty_ring(self):
        ring = NameRing.empty()
        assert len(ring) == 0
        assert ring.get("x") is None
        assert ring.version == Timestamp.ZERO
        assert not ring.needs_compaction

    def test_live_children_sorted(self):
        ring = (
            NameRing.empty()
            .with_child(file_child("nc", 3))
            .with_child(file_child("bash", 2))
            .with_child(file_child("cat", 1))
        )
        assert ring.live_names() == ["bash", "cat", "nc"]

    def test_tombstones_hidden_from_get(self):
        ring = NameRing.empty().with_child(file_child("gone", 5, deleted=True))
        assert ring.get("gone") is None
        assert ring.get_any("gone") is not None
        assert "gone" not in ring
        assert len(ring) == 0

    def test_version_is_max_timestamp(self):
        ring = (
            NameRing.empty()
            .with_child(file_child("a", 3))
            .with_child(file_child("b", 7))
        )
        assert ring.version == ts(7)

    def test_compacted_strips_tombstones(self):
        ring = (
            NameRing.empty()
            .with_child(file_child("live", 1))
            .with_child(file_child("dead", 2, deleted=True))
        )
        assert ring.needs_compaction
        compacted = ring.compacted()
        assert not compacted.needs_compaction
        assert compacted.live_names() == ["live"]
        assert compacted.get_any("dead") is None

    def test_immutability(self):
        ring = NameRing.empty()
        ring.with_child(file_child("x", 1))
        assert len(ring) == 0  # original untouched


class TestMergeSemantics:
    def test_disjoint_union(self):
        a = NameRing.empty().with_child(file_child("a", 1))
        b = NameRing.empty().with_child(file_child("b", 2))
        merged = a.merge(b)
        assert merged.live_names() == ["a", "b"]

    def test_newer_timestamp_wins(self):
        old = NameRing.empty().with_child(file_child("f", 1, size=10))
        new = NameRing.empty().with_child(file_child("f", 5, size=99))
        assert old.merge(new).get("f").size == 99
        assert new.merge(old).get("f").size == 99

    def test_deletion_overrides_older_insert(self):
        """The fake-deletion tuple has the larger timestamp, so it wins."""
        alive = NameRing.empty().with_child(file_child("f", 3))
        dead = NameRing.empty().with_child(file_child("f", 8, deleted=True))
        merged = alive.merge(dead)
        assert merged.get("f") is None
        assert merged.get_any("f").deleted

    def test_recreate_after_delete(self):
        dead = NameRing.empty().with_child(file_child("f", 5, deleted=True))
        recreated = NameRing.empty().with_child(file_child("f", 9))
        assert dead.merge(recreated).get("f") is not None

    def test_merge_never_removes(self):
        a = NameRing.empty().with_child(file_child("keep", 1))
        assert a.merge(NameRing.empty()).get("keep") is not None

    def test_merge_all_folds_in_order(self):
        patches = [
            NameRing.empty().with_child(file_child("f", i, size=i))
            for i in (2, 9, 4)
        ]
        assert merge_all(patches).get("f").size == 9

    def test_merge_all_empty(self):
        assert merge_all([]).children == {}


# ----------------------------------------------------------------------
# CRDT laws -- these are what make gossip converge in any order
# ----------------------------------------------------------------------
_names = st.sampled_from(["a", "b", "c", "d", "e"])
_children = st.builds(
    lambda name, wall, seq, node, deleted, size: Child(
        name=name,
        timestamp=Timestamp(wall, seq, node),
        kind=KIND_FILE,
        deleted=deleted,
        size=size,
    ),
    _names,
    st.integers(0, 50),
    st.integers(0, 10),
    st.integers(0, 3),
    st.booleans(),
    st.integers(0, 100),
)
_rings = st.lists(_children, max_size=8).map(
    lambda cs: NameRing(children={c.name: c for c in cs})
)


class TestCRDTLaws:
    @given(_rings, _rings)
    @settings(max_examples=200)
    def test_commutative_on_live_view(self, a, b):
        """a ⊔ b and b ⊔ a agree wherever timestamps are unambiguous.

        With strictly unique timestamps (the deployed configuration --
        TimestampFactory never repeats) merge is fully commutative;
        here we allow generated timestamp *ties* and require agreement
        on every child whose competing tuples differ in timestamp.
        """
        ab, ba = merge(a, b), merge(b, a)
        for name in set(ab.children) | set(ba.children):
            x, y = ab.children.get(name), ba.children.get(name)
            assert x is not None and y is not None
            if x != y:
                assert x.timestamp == y.timestamp  # only ties may differ

    @given(_rings, _rings, _rings)
    @settings(max_examples=200)
    def test_associative(self, a, b, c):
        left = merge(merge(a, b), c)
        right = merge(a, merge(b, c))
        for name in set(left.children) | set(right.children):
            x, y = left.children.get(name), right.children.get(name)
            assert x is not None and y is not None
            if x != y:
                assert x.timestamp == y.timestamp

    @given(_rings)
    @settings(max_examples=100)
    def test_idempotent(self, a):
        assert merge(a, a).children == a.children

    @given(_rings, _rings)
    @settings(max_examples=100)
    def test_merge_dominates_both(self, a, b):
        """Every child of either operand survives (possibly overridden)."""
        merged = merge(a, b)
        for name in set(a.children) | set(b.children):
            assert name in merged.children

    @given(_rings, _rings)
    @settings(max_examples=100)
    def test_version_monotone(self, a, b):
        merged = merge(a, b)
        assert merged.version >= a.version
        assert merged.version >= b.version
