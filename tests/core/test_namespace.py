"""Tests for namespaces, path handling and the object-naming scheme."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    Namespace,
    NamespaceAllocator,
    decorate,
    depth_of,
    directory_key,
    file_key,
    join,
    namering_key,
    normalize_path,
    parent_and_base,
    parse_decorated,
    patch_key,
    split_path,
)
from repro.simcloud import InvalidPath, SimClock


class TestNamespace:
    def test_root_is_deterministic(self):
        assert Namespace.root("alice") == Namespace.root("alice")
        assert Namespace.root("alice") != Namespace.root("bob")

    def test_root_flag(self):
        assert Namespace.root("a").is_root
        assert not Namespace(uuid="1.2.3").is_root

    def test_bad_account_names(self):
        for bad in ["", "a/b", "a::b"]:
            with pytest.raises(InvalidPath):
                Namespace.root(bad)


class TestAllocator:
    def test_issues_unique_sequential(self):
        alloc = NamespaceAllocator(node_id=1, clock=SimClock())
        a, b = alloc.next(), alloc.next()
        assert a != b
        assert a.uuid.startswith("1.1.")
        assert b.uuid.startswith("2.1.")
        assert alloc.issued == 2

    def test_distinct_nodes_never_collide(self):
        clock = SimClock()
        a = NamespaceAllocator(1, clock).next()
        b = NamespaceAllocator(2, clock).next()
        assert a != b

    def test_uuid_embeds_timestamp(self):
        clock = SimClock()
        clock.advance(1469346604539)
        ns = NamespaceAllocator(1, clock).next()
        assert ns.uuid == "1.1.1469346604539"


class TestDecoration:
    def test_round_trip(self):
        ns = Namespace("6.1.1469346604539")
        rel = decorate(ns, "file1")
        assert rel == "6.1.1469346604539::file1"
        back_ns, name = parse_decorated(rel)
        assert back_ns == ns
        assert name == "file1"

    def test_parse_rejects_undecorated(self):
        with pytest.raises(InvalidPath):
            parse_decorated("/home/ubuntu/file1")

    def test_parse_rejects_empty_parts(self):
        with pytest.raises(InvalidPath):
            parse_decorated("::file1")
        with pytest.raises(InvalidPath):
            parse_decorated("ns::")

    def test_name_may_contain_separator_remnants(self):
        """Only the first '::' splits; file names keep the rest."""
        ns, name = parse_decorated("1.2.3::a::b")
        assert name == "a::b"


class TestPaths:
    def test_split_root(self):
        assert split_path("/") == []

    def test_split_simple(self):
        assert split_path("/home/ubuntu/file1") == ["home", "ubuntu", "file1"]

    def test_relative_rejected(self):
        with pytest.raises(InvalidPath):
            split_path("home/ubuntu")

    def test_empty_component_rejected(self):
        with pytest.raises(InvalidPath):
            split_path("/home//ubuntu")

    def test_dot_components_rejected(self):
        with pytest.raises(InvalidPath):
            split_path("/home/./x")
        with pytest.raises(InvalidPath):
            split_path("/home/../x")

    def test_separator_in_name_rejected(self):
        with pytest.raises(InvalidPath):
            split_path("/home/a::b")

    def test_trailing_slash_tolerated(self):
        assert split_path("/home/ubuntu/") == ["home", "ubuntu"]

    def test_normalize(self):
        assert normalize_path("/home/ubuntu/") == "/home/ubuntu"
        assert normalize_path("/") == "/"

    def test_parent_and_base(self):
        assert parent_and_base("/a/b/c") == ("/a/b", "c")
        assert parent_and_base("/a") == ("/", "a")

    def test_parent_of_root_rejected(self):
        with pytest.raises(InvalidPath):
            parent_and_base("/")

    def test_join(self):
        assert join("/", "a") == "/a"
        assert join("/a/b", "c") == "/a/b/c"

    def test_depth_matches_paper(self):
        """Paper: /home/ubuntu/file1 has d = 3."""
        assert depth_of("/home/ubuntu/file1") == 3
        assert depth_of("/") == 0

    @given(
        st.lists(
            st.text(
                alphabet=st.characters(
                    blacklist_characters="/\n\x00",
                    blacklist_categories=("Cs",),
                ),
                min_size=1,
                max_size=8,
            ).filter(lambda s: s not in (".", "..") and "::" not in s),
            min_size=0,
            max_size=6,
        )
    )
    def test_split_join_round_trip(self, components):
        path = "/" + "/".join(components)
        if "//" in path:
            return  # empty-looking components collapse; skip
        assert split_path(path) == components


class TestObjectKeys:
    def test_keys_are_disjoint_namespaces(self):
        ns = Namespace("1.1.0")
        keys = {
            namering_key(ns),
            directory_key(ns),
            file_key(ns, "x"),
            patch_key(ns, 1, 3),
        }
        assert len(keys) == 4
        prefixes = {k.split(":", 1)[0] for k in keys}
        assert prefixes == {"nr", "dir", "f", "patch"}

    def test_patch_key_matches_paper_shape(self):
        """Paper example: N97::/NameRing/.Node01.Patch03."""
        key = patch_key(Namespace("97.1.5"), node_id=1, patch_seq=3)
        assert "Node01" in key
        assert "Patch000003" in key

    def test_file_key_embeds_decorated_path(self):
        ns = Namespace("2.1.9")
        assert file_key(ns, "file1") == "f:2.1.9::file1"
