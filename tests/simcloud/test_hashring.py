"""Tests for the consistent-hash ring: placement, balance, stability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcloud import HashRing, RingError, hash_key


def make_ring(n_nodes: int, replicas: int = 3, vnodes: int = 64) -> HashRing:
    ring = HashRing(replicas=replicas, vnodes=vnodes)
    for node_id in range(1, n_nodes + 1):
        ring.add_node(node_id)
    return ring


KEYS = [f"/account/alice/file-{i}.dat" for i in range(2000)]


class TestConstruction:
    def test_rejects_zero_replicas(self):
        with pytest.raises(RingError):
            HashRing(replicas=0)

    def test_rejects_zero_vnodes(self):
        with pytest.raises(RingError):
            HashRing(vnodes=0)

    def test_duplicate_node_rejected(self):
        ring = make_ring(1)
        with pytest.raises(RingError):
            ring.add_node(1)

    def test_remove_unknown_node_rejected(self):
        with pytest.raises(RingError):
            make_ring(2).remove_node(99)

    def test_len_counts_nodes(self):
        assert len(make_ring(5)) == 5

    def test_empty_ring_cannot_place(self):
        with pytest.raises(RingError):
            HashRing().nodes_for("key")


class TestPlacement:
    def test_deterministic(self):
        a, b = make_ring(8), make_ring(8)
        for key in KEYS[:200]:
            assert a.nodes_for(key) == b.nodes_for(key)

    def test_replicas_distinct(self):
        ring = make_ring(8)
        for key in KEYS[:500]:
            nodes = ring.nodes_for(key)
            assert len(nodes) == 3
            assert len(set(nodes)) == 3

    def test_primary_is_first_replica(self):
        ring = make_ring(8)
        for key in KEYS[:100]:
            assert ring.primary_for(key) == ring.nodes_for(key)[0]

    def test_degraded_when_fewer_nodes_than_replicas(self):
        ring = make_ring(2, replicas=3)
        nodes = ring.nodes_for("anything")
        assert sorted(nodes) == [1, 2]

    def test_single_node_ring(self):
        ring = make_ring(1)
        assert ring.nodes_for("k") == [1]

    def test_hash_key_is_128_bit(self):
        assert 0 <= hash_key("x") < (1 << 128)

    def test_hash_key_deterministic(self):
        assert hash_key("same") == hash_key("same")
        assert hash_key("a") != hash_key("b")


class TestBalance:
    def test_primary_load_reasonably_fair(self):
        """With 128 vnodes/node, no node's share should be wildly off."""
        ring = make_ring(8, vnodes=128)
        assert ring.balance_error(KEYS) < 0.5  # within 50% of fair share

    def test_more_vnodes_improves_balance(self):
        coarse = make_ring(8, vnodes=8)
        fine = make_ring(8, vnodes=256)
        assert fine.balance_error(KEYS) < coarse.balance_error(KEYS)

    def test_every_node_gets_some_load(self):
        ring = make_ring(8)
        counts = ring.load_distribution(KEYS)
        assert all(c > 0 for c in counts.values())

    def test_balance_error_empty_keys(self):
        assert make_ring(3).balance_error([]) == 0.0


class TestChurn:
    def test_adding_node_moves_few_keys(self):
        """Consistent hashing's whole point: ~1/(n+1) of keys move."""
        before = make_ring(8)
        after = make_ring(8)
        after.add_node(9)
        moved = before.moved_fraction(after, KEYS)
        assert 0.0 < moved < 0.30  # ideal 1/9 ~ 0.11, allow slack

    def test_removing_node_moves_only_its_keys(self):
        before = make_ring(8)
        after = make_ring(8)
        after.remove_node(5)
        for key in KEYS[:500]:
            if before.primary_for(key) != 5:
                assert after.primary_for(key) == before.primary_for(key)

    def test_add_then_remove_restores_placement(self):
        ring = make_ring(8)
        reference = make_ring(8)
        ring.add_node(9)
        ring.remove_node(9)
        assert ring.moved_fraction(reference, KEYS[:300]) == 0.0

    def test_moved_fraction_identity(self):
        ring = make_ring(4)
        assert ring.moved_fraction(ring, KEYS[:100]) == 0.0

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=10, deadline=None)
    def test_survivors_keep_placement_on_removal(self, n_nodes):
        before = make_ring(n_nodes, vnodes=32)
        after = make_ring(n_nodes, vnodes=32)
        victim = n_nodes  # remove the last node
        after.remove_node(victim)
        if n_nodes == 2:
            return  # all keys trivially land on the single survivor
        for key in KEYS[:100]:
            if before.primary_for(key) != victim:
                assert after.primary_for(key) == before.primary_for(key)
