"""Tests for the consistent-hash ring: placement, balance, stability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcloud import HashRing, RingError, hash_key


def make_ring(n_nodes: int, replicas: int = 3, vnodes: int = 64) -> HashRing:
    ring = HashRing(replicas=replicas, vnodes=vnodes)
    for node_id in range(1, n_nodes + 1):
        ring.add_node(node_id)
    return ring


KEYS = [f"/account/alice/file-{i}.dat" for i in range(2000)]


class TestConstruction:
    def test_rejects_zero_replicas(self):
        with pytest.raises(RingError):
            HashRing(replicas=0)

    def test_rejects_zero_vnodes(self):
        with pytest.raises(RingError):
            HashRing(vnodes=0)

    def test_duplicate_node_rejected(self):
        ring = make_ring(1)
        with pytest.raises(RingError):
            ring.add_node(1)

    def test_remove_unknown_node_rejected(self):
        with pytest.raises(RingError):
            make_ring(2).remove_node(99)

    def test_len_counts_nodes(self):
        assert len(make_ring(5)) == 5

    def test_empty_ring_cannot_place(self):
        with pytest.raises(RingError):
            HashRing().nodes_for("key")


class TestPlacement:
    def test_deterministic(self):
        a, b = make_ring(8), make_ring(8)
        for key in KEYS[:200]:
            assert a.nodes_for(key) == b.nodes_for(key)

    def test_replicas_distinct(self):
        ring = make_ring(8)
        for key in KEYS[:500]:
            nodes = ring.nodes_for(key)
            assert len(nodes) == 3
            assert len(set(nodes)) == 3

    def test_primary_is_first_replica(self):
        ring = make_ring(8)
        for key in KEYS[:100]:
            assert ring.primary_for(key) == ring.nodes_for(key)[0]

    def test_degraded_when_fewer_nodes_than_replicas(self):
        ring = make_ring(2, replicas=3)
        nodes = ring.nodes_for("anything")
        assert sorted(nodes) == [1, 2]

    def test_single_node_ring(self):
        ring = make_ring(1)
        assert ring.nodes_for("k") == [1]

    def test_hash_key_is_128_bit(self):
        assert 0 <= hash_key("x") < (1 << 128)

    def test_hash_key_deterministic(self):
        assert hash_key("same") == hash_key("same")
        assert hash_key("a") != hash_key("b")


class TestBalance:
    def test_primary_load_reasonably_fair(self):
        """With 128 vnodes/node, no node's share should be wildly off."""
        ring = make_ring(8, vnodes=128)
        assert ring.balance_error(KEYS) < 0.5  # within 50% of fair share

    def test_more_vnodes_improves_balance(self):
        coarse = make_ring(8, vnodes=8)
        fine = make_ring(8, vnodes=256)
        assert fine.balance_error(KEYS) < coarse.balance_error(KEYS)

    def test_every_node_gets_some_load(self):
        ring = make_ring(8)
        counts = ring.load_distribution(KEYS)
        assert all(c > 0 for c in counts.values())

    def test_balance_error_empty_keys(self):
        assert make_ring(3).balance_error([]) == 0.0


class TestChurn:
    def test_adding_node_moves_few_keys(self):
        """Consistent hashing's whole point: ~1/(n+1) of keys move."""
        before = make_ring(8)
        after = make_ring(8)
        after.add_node(9)
        moved = before.moved_fraction(after, KEYS)
        assert 0.0 < moved < 0.30  # ideal 1/9 ~ 0.11, allow slack

    def test_removing_node_moves_only_its_keys(self):
        before = make_ring(8)
        after = make_ring(8)
        after.remove_node(5)
        for key in KEYS[:500]:
            if before.primary_for(key) != 5:
                assert after.primary_for(key) == before.primary_for(key)

    def test_add_then_remove_restores_placement(self):
        ring = make_ring(8)
        reference = make_ring(8)
        ring.add_node(9)
        ring.remove_node(9)
        assert ring.moved_fraction(reference, KEYS[:300]) == 0.0

    def test_moved_fraction_identity(self):
        ring = make_ring(4)
        assert ring.moved_fraction(ring, KEYS[:100]) == 0.0

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=10, deadline=None)
    def test_survivors_keep_placement_on_removal(self, n_nodes):
        before = make_ring(n_nodes, vnodes=32)
        after = make_ring(n_nodes, vnodes=32)
        victim = n_nodes  # remove the last node
        after.remove_node(victim)
        if n_nodes == 2:
            return  # all keys trivially land on the single survivor
        for key in KEYS[:100]:
            if before.primary_for(key) != victim:
                assert after.primary_for(key) == before.primary_for(key)


class TestChurnProperties:
    """Property suite for the move-minimality the rebalancer relies on.

    The membership controller's transition plan is exactly the set of
    keys :meth:`moved_fraction` counts, so these bounds are what keep
    a node join from turning into a full reshuffle.
    """

    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_add_then_remove_is_a_placement_noop(self, n_nodes, extra):
        ring = make_ring(n_nodes, vnodes=32)
        reference = make_ring(n_nodes, vnodes=32)
        joined = n_nodes + 1 + extra
        ring.add_node(joined)
        ring.remove_node(joined)
        assert ring.moved_fraction(reference, KEYS[:400]) == 0.0
        for key in KEYS[:200]:
            assert ring.nodes_for(key) == reference.nodes_for(key)

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=12, deadline=None)
    def test_single_join_moves_at_most_its_token_share(self, n_nodes):
        """Adding one node moves ~its token fraction of primaries.

        The joining node owns ``vnodes`` of the ring's
        ``(n+1) * vnodes`` tokens; its expected primary share is that
        fraction.  Allow 2x for token-placement variance plus an
        additive epsilon for key-sampling noise -- still far below the
        full reshuffle a modulo-placement scheme would cost.
        """
        vnodes = 64
        before = make_ring(n_nodes, vnodes=vnodes)
        after = make_ring(n_nodes, vnodes=vnodes)
        after.add_node(n_nodes + 1)
        total_tokens = (n_nodes + 1) * vnodes
        share = vnodes / total_tokens
        moved = before.moved_fraction(after, KEYS)
        assert 0.0 < moved <= 2.0 * share + 0.05

    @given(st.integers(min_value=3, max_value=12))
    @settings(max_examples=12, deadline=None)
    def test_single_departure_moves_at_most_its_token_share(self, n_nodes):
        vnodes = 64
        before = make_ring(n_nodes, vnodes=vnodes)
        after = make_ring(n_nodes, vnodes=vnodes)
        after.remove_node(n_nodes)
        share = vnodes / (n_nodes * vnodes)
        moved = before.moved_fraction(after, KEYS)
        assert 0.0 < moved <= 2.0 * share + 0.05


class TestWeightsAndCopy:
    def test_rejects_nonpositive_weight(self):
        ring = make_ring(2)
        with pytest.raises(RingError):
            ring.add_node(3, weight=0.0)
        with pytest.raises(RingError):
            ring.add_node(3, weight=-1.0)

    def test_weight_one_is_placement_identical_to_unweighted(self):
        plain, weighted = make_ring(0), make_ring(0)
        for node_id in range(1, 7):
            plain.add_node(node_id)
            weighted.add_node(node_id, weight=1.0)
        assert plain.moved_fraction(weighted, KEYS[:500]) == 0.0

    def test_heavier_node_takes_a_larger_share(self):
        ring = HashRing(replicas=3, vnodes=64)
        for node_id in (1, 2, 3, 4):
            ring.add_node(node_id)
        ring.add_node(5, weight=3.0)
        counts = ring.load_distribution(KEYS)
        fair = len(KEYS) / 5
        assert counts[5] > 1.5 * fair  # triple-weight beats a fair share

    def test_weight_of_reports_and_survives_copy(self):
        ring = make_ring(2)
        ring.add_node(3, weight=2.5)
        assert ring.weight_of(3) == 2.5
        assert ring.weight_of(1) == 1.0
        assert ring.copy().weight_of(3) == 2.5

    def test_copy_is_independent_of_the_original(self):
        ring = make_ring(6)
        frozen = ring.copy()
        ring.add_node(7)
        ring.remove_node(1)
        reference = make_ring(6)
        assert frozen.moved_fraction(reference, KEYS[:300]) == 0.0
        assert frozen.node_ids == frozenset(range(1, 7))

    def test_copy_places_identically(self):
        ring = make_ring(5)
        clone = ring.copy()
        for key in KEYS[:300]:
            assert clone.nodes_for(key) == ring.nodes_for(key)
