"""Regression: stale replicas after crash-overwrite-recover cycles."""

from repro.simcloud import SwiftCluster


def test_repair_refreshes_stale_replica():
    """put v1 -> crash primary -> put v2 -> recover -> repair:
    every replica (and every read) must see v2."""
    cluster = SwiftCluster.fast()
    store = cluster.store
    store.put("k", b"v1")
    primary = cluster.ring.primary_for("k")
    cluster.nodes[primary].crash()
    store.put("k", b"v2")
    cluster.nodes[primary].recover()
    assert cluster.nodes[primary].peek("k").data == b"v1"  # stale
    fixed = store.repair()
    assert fixed >= 1
    assert cluster.nodes[primary].peek("k").data == b"v2"
    assert store.get("k").data == b"v2"


def test_read_before_repair_documents_eventual_consistency():
    """Until the replicator runs, a read may serve the stale replica --
    the eventual consistency Swift (and hence H2Cloud) really offers."""
    cluster = SwiftCluster.fast()
    store = cluster.store
    store.put("k", b"v1")
    primary = cluster.ring.primary_for("k")
    cluster.nodes[primary].crash()
    store.put("k", b"v2")
    cluster.nodes[primary].recover()
    assert store.get("k").data in (b"v1", b"v2")  # placement-dependent
    store.repair()
    assert store.get("k").data == b"v2"


def test_deleted_then_recovered_replica_is_not_resurrected_into_reads():
    """A recovered node holding a deleted object's replica: the key
    registry no longer lists it, so reads keep 404ing; GC-style
    cleanup is the rebalance pass."""
    cluster = SwiftCluster.fast()
    store = cluster.store
    store.put("k", b"v1")
    primary = cluster.ring.primary_for("k")
    cluster.nodes[primary].crash()
    store.delete("k")
    cluster.nodes[primary].recover()
    assert "k" not in store.names()
    import pytest
    from repro.simcloud import ObjectNotFound

    with pytest.raises(ObjectNotFound):
        store.delete("k")
