"""Tests for cluster assembly and the latency model presets."""

import pytest

from repro.simcloud import (
    ClusterConfig,
    Jitter,
    LatencyModel,
    SwiftCluster,
)


class TestClusterConfig:
    def test_defaults_match_paper_rack(self):
        cfg = ClusterConfig()
        assert cfg.storage_nodes == 8
        assert cfg.replicas == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(storage_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(replicas=0)


class TestSwiftCluster:
    def test_rack_scale_builds_eight_nodes(self):
        cluster = SwiftCluster.rack_scale()
        assert len(cluster.nodes) == 8
        assert len(cluster.ring) == 8

    def test_nodes_share_ring_membership(self):
        cluster = SwiftCluster.fast()
        assert set(cluster.nodes) == set(cluster.ring.node_ids)

    def test_add_storage_node_joins_ring(self):
        cluster = SwiftCluster.fast()
        node = cluster.add_storage_node()
        assert node.node_id == 9
        assert node.node_id in cluster.ring.node_ids
        cluster.store.put("after-scale", b"x")
        assert cluster.store.get("after-scale").data == b"x"

    def test_storage_stats(self):
        cluster = SwiftCluster.fast()
        cluster.store.put("o", b"12345")
        stats = cluster.storage_stats()
        total_replicas = sum(count for count, _ in stats.values())
        total_bytes = sum(b for _, b in stats.values())
        assert total_replicas == 3
        assert total_bytes == 15

    def test_replicas_spread_across_nodes(self):
        cluster = SwiftCluster.rack_scale()
        for i in range(200):
            cluster.store.put(f"spread/{i}", b"x")
        stats = cluster.storage_stats()
        loaded = [nid for nid, (count, _) in stats.items() if count > 0]
        assert len(loaded) == 8  # every node carries some replicas


class TestLatencyModel:
    def test_zero_preset_charges_nothing(self):
        cluster = SwiftCluster.fast()
        cluster.store.put("a", b"x")
        cluster.store.get("a")
        assert cluster.clock.now_us == 0

    def test_paper_constants(self):
        m = LatencyModel.rack_scale()
        assert m.wan_rtt_us == 58_000  # avg PING to Dropbox
        assert m.wan_rtt_min_us == 24_000
        assert m.wan_rtt_max_us == 83_000
        assert m.lan_bandwidth_bps == 1_000_000_000

    def test_transfer_time_linear_in_bytes(self):
        m = LatencyModel.rack_scale()
        assert m.transfer_us(2_000_000) == 2 * m.transfer_us(1_000_000)

    def test_with_override(self):
        m = LatencyModel.rack_scale().with_(lan_rtt_us=999)
        assert m.lan_rtt_us == 999
        assert m.disk_seek_us == LatencyModel.rack_scale().disk_seek_us

    def test_disk_read_includes_seek(self):
        m = LatencyModel.rack_scale()
        assert m.disk_read_us(0) == m.disk_seek_us
        assert m.disk_read_us(1_000_000) > m.disk_seek_us


class TestJitter:
    def test_deterministic_stream(self):
        m = LatencyModel.rack_scale()
        a = [Jitter(m).apply(10_000) for _ in range(1)]
        b = [Jitter(m).apply(10_000) for _ in range(1)]
        assert a == b

    def test_bounded(self):
        m = LatencyModel.rack_scale()
        jitter = Jitter(m)
        for _ in range(200):
            v = jitter.apply(10_000)
            assert 9_200 <= v <= 10_800  # +/- 8%

    def test_zero_frac_is_identity(self):
        jitter = Jitter(LatencyModel.zero())
        assert jitter.apply(12345) == 12345

    def test_wan_rtt_within_paper_range(self):
        m = LatencyModel.rack_scale()
        jitter = Jitter(m)
        samples = [jitter.wan_rtt_us(m) for _ in range(500)]
        assert all(24_000 <= s <= 83_000 for s in samples)
        mean = sum(samples) / len(samples)
        assert 50_000 < mean < 62_000  # triangular around 58 ms
