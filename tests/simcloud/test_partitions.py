"""Link-level partitions, sloppy-quorum hinted handoff, and both
property suites (partition-matrix algebra, hint-store invariants).

The partition matrix is pure data -- Hypothesis can hammer its algebra
directly.  The hint-store invariants run against a real (fast) cluster
so delivery exercises the actual verified write path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcloud import (
    LinkDown,
    PartitionPlan,
    SwiftCluster,
    mw_endpoint,
    node_endpoint,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_ENDPOINTS = [mw_endpoint(i) for i in range(1, 4)] + [
    node_endpoint(i) for i in range(1, 5)
]
_ENDPOINT = st.sampled_from(_ENDPOINTS)
_CUT = st.sampled_from(["c0", "c1", "c2"])
_MODE = st.sampled_from(["both", "in", "out"])
_ISOLATES = st.lists(
    st.tuples(
        st.lists(_ENDPOINT, min_size=1, max_size=2, unique=True),
        st.lists(_ENDPOINT, min_size=1, max_size=3, unique=True),
        _CUT,
        _MODE,
    ),
    max_size=6,
)


class TestPartitionMatrixAlgebra:
    @given(_ISOLATES)
    @settings(max_examples=80, deadline=None)
    def test_heal_all_restores_full_connectivity(self, isolates):
        plan = PartitionPlan()
        for island, peers, cut, mode in isolates:
            plan.isolate(island, peers, cut, mode=mode)
        plan.heal_all()
        assert not plan.active
        for src in _ENDPOINTS:
            for dst in _ENDPOINTS:
                assert plan.reachable(src, dst)

    @given(_ISOLATES, _CUT)
    @settings(max_examples=80, deadline=None)
    def test_heal_is_idempotent(self, isolates, cut):
        plan = PartitionPlan()
        for island, peers, c, mode in isolates:
            plan.isolate(island, peers, c, mode=mode)
        plan.heal(cut)
        matrix = {
            (s, d): plan.reachable(s, d)
            for s in _ENDPOINTS
            for d in _ENDPOINTS
        }
        assert plan.heal(cut) == 0  # second heal releases nothing
        assert matrix == {
            (s, d): plan.reachable(s, d)
            for s in _ENDPOINTS
            for d in _ENDPOINTS
        }
        assert cut not in plan.active

    @given(_ISOLATES)
    @settings(max_examples=80, deadline=None)
    def test_overlapping_cuts_keep_links_severed_until_all_heal(
        self, isolates
    ):
        """A link cut by two ids stays down until *both* heal."""
        plan = PartitionPlan()
        for island, peers, cut, mode in isolates:
            plan.isolate(island, peers, cut, mode=mode)
        plan.heal_all()
        plan.isolate(["mw:1"], ["node:1"], "x0")
        plan.isolate(["mw:1"], ["node:1"], "x1")
        plan.heal("x0")
        assert not plan.reachable("mw:1", "node:1")
        plan.heal("x1")
        assert plan.reachable("mw:1", "node:1")

    def test_mode_in_and_out_are_asymmetric(self):
        plan = PartitionPlan()
        plan.isolate(["mw:1"], ["node:2"], "out-cut", mode="out")
        assert not plan.reachable("mw:1", "node:2")
        assert plan.reachable("node:2", "mw:1")
        plan.isolate(["mw:2"], ["node:3"], "in-cut", mode="in")
        assert plan.reachable("mw:2", "node:3")
        assert not plan.reachable("node:3", "mw:2")

    def test_both_severs_both_directions(self):
        plan = PartitionPlan()
        plan.isolate(["mw:1"], ["node:1", "node:2"], "c0", mode="both")
        for node in ("node:1", "node:2"):
            assert not plan.reachable("mw:1", node)
            assert not plan.reachable(node, "mw:1")
        # Uninvolved endpoints are untouched.
        assert plan.reachable("mw:2", "node:1")

    def test_unknown_mode_rejected(self):
        plan = PartitionPlan()
        with pytest.raises(ValueError):
            plan.isolate(["mw:1"], ["node:1"], "c0", mode="sideways")

    def test_scheduled_cuts_fire_on_pump(self):
        cluster = SwiftCluster.fast()
        plan = cluster.partitions
        at = cluster.clock.now_us
        plan.partition_at(at + 10, ["mw:1"], ["node:1"], "c0")
        plan.heal_at(at + 20, "c0")
        assert plan.reachable("mw:1", "node:1")
        cluster.step(15)
        assert not plan.reachable("mw:1", "node:1")
        cluster.step(15)
        assert plan.reachable("mw:1", "node:1")
        assert plan.pending == 0


# ---------------------------------------------------------------------------
# link-scoped enforcement (satellite: breakers must not quarantine the
# node fleet-wide when only one middleware's link is cut)
# ---------------------------------------------------------------------------


def _owner_of(store, name):
    return store.ring.nodes_for(name)[0]


class TestLinkScopedEnforcement:
    def test_severed_link_raises_linkdown_for_that_origin_only(self):
        cluster = SwiftCluster.fast()
        store = cluster.store
        store.put("shared", b"v1")
        owner = _owner_of(store, "shared")
        cluster.partitions.isolate(
            [mw_endpoint(1)], [node_endpoint(owner)], "c0"
        )
        # Reads through mw:1 route around the severed replica...
        store.origin = 1
        assert store.get("shared").data == b"v1"
        # ...while mw:2's link to the same node still works.
        store.origin = 2
        assert store.get("shared").data == b"v1"
        store.origin = None

    def test_linkdown_never_feeds_the_fleet_breaker(self):
        cluster = SwiftCluster.fast()
        store = cluster.store
        store.put("shared", b"v1")
        owner = _owner_of(store, "shared")
        cluster.partitions.isolate(
            [mw_endpoint(1)], [node_endpoint(owner)], "c0"
        )
        store.origin = 1
        for _ in range(10):
            store.get("shared")
            store.put("shared", store.get("shared").data)
        store.origin = None
        # The partition blocked requests, but the breaker saw none of
        # them: unreachability is a property of the *link*, not the
        # node, so other middlewares keep their replica.
        assert cluster.partitions.blocked_requests > 0
        breaker = store.breakers[owner]
        assert breaker.consecutive_failures == 0
        assert breaker.allow(cluster.clock.now_us)

    def test_maintenance_plane_ignores_partitions(self):
        """Repair rides the rack's internal network: origin=None paths
        are never blocked by the client-facing partition matrix."""
        cluster = SwiftCluster.fast()
        store = cluster.store
        store.put("m", b"v")
        owner = _owner_of(store, "m")
        cluster.partitions.isolate(
            [mw_endpoint(1)], [node_endpoint(owner)], "c0"
        )
        store.origin = None
        assert store.get("m").data == b"v"


# ---------------------------------------------------------------------------
# sloppy quorum + hinted handoff
# ---------------------------------------------------------------------------


class TestSloppyQuorum:
    def _partitioned_cluster(self, name="obj"):
        cluster = SwiftCluster.fast()
        cluster.enable_hinted_handoff()
        store = cluster.store
        owner = _owner_of(store, name)
        cluster.partitions.isolate(
            [mw_endpoint(1)], [node_endpoint(owner)], "c0"
        )
        store.origin = 1
        return cluster, store, owner

    def test_write_during_partition_parks_a_hint(self):
        cluster, store, owner = self._partitioned_cluster()
        store.put("obj", b"payload")
        hints = store.hints
        assert hints.sloppy_writes == 1
        assert hints.outstanding == 1
        (hint,) = hints.hints()
        assert hint.home_node == owner
        assert hint.fallback_node not in store.ring.nodes_for("obj")
        # The fallback stores the object under its real name, so the
        # verified read path serves it unchanged.
        fallback = store.nodes[hint.fallback_node].peek("obj")
        assert fallback is not None and fallback.data == b"payload"

    def test_heal_drains_hint_to_home_and_discards_fallback(self):
        cluster, store, owner = self._partitioned_cluster()
        store.put("obj", b"payload")
        (hint,) = store.hints.hints()
        assert store.nodes[owner].peek("obj") is None
        cluster.partitions.heal("c0")  # on_heal fires the sweeper
        assert store.hints.outstanding == 0
        assert store.hints.delivered == 1
        assert store.nodes[owner].peek("obj").data == b"payload"
        assert store.nodes[hint.fallback_node].peek("obj") is None

    def test_second_drain_delivers_nothing(self):
        """No duplicate delivery: a delivered hint is gone for good."""
        cluster, store, owner = self._partitioned_cluster()
        store.put("obj", b"payload")
        cluster.partitions.heal("c0")
        assert store.hints.delivered == 1
        assert cluster.hint_sweeper.drain() == 0
        assert cluster.hint_sweeper.drain_to_empty() == 0
        assert store.hints.delivered == 1

    def test_superseded_hint_is_not_delivered(self):
        cluster, store, owner = self._partitioned_cluster()
        store.put("obj", b"old")
        cluster.partitions.heal("c0")
        # Overwrite after heal: every owner now holds the newer bytes.
        store.put("obj", b"new")
        # A stale straggler hint for the old write must not clobber it.
        stale_ts = store.nodes[owner].peek("obj").timestamp
        store.hints.add("obj", owner, _other_node(store, "obj"), stale_ts, 0)
        cluster.hint_sweeper.drain_to_empty()
        assert store.hints.outstanding == 0
        assert store.nodes[owner].peek("obj").data == b"new"

    def test_hint_for_retired_owner_reroutes_to_current_owners(self):
        """Epoch-tagged hints never deliver to a node outside the
        current owner set -- delivery re-routes by the live ring."""
        cluster = SwiftCluster.fast()
        cluster.enable_hinted_handoff()
        store = cluster.store
        store.put("obj", b"payload")
        owners = set(store.ring.nodes_for("obj"))
        outsider = next(
            nid for nid in sorted(store.nodes) if nid not in owners
        )
        # Pretend "obj"'s home moved away in an old epoch: the hint
        # names a node the current ring does not own the name on.
        ts = store.nodes[sorted(owners)[0]].peek("obj").timestamp
        fallback = next(
            nid
            for nid in sorted(store.nodes)
            if nid not in owners and nid != outsider
        )
        store.nodes[fallback].write(store.nodes[sorted(owners)[0]].peek("obj"))
        store.hints.add("obj", outsider, fallback, ts, epoch=0)
        cluster.hint_sweeper.drain_to_empty()
        assert store.hints.outstanding == 0
        assert store.nodes[outsider].peek("obj") is None

    def test_hint_for_deleted_name_is_dropped(self):
        cluster, store, owner = self._partitioned_cluster()
        store.put("obj", b"payload")
        cluster.partitions.heal_all()
        store.origin = None
        store.delete("obj")
        assert store.hints.outstanding == 0
        cluster.hint_sweeper.drain_to_empty()
        assert store.hints.dropped >= 0  # drop already happened at delete

    def test_acked_writes_are_logged_even_without_failures(self):
        cluster = SwiftCluster.fast()
        cluster.enable_hinted_handoff()
        store = cluster.store
        store.put("a", b"1")
        store.put("a", b"2")
        names = [n for n, _ in store.hints.acked]
        assert names == ["a", "a"]


def _other_node(store, name):
    owners = set(store.ring.nodes_for(name))
    return next(nid for nid in sorted(store.nodes) if nid not in owners)


# ---------------------------------------------------------------------------
# hint-store invariants under random cut/write/heal scripts
# ---------------------------------------------------------------------------

_SCRIPT = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from([f"k{i}" for i in range(4)])),
        st.tuples(st.just("cut"), st.integers(1, 8)),
        st.tuples(st.just("heal"),),
    ),
    min_size=1,
    max_size=25,
)


class TestHintStoreInvariants:
    @given(_SCRIPT)
    @settings(max_examples=40, deadline=None)
    def test_drain_to_empty_after_heal(self, script):
        cluster = SwiftCluster.fast()
        cluster.enable_hinted_handoff()
        store = cluster.store
        store.origin = 1
        cuts = 0
        payloads: dict[str, bytes] = {}
        for step in script:
            if step[0] == "put":
                name = step[1]
                data = f"{name}:{cuts}".encode()
                store.put(name, data)
                payloads[name] = data
            elif step[0] == "cut":
                cluster.partitions.isolate(
                    [mw_endpoint(1)], [node_endpoint(step[1])], f"c{cuts}"
                )
                cuts += 1
            else:
                cluster.partitions.heal_all()
        cluster.partitions.heal_all()
        cluster.hint_sweeper.drain_to_empty()
        store.origin = None
        # Every hint drained, every acked write readable at full value.
        assert store.hints.outstanding == 0
        for name, data in payloads.items():
            assert store.get(name).data == data
            for owner in store.ring.nodes_for(name):
                record = store.nodes[owner].peek(name)
                assert record is not None and record.data == data
