"""Tests for the replica-repair sweep and auto-repair-on-recovery."""

from repro.simcloud import FaultPlan, RepairSweeper, SwiftCluster


def populated_cluster(n: int = 12) -> SwiftCluster:
    cluster = SwiftCluster.fast()
    for i in range(n):
        cluster.store.put(f"obj-{i:02d}", bytes([i]) * 128)
    return cluster


class TestRepairSweeper:
    def test_clean_cluster_reports_clean(self):
        cluster = populated_cluster()
        report = RepairSweeper(cluster.store).sweep()
        assert report.clean
        assert report.objects_scanned == 12
        assert report.replicas_written == 0
        assert "CLEAN" in report.summary()

    def test_wipe_then_sweep_restores_full_replication(self):
        cluster = populated_cluster()
        victim = next(iter(cluster.nodes))
        lost = cluster.nodes[victim].object_count
        cluster.nodes[victim].wipe()
        report = RepairSweeper(cluster.store).sweep()
        assert report.replicas_written == lost
        assert report.under_replicated == lost
        for name in cluster.store.names():
            present, expected = cluster.store.replica_health(name)
            assert present == expected

    def test_crash_outage_overwrites_heal_as_stale(self):
        cluster = populated_cluster(4)
        victim = cluster.ring.nodes_for("obj-00")[0]
        cluster.nodes[victim].crash()
        cluster.store.put("obj-00", b"new-bytes")  # victim misses this
        cluster.nodes[victim].recover()
        report = RepairSweeper(cluster.store).sweep()
        assert report.stale_replicas == 1
        assert cluster.nodes[victim].peek("obj-00").data == b"new-bytes"

    def test_unrecoverable_when_every_replica_is_gone(self):
        cluster = populated_cluster(1)
        for node_id in cluster.ring.nodes_for("obj-00"):
            cluster.nodes[node_id].wipe()
        report = RepairSweeper(cluster.store).sweep()
        assert report.unrecoverable == ["obj-00"]
        assert not report.clean

    def test_down_nodes_are_left_alone_but_heal_later(self):
        cluster = populated_cluster(6)
        victim = cluster.ring.nodes_for("obj-00")[0]
        cluster.nodes[victim].wipe()
        cluster.nodes[victim].crash()
        first = RepairSweeper(cluster.store).sweep()
        assert cluster.nodes[victim].object_count == 0  # unreachable
        cluster.nodes[victim].recover()
        second = RepairSweeper(cluster.store).sweep()
        assert second.replicas_written > 0
        present, expected = cluster.store.replica_health("obj-00")
        assert present == expected
        assert first.objects_scanned == second.objects_scanned == 6

    def test_prefix_scopes_the_sweep(self):
        cluster = SwiftCluster.fast()
        cluster.store.put("a:one", b"x" * 32)
        cluster.store.put("b:two", b"y" * 32)
        for node_id in cluster.nodes:
            cluster.nodes[node_id].wipe()
        # Re-seed one replica of each so both are recoverable.
        report = RepairSweeper(cluster.store).sweep(prefix="a:")
        assert report.objects_scanned == 1
        assert report.unrecoverable == ["a:one"]

    def test_sweep_costs_land_on_the_background_ledger(self):
        cluster = populated_cluster()
        victim = next(iter(cluster.nodes))
        cluster.nodes[victim].wipe()
        # Zero-latency model: assert the counter plumbing, not the sum.
        before = cluster.store.ledger.background_us
        RepairSweeper(cluster.store).sweep()
        assert cluster.store.ledger.background_us >= before
        assert cluster.store.resilience.repaired_replicas > 0

    def test_sweep_runs_with_faults_suspended(self):
        cluster = populated_cluster()
        plan = cluster.install_fault_plan(FaultPlan(seed=8, io_error_rate=1.0))
        victim = next(iter(cluster.nodes))
        cluster.nodes[victim].wipe()
        report = RepairSweeper(cluster.store).sweep()
        assert not report.unrecoverable
        assert plan.total_injected == 0  # certain faults, none fired
        for name in cluster.store.names():
            present, expected = cluster.store.replica_health(name)
            assert present == expected


class TestAutoRepair:
    def test_recovery_event_triggers_a_sweep(self):
        cluster = populated_cluster()
        cluster.enable_auto_repair()
        victim = next(iter(cluster.nodes))
        cluster.failures.crash_at(10, node_id=victim)
        cluster.failures.wipe_at(1_000, node_id=victim)
        cluster.clock.advance(2_000)
        cluster.failures.pump()
        assert len(cluster.repair_reports) == 1
        for name in cluster.store.names():
            present, expected = cluster.store.replica_health(name)
            assert present == expected
