"""Tests for the verify-quarantine-repair read path and corruption faults."""

import pytest

from repro.simcloud import (
    CorruptObjectError,
    FaultPlan,
    RepairSweeper,
    SwiftCluster,
)
from repro.simcloud.failures import FAULT_NONE


def populated_cluster(n: int = 6) -> SwiftCluster:
    cluster = SwiftCluster.fast()
    for i in range(n):
        cluster.store.put(f"obj-{i:02d}", bytes([i + 1]) * 256)
    return cluster


def replica_nodes(cluster, name):
    return [cluster.nodes[nid] for nid in cluster.ring.nodes_for(name)]


class TestVerifiedReads:
    def test_corrupt_replica_fails_over_and_serves_good_bytes(self):
        cluster = populated_cluster()
        store = cluster.store
        first = cluster.ring.nodes_for("obj-00")[0]
        cluster.nodes[first].corrupt_object("obj-00")
        assert store.get("obj-00").data == b"\x01" * 256
        assert store.resilience.corrupt_replicas == 1

    def test_detection_quarantines_and_read_repairs(self):
        cluster = populated_cluster()
        store = cluster.store
        first = cluster.ring.nodes_for("obj-00")[0]
        cluster.nodes[first].corrupt_object("obj-00")
        store.get("obj-00")
        # The read that detected the rot finished with a read-repair:
        # the bad copy is rewritten and no longer quarantined.
        assert store.resilience.read_repairs == 1
        assert store.quarantine.get("obj-00") is None
        assert cluster.nodes[first].peek("obj-00").data == b"\x01" * 256

    def test_quarantined_replica_is_demoted_not_excluded(self):
        cluster = populated_cluster()
        store = cluster.store
        placement = cluster.ring.nodes_for("obj-00")
        # Quarantine the primary by hand (no read-repair has run).
        store.quarantine["obj-00"] = {placement[0]}
        assert store.quarantined_replica_count == 1
        record = store.get("obj-00")
        assert record.data == b"\x01" * 256
        # The primary's (actually fine) replica verified clean when the
        # other replicas were gone -- simulate by crashing the others.
        for nid in placement[1:]:
            cluster.nodes[nid].crash()
        store.quarantine["obj-00"] = {placement[0]}
        assert store.get("obj-00").data == b"\x01" * 256
        assert store.quarantine.get("obj-00") is None  # clean read unquarantined

    def test_all_replicas_corrupt_raises_instead_of_serving_garbage(self):
        cluster = populated_cluster()
        store = cluster.store
        for node in replica_nodes(cluster, "obj-00"):
            node.corrupt_object("obj-00", mode="truncate")
        with pytest.raises(CorruptObjectError) as excinfo:
            store.get("obj-00")
        assert excinfo.value.name == "obj-00"
        assert set(excinfo.value.bad_nodes) == set(cluster.ring.nodes_for("obj-00"))
        # Every bad replica is quarantined, pending scrub/repair.
        assert store.quarantine["obj-00"] == set(cluster.ring.nodes_for("obj-00"))

    def test_get_range_verifies_the_whole_record(self):
        cluster = populated_cluster()
        store = cluster.store
        first = cluster.ring.nodes_for("obj-01")[0]
        cluster.nodes[first].corrupt_object("obj-01")
        assert store.get_range("obj-01", 0, 16) == b"\x02" * 16
        assert store.resilience.corrupt_replicas == 1

    def test_overwrite_clears_integrity_verdicts(self):
        cluster = populated_cluster()
        store = cluster.store
        for node in replica_nodes(cluster, "obj-00"):
            node.corrupt_object("obj-00")
        with pytest.raises(CorruptObjectError):
            store.get("obj-00")
        store.unrecoverable.add("obj-00")
        store.put("obj-00", b"fresh")
        assert store.quarantine.get("obj-00") is None
        assert "obj-00" not in store.unrecoverable
        assert store.get("obj-00").data == b"fresh"

    def test_verification_can_be_disabled(self):
        # The pre-integrity behaviour, kept reachable for the DST tweak:
        # whatever the first replica holds is served as-is.
        cluster = populated_cluster()
        store = cluster.store
        store.verify_reads = False
        for node in replica_nodes(cluster, "obj-00"):
            node.corrupt_object("obj-00", mode="truncate")
        assert store.get("obj-00").data != b"\x01" * 256
        assert store.resilience.corrupt_replicas == 0


class TestTornWriteOnCrash:
    def test_crash_tears_the_last_write(self):
        cluster = SwiftCluster.fast()
        cluster.install_fault_plan(FaultPlan(seed=3, torn_write_rate=1.0))
        cluster.store.put("hot", b"x" * 512)
        victim = cluster.ring.nodes_for("hot")[0]
        cluster.failures.crash_at(1, victim)
        cluster.clock.advance(2)
        cluster.failures.pump()
        assert (victim, "hot", "torn_write") in cluster.failures.corrupted
        torn = cluster.nodes[victim].peek("hot")
        assert torn.size < 512  # partial object on disk
        assert cluster.nodes[victim].stats.corruptions == 1

    def test_torn_replica_is_detected_and_never_served(self):
        cluster = SwiftCluster.fast()
        cluster.install_fault_plan(FaultPlan(seed=3, torn_write_rate=1.0))
        store = cluster.store
        store.put("hot", b"x" * 512)
        victim = cluster.ring.nodes_for("hot")[0]
        cluster.failures.crash_at(1, victim)
        cluster.clock.advance(2)
        cluster.failures.pump()
        cluster.nodes[victim].recover()
        # Reads fail over past the torn copy and heal it in passing.
        assert store.get("hot").data == b"x" * 512
        assert store.resilience.corrupt_replicas == 1
        assert store.resilience.read_repairs == 1
        assert cluster.nodes[victim].peek("hot").data == b"x" * 512

    def test_rate_zero_never_tears(self):
        cluster = SwiftCluster.fast()
        cluster.install_fault_plan(FaultPlan(seed=3))
        cluster.store.put("hot", b"x" * 512)
        victim = cluster.ring.nodes_for("hot")[0]
        cluster.failures.crash_at(1, victim)
        cluster.clock.advance(2)
        cluster.failures.pump()
        assert cluster.failures.corrupted == []
        assert cluster.nodes[victim].peek("hot").size == 512


class TestBitRot:
    def test_bitrot_on_every_read_exhausts_the_replica_set(self):
        cluster = SwiftCluster.fast()
        cluster.install_fault_plan(FaultPlan(seed=7, bitrot_rate=1.0))
        store = cluster.store
        store.put("cold", b"c" * 128)  # writes are unaffected by bit-rot
        with pytest.raises(CorruptObjectError):
            store.get("cold")

    def test_arming_corruption_keeps_transient_fault_streams_aligned(self):
        # Pinned fault sequences (and DST digests) must not shift when
        # bit-rot is armed: corruption draws use separate streams.
        quiet = FaultPlan(seed=5, io_error_rate=0.3)
        armed = FaultPlan(
            seed=5, io_error_rate=0.3, bitrot_rate=0.5, torn_write_rate=0.5
        )
        armed.draw_bitrot(1)
        armed.draw_torn(1)
        a = [quiet.draw(1, "read").kind for _ in range(100)]
        b = [armed.draw(1, "read").kind for _ in range(100)]
        assert a == b

    def test_suspension_silences_corruption_draws(self):
        plan = FaultPlan(seed=2, bitrot_rate=1.0, torn_write_rate=1.0)
        with plan.suspended():
            assert plan.draw_bitrot(1) is None
            assert plan.draw_torn(1) is False
        assert plan.draw_bitrot(1) is not None
        assert plan.draw_torn(1) is True

    def test_zero_rates_draw_nothing(self):
        plan = FaultPlan(seed=2)
        assert all(plan.draw_bitrot(1) is None for _ in range(50))
        assert all(plan.draw_torn(1) is False for _ in range(50))
        assert plan.draw(1, "read").kind == FAULT_NONE

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(bitrot_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(torn_write_rate=-0.1)


class TestScheduledCorruption:
    def test_corrupt_at_damages_the_named_object(self):
        cluster = populated_cluster()
        victim = cluster.ring.nodes_for("obj-03")[0]
        cluster.failures.corrupt_at(5, victim, name="obj-03", mode="truncate")
        cluster.clock.advance(10)
        cluster.failures.pump()
        assert cluster.failures.corrupted == [(victim, "obj-03", "truncate")]
        assert cluster.nodes[victim].peek("obj-03").size < 256

    def test_unnamed_victim_is_deterministic(self):
        def landed():
            cluster = populated_cluster()
            node_id = sorted(cluster.nodes)[0]
            cluster.failures.corrupt_at(5, node_id)
            cluster.clock.advance(10)
            cluster.failures.pump()
            return cluster.failures.corrupted

        assert landed() == landed()

    def test_corrupting_an_empty_node_is_a_no_op(self):
        cluster = SwiftCluster.fast()
        node_id = sorted(cluster.nodes)[0]
        cluster.failures.corrupt_at(1, node_id)
        cluster.clock.advance(2)
        assert cluster.failures.pump()  # the event fired...
        assert cluster.failures.corrupted == []  # ...but found nothing to rot


class TestRepairSweeperIntegrity:
    def test_sweep_rewrites_corrupt_replicas_from_verified_copies(self):
        cluster = populated_cluster()
        store = cluster.store
        first = cluster.ring.nodes_for("obj-00")[0]
        cluster.nodes[first].corrupt_object("obj-00")
        report = RepairSweeper(store).sweep()
        assert report.corrupt_replicas == 1
        assert report.replicas_written == 1
        assert cluster.nodes[first].peek("obj-00").data == b"\x01" * 256

    def test_blind_copy_regression_corrupt_source_is_never_fanned_out(self):
        # The only *surviving* replica is corrupt: the sweep must report
        # the object unrecoverable, not rebuild the dead replicas from
        # rotten bytes (which a timestamp-only sweep would happily do).
        cluster = populated_cluster()
        store = cluster.store
        placement = cluster.ring.nodes_for("obj-00")
        for nid in placement[1:]:
            cluster.nodes[nid].wipe()
            cluster.nodes[nid].crash()
        cluster.nodes[placement[0]].corrupt_object("obj-00")
        report = RepairSweeper(store).sweep()
        assert "obj-00" in report.unrecoverable
        # Nothing was written from the corrupt copy; the wiped nodes
        # stay empty rather than inheriting garbage.
        for nid in placement[1:]:
            assert cluster.nodes[nid].peek("obj-00") is None

    def test_sweep_heals_once_a_clean_holder_returns(self):
        cluster = populated_cluster()
        store = cluster.store
        placement = cluster.ring.nodes_for("obj-00")
        cluster.nodes[placement[1]].crash()  # clean copy, offline
        cluster.nodes[placement[0]].corrupt_object("obj-00")
        cluster.nodes[placement[2]].corrupt_object("obj-00")
        first = RepairSweeper(store).sweep()
        assert "obj-00" in first.unrecoverable
        cluster.nodes[placement[1]].recover()
        second = RepairSweeper(store).sweep()
        assert second.unrecoverable == []
        for nid in placement:
            assert cluster.nodes[nid].peek("obj-00").data == b"\x01" * 256
