"""Tests for the object store: primitives, replication, quorum, costs."""

import pytest

from repro.simcloud import (
    LatencyModel,
    ObjectAlreadyExists,
    ObjectNotFound,
    QuorumError,
    SwiftCluster,
)


@pytest.fixture
def cluster():
    return SwiftCluster.fast()


@pytest.fixture
def rack():
    return SwiftCluster.rack_scale()


class TestPrimitives:
    def test_put_get_round_trip(self, cluster):
        cluster.store.put("obj/a", b"payload", meta={"type": "file"})
        record = cluster.store.get("obj/a")
        assert record.data == b"payload"
        assert record.meta == {"type": "file"}

    def test_get_missing_raises(self, cluster):
        with pytest.raises(ObjectNotFound):
            cluster.store.get("nope")

    def test_head_returns_info_without_data(self, cluster):
        cluster.store.put("obj/b", b"x" * 100, meta={"k": "v"})
        info = cluster.store.head("obj/b")
        assert info.size == 100
        assert info.meta == {"k": "v"}
        assert info.name == "obj/b"

    def test_etag_is_content_hash(self, cluster):
        a = cluster.store.put("one", b"same-bytes")
        b = cluster.store.put("two", b"same-bytes")
        c = cluster.store.put("three", b"different")
        assert a.etag == b.etag != c.etag

    def test_overwrite_replaces(self, cluster):
        cluster.store.put("k", b"v1")
        cluster.store.put("k", b"v2")
        assert cluster.store.get("k").data == b"v2"
        assert cluster.store.object_count == 1

    def test_put_no_overwrite_conflicts(self, cluster):
        cluster.store.put("k", b"v1")
        with pytest.raises(ObjectAlreadyExists):
            cluster.store.put("k", b"v2", overwrite=False)

    def test_delete(self, cluster):
        cluster.store.put("k", b"v")
        cluster.store.delete("k")
        assert not any(
            node.peek("k") for node in cluster.nodes.values()
        )
        with pytest.raises(ObjectNotFound):
            cluster.store.get("k")

    def test_delete_missing_raises(self, cluster):
        with pytest.raises(ObjectNotFound):
            cluster.store.delete("ghost")

    def test_delete_missing_ok(self, cluster):
        cluster.store.delete("ghost", missing_ok=True)  # no raise

    def test_copy_is_server_side(self, cluster):
        cluster.store.put("src", b"data", meta={"a": "1"})
        info = cluster.store.copy("src", "dst", meta={"b": "2"})
        record = cluster.store.get("dst")
        assert record.data == b"data"
        assert record.meta == {"a": "1", "b": "2"}
        assert info.name == "dst"
        assert cluster.store.get("src").data == b"data"  # source intact

    def test_exists(self, cluster):
        cluster.store.put("yes", b"")
        assert cluster.store.exists("yes")
        assert not cluster.store.exists("no")

    def test_scan_prefix(self, cluster):
        for name in ["a/1", "a/2", "b/1"]:
            cluster.store.put(name, b"")
        assert cluster.store.scan("a/") == ["a/1", "a/2"]
        assert cluster.store.scan() == ["a/1", "a/2", "b/1"]


class TestReplication:
    def test_three_replicas_written(self, cluster):
        cluster.store.put("replicated", b"x")
        holders = [
            n.node_id for n in cluster.nodes.values() if n.peek("replicated")
        ]
        assert len(holders) == 3

    def test_replicas_match_ring_placement(self, cluster):
        cluster.store.put("where", b"x")
        expected = set(cluster.ring.nodes_for("where"))
        actual = {
            n.node_id for n in cluster.nodes.values() if n.peek("where")
        }
        assert actual == expected

    def test_read_survives_primary_crash(self, cluster):
        cluster.store.put("durable", b"alive")
        primary = cluster.ring.primary_for("durable")
        cluster.nodes[primary].crash()
        assert cluster.store.get("durable").data == b"alive"

    def test_read_survives_two_replica_crashes(self, cluster):
        cluster.store.put("durable", b"alive")
        for node_id in cluster.ring.nodes_for("durable")[:2]:
            cluster.nodes[node_id].crash()
        assert cluster.store.get("durable").data == b"alive"

    def test_read_fails_when_all_replicas_down(self, cluster):
        cluster.store.put("gone", b"x")
        for node_id in cluster.ring.nodes_for("gone"):
            cluster.nodes[node_id].crash()
        with pytest.raises(QuorumError):
            cluster.store.get("gone")

    def test_write_succeeds_with_one_replica_down(self, cluster):
        victim = cluster.ring.nodes_for("newobj")[0]
        cluster.nodes[victim].crash()
        cluster.store.put("newobj", b"v")
        assert cluster.store.get("newobj").data == b"v"

    def test_write_quorum_enforced(self, cluster):
        targets = cluster.ring.nodes_for("q")
        for node_id in targets[:2]:  # leave 1 of 3 up: below majority
            cluster.nodes[node_id].crash()
        with pytest.raises(QuorumError):
            cluster.store.put("q", b"v")

    def test_repair_heals_missing_replicas(self, cluster):
        cluster.store.put("heal", b"payload")
        targets = cluster.ring.nodes_for("heal")
        cluster.nodes[targets[0]].wipe()  # lose one replica's disk
        present, expected = cluster.store.replica_health("heal")
        assert present == expected - 1
        fixed = cluster.store.repair()
        assert fixed == 1
        present, expected = cluster.store.replica_health("heal")
        assert present == expected

    def test_repair_noop_when_healthy(self, cluster):
        cluster.store.put("fine", b"x")
        assert cluster.store.repair() == 0


class TestCosts:
    def test_every_primitive_advances_clock(self, rack):
        t = rack.clock.now_us
        rack.store.put("a", b"x")
        assert rack.clock.now_us > t
        t = rack.clock.now_us
        rack.store.get("a")
        assert rack.clock.now_us > t
        t = rack.clock.now_us
        rack.store.head("a")
        assert rack.clock.now_us > t
        t = rack.clock.now_us
        rack.store.delete("a")
        assert rack.clock.now_us > t

    def test_get_cost_scales_with_size(self, rack):
        rack.store.put("small", b"x")
        rack.store.put("big", b"x" * 10_000_000)
        _, small_cost = rack.clock.measure(lambda: rack.store.get("small"))
        _, big_cost = rack.clock.measure(lambda: rack.store.get("big"))
        assert big_cost > small_cost * 3

    def test_head_cheaper_than_get_for_big_objects(self, rack):
        rack.store.put("big", b"x" * 10_000_000)
        _, get_cost = rack.clock.measure(lambda: rack.store.get("big"))
        _, head_cost = rack.clock.measure(lambda: rack.store.head("big"))
        assert head_cost < get_cost / 3

    def test_metadata_get_near_10ms(self, rack):
        """Calibration pin: Fig 13 shows Swift file access ~10 ms."""
        rack.store.put("meta", b"tiny")
        _, cost = rack.clock.measure(lambda: rack.store.get("meta"))
        assert 5_000 < cost < 20_000

    def test_parallel_batch_faster_than_serial(self, rack):
        for i in range(64):
            rack.store.put(f"o{i}", b"x")
        _, serial = rack.clock.measure(
            lambda: [rack.store.head(f"o{i}") for i in range(64)]
        )
        _, batched = rack.clock.measure(
            lambda: rack.store.parallel(
                [lambda i=i: rack.store.head(f"o{i}") for i in range(64)]
            )
        )
        assert batched < serial / 4

    def test_scan_cost_scales_with_store_size(self, rack):
        for i in range(50):
            rack.store.put(f"x{i}", b"")
        _, cost_small = rack.clock.measure(lambda: rack.store.scan("x"))
        for i in range(450):
            rack.store.put(f"y{i}", b"")
        _, cost_large = rack.clock.measure(lambda: rack.store.scan("x"))
        assert cost_large > cost_small * 4  # ~10x keys -> ~10x cost

    def test_ledger_counts(self, rack):
        rack.store.put("a", b"12345")
        rack.store.get("a")
        rack.store.head("a")
        rack.store.copy("a", "b")
        rack.store.delete("b")
        ledger = rack.store.ledger
        assert ledger.puts == 2  # put + the put inside copy
        assert ledger.gets == 2  # get + the get inside copy
        assert ledger.heads == 1
        assert ledger.deletes == 1
        assert ledger.copies == 1
        assert ledger.bytes_in == 10
        assert ledger.bytes_out == 10

    def test_ledger_snapshot_diff(self, rack):
        before = rack.store.ledger.snapshot()
        rack.store.put("z", b"abc")
        delta = rack.store.ledger.diff(before)
        assert delta["puts"] == 1
        assert delta["bytes_in"] == 3
        assert delta["gets"] == 0


class TestCensus:
    def test_census_counts_and_bytes(self, cluster):
        cluster.store.put("file/one", b"12345")
        cluster.store.put("file/two", b"1234567890")
        cluster.store.put("ring/x", b"abc")
        count, nbytes = cluster.store.census("file/")
        assert count == 2
        assert nbytes == 15
        count_all, bytes_all = cluster.store.census()
        assert count_all == 3
        assert bytes_all == 18
