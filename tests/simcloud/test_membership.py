"""Tests for elastic cluster membership: epochs, windows, live rebalance."""

import pytest

from repro.simcloud import (
    ClusterConfig,
    FaultPlan,
    MembershipError,
    SwiftCluster,
)


def loaded(n_objects: int = 80) -> SwiftCluster:
    cluster = SwiftCluster.fast()
    for i in range(n_objects):
        cluster.store.put(f"obj/{i:03d}", bytes([i % 251]) * 32)
    return cluster


def holders_of(cluster: SwiftCluster, name: str) -> set[int]:
    return {
        nid
        for nid, node in cluster.nodes.items()
        if node.peek(name) is not None
    }


def assert_converged(cluster: SwiftCluster) -> None:
    for name in cluster.store.names():
        assert holders_of(cluster, name) == set(cluster.ring.nodes_for(name))


class TestWriteQuorumValidation:
    """Regression: an out-of-range quorum must fail at construction."""

    def test_zero_quorum_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(write_quorum=0)

    def test_quorum_above_replicas_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(replicas=3, write_quorum=4)

    def test_negative_quorum_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(write_quorum=-1)

    def test_boundary_quorums_accepted(self):
        assert ClusterConfig(replicas=3, write_quorum=1).write_quorum == 1
        assert ClusterConfig(replicas=3, write_quorum=3).write_quorum == 3
        assert ClusterConfig().write_quorum is None


class TestAddNode:
    def test_join_opens_a_window_and_bumps_the_epoch(self):
        cluster = loaded()
        m = cluster.membership
        assert m.epoch == 1 and not m.in_transition
        node = m.add_node()
        assert node.node_id in cluster.nodes
        assert node.node_id in cluster.ring.node_ids
        assert m.epoch == 2 and m.in_transition
        assert m.pending_moves > 0

    def test_plan_is_move_minimal(self):
        cluster = loaded()
        m = cluster.membership
        before = {
            name: set(cluster.ring.nodes_for(name))
            for name in cluster.store.names()
        }
        m.add_node()
        changed = {
            name
            for name in before
            if set(cluster.ring.nodes_for(name)) != before[name]
        }
        assert set(m.plan.pending) == changed

    def test_sweeper_drains_and_finalizes(self):
        cluster = loaded()
        m = cluster.membership
        m.add_node()
        while m.in_transition:
            assert m.sweeper.step(max_objects=16) >= 0
        assert m.pending_moves == 0
        assert len(m.handoff_us) == 1
        assert_converged(cluster)

    def test_second_transition_while_open_is_refused(self):
        cluster = loaded()
        m = cluster.membership
        m.add_node()
        with pytest.raises(MembershipError):
            m.add_node()
        with pytest.raises(MembershipError):
            m.drain_node(1)
        with pytest.raises(MembershipError):
            m.remove_node(1)

    def test_weighted_join_takes_a_larger_share(self):
        cluster = loaded(160)
        m = cluster.membership
        node = m.add_node(weight=3.0)
        m.quiesce()
        fair = sum(n.object_count for n in cluster.nodes.values()) / len(
            cluster.nodes
        )
        assert node.object_count > fair

    def test_reads_work_mid_window(self):
        cluster = loaded()
        m = cluster.membership
        m.add_node()
        for i in range(0, 80, 7):
            assert cluster.store.get(f"obj/{i:03d}").data
        assert m.dual_reads > 0

    def test_writes_mid_window_reach_both_epochs(self):
        cluster = loaded()
        m = cluster.membership
        m.add_node()
        # New writes to migrating names must land on the new owners and
        # write through to the old owners still serving reads.
        for name in list(m.plan.pending)[:5]:
            cluster.store.put(name, b"mid-window")
        assert m.write_throughs > 0
        m.quiesce()
        assert_converged(cluster)
        for name in cluster.store.names():
            if cluster.store.get(name).data == b"mid-window":
                break
        else:  # pragma: no cover - would mean the writes vanished
            pytest.fail("mid-window writes not readable after handoff")


class TestDrainNode:
    def test_drain_retires_the_node_after_handoff(self):
        cluster = loaded()
        m = cluster.membership
        victim = max(cluster.nodes)
        m.drain_node(victim)
        assert victim not in cluster.ring.node_ids
        assert victim in cluster.nodes  # still serving its replicas
        m.quiesce()
        assert victim not in cluster.nodes
        assert_converged(cluster)

    def test_drained_node_serves_reads_until_handoff(self):
        cluster = loaded()
        m = cluster.membership
        victim = max(cluster.nodes)
        held = [
            name
            for name in cluster.store.names()
            if cluster.nodes[victim].peek(name) is not None
        ]
        m.drain_node(victim)
        for name in held[:10]:
            assert cluster.store.get(name).data

    def test_unknown_node_refused(self):
        cluster = loaded()
        with pytest.raises(MembershipError):
            cluster.membership.drain_node(999)

    def test_cannot_drain_the_last_node(self):
        cluster = SwiftCluster(ClusterConfig(storage_nodes=1, replicas=1))
        cluster.store.put("solo", b"x")
        with pytest.raises(MembershipError):
            cluster.membership.drain_node(1)


class TestRemoveNode:
    def test_remove_vanishes_the_node_and_rereplicates(self):
        cluster = loaded()
        m = cluster.membership
        victim = max(cluster.nodes)
        m.remove_node(victim)
        assert victim not in cluster.nodes
        assert victim not in cluster.store.breakers
        m.quiesce()
        assert_converged(cluster)

    def test_all_data_survives_a_removal(self):
        cluster = loaded()
        m = cluster.membership
        m.remove_node(max(cluster.nodes))
        m.quiesce()
        for i in range(80):
            record = cluster.store.get(f"obj/{i:03d}")
            assert record.data == bytes([i % 251]) * 32

    def test_pending_failure_events_for_the_node_are_discarded(self):
        cluster = loaded()
        victim = max(cluster.nodes)
        cluster.failures.crash_at(cluster.clock.now_us + 1_000, victim)
        cluster.membership.remove_node(victim)
        cluster.clock.advance(10_000)
        cluster.failures.pump()  # must not resurrect or crash a ghost
        assert victim not in cluster.nodes


class TestFaultTolerantSweeper:
    def test_down_target_leaves_partition_pending(self):
        cluster = loaded()
        m = cluster.membership
        node = m.add_node()
        node.crash()
        moved_while_down = 0
        for _ in range(10):
            moved_while_down += m.sweeper.step(max_objects=16)
        assert m.in_transition  # its partitions cannot complete yet
        node.recover()
        m.quiesce()
        assert_converged(cluster)

    def test_injected_faults_only_delay_the_handoff(self):
        cluster = SwiftCluster.fast()
        for i in range(60):
            cluster.store.put(f"obj/{i:03d}", bytes([i % 251]) * 32)
        cluster.install_fault_plan(FaultPlan(seed=3, io_error_rate=0.3))
        m = cluster.membership
        m.add_node()
        for _ in range(200):
            if not m.in_transition:
                break
            m.sweeper.step(max_objects=8)
        m.quiesce()  # fault-suspended: drains whatever remains
        assert_converged(cluster)

    def test_never_migrates_from_an_unverified_replica(self):
        cluster = loaded(20)
        m = cluster.membership
        # Rot every replica of one object: no verified source exists.
        victim = next(iter(cluster.store.names()))
        for nid in cluster.ring.nodes_for(victim):
            cluster.nodes[nid].corrupt_object(victim, mode="bitflip")
        m.add_node()
        for _ in range(50):
            if not m.in_transition:
                break
            m.sweeper.step(max_objects=16)
        if m.in_transition:  # only the rotten partition may remain
            assert set(m.plan.pending) <= {victim}

    def test_deleted_mid_window_objects_drop_out_of_the_plan(self):
        cluster = loaded()
        m = cluster.membership
        m.add_node()
        doomed = list(m.plan.pending)[:3]
        for name in doomed:
            cluster.store.delete(name)
        m.quiesce()
        assert_converged(cluster)


class TestFinalize:
    def test_finalize_with_pending_work_is_refused(self):
        cluster = loaded()
        m = cluster.membership
        m.add_node()
        with pytest.raises(MembershipError):
            m.finalize()

    def test_handoff_latency_recorded_per_transition(self):
        cluster = loaded()
        m = cluster.membership
        m.add_node()
        m.quiesce()
        m.drain_node(max(cluster.nodes))
        m.quiesce()
        assert len(m.handoff_us) == 2
        assert all(us >= 0 for us in m.handoff_us)

    def test_quiesce_without_a_window_still_drops_strays(self):
        cluster = loaded()
        # Plant a stray copy on a node outside the replica set.
        name = next(iter(cluster.store.names()))
        owners = set(cluster.ring.nodes_for(name))
        outsider = next(
            nid for nid in cluster.nodes if nid not in owners
        )
        record = cluster.nodes[next(iter(owners))].peek(name)
        cluster.nodes[outsider].write(record)
        cluster.membership.quiesce()
        assert cluster.nodes[outsider].peek(name) is None

    def test_counters_accumulate_across_transitions(self):
        cluster = loaded()
        m = cluster.membership
        m.add_node()
        m.quiesce()
        m.remove_node(max(n for n in cluster.nodes))
        m.quiesce()
        assert m.transitions == 2
        assert m.partitions_moved > 0
        assert m.bytes_migrated > 0
