"""Tests for the Swift-style per-account file-path DB."""

import pytest

from repro.simcloud import ContainerDB, LatencyModel, SimClock


def make_db(latency=None) -> ContainerDB:
    return ContainerDB(latency or LatencyModel.zero(), SimClock(), min_degree=4)


def populate(db: ContainerDB, paths):
    for p in paths:
        db.insert(p, {"size": len(p)})


TREE = [
    "/home/alice/a.txt",
    "/home/alice/b.txt",
    "/home/alice/docs/c.pdf",
    "/home/alice/docs/d.pdf",
    "/home/alice/docs/deep/e.bin",
    "/home/bob/f.txt",
    "/var/log/syslog",
]


class TestPointOps:
    def test_insert_get(self):
        db = make_db()
        db.insert("/a", {"size": 1})
        assert db.get("/a") == {"size": 1}
        assert len(db) == 1

    def test_get_missing(self):
        assert make_db().get("/nope") is None

    def test_exists(self):
        db = make_db()
        db.insert("/x", {})
        assert db.exists("/x")
        assert not db.exists("/y")

    def test_delete(self):
        db = make_db()
        db.insert("/x", {})
        assert db.delete("/x")
        assert not db.delete("/x")
        assert len(db) == 0

    def test_insert_is_upsert(self):
        db = make_db()
        db.insert("/x", {"v": 1})
        db.insert("/x", {"v": 2})
        assert db.get("/x") == {"v": 2}
        assert len(db) == 1

    def test_meta_is_copied_on_insert(self):
        db = make_db()
        meta = {"v": 1}
        db.insert("/x", meta)
        meta["v"] = 99
        assert db.get("/x") == {"v": 1}


class TestDelimiterListing:
    def test_lists_direct_children_only(self):
        db = make_db()
        populate(db, TREE)
        entries = db.list_dir("/home/alice/")
        names = [(e.name, e.is_dir) for e in entries]
        assert names == [("a.txt", False), ("b.txt", False), ("docs", True)]

    def test_subdirectory_collapsed_once(self):
        """docs/ holds 3 rows but appears as one pseudo-dir entry."""
        db = make_db()
        populate(db, TREE)
        entries = db.list_dir("/home/alice/")
        assert sum(1 for e in entries if e.name == "docs") == 1

    def test_root_level(self):
        db = make_db()
        populate(db, TREE)
        entries = db.list_dir("/")
        assert [(e.name, e.is_dir) for e in entries] == [
            ("home", True),
            ("var", True),
        ]

    def test_empty_dir(self):
        db = make_db()
        populate(db, TREE)
        assert db.list_dir("/empty/") == []

    def test_limit(self):
        db = make_db()
        populate(db, TREE)
        assert len(db.list_dir("/home/alice/", limit=2)) == 2

    def test_prefix_must_end_with_slash(self):
        with pytest.raises(ValueError):
            make_db().list_dir("/home")

    def test_dir_marker_rows_reported_as_dirs(self):
        db = make_db()
        db.insert("/d/sub", {"dir_marker": True})
        entries = db.list_dir("/d/")
        assert entries == [entries[0]]
        assert entries[0].is_dir

    def test_cost_is_per_child_descent(self):
        """m children should cost ~m descents: the O(m log N) shape."""
        latency = LatencyModel.zero().with_(db_node_us=10)
        clock = SimClock()
        db = ContainerDB(latency, clock, min_degree=4)
        for i in range(1000):
            db.insert(f"/dir/file{i:05d}", {})
        _, cost_full = clock.measure(lambda: db.list_dir("/dir/"))
        _, cost_ten = clock.measure(lambda: db.list_dir("/dir/", limit=10))
        assert cost_full > cost_ten * 20  # ~100x children, >20x cost


class TestSubtreeListing:
    def test_returns_all_rows_under_prefix(self):
        db = make_db()
        populate(db, TREE)
        rows = db.list_subtree("/home/alice/")
        assert [r.path for r in rows] == sorted(TREE[:5])

    def test_excludes_siblings(self):
        db = make_db()
        populate(db, TREE)
        rows = db.list_subtree("/home/bob/")
        assert [r.path for r in rows] == ["/home/bob/f.txt"]

    def test_large_subtree_pages_correctly(self):
        db = make_db()
        paths = [f"/big/file{i:06d}" for i in range(3000)]
        populate(db, paths)
        db.insert("/other/x", {})
        rows = db.list_subtree("/big/")
        assert len(rows) == 3000
        assert [r.path for r in rows] == paths

    def test_subtree_cheaper_than_delimiter_per_row(self):
        """Range scan = 1 descent + rows; delimiter = descent per child."""
        latency = LatencyModel.zero().with_(db_node_us=10, db_row_us=1)
        clock = SimClock()
        db = ContainerDB(latency, clock, min_degree=4)
        for i in range(2000):
            db.insert(f"/dir/f{i:05d}", {})
        _, scan_cost = clock.measure(lambda: db.list_subtree("/dir/"))
        _, delim_cost = clock.measure(lambda: db.list_dir("/dir/"))
        assert scan_cost < delim_cost / 3


class TestInvariants:
    def test_structure_holds_after_mixed_workload(self):
        db = make_db()
        for i in range(800):
            db.insert(f"/p/{i % 97:03d}/{i:05d}", {"i": i})
        for i in range(0, 800, 3):
            db.delete(f"/p/{i % 97:03d}/{i:05d}")
        db.check_invariants()
        assert len(db) == 800 - len(range(0, 800, 3))

    def test_all_rows_sorted(self):
        db = make_db()
        populate(db, TREE)
        rows = db.all_rows()
        assert [r.path for r in rows] == sorted(TREE)
