"""Tests for replica rebalancing after ring membership changes."""

import pytest

from repro.simcloud import SwiftCluster


@pytest.fixture
def loaded_cluster() -> SwiftCluster:
    cluster = SwiftCluster.fast()
    for i in range(120):
        cluster.store.put(f"obj/{i:03d}", bytes([i % 251]) * 10)
    return cluster


class TestRebalance:
    def test_scale_out_then_rebalance_heals_placement(self, loaded_cluster):
        cluster = loaded_cluster
        cluster.add_storage_node()
        # Directly after the ring change some objects' replica sets
        # reference the new node, which holds nothing yet.
        degraded = sum(
            1
            for name in cluster.store.names()
            if cluster.store.replica_health(name)[0] < 3
        )
        assert degraded > 0
        written, dropped = cluster.store.rebalance()
        assert written >= degraded
        assert dropped >= degraded  # stale copies left the old nodes
        for name in cluster.store.names():
            present, expected = cluster.store.replica_health(name)
            assert present == expected

    def test_no_stale_replicas_after_rebalance(self, loaded_cluster):
        cluster = loaded_cluster
        cluster.add_storage_node()
        cluster.store.rebalance()
        for name in cluster.store.names():
            responsible = set(cluster.ring.nodes_for(name))
            holders = {
                nid
                for nid, node in cluster.nodes.items()
                if node.peek(name) is not None
            }
            assert holders == responsible

    def test_new_node_receives_fair_share(self, loaded_cluster):
        cluster = loaded_cluster
        node = cluster.add_storage_node()
        cluster.store.rebalance()
        # ~1/9 of 360 replicas, very loosely bounded.
        assert node.object_count > 5

    def test_rebalance_idempotent(self, loaded_cluster):
        cluster = loaded_cluster
        cluster.add_storage_node()
        cluster.store.rebalance()
        written, dropped = cluster.store.rebalance()
        assert (written, dropped) == (0, 0)

    def test_data_readable_throughout(self, loaded_cluster):
        cluster = loaded_cluster
        cluster.add_storage_node()
        assert cluster.store.get("obj/000").data  # degraded but readable
        cluster.store.rebalance()
        for i in range(0, 120, 17):
            assert cluster.store.get(f"obj/{i:03d}").data

    def test_rebalance_cost_is_background(self):
        cluster = SwiftCluster.rack_scale()
        for i in range(30):
            cluster.store.put(f"o{i}", b"x" * 100)
        cluster.add_storage_node()
        t = cluster.clock.now_us
        bg = cluster.store.ledger.background_us
        cluster.store.rebalance()
        assert cluster.clock.now_us == t
        assert cluster.store.ledger.background_us > bg
