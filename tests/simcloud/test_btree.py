"""Tests for the from-scratch B-tree, including hypothesis model checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcloud import BTree


class TestBasics:
    def test_empty(self):
        tree = BTree()
        assert len(tree) == 0
        assert tree.get("missing") is None
        assert not tree.delete("missing")

    def test_min_degree_validated(self):
        with pytest.raises(ValueError):
            BTree(min_degree=1)

    def test_insert_get(self):
        tree = BTree(min_degree=2)
        assert tree.insert("a", 1)
        assert tree.get("a") == 1
        assert len(tree) == 1

    def test_overwrite_does_not_grow(self):
        tree = BTree(min_degree=2)
        tree.insert("k", "old")
        assert not tree.insert("k", "new")
        assert tree.get("k") == "new"
        assert len(tree) == 1

    def test_delete_returns_presence(self):
        tree = BTree(min_degree=2)
        tree.insert("x", 1)
        assert tree.delete("x")
        assert not tree.delete("x")
        assert len(tree) == 0

    def test_contains(self):
        tree = BTree(min_degree=2)
        tree.insert("here", None)  # None value must still count as present
        assert "here" in tree
        assert "gone" not in tree

    def test_many_inserts_force_splits(self):
        tree = BTree(min_degree=2)
        keys = [f"{i:04d}" for i in range(500)]
        for k in keys:
            tree.insert(k, int(k))
        tree.check_invariants()
        assert len(tree) == 500
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_interleaved_insert_delete(self):
        tree = BTree(min_degree=2)
        for i in range(300):
            tree.insert(f"{i:04d}", i)
        for i in range(0, 300, 2):
            assert tree.delete(f"{i:04d}")
        tree.check_invariants()
        assert len(tree) == 150
        assert all(tree.get(f"{i:04d}") == i for i in range(1, 300, 2))

    def test_delete_everything(self):
        tree = BTree(min_degree=2)
        keys = [f"{i:03d}" for i in range(120)]
        for k in keys:
            tree.insert(k, k)
        # Delete in an adversarial (middle-out) order to stress refill.
        order = sorted(keys, key=lambda k: abs(int(k) - 60))
        for k in order:
            assert tree.delete(k)
            tree.check_invariants()
        assert len(tree) == 0

    def test_visits_counter_grows_logarithmically(self):
        tree = BTree(min_degree=32)
        for i in range(10_000):
            tree.insert(f"{i:06d}", i)
        before = tree.visits
        tree.get("005000")
        descent = tree.visits - before
        assert descent <= 5  # log_32(10k) ~ 2.7 levels


class TestScan:
    def make(self, n=100, t=2):
        tree = BTree(min_degree=t)
        for i in range(n):
            tree.insert(f"key{i:04d}", i)
        return tree

    def test_scan_from_start(self):
        tree = self.make()
        rows = tree.scan_from("", 10)
        assert [k for k, _ in rows] == [f"key{i:04d}" for i in range(10)]

    def test_scan_is_exclusive_of_marker(self):
        tree = self.make()
        rows = tree.scan_from("key0009", 3)
        assert [k for k, _ in rows] == ["key0010", "key0011", "key0012"]

    def test_scan_past_end(self):
        tree = self.make(10)
        assert tree.scan_from("key0009", 5) == []

    def test_scan_limit_zero(self):
        assert self.make(10).scan_from("", 0) == []

    def test_scan_spans_node_boundaries(self):
        tree = self.make(500, t=2)
        rows = tree.scan_from("key0100", 250)
        assert [k for k, _ in rows] == [f"key{i:04d}" for i in range(101, 351)]

    def test_scan_whole_tree(self):
        tree = self.make(64, t=2)
        rows = tree.scan_from("", 1000)
        assert len(rows) == 64
        assert [k for k, _ in rows] == sorted(k for k, _ in rows)


@st.composite
def operation_sequences(draw):
    keys = st.text(
        alphabet="abcdefghij/._-", min_size=1, max_size=12
    )
    return draw(
        st.lists(
            st.tuples(st.sampled_from(["insert", "delete"]), keys),
            max_size=200,
        )
    )


class TestModelEquivalence:
    """The B-tree must behave exactly like a sorted dict."""

    @given(operation_sequences(), st.integers(min_value=2, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_model(self, ops, t):
        tree = BTree(min_degree=t)
        model: dict[str, int] = {}
        for i, (op, key) in enumerate(ops):
            if op == "insert":
                assert tree.insert(key, i) == (key not in model)
                model[key] = i
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        assert len(tree) == len(model)
        assert list(tree.items()) == sorted(model.items())
        tree.check_invariants()

    @given(operation_sequences())
    @settings(max_examples=30, deadline=None)
    def test_scan_matches_model(self, ops):
        tree = BTree(min_degree=2)
        model: dict[str, int] = {}
        for i, (op, key) in enumerate(ops):
            if op == "insert":
                tree.insert(key, i)
                model[key] = i
            else:
                tree.delete(key)
                model.pop(key, None)
        for marker in ["", "e", "zzz"]:
            expected = sorted((k, v) for k, v in model.items() if k > marker)
            assert tree.scan_from(marker, 50) == expected[:50]
