"""Property test: the replicated object store behaves like a dict.

Random schedules of PUT/GET/DELETE/COPY interleaved with node crashes,
recoveries and repairs run against the store and a plain dict; the
visible contents must always agree (while quorums hold), and repair
must restore full replication.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcloud import ObjectNotFound, QuorumError, SwiftCluster

_KEYS = st.sampled_from([f"k{i}" for i in range(6)])
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), _KEYS, st.binary(max_size=8)),
        st.tuples(st.just("delete"), _KEYS),
        st.tuples(st.just("copy"), _KEYS, _KEYS),
        st.tuples(st.just("crash"), st.integers(1, 8)),
        st.tuples(st.just("recover"), st.integers(1, 8)),
        st.tuples(st.just("repair"),),
    ),
    max_size=40,
)


class TestStoreModel:
    @given(_OPS)
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_through_failures(self, ops):
        cluster = SwiftCluster.fast()
        store = cluster.store
        model: dict[str, bytes] = {}
        for op in ops:
            kind = op[0]
            try:
                if kind == "put":
                    store.put(op[1], op[2])
                    model[op[1]] = op[2]
                elif kind == "delete":
                    try:
                        store.delete(op[1])
                        assert op[1] in model
                        del model[op[1]]
                    except ObjectNotFound:
                        assert op[1] not in model
                elif kind == "copy":
                    try:
                        store.copy(op[1], op[2])
                        assert op[1] in model
                        model[op[2]] = model[op[1]]
                    except ObjectNotFound:
                        assert op[1] not in model
                elif kind == "crash":
                    cluster.nodes[op[1]].crash()
                elif kind == "recover":
                    cluster.nodes[op[1]].recover()
                    store.repair()
                elif kind == "repair":
                    store.repair()
            except QuorumError:
                # Too many nodes down for this key's replica set: the
                # operation failed cleanly; the model is unchanged for
                # writes; reads may be unavailable but never wrong.
                continue
        # Heal everything and verify the final state matches the model.
        for node in cluster.nodes.values():
            node.recover()
        store.repair()
        assert store.names() == frozenset(model)
        for key, expected in model.items():
            assert store.get(key).data == expected

    @given(_OPS)
    @settings(max_examples=30, deadline=None)
    def test_replication_fully_healed_after_repair(self, ops):
        cluster = SwiftCluster.fast()
        store = cluster.store
        for op in ops:
            kind = op[0]
            try:
                if kind == "put":
                    store.put(op[1], op[2])
                elif kind == "delete":
                    store.delete(op[1], missing_ok=True)
                elif kind == "copy":
                    try:
                        store.copy(op[1], op[2])
                    except ObjectNotFound:
                        pass
                elif kind == "crash":
                    cluster.nodes[op[1]].crash()
                elif kind == "recover":
                    cluster.nodes[op[1]].recover()
                elif kind == "repair":
                    store.repair()
            except QuorumError:
                continue
        for node in cluster.nodes.values():
            node.recover()
        store.repair()
        for name in store.names():
            present, expected = store.replica_health(name)
            assert present == expected
