"""Tests for failure scheduling and message loss."""

import pytest

from repro.simcloud import FailureEvent, MessageLoss, SwiftCluster


class TestFailureEvent:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            FailureEvent(0, 1, "explode")

    def test_orders_by_time(self):
        a = FailureEvent(10, 1, "crash")
        b = FailureEvent(20, 1, "recover")
        assert a < b


class TestFailureSchedule:
    def test_unknown_node_rejected(self):
        cluster = SwiftCluster.fast()
        with pytest.raises(KeyError):
            cluster.failures.crash_at(0, node_id=999)

    def test_event_fires_only_when_due(self):
        cluster = SwiftCluster.fast()
        cluster.failures.crash_at(1000, node_id=1)
        assert cluster.failures.pump() == []
        assert not cluster.nodes[1].is_down
        cluster.clock.advance(1000)
        fired = cluster.failures.pump()
        assert len(fired) == 1
        assert cluster.nodes[1].is_down

    def test_crash_then_recover_sequence(self):
        cluster = SwiftCluster.fast()
        cluster.failures.crash_at(100, node_id=2)
        cluster.failures.recover_at(200, node_id=2)
        cluster.clock.advance(150)
        cluster.failures.pump()
        assert cluster.nodes[2].is_down
        cluster.clock.advance(100)
        cluster.failures.pump()
        assert not cluster.nodes[2].is_down

    def test_wipe_recovers_empty(self):
        cluster = SwiftCluster.fast()
        cluster.store.put("obj", b"x")
        victim = cluster.ring.nodes_for("obj")[0]
        cluster.failures.wipe_at(10, node_id=victim)
        cluster.clock.advance(10)
        cluster.failures.pump()
        node = cluster.nodes[victim]
        assert not node.is_down
        assert node.object_count == 0

    def test_events_apply_in_time_order(self):
        cluster = SwiftCluster.fast()
        cluster.failures.recover_at(30, node_id=1)
        cluster.failures.crash_at(20, node_id=1)
        cluster.clock.advance(50)
        cluster.failures.pump()
        assert not cluster.nodes[1].is_down  # crash@20 then recover@30

    def test_applied_log(self):
        cluster = SwiftCluster.fast()
        cluster.failures.crash_at(5, node_id=3)
        cluster.clock.advance(5)
        cluster.failures.pump()
        assert [e.action for e in cluster.failures.applied] == ["crash"]
        assert cluster.failures.pending == ()

    def test_same_timestamp_fires_in_schedule_order(self):
        # The old list.sort() ordered ties alphabetically by action,
        # silently flipping recover-then-crash into crash-then-recover.
        cluster = SwiftCluster.fast()
        cluster.failures.recover_at(10, node_id=1)
        cluster.failures.crash_at(10, node_id=1)
        cluster.clock.advance(10)
        cluster.failures.pump()
        assert cluster.nodes[1].is_down  # recover@10 first, crash@10 last

        other = SwiftCluster.fast()
        other.failures.crash_at(10, node_id=1)
        other.failures.recover_at(10, node_id=1)
        other.clock.advance(10)
        other.failures.pump()
        assert not other.nodes[1].is_down  # crash@10 first, recover@10 last

    def test_many_events_pop_in_time_then_schedule_order(self):
        cluster = SwiftCluster.fast()
        cluster.failures.wipe_at(30, node_id=2)
        cluster.failures.crash_at(10, node_id=1)
        cluster.failures.recover_at(10, node_id=1)
        cluster.failures.crash_at(30, node_id=2)
        cluster.clock.advance(100)
        cluster.failures.pump()
        assert [(e.at_us, e.action) for e in cluster.failures.applied] == [
            (10, "crash"),
            (10, "recover"),
            (30, "wipe"),
            (30, "crash"),
        ]

    def test_on_recover_hook_fires_after_recovery(self):
        cluster = SwiftCluster.fast()
        healed: list[int] = []
        cluster.failures.on_recover = healed.append
        cluster.failures.crash_at(10, node_id=4)
        cluster.failures.recover_at(20, node_id=4)
        cluster.clock.advance(15)
        cluster.failures.pump()
        assert healed == []  # crash alone must not trigger repair
        cluster.clock.advance(10)
        cluster.failures.pump()
        assert healed == [4]


class TestMessageLoss:
    def test_zero_probability_never_drops(self):
        loss = MessageLoss(0.0)
        assert not any(loss.should_drop() for _ in range(100))
        assert loss.delivered == 100

    def test_certain_loss_always_drops(self):
        loss = MessageLoss(1.0)
        assert all(loss.should_drop() for _ in range(50))
        assert loss.dropped == 50

    def test_deterministic_given_seed(self):
        a = [MessageLoss(0.5, seed=3).should_drop() for _ in range(20)]
        b = [MessageLoss(0.5, seed=3).should_drop() for _ in range(20)]
        assert a == b

    def test_rate_roughly_matches_probability(self):
        loss = MessageLoss(0.3, seed=11)
        drops = sum(loss.should_drop() for _ in range(5000))
        assert 0.25 < drops / 5000 < 0.35

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            MessageLoss(1.5)
