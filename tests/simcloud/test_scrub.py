"""Tests for the background scrubber (repro.simcloud.scrub)."""

from repro.core import H2CloudFS
from repro.simcloud import FaultPlan, Scrubber, SwiftCluster


def populated_cluster(n: int = 6) -> SwiftCluster:
    cluster = SwiftCluster.fast()
    for i in range(n):
        cluster.store.put(f"obj-{i:02d}", bytes([i + 1]) * 256)
    return cluster


class TestScrubber:
    def test_clean_cluster_reports_clean(self):
        cluster = populated_cluster()
        report = Scrubber(cluster.store).scrub()
        assert report.clean
        assert report.objects_scanned == 6
        assert report.replicas_checked == 6 * cluster.ring.replicas
        assert "CLEAN" in report.summary()

    def test_scrub_heals_corrupt_replicas(self):
        cluster = populated_cluster()
        store = cluster.store
        placement = cluster.ring.nodes_for("obj-00")
        cluster.nodes[placement[0]].corrupt_object("obj-00")
        cluster.nodes[placement[1]].corrupt_object("obj-00", mode="truncate")
        report = store.scrub()
        assert report.corrupt_replicas == 2
        assert report.repaired_replicas == 2
        assert report.unrecoverable == []
        assert store.resilience.scrub_repairs == 2
        for nid in placement:
            assert cluster.nodes[nid].peek("obj-00").data == b"\x01" * 256
        assert store.scrub().clean  # second pass finds nothing

    def test_scrub_clears_quarantine_entries_it_heals(self):
        cluster = populated_cluster()
        store = cluster.store
        victim = cluster.ring.nodes_for("obj-00")[0]
        cluster.nodes[victim].corrupt_object("obj-00")
        store.quarantine["obj-00"] = {victim}
        store.scrub()
        assert store.quarantine.get("obj-00") is None

    def test_no_verified_source_reports_unrecoverable(self):
        cluster = populated_cluster()
        store = cluster.store
        placement = cluster.ring.nodes_for("obj-00")
        for nid in placement:
            cluster.nodes[nid].corrupt_object("obj-00")
        report = store.scrub()
        assert report.unrecoverable == ["obj-00"]
        assert not report.clean
        assert "obj-00" in store.unrecoverable
        # All bad copies quarantined; nothing rewritten from garbage.
        assert store.quarantine["obj-00"] == set(placement)
        assert report.repaired_replicas == 0

    def test_unrecoverable_verdict_is_revisited(self):
        cluster = populated_cluster()
        store = cluster.store
        placement = cluster.ring.nodes_for("obj-00")
        cluster.nodes[placement[0]].crash()  # the one clean copy, offline
        for nid in placement[1:]:
            cluster.nodes[nid].corrupt_object("obj-00")
        assert store.scrub().unrecoverable == ["obj-00"]
        cluster.nodes[placement[0]].recover()
        second = store.scrub()
        assert second.unrecoverable == []
        assert second.repaired_replicas == 2
        assert "obj-00" not in store.unrecoverable
        assert store.scrub().clean

    def test_scrub_is_background_accounted(self):
        cluster = populated_cluster()
        store = cluster.store
        before_clock = cluster.clock.now_us
        before_background = store.ledger.background_us
        store.scrub()
        assert cluster.clock.now_us == before_clock  # no client time
        assert store.ledger.background_us > before_background

    def test_scrub_runs_with_faults_suspended(self):
        cluster = populated_cluster()
        cluster.install_fault_plan(
            FaultPlan(seed=9, io_error_rate=1.0, bitrot_rate=1.0)
        )
        report = cluster.store.scrub()
        assert report.clean  # neither starved nor rotting its own reads

    def test_prefix_scopes_the_walk(self):
        cluster = populated_cluster()
        cluster.store.put("other:thing", b"z")
        report = Scrubber(cluster.store).scrub(prefix="obj-")
        assert report.objects_scanned == 6

    def test_scrub_spans_and_events_are_traced(self):
        from repro.obs.trace import Tracer

        cluster = populated_cluster()
        store = cluster.store
        store.tracer = Tracer(cluster.clock)
        cluster.nodes[cluster.ring.nodes_for("obj-00")[0]].corrupt_object(
            "obj-00"
        )
        store.scrub()
        spans = [s for s in store.tracer.spans if s.name == "scrub"]
        assert len(spans) == 1
        assert spans[0].tags["repaired"] == 1


class TestFilesystemScrub:
    def test_fs_scrub_heals_namering_rot(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        fs.makedirs("/a/b")
        fs.write("/a/f", b"payload")
        fs.pump()
        store = fs.store
        name = next(n for n in sorted(store.names()) if n.startswith("nr:"))
        victim = store.ring.nodes_for(name)[0]
        store.nodes[victim].corrupt_object(name)
        report = fs.scrub()
        assert report.repaired_replicas == 1
        assert fs.scrub().clean
        assert fs.read("/a/f") == b"payload"
