"""Tests for per-request fault injection, retry policies and breakers."""

import pytest

from repro.simcloud import (
    CircuitOpenError,
    ClusterConfig,
    FaultPlan,
    LatencyModel,
    QuorumError,
    RequestTimeout,
    RetryPolicy,
    SimClock,
    SwiftCluster,
    TransientIOError,
)
from repro.simcloud.failures import (
    FAULT_IO_ERROR,
    FAULT_NONE,
    FAULT_SLOW,
    FAULT_TIMEOUT,
)
from repro.simcloud.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerConfig,
    CircuitBreaker,
)


def fast_cluster(**kwargs) -> SwiftCluster:
    return SwiftCluster(ClusterConfig(vnodes=16), LatencyModel.zero(), **kwargs)


class TestFaultPlan:
    def test_validates_rates_and_durations(self):
        with pytest.raises(ValueError):
            FaultPlan(io_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(timeout_us=-1)

    def test_zero_rates_never_fault(self):
        plan = FaultPlan(seed=1)
        assert all(
            plan.draw(1, "read").kind == FAULT_NONE for _ in range(200)
        )
        assert plan.total_injected == 0

    def test_deterministic_given_seed(self):
        a = [FaultPlan(seed=9, io_error_rate=0.3).draw(1, "read").kind
             for _ in range(50)]
        b = [FaultPlan(seed=9, io_error_rate=0.3).draw(1, "read").kind
             for _ in range(50)]
        assert a == b

    def test_per_node_streams_independent(self):
        # Draining node 1's stream must not change what node 2 sees.
        quiet = FaultPlan(seed=5, io_error_rate=0.3)
        noisy = FaultPlan(seed=5, io_error_rate=0.3)
        for _ in range(100):
            noisy.draw(1, "read")
        a = [quiet.draw(2, "read").kind for _ in range(30)]
        b = [noisy.draw(2, "read").kind for _ in range(30)]
        assert a == b

    def test_rates_roughly_match(self):
        plan = FaultPlan(seed=3, io_error_rate=0.2)
        kinds = [plan.draw(1, "write").kind for _ in range(5000)]
        rate = kinds.count(FAULT_IO_ERROR) / 5000
        assert 0.17 < rate < 0.23
        assert plan.injected[FAULT_IO_ERROR] == kinds.count(FAULT_IO_ERROR)

    def test_fault_kinds_carry_their_cost(self):
        plan = FaultPlan(seed=2, timeout_rate=1.0, timeout_us=7_000)
        decision = plan.draw(1, "read")
        assert decision.kind == FAULT_TIMEOUT
        assert decision.extra_us == 7_000
        slow = FaultPlan(seed=2, slow_rate=1.0, slow_extra_us=9_000)
        decision = slow.draw(1, "read")
        assert decision.kind == FAULT_SLOW
        assert decision.extra_us == 9_000

    def test_suspended_draws_nothing(self):
        plan = FaultPlan(seed=4, io_error_rate=1.0)
        with plan.suspended():
            assert plan.draw(1, "read").kind == FAULT_NONE
        assert plan.draw(1, "read").kind == FAULT_IO_ERROR

    def test_window_confines_the_storm(self):
        clock = SimClock()
        plan = FaultPlan(seed=6, io_error_rate=1.0, window_us=(100, 200))
        plan.clock = clock
        assert plan.draw(1, "read").kind == FAULT_NONE  # before
        clock.advance(150)
        assert plan.draw(1, "read").kind == FAULT_IO_ERROR  # inside
        clock.advance(100)
        assert plan.draw(1, "read").kind == FAULT_NONE  # after


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_backoff_us=1_000,
            backoff_cap_us=3_500,
            multiplier=2.0,
            jitter_frac=0.0,
        )
        rng = policy.rng()
        waits = [policy.backoff_us(k, rng) for k in (1, 2, 3, 4)]
        assert waits == [1_000, 2_000, 3_500, 3_500]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_backoff_us=10_000, jitter_frac=0.5)
        rng = policy.rng()
        for _ in range(100):
            wait = policy.backoff_us(1, rng)
            assert 5_000 <= wait <= 10_000

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientIOError(1, "read"))
        assert policy.is_retryable(RequestTimeout(1, "read", 10))
        assert not policy.is_retryable(ValueError("nope"))

    def test_none_policy_fails_first_time(self):
        assert RetryPolicy.none().max_attempts == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_frac=2.0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_us(0, RetryPolicy().rng())


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(1, BreakerConfig(failure_threshold=3))
        for _ in range(2):
            breaker.record_failure(now_us=0)
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure(now_us=0)
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 1
        assert not breaker.allow(now_us=10)

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(1, BreakerConfig(failure_threshold=3))
        breaker.record_failure(0)
        breaker.record_failure(0)
        breaker.record_success(0)
        breaker.record_failure(0)
        breaker.record_failure(0)
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(1, BreakerConfig(2, cooldown_us=1_000))
        breaker.record_failure(0)
        breaker.record_failure(0)
        assert breaker.is_quarantined(500)
        assert breaker.allow(1_000)  # cooldown elapsed: probe admitted
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.record_success(1_000)
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(1, BreakerConfig(2, cooldown_us=1_000))
        breaker.record_failure(0)
        breaker.record_failure(0)
        assert breaker.allow(1_500)
        breaker.record_failure(1_500)
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 2
        assert breaker.is_quarantined(2_000)  # fresh cooldown from 1_500

    def test_transitions_are_recorded(self):
        breaker = CircuitBreaker(1, BreakerConfig(1, cooldown_us=100))
        breaker.record_failure(10)
        breaker.allow(200)
        breaker.record_success(200)
        assert breaker.transitions == [
            (10, BREAKER_CLOSED, BREAKER_OPEN),
            (200, BREAKER_OPEN, BREAKER_HALF_OPEN),
            (200, BREAKER_HALF_OPEN, BREAKER_CLOSED),
        ]


class TestStoreFaultMasking:
    def test_retries_mask_transient_faults(self):
        cluster = fast_cluster()
        cluster.install_fault_plan(FaultPlan(seed=11, io_error_rate=0.3))
        for i in range(50):
            cluster.store.put(f"obj-{i}", b"x" * 64)
        for i in range(50):
            assert cluster.store.get(f"obj-{i}").data == b"x" * 64
        res = cluster.store.resilience
        assert res.io_errors > 0
        assert res.retries > 0

    def test_backoff_waits_are_charged_to_the_clock(self):
        cluster = fast_cluster(
            retry_policy=RetryPolicy(base_backoff_us=5_000, jitter_frac=0.0)
        )
        cluster.install_fault_plan(FaultPlan(seed=12, io_error_rate=0.2))
        for i in range(30):
            cluster.store.put(f"obj-{i}", b"y" * 16)
        res = cluster.store.resilience
        assert res.retries > 0
        # Zero-latency cluster: the only time that can pass is backoff.
        assert cluster.clock.now_us == res.backoff_us

    def test_timeout_waits_are_charged_to_the_clock(self):
        cluster = fast_cluster(
            retry_policy=RetryPolicy(base_backoff_us=0, jitter_frac=0.0)
        )
        cluster.install_fault_plan(
            FaultPlan(seed=13, timeout_rate=0.3, timeout_us=10_000)
        )
        for i in range(30):
            cluster.store.put(f"obj-{i}", b"z" * 16)
        res = cluster.store.resilience
        assert res.timeouts > 0
        assert cluster.clock.now_us == res.timeouts * 10_000

    def test_slow_replicas_inflate_latency_without_erroring(self):
        cluster = fast_cluster()
        cluster.install_fault_plan(
            FaultPlan(seed=14, slow_rate=1.0, slow_extra_us=1_000)
        )
        cluster.store.put("obj", b"w")
        assert cluster.store.resilience.retries == 0
        assert cluster.clock.now_us > 0  # every replica write ran slow

    def test_breaker_fails_fast_on_a_crashed_node(self):
        cluster = fast_cluster(
            breaker_config=BreakerConfig(failure_threshold=2, cooldown_us=10**9)
        )
        store = cluster.store
        store.put("obj", b"v" * 32)
        victim = cluster.ring.nodes_for("obj")[0]
        cluster.nodes[victim].crash()
        for i in range(4):  # feed the breaker NodeDown failures
            store.put(f"other-{i}", b"q")
            store.get("obj")
        assert store.breakers[victim].state == BREAKER_OPEN
        before = store.nodes[victim].stats.reads
        for _ in range(5):
            store.get("obj")  # quarantined: node not even consulted
        assert store.nodes[victim].stats.reads == before
        # Node back up but breaker still open: writes fail fast on it.
        cluster.nodes[victim].recover()
        writes_before = store.nodes[victim].stats.writes
        store.put("obj", b"v2")
        assert store.nodes[victim].stats.writes == writes_before
        assert store.resilience.fast_failures > 0

    def test_reads_prefer_unquarantined_replicas(self):
        cluster = fast_cluster(
            breaker_config=BreakerConfig(failure_threshold=1, cooldown_us=10**9)
        )
        store = cluster.store
        store.put("obj", b"data")
        first, second = cluster.ring.nodes_for("obj")[:2]
        store._breaker(first).record_failure(0)  # quarantine the primary
        reads_before = cluster.nodes[second].stats.reads
        store.get("obj")
        assert cluster.nodes[second].stats.reads == reads_before + 1

    def test_exhausted_retries_fail_the_read_with_quorum_error(self):
        cluster = fast_cluster(retry_policy=RetryPolicy.none())
        cluster.install_fault_plan(FaultPlan(seed=15, io_error_rate=1.0))
        with cluster.fault_plan.suspended():
            cluster.store.put("obj", b"u")
        with pytest.raises(QuorumError):
            cluster.store.get("obj")

    def test_open_breaker_skips_writes_until_cooldown(self):
        cluster = fast_cluster(
            breaker_config=BreakerConfig(failure_threshold=1, cooldown_us=500)
        )
        store = cluster.store
        store.put("obj", b"t" * 8)
        victim = cluster.ring.nodes_for("obj")[0]
        store._breaker(victim).record_failure(store.clock.now_us)
        writes_before = cluster.nodes[victim].stats.writes
        store.put("obj", b"t2")  # quorum via the other two replicas
        assert cluster.nodes[victim].stats.writes == writes_before
        cluster.clock.advance(500)  # cooldown over: probe admitted
        store.put("obj", b"t3")
        assert cluster.nodes[victim].stats.writes == writes_before + 1
        assert store._breaker(victim).state == BREAKER_CLOSED

    def test_resilience_snapshot_and_reset(self):
        cluster = fast_cluster()
        cluster.install_fault_plan(FaultPlan(seed=16, io_error_rate=0.5))
        for i in range(20):
            cluster.store.put(f"obj-{i}", b"s")
        snap = cluster.store.resilience.snapshot()
        assert snap["io_errors"] > 0
        cluster.store.resilience.reset()
        assert cluster.store.resilience.snapshot()["io_errors"] == 0
