"""Unit tests for the simulated clock, makespan model and timestamps."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simcloud import SimClock, Timestamp, TimestampFactory, makespan_us


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_us == 0

    def test_custom_start(self):
        assert SimClock(start_us=42).now_us == 42

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start_us=-1)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10)
        clock.advance(5)
        assert clock.now_us == 15

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_unit_conversions(self):
        clock = SimClock(start_us=2_500_000)
        assert clock.now_ms == 2500.0
        assert clock.now_s == 2.5

    def test_measure_brackets_thunk(self):
        clock = SimClock()
        result, elapsed = clock.measure(lambda: clock.advance(7) and "done")
        assert elapsed == 7
        clock.advance(0)
        assert clock.now_us == 7

    def test_run_isolated_rewinds(self):
        clock = SimClock()
        _, elapsed = clock.run_isolated(lambda: clock.advance(100))
        assert elapsed == 100
        assert clock.now_us == 0

    def test_parallel_charges_makespan_not_sum(self):
        clock = SimClock()
        thunks = [lambda: clock.advance(10) for _ in range(8)]
        clock.parallel(thunks, workers=4)
        assert clock.now_us == 20  # 8 tasks of 10us over 4 lanes

    def test_parallel_single_worker_is_serial(self):
        clock = SimClock()
        clock.parallel([lambda: clock.advance(5) for _ in range(3)], workers=1)
        assert clock.now_us == 15

    def test_parallel_preserves_result_order(self):
        clock = SimClock()
        results = clock.parallel([lambda i=i: i for i in range(5)], workers=3)
        assert results == [0, 1, 2, 3, 4]

    def test_parallel_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            SimClock().parallel([], workers=0)

    def test_freeze_suppresses_advances(self):
        clock = SimClock()
        with clock.freeze():
            clock.advance(1000)
        assert clock.now_us == 0
        clock.advance(1)
        assert clock.now_us == 1

    def test_freeze_nests(self):
        clock = SimClock()
        with clock.freeze():
            with clock.freeze():
                clock.advance(5)
            clock.advance(5)
        clock.advance(5)
        assert clock.now_us == 5


class TestMakespan:
    def test_empty(self):
        assert makespan_us([], 4) == 0

    def test_single_task(self):
        assert makespan_us([9], 4) == 9

    def test_equal_tasks_divide_evenly(self):
        assert makespan_us([10] * 8, 4) == 20

    def test_never_below_max_task(self):
        assert makespan_us([100, 1, 1, 1], 4) == 100

    def test_one_worker_sums(self):
        assert makespan_us([3, 4, 5], 1) == 12

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), max_size=40),
        st.integers(min_value=1, max_value=16),
    )
    def test_bounds(self, costs, workers):
        """Makespan is sandwiched between max(cost) and sum(cost)."""
        span = makespan_us(costs, workers)
        if not costs:
            assert span == 0
            return
        assert span >= max(costs)
        assert span <= sum(costs)
        # LPT is within 4/3 of OPT; OPT itself can exceed the trivial
        # lower bound max(max, ceil(sum/k)), so test against 2x that.
        lower = max(max(costs), -(-sum(costs) // workers))
        assert span <= lower * 2 + 1


class TestTimestamp:
    def test_ordering_by_wall_first(self):
        assert Timestamp(1, 99, 9) < Timestamp(2, 0, 0)

    def test_ties_broken_by_seq(self):
        assert Timestamp(5, 1, 9) < Timestamp(5, 2, 0)

    def test_str_round_trip(self):
        ts = Timestamp(123456, 7, 3)
        assert Timestamp.parse(str(ts)) == ts

    def test_zero_is_minimal(self):
        assert Timestamp.ZERO <= Timestamp(0, 0, 0)
        assert Timestamp.ZERO < Timestamp(0, 1, 0)

    @given(
        st.integers(0, 10**12), st.integers(0, 10**6), st.integers(0, 100)
    )
    def test_parse_round_trip_property(self, wall, seq, node):
        ts = Timestamp(wall, seq, node)
        assert Timestamp.parse(str(ts)) == ts


class TestTimestampFactory:
    def test_strictly_increasing(self):
        clock = SimClock()
        factory = TimestampFactory(clock, node_id=1)
        stamps = [factory.next() for _ in range(100)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 100

    def test_increasing_even_when_clock_still(self):
        clock = SimClock()
        factory = TimestampFactory(clock)
        a, b = factory.next(), factory.next()
        assert a < b
        assert a.wall_us == b.wall_us == 0

    def test_unique_across_clock_rewind(self):
        """run_isolated rewinds time; seq must still disambiguate."""
        clock = SimClock()
        factory = TimestampFactory(clock, node_id=2)
        seen = []

        def work():
            clock.advance(50)
            seen.append(factory.next())

        clock.run_isolated(work)
        clock.run_isolated(work)
        assert seen[0] != seen[1]
        assert seen[0] < seen[1]

    def test_distinct_nodes_never_collide(self):
        clock = SimClock()
        f1 = TimestampFactory(clock, node_id=1)
        f2 = TimestampFactory(clock, node_id=2)
        stamps = {f1.next(), f2.next(), f1.next(), f2.next()}
        assert len(stamps) == 4
