"""Property tests for the checksum primitives (repro.simcloud.integrity)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simcloud.clock import Timestamp
from repro.simcloud.integrity import (
    CHUNK_SIZE,
    CORRUPT_BITFLIP,
    CORRUPT_TRUNCATE,
    CORRUPTION_MODES,
    checksum_of,
    corrupt_record,
    crc32c,
    verify_record,
)
from repro.simcloud.node import ObjectRecord
from repro.simcloud.sparse import SparseData


def record_of(data, checksum=None) -> ObjectRecord:
    return ObjectRecord(
        name="obj",
        data=data,
        meta={},
        timestamp=Timestamp(1, 0, 0),
        etag="etag",
        checksum=checksum_of(data) if checksum is None else checksum,
    )


class TestCrc32c:
    def test_known_vectors(self):
        # The CRC-32C check value (RFC 3720 appendix, zlib-crc32c docs).
        assert crc32c(b"123456789") == 0xE3069283
        assert crc32c(b"") == 0
        assert crc32c(b"\x00" * 32) == 0x8A9136AA

    @given(st.binary(), st.binary())
    def test_chainable(self, head, tail):
        assert crc32c(head + tail) == crc32c(tail, crc32c(head))

    @given(st.binary(min_size=1))
    def test_single_bit_flip_always_changes_the_crc(self, data):
        # CRC is linear over GF(2): flipping any one bit flips a fixed
        # nonzero pattern in the checksum, so detection is guaranteed.
        bit = len(data) * 8 - 1
        buf = bytearray(data)
        buf[bit // 8] ^= 1 << (bit % 8)
        assert crc32c(bytes(buf)) != crc32c(data)


class TestChecksumOf:
    @given(st.binary())
    def test_round_trip_verifies(self, data):
        assert verify_record(record_of(data))

    @given(st.binary())
    def test_matches_unchunked_crc(self, data):
        assert checksum_of(data) == f"{crc32c(data):08x}"

    def test_empty_payload(self):
        assert checksum_of(b"") == "00000000"
        assert verify_record(record_of(b""))

    def test_multi_chunk_payload_round_trips(self):
        # > 1 CHUNK_SIZE so the chained incremental path is exercised.
        data = bytes(range(256)) * (CHUNK_SIZE // 256 + 7)
        assert len(data) > CHUNK_SIZE
        assert checksum_of(data) == f"{crc32c(data):08x}"
        assert verify_record(record_of(data))

    @given(
        st.binary(min_size=1, max_size=4 * 1024),
        st.integers(min_value=1, max_value=4 * 1024),
    )
    def test_chunk_size_is_irrelevant(self, data, step):
        crc = 0
        for start in range(0, len(data), step):
            crc = crc32c(data[start : start + step], crc)
        assert f"{crc:08x}" == checksum_of(data)

    def test_sparse_payloads_checksum_by_identity(self):
        a = SparseData(size=10_000_000, tag="big")
        assert checksum_of(a) == checksum_of(SparseData(size=10_000_000, tag="big"))
        assert checksum_of(a) != checksum_of(SparseData(size=10_000_001, tag="big"))
        assert checksum_of(a) != checksum_of(SparseData(size=10_000_000, tag="other"))
        assert verify_record(record_of(a))

    def test_unchecksummed_records_are_taken_at_their_word(self):
        assert verify_record(record_of(b"whatever", checksum=""))


class TestCorruptRecord:
    @given(st.binary(), st.integers(min_value=0, max_value=2**32))
    def test_bitflip_is_always_detected(self, data, seed):
        record = record_of(data)
        rotten = corrupt_record(record, CORRUPT_BITFLIP, random.Random(seed))
        assert not verify_record(rotten)

    @given(st.binary(min_size=1), st.integers(min_value=0, max_value=2**32))
    def test_truncate_shortens_and_is_detected(self, data, seed):
        record = record_of(data)
        rotten = corrupt_record(record, CORRUPT_TRUNCATE, random.Random(seed))
        assert len(rotten.data) < len(data)
        assert not verify_record(rotten)

    @given(st.sampled_from(CORRUPTION_MODES), st.integers(0, 2**32))
    def test_sparse_corruption_is_detected(self, mode, seed):
        record = record_of(SparseData(size=1_000_000, tag="cold"))
        rotten = corrupt_record(record, mode, random.Random(seed))
        assert not verify_record(rotten)

    def test_original_record_is_never_mutated(self):
        record = record_of(b"pristine bytes")
        for mode in CORRUPTION_MODES:
            corrupt_record(record, mode, random.Random(0))
        assert record.data == b"pristine bytes"
        assert verify_record(record)

    def test_checksum_rides_along_stale(self):
        record = record_of(b"payload")
        rotten = corrupt_record(record, CORRUPT_BITFLIP, random.Random(1))
        assert rotten.checksum == record.checksum  # silent: checksum untouched

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            corrupt_record(record_of(b"x"), "melt", random.Random(0))
