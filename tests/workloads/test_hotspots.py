"""Tests for the Zipf sampler and hot-lookup traces."""

import random

import pytest

from repro.workloads import TreeSpec, ZipfSampler, generate, hot_lookup_trace, skew_of


class TestZipfSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(n=0)
        with pytest.raises(ValueError):
            ZipfSampler(n=10, alpha=0)

    def test_range(self):
        sampler = ZipfSampler(n=20)
        rng = random.Random(1)
        draws = sampler.sample_many(rng, 500)
        assert all(0 <= d < 20 for d in draws)

    def test_rank_zero_dominates(self):
        sampler = ZipfSampler(n=100, alpha=1.2)
        rng = random.Random(2)
        draws = sampler.sample_many(rng, 5000)
        top_share = draws.count(0) / len(draws)
        assert top_share > 0.15  # head item takes a big slice

    def test_higher_alpha_more_skew(self):
        rng_a, rng_b = random.Random(3), random.Random(3)
        gentle = ZipfSampler(n=100, alpha=0.6).sample_many(rng_a, 4000)
        steep = ZipfSampler(n=100, alpha=1.6).sample_many(rng_b, 4000)
        assert steep.count(0) > gentle.count(0)

    def test_deterministic(self):
        sampler = ZipfSampler(n=50)
        assert sampler.sample_many(random.Random(7), 50) == sampler.sample_many(
            random.Random(7), 50
        )

    def test_single_item(self):
        assert ZipfSampler(n=1).sample(random.Random(0)) == 0


class TestHotLookupTrace:
    def test_trace_paths_exist_in_tree(self):
        tree = generate(TreeSpec(seed=4, target_files=60))
        trace = hot_lookup_trace(tree, 300, seed=5)
        valid = {f.path for f in tree.files}
        assert len(trace) == 300
        assert set(trace) <= valid

    def test_trace_is_skewed(self):
        tree = generate(TreeSpec(seed=4, target_files=100))
        trace = hot_lookup_trace(tree, 2000, alpha=1.2, seed=6)
        assert skew_of(trace) > 0.4  # top-10% of paths >40% of traffic

    def test_empty_tree_rejected(self):
        tree = generate(TreeSpec(seed=4, target_files=0))
        with pytest.raises(ValueError):
            hot_lookup_trace(tree, 10)

    def test_hotness_decoupled_from_generation_order(self):
        """The hottest path is not simply file000001."""
        tree = generate(TreeSpec(seed=8, target_files=100))
        trace = hot_lookup_trace(tree, 3000, seed=9)
        counts: dict[str, int] = {}
        for path in trace:
            counts[path] = counts.get(path, 0) + 1
        hottest = max(counts, key=counts.get)
        assert hottest != sorted(f.path for f in tree.files)[0]


class TestHugeDirectoryWorkload:
    def _ops(self, **kw):
        from repro.workloads import HugeDirSpec, huge_directory_ops

        return huge_directory_ops(HugeDirSpec(**kw))

    def test_deterministic(self):
        assert self._ops(children=50, ops=200, seed=7) == self._ops(
            children=50, ops=200, seed=7
        )
        assert self._ops(children=50, ops=200, seed=7) != self._ops(
            children=50, ops=200, seed=8
        )

    def test_mix_roughly_matches_fractions(self):
        ops = self._ops(
            children=100,
            ops=2_000,
            insert_fraction=0.2,
            delete_fraction=0.1,
            list_fraction=0.1,
            seed=3,
        )
        counts = {}
        for op, _ in ops:
            counts[op] = counts.get(op, 0) + 1
        assert abs(counts["insert"] / 2_000 - 0.2) < 0.05
        assert abs(counts["delete"] / 2_000 - 0.1) < 0.05
        assert abs(counts["list_page"] / 2_000 - 0.1) < 0.05
        assert counts["lookup"] > 1_000

    def test_operands_valid(self):
        from repro.workloads import HugeDirSpec

        spec = HugeDirSpec(children=40, ops=500, seed=1)
        existing = {spec.child_name(i) for i in range(40)}
        fresh = set()
        for op, operand in self._ops(children=40, ops=500, seed=1):
            if op == "insert":
                assert operand not in existing
                assert operand not in fresh  # minted names never repeat
                fresh.add(operand)
            else:
                assert operand in existing

    def test_lookups_are_skewed(self):
        looked_up = [
            operand
            for op, operand in self._ops(children=200, ops=3_000, seed=5)
            if op == "lookup"
        ]
        assert skew_of(looked_up) > 0.3

    def test_fraction_validation(self):
        from repro.workloads import HugeDirSpec

        with pytest.raises(ValueError):
            HugeDirSpec(insert_fraction=0.7, delete_fraction=0.4)
        with pytest.raises(ValueError):
            HugeDirSpec(children=0)
        with pytest.raises(ValueError):
            HugeDirSpec(page_size=0)
