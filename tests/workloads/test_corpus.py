"""Tests for the 150-user corpus builder."""

import pytest

from repro.core import H2CloudFS
from repro.simcloud import SwiftCluster
from repro.workloads import build_corpus, corpus_stats, populate_corpus


class TestBuildCorpus:
    def test_population_size(self):
        users = build_corpus(n_users=150, seed=1)
        assert len(users) == 150
        assert len({u.account for u in users}) == 150

    def test_deterministic(self):
        a = build_corpus(n_users=30, seed=2)
        b = build_corpus(n_users=30, seed=2)
        assert [u.spec for u in a] == [u.spec for u in b]

    def test_heavy_fraction_respected(self):
        users = build_corpus(n_users=200, heavy_fraction=0.25, seed=3)
        heavy = sum(1 for u in users if u.kind == "heavy")
        assert 30 < heavy < 70

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            build_corpus(heavy_fraction=1.5)

    def test_stats_shape(self):
        stats = corpus_stats(build_corpus(n_users=12, seed=4))
        assert stats["users"] == 12
        assert stats["total_files"] > 1000
        assert stats["max_depth"] > 20 or stats["heavy_users"] == 0


class TestPopulateCorpus:
    def test_shared_cluster_census(self):
        """The Fig 14/15 setup: many accounts, one cloud, one census."""
        cluster = SwiftCluster.fast()
        users = build_corpus(n_users=4, heavy_fraction=0.0, seed=5)
        systems = populate_corpus(
            lambda account: H2CloudFS(cluster, account=account), users
        )
        assert len(systems) == 4
        count, _ = cluster.store.census()
        stats = corpus_stats(users)
        # every file is an object, plus dirs/NameRings/patch leftovers
        assert count > stats["total_files"]
