"""Tests for trace generation and replay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import make_system
from repro.core import H2CloudFS
from repro.simcloud import SwiftCluster
from repro.obs.metrics import Histogram
from repro.workloads import (
    DEFAULT_MIX,
    KNOWN_OPS,
    TraceGenerator,
    TraceStats,
    TreeSpec,
    generate,
    populate,
    replay,
    validate_mix,
)


def small_tree():
    return generate(TreeSpec(seed=11, target_files=40))


class TestGeneration:
    def test_deterministic(self):
        tree = small_tree()
        a = TraceGenerator(seed=1).generate(tree, 100)
        b = TraceGenerator(seed=1).generate(tree, 100)
        assert a == b

    def test_requested_length(self):
        ops = TraceGenerator(seed=2).generate(small_tree(), 150)
        assert len(ops) == 150

    def test_mix_roughly_respected(self):
        ops = TraceGenerator(seed=3).generate(small_tree(), 2000)
        reads = sum(1 for op in ops if op.kind == "read")
        assert 0.25 < reads / len(ops) < 0.55  # DEFAULT_MIX read=0.38

    def test_custom_mix(self):
        gen = TraceGenerator(seed=4, mix={"mkdir": 1.0})
        ops = gen.generate(small_tree(), 50)
        assert all(op.kind == "mkdir" for op in ops)

    def test_all_kinds_reachable(self):
        ops = TraceGenerator(seed=5).generate(small_tree(), 3000)
        kinds = {op.kind for op in ops}
        assert kinds.issuperset(DEFAULT_MIX) or len(kinds) >= 8


class TestReplay:
    def test_trace_is_valid_on_h2(self):
        """Every generated op must succeed (the generator models state)."""
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        tree = small_tree()
        populate(fs, tree)
        ops = TraceGenerator(seed=6).generate(tree, 400)
        stats = replay(fs, ops)  # raises on any invalid op
        assert stats.total_ops == 400

    @pytest.mark.parametrize("system", ["swift", "dynamic-partition"])
    def test_trace_is_valid_on_baselines(self, system):
        fs = make_system(system, SwiftCluster.fast())
        tree = small_tree()
        populate(fs, tree)
        ops = TraceGenerator(seed=7).generate(tree, 200)
        stats = replay(fs, ops)
        assert stats.total_ops == 200

    def test_stats_record_per_kind(self):
        fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
        tree = small_tree()
        populate(fs, tree)
        ops = TraceGenerator(seed=8).generate(tree, 300)
        stats = replay(fs, ops)
        assert stats.count("read") > 0
        assert stats.mean_us("read") > 0
        assert stats.total_ops == 300

    def test_same_trace_same_simulated_cost(self):
        """Full determinism: identical runs, identical clocks."""
        def run():
            fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
            tree = small_tree()
            populate(fs, tree)
            ops = TraceGenerator(seed=9).generate(tree, 150)
            replay(fs, ops)
            return fs.clock.now_us

        assert run() == run()


class TestMixValidation:
    """The op-mix contract: typos and garbage fail loudly at construction."""

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op name"):
            TraceGenerator(seed=1, mix={"raed": 0.5, "write": 0.5})

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            TraceGenerator(seed=1, mix={"read": 0.0, "write": 1.0})
        with pytest.raises(ValueError, match="positive"):
            validate_mix({"read": -0.2, "write": 1.2})

    def test_non_numeric_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            validate_mix({"read": "lots"})

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            validate_mix({})

    def test_sum_drift_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            TraceGenerator(seed=1, mix={"read": 0.5, "write": 0.6})
        with pytest.raises(ValueError, match="sum"):
            validate_mix({"read": 0.4, "write": 0.4})

    def test_fp_noise_tolerated_and_normalised(self):
        mix = validate_mix({"read": 0.3339, "write": 0.333, "list": 0.333})
        assert sum(mix.values()) == pytest.approx(1.0, abs=1e-12)

    def test_default_mix_passes(self):
        assert set(validate_mix(dict(DEFAULT_MIX))) == KNOWN_OPS

    def test_valid_custom_mix_still_works(self):
        ops = TraceGenerator(seed=4, mix={"mkdir": 1.0}).generate(
            small_tree(), 30
        )
        assert all(op.kind == "mkdir" for op in ops)


class TestTraceStatsPercentiles:
    """TraceStats p50/p99 share the registry's quantile definition."""

    def test_known_values(self):
        stats = TraceStats()
        for us in (10, 20, 30, 40, 50):
            stats.record("read", us)
        assert stats.p50_us("read") == 30.0
        assert stats.percentile_us("read", 1.0) == 50.0
        assert stats.p99_us("read") == pytest.approx(49.6)

    def test_empty_kind_is_zero(self):
        stats = TraceStats()
        assert stats.p50_us("read") == 0.0
        assert stats.p99_us("write") == 0.0

    @given(
        values=st.lists(st.integers(0, 10_000_000), min_size=1, max_size=200),
        q=st.sampled_from([0.5, 0.9, 0.95, 0.99, 1.0]),
    )
    @settings(max_examples=80, deadline=None)
    def test_agrees_with_metrics_histogram(self, values, q):
        """Property: same observations => the same quantile, both layers."""
        hist = Histogram("trace.agreement", reservoir_size=len(values))
        stats = TraceStats()
        for value in values:
            hist.observe(value)
            stats.record("write", value)
        assert stats.percentile_us("write", q) == hist.percentile(q)

    @given(values=st.lists(st.integers(0, 1_000_000), min_size=1, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_percentiles_ordered_and_bounded(self, values):
        stats = TraceStats()
        for value in values:
            stats.record("read", value)
        p50, p99 = stats.p50_us("read"), stats.p99_us("read")
        assert min(values) <= p50 <= p99 <= max(values)
