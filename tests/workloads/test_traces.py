"""Tests for trace generation and replay."""

import pytest

from repro.baselines import make_system
from repro.core import H2CloudFS
from repro.simcloud import SwiftCluster
from repro.workloads import (
    DEFAULT_MIX,
    TraceGenerator,
    TreeSpec,
    generate,
    populate,
    replay,
)


def small_tree():
    return generate(TreeSpec(seed=11, target_files=40))


class TestGeneration:
    def test_deterministic(self):
        tree = small_tree()
        a = TraceGenerator(seed=1).generate(tree, 100)
        b = TraceGenerator(seed=1).generate(tree, 100)
        assert a == b

    def test_requested_length(self):
        ops = TraceGenerator(seed=2).generate(small_tree(), 150)
        assert len(ops) == 150

    def test_mix_roughly_respected(self):
        ops = TraceGenerator(seed=3).generate(small_tree(), 2000)
        reads = sum(1 for op in ops if op.kind == "read")
        assert 0.25 < reads / len(ops) < 0.55  # DEFAULT_MIX read=0.38

    def test_custom_mix(self):
        gen = TraceGenerator(seed=4, mix={"mkdir": 1.0})
        ops = gen.generate(small_tree(), 50)
        assert all(op.kind == "mkdir" for op in ops)

    def test_all_kinds_reachable(self):
        ops = TraceGenerator(seed=5).generate(small_tree(), 3000)
        kinds = {op.kind for op in ops}
        assert kinds.issuperset(DEFAULT_MIX) or len(kinds) >= 8


class TestReplay:
    def test_trace_is_valid_on_h2(self):
        """Every generated op must succeed (the generator models state)."""
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        tree = small_tree()
        populate(fs, tree)
        ops = TraceGenerator(seed=6).generate(tree, 400)
        stats = replay(fs, ops)  # raises on any invalid op
        assert stats.total_ops == 400

    @pytest.mark.parametrize("system", ["swift", "dynamic-partition"])
    def test_trace_is_valid_on_baselines(self, system):
        fs = make_system(system, SwiftCluster.fast())
        tree = small_tree()
        populate(fs, tree)
        ops = TraceGenerator(seed=7).generate(tree, 200)
        stats = replay(fs, ops)
        assert stats.total_ops == 200

    def test_stats_record_per_kind(self):
        fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
        tree = small_tree()
        populate(fs, tree)
        ops = TraceGenerator(seed=8).generate(tree, 300)
        stats = replay(fs, ops)
        assert stats.count("read") > 0
        assert stats.mean_us("read") > 0
        assert stats.total_ops == 300

    def test_same_trace_same_simulated_cost(self):
        """Full determinism: identical runs, identical clocks."""
        def run():
            fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
            tree = small_tree()
            populate(fs, tree)
            ops = TraceGenerator(seed=9).generate(tree, 150)
            replay(fs, ops)
            return fs.clock.now_us

        assert run() == run()
