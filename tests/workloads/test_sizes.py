"""Tests for the file-size mixture model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import GB, KB, MB, SizeModel


class TestPaperMixture:
    def test_deterministic_given_seed(self):
        model = SizeModel.paper_mixture()
        a = model.sample_many(random.Random(1), 100)
        b = model.sample_many(random.Random(1), 100)
        assert a == b

    def test_mean_near_one_megabyte(self):
        """Fig 15: file objects average ~1 MB."""
        mean = SizeModel.paper_mixture().mean_estimate(samples=8000)
        assert 0.3 * MB < mean < 3 * MB

    def test_covers_paper_extremes(self):
        """<1 KB configs and multi-MB tail both appear (§5.1)."""
        rng = random.Random(42)
        sizes = SizeModel.paper_mixture().sample_many(rng, 5000)
        assert any(s < KB for s in sizes)
        assert any(s > 10 * MB for s in sizes)
        assert all(s >= 1 for s in sizes)

    def test_cap_respected(self):
        rng = random.Random(7)
        sizes = SizeModel.paper_mixture().sample_many(rng, 20_000)
        assert max(sizes) <= 2 * GB

    def test_scale_shrinks_proportionally(self):
        full = SizeModel.paper_mixture(scale=1.0).mean_estimate(samples=4000)
        tiny = SizeModel.paper_mixture(scale=0.01).mean_estimate(samples=4000)
        assert 0.003 < tiny / full < 0.03


class TestUniform:
    def test_every_sample_exact(self):
        model = SizeModel.uniform(1 << 20)
        rng = random.Random(0)
        assert set(model.sample_many(rng, 50)) == {1 << 20}

    @given(st.integers(1, 10**9))
    @settings(max_examples=30)
    def test_uniform_any_size(self, size):
        model = SizeModel.uniform(size)
        assert model.sample(random.Random(0)) == size
