"""Tests for the multi-tenant scenario suite's building blocks.

Property tests (hypothesis) pin the generator laws the replay digests
depend on: same seed => identical schedule, bounded burst windows,
diurnal rates inside [trough, peak] and periodic, the tenant pseudo-
shuffle a bijection, the Zipf CDF monotone.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dst.explorer import DstConfig
from repro.workloads import ZipfSampler
from repro.workloads.scenarios import (
    HOTSPOT_DIR,
    SCENARIOS,
    SIM_DAY_US,
    TIERS,
    ArrivalProcess,
    BurstModel,
    DiurnalCurve,
    ScaleTier,
    ScenarioExplorer,
    ScenarioSpec,
    TenantMix,
    account_of,
    build_scenario,
    scenario_env,
    seed_layout,
)


class TestDiurnalCurve:
    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalCurve(trough=0.0)
        with pytest.raises(ValueError):
            DiurnalCurve(trough=2.0, peak=1.0)
        with pytest.raises(ValueError):
            DiurnalCurve(period_us=0)

    @given(
        trough=st.floats(0.05, 1.0),
        spread=st.floats(0.0, 3.0),
        phase=st.floats(-1.0, 1.0),
        t=st.integers(0, 10 * SIM_DAY_US),
    )
    @settings(max_examples=80, deadline=None)
    def test_rate_bounded_and_periodic(self, trough, spread, phase, t):
        curve = DiurnalCurve(trough=trough, peak=trough + spread, phase=phase)
        rate = curve.rate_at(t)
        assert curve.trough - 1e-9 <= rate <= curve.peak + 1e-9
        assert math.isclose(
            rate, curve.rate_at(t + curve.period_us), rel_tol=1e-9, abs_tol=1e-9
        )

    def test_peak_to_trough_swing(self):
        curve = DiurnalCurve(trough=0.25, peak=1.75, phase=0.0)
        assert math.isclose(curve.rate_at(0), 0.25, abs_tol=1e-9)
        assert math.isclose(curve.rate_at(SIM_DAY_US // 2), 1.75, abs_tol=1e-9)


class TestBurstsAndArrivals:
    def test_burst_validation(self):
        with pytest.raises(ValueError):
            BurstModel(rate=1.5)
        with pytest.raises(ValueError):
            BurstModel(min_ops=0)
        with pytest.raises(ValueError):
            BurstModel(min_ops=9, max_ops=3)
        with pytest.raises(ValueError):
            BurstModel(squeeze=0.0)

    @given(seed=st.integers(0, 10_000), max_ops=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_burst_windows_bounded(self, seed, max_ops):
        burst = BurstModel(rate=0.3, min_ops=1, max_ops=max_ops)
        arrivals = ArrivalProcess(
            random.Random(seed), 1000.0, DiurnalCurve(), burst
        )
        now, window = 0, 0
        for _ in range(300):
            gap, opened = arrivals.next_gap(now)
            now += gap
            assert gap >= 1
            if opened:
                window = 1
            elif arrivals.in_burst:
                window += 1
            else:
                window = 0
            assert window <= max_ops  # a window never outlives its cap

    def test_diurnal_density(self):
        """Mid-day arrivals are denser than the 3am trough."""
        curve = DiurnalCurve(trough=0.2, peak=2.0, phase=0.0)
        quiet = ArrivalProcess(
            random.Random(1), 1000.0, curve, BurstModel(rate=0.0)
        )
        busy = ArrivalProcess(
            random.Random(1), 1000.0, curve, BurstModel(rate=0.0)
        )
        trough_gaps = sum(quiet.next_gap(0)[0] for _ in range(400))
        peak_gaps = sum(busy.next_gap(SIM_DAY_US // 2)[0] for _ in range(400))
        assert peak_gaps * 3 < trough_gaps

    def test_mean_gap_positive(self):
        with pytest.raises(ValueError):
            ArrivalProcess(random.Random(0), 0, DiurnalCurve(), BurstModel())


class TestTenantMix:
    @given(tenants=st.integers(1, 500), seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_rank_shuffle_is_bijection(self, tenants, seed):
        mix = TenantMix(tenants, 0.1, seed)
        assert {mix.tenant_at_rank(r) for r in range(tenants)} == set(
            range(tenants)
        )

    def test_anchor_is_heavy_and_stable(self):
        mix = TenantMix(1000, 0.1, seed=42)
        assert mix.is_heavy(mix.anchor_index)
        assert mix.anchor_index == TenantMix(1000, 0.1, seed=42).anchor_index

    def test_heavy_fraction_roughly_respected(self):
        mix = TenantMix(5000, 0.1, seed=7)
        heavy = sum(1 for i in range(5000) if mix.is_heavy(i))
        assert 0.05 < heavy / 5000 < 0.16

    def test_popular_tenants_dominate(self):
        mix = TenantMix(200, 0.1, seed=3, alpha=1.2)
        rng = random.Random(9)
        draws = [mix.pick(rng) for _ in range(4000)]
        assert draws.count(mix.anchor_index) > len(draws) * 0.05

    def test_zipf_cdf_monotone(self):
        cdf = ZipfSampler(n=300, alpha=1.1)._cdf
        assert all(a < b for a, b in zip(cdf, cdf[1:]))
        assert math.isclose(cdf[-1], 1.0, abs_tol=1e-9)


class TestSeedLayout:
    def test_deterministic(self):
        tier = TIERS["micro"]
        assert seed_layout(7, 3, True, False, tier) == seed_layout(
            7, 3, True, False, tier
        )

    def test_heavy_is_deeper_than_light(self):
        tier = TIERS["micro"]
        heavy_dirs, heavy_files = seed_layout(1, 0, True, False, tier)
        light_dirs, light_files = seed_layout(1, 1, False, False, tier)
        assert len(heavy_dirs) > len(light_dirs)
        assert len(heavy_files) > len(light_files)
        assert max(d.count("/") for d in heavy_dirs) == tier.heavy_depth

    def test_anchor_gets_hotspot_dir(self):
        tier = TIERS["micro"]
        dirs, files = seed_layout(1, 0, True, True, tier)
        assert HOTSPOT_DIR in dirs
        assert not any(f.startswith(HOTSPOT_DIR + "/") for f, _ in files)

    def test_files_live_in_seeded_dirs(self):
        tier = TIERS["smoke"]
        dirs, files = seed_layout(5, 9, True, False, tier)
        for path, size in files:
            assert path.rsplit("/", 1)[0] in dirs
            assert size > 0


class TestScenarioSpec:
    def test_mix_is_validated(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="bad", seed=0, tier=TIERS["micro"], mix={"explode": 1.0}
            )

    def test_json_round_trip(self):
        spec = build_scenario("sync-storm", tier="micro", seed=9)
        doc = spec.to_json()
        back = ScenarioSpec.from_json(doc, env=spec.env)
        assert back == spec

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x", seed=0, tier=TIERS["micro"],
                mix={"read": 1.0}, storm_rate=1.5,
            )
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x", seed=0, tier=TIERS["micro"],
                mix={"read": 1.0}, span_days=0,
            )

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("does-not-exist")

    def test_tier_validation(self):
        with pytest.raises(ValueError):
            ScaleTier("bad", tenants=0, ops=1, heavy_fraction=0.1,
                      hotspot_files=1, storm_fanout=1, light_files=1,
                      heavy_files=1, heavy_depth=1)
        with pytest.raises(ValueError):
            ScaleTier("bad", tenants=1, ops=1, heavy_fraction=1.5,
                      hotspot_files=1, storm_fanout=1, light_files=1,
                      heavy_files=1, heavy_depth=1)


class TestScenarioEnv:
    def test_clean_env_has_no_faults(self):
        env = scenario_env()
        assert env.crash_rate == 0.0
        assert env.corrupt_rate == 0.0
        assert env.membership_rate == 0.0
        assert not env.check_model

    def test_flags_arm_their_subsystems(self):
        assert scenario_env(faulty=True).crash_rate > 0
        assert scenario_env(corruption=True).corrupt_rate > 0
        assert scenario_env(corruption=True).scrub_rate > 0
        assert scenario_env(membership=True).membership_rate > 0
        assert scenario_env(traffic=True).negative_cache


class TestExplorer:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_catalog_explores_to_budget(self, name):
        spec = build_scenario(name, tier="micro", seed=11)
        schedule = ScenarioExplorer(spec).explore()
        ops = schedule.op_count()
        assert ops >= spec.tier.ops  # batches may overshoot, never under
        assert schedule.config["scenario"]["name"] == name

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_schedule(self, seed):
        spec = build_scenario("sync-storm", tier="micro", seed=seed)
        a = ScenarioExplorer(spec).explore()
        b = ScenarioExplorer(spec).explore()
        assert a.steps == b.steps
        assert a.dumps() == b.dumps()

    def test_different_seed_different_schedule(self):
        a = ScenarioExplorer(
            build_scenario("steady-mix", tier="micro", seed=1)
        ).explore()
        b = ScenarioExplorer(
            build_scenario("steady-mix", tier="micro", seed=2)
        ).explore()
        assert a.steps != b.steps

    def test_ops_carry_tenant_accounts(self):
        schedule = ScenarioExplorer(
            build_scenario("steady-mix", tier="micro", seed=4)
        ).explore()
        op_steps = [s for s in schedule.steps if s.kind == "op"]
        accounts = {s.op.account for s in op_steps}
        assert all(a and a.startswith("t") for a in accounts)
        assert len(accounts) > 1  # genuinely multi-tenant
        for step in op_steps:
            assert step.op.account == account_of(step.session)

    def test_schedule_round_trips_json(self):
        schedule = ScenarioExplorer(
            build_scenario("hotspot-read", tier="micro", seed=6)
        ).explore()
        from repro.dst.schedule import Schedule

        assert Schedule.loads(schedule.dumps()).dumps() == schedule.dumps()

    def test_embedded_config_parses_as_dst_config(self):
        schedule = ScenarioExplorer(
            build_scenario("burst-rush", tier="micro", seed=8)
        ).explore()
        cfg = DstConfig.from_json(schedule.config)
        assert cfg.middlewares == 3
        assert not cfg.check_model

    def test_storms_fan_out_and_rename(self):
        spec = build_scenario("sync-storm", tier="micro", seed=13)
        schedule = ScenarioExplorer(spec).explore()
        kinds = [s.op.kind for s in schedule.steps if s.kind == "op"]
        writes = [
            s.op
            for s in schedule.steps
            if s.kind == "op" and s.op.kind == "write"
        ]
        assert any(op.path.endswith(".part") for op in writes)
        assert "rename" in kinds
