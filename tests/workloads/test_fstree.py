"""Tests for synthetic tree generation and population."""

import pytest

from repro.core import H2CloudFS
from repro.simcloud import SparseData, SwiftCluster
from repro.workloads import (
    TreeSpec,
    chain_directories,
    flat_directory,
    generate,
    heavy_user,
    light_user,
    populate,
)


class TestGeneration:
    def test_deterministic(self):
        a = generate(TreeSpec(seed=5, target_files=100))
        b = generate(TreeSpec(seed=5, target_files=100))
        assert a.files == b.files
        assert a.dirs == b.dirs

    def test_different_seeds_differ(self):
        a = generate(TreeSpec(seed=1, target_files=100))
        b = generate(TreeSpec(seed=2, target_files=100))
        assert a.files != b.files

    def test_hits_file_budget(self):
        tree = generate(TreeSpec(seed=3, target_files=500))
        assert len(tree.files) == 500

    def test_every_file_parent_exists(self):
        tree = generate(TreeSpec(seed=4, target_files=300))
        dir_set = set(tree.dirs) | {"/"}
        for f in tree.files:
            parent = f.path.rsplit("/", 1)[0] or "/"
            assert parent in dir_set

    def test_dirs_listed_parent_first(self):
        """populate() mkdirs in order, so parents must precede children."""
        tree = generate(heavy_user(9))
        seen = {"/"}
        for d in tree.dirs:
            parent = d.rsplit("/", 1)[0] or "/"
            assert parent in seen, f"{d} before its parent"
            seen.add(d)

    def test_depth_bounded_by_spec(self):
        tree = generate(TreeSpec(seed=5, target_files=400, max_depth=3))
        assert all(d.count("/") <= 3 for d in tree.dirs)

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            TreeSpec(target_files=-1)
        with pytest.raises(ValueError):
            TreeSpec(max_depth=0)


class TestPaperShapes:
    def test_light_user_matches_paper(self):
        """Light: several shallow directories, hundreds of files."""
        tree = generate(light_user(1))
        assert 100 <= len(tree.files) <= 500
        assert tree.max_depth <= 5

    def test_heavy_user_matches_paper(self):
        """Heavy: thousands of dirs, deep paths (paper: depth > 20)."""
        tree = generate(heavy_user(1))
        assert len(tree.files) >= 2_000
        assert len(tree.dirs) >= 1_000
        assert tree.max_depth > 20

    def test_empty_folders_occur(self):
        """Paper: files per directory range from zero..."""
        tree = generate(heavy_user(2))
        per_dir = tree.files_per_dir()
        assert any(count == 0 for count in per_dir.values())

    def test_depth_histogram_covers_range(self):
        tree = generate(heavy_user(3))
        histogram = tree.depth_histogram()
        assert min(histogram) <= 3
        assert max(histogram) >= 15


class TestHelpers:
    def test_flat_directory(self):
        tree = flat_directory(50, file_size=1000)
        assert tree.dirs == ["/dir"]
        assert len(tree.files) == 50
        assert all(f.size == 1000 for f in tree.files)

    def test_chain_directories(self):
        assert chain_directories(3) == ["/d1", "/d1/d2", "/d1/d2/d3"]
        assert chain_directories(0) == []


class TestPopulate:
    def test_populate_h2(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        tree = generate(TreeSpec(seed=6, target_files=60))
        populate(fs, tree)
        dirs, files = fs.tree_size()
        assert files == 60
        assert dirs == len(tree.dirs)

    def test_sparse_payloads_store_no_bytes(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        tree = flat_directory(5, file_size=100 * 1024 * 1024)  # 500 MB tree
        populate(fs, tree, sparse=True)
        record = fs.read("/dir/file000000")
        assert isinstance(record, SparseData)
        assert len(record) == 100 * 1024 * 1024

    def test_sparse_sizes_drive_costs(self):
        cluster = SwiftCluster.rack_scale()
        fs = H2CloudFS(cluster, account="alice")
        fs.mkdir("/d")
        from repro.simcloud import payload_of

        _, small = fs.clock.measure(
            lambda: fs.write("/d/small", payload_of(1_000, tag="s"))
        )
        _, big = fs.clock.measure(
            lambda: fs.write("/d/big", payload_of(100_000_000, tag="b"))
        )
        assert big > small * 10

    def test_real_payloads_when_not_sparse(self):
        fs = H2CloudFS(SwiftCluster.fast(), account="alice")
        tree = flat_directory(3, file_size=128)
        populate(fs, tree, sparse=False)
        data = fs.read("/dir/file000000")
        assert isinstance(data, bytes)
        assert len(data) == 128
