"""``python -m repro dst``: exit codes and wiring."""

import json

from repro.dst import DstConfig, ScheduleExplorer
from repro.dst.cli import main as dst_main, sweep_config
from repro.dst.corpus import corpus_entry
from repro.dst.runner import run_schedule


class TestRunAndSweep:
    def test_run_clean_seed_exits_zero(self, capsys):
        assert dst_main(["run", "--seed", "0", "--sessions", "2", "--ops", "8"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_sweep_exits_zero_when_all_seeds_pass(self, capsys):
        assert dst_main(["sweep", "--seeds", "4", "--sessions", "2", "--ops", "6"]) == 0
        assert "0 failing" in capsys.readouterr().out

    def test_sweep_config_alternates_fault_profiles(self):
        assert sweep_config(0).crash_rate == 0.0
        assert sweep_config(1).crash_rate > 0.0
        assert sweep_config(0).check_model

    def test_unknown_subcommand_is_a_usage_error(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            dst_main(["frobnicate"])
        capsys.readouterr()


class TestReplay:
    def _small_schedule(self):
        return ScheduleExplorer(
            0, DstConfig(sessions=2, ops_per_session=6)
        ).explore()

    def test_replay_bare_schedule(self, tmp_path, capsys):
        schedule = self._small_schedule()
        path = tmp_path / "schedule.json"
        path.write_text(schedule.dumps(), encoding="utf-8")
        assert dst_main(["replay", str(path)]) == 0
        capsys.readouterr()

    def test_replay_detects_digest_divergence(self, tmp_path, capsys):
        schedule = self._small_schedule()
        result = run_schedule(schedule)
        doc = corpus_entry(result)
        doc["digest"] = "0" * 64  # claim a different recording
        doc["violations"] = [{"check": "V1", "detail": "fabricated"}]
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert dst_main(["replay", str(path)]) == 2
        assert "DIVERGED" in capsys.readouterr().out

    def test_replay_reproduces_a_faithful_recording(self, tmp_path, capsys):
        schedule = self._small_schedule()
        result = run_schedule(schedule)
        path = tmp_path / "case.json"
        path.write_text(json.dumps(corpus_entry(result)), encoding="utf-8")
        assert dst_main(["replay", str(path)]) == 0
        assert "reproduced" in capsys.readouterr().out
