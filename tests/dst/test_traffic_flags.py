"""DST coverage for the traffic-reduction flags (PR 5).

The nightly sweep runs hundreds of seeds with ``--traffic``; these are
the fast PR-tier slices of that: the oracle stays green with the whole
layer on, the ``flush_groups`` step round-trips, and the flag plumbing
(CLI -> DstConfig -> H2Config) is intact.
"""

from repro.dst.cli import sweep_config
from repro.dst.explorer import (
    DstConfig,
    ScheduleExplorer,
    faulty_config,
    with_traffic_flags,
)
from repro.dst.runner import run_schedule, run_seed
from repro.dst.schedule import Schedule, Step


class TestFlagsOnRuns:
    def test_clean_seed_passes_with_traffic_flags(self):
        config = with_traffic_flags(DstConfig(sessions=2, ops_per_session=10))
        result = run_seed(3, config)
        assert result.ok, [v.detail for v in result.violations]
        assert result.model_checked

    def test_faulty_seed_passes_with_traffic_flags(self):
        config = with_traffic_flags(
            faulty_config(sessions=2, ops_per_session=10)
        )
        result = run_seed(7, config)
        assert result.ok, [v.detail for v in result.violations]

    def test_flags_on_schedules_contain_flush_steps(self):
        config = with_traffic_flags(DstConfig(sessions=2, ops_per_session=25))
        schedule = ScheduleExplorer(1, config).explore()
        kinds = {step.kind for step in schedule.steps}
        assert "flush_groups" in kinds

    def test_flags_off_schedules_do_not(self):
        schedule = ScheduleExplorer(
            1, DstConfig(sessions=2, ops_per_session=25)
        ).explore()
        assert all(s.kind != "flush_groups" for s in schedule.steps)


class TestFlushGroupsStep:
    def test_step_is_replayable_and_deterministic(self):
        config = with_traffic_flags(DstConfig(sessions=2, ops_per_session=8))
        schedule = ScheduleExplorer(11, config).explore()
        first = run_schedule(schedule)
        second = run_schedule(Schedule.loads(schedule.dumps()))
        assert first.digest == second.digest

    def test_flushed_group_leaves_nothing_for_the_next_flush(self):
        config = with_traffic_flags(DstConfig(sessions=1, ops_per_session=1))
        schedule = ScheduleExplorer(0, config).explore()
        schedule.steps.append(Step("flush_groups", args={"mw": 0}))
        schedule.steps.append(Step("flush_groups", args={"mw": 0}))
        result = run_schedule(schedule)
        assert result.outcomes[-1] == "flushed:0"  # second flush: no-op


class TestSweepPlumbing:
    def test_sweep_config_layers_traffic_flags(self):
        config = sweep_config(seed=4, traffic=True)
        assert config.negative_cache
        assert config.group_commit
        assert config.gossip_digests
        assert config.memoize_serialization
        assert config.flush_rate > 0

    def test_sweep_config_default_is_flags_off(self):
        config = sweep_config(seed=4)
        assert not config.negative_cache
        assert not config.group_commit
        assert config.flush_rate == 0.0

    def test_traffic_layers_over_the_faulty_mix(self):
        config = sweep_config(seed=5, traffic=True)  # odd seed: faulty
        assert config.crash_rate > 0  # the base mix survives layering
        assert config.group_commit
