"""Schedules and their explorer: deterministic, serialisable, honest."""

import pytest

from repro.dst import ClientOp, DstConfig, Schedule, ScheduleExplorer, Step
from repro.dst.explorer import faulty_config, interleave_sessions


class TestStepAndSchedule:
    def test_unknown_step_kind_rejected(self):
        with pytest.raises(ValueError):
            Step("reboot")

    def test_op_step_requires_an_op(self):
        with pytest.raises(ValueError):
            Step("op", session=0)

    def test_json_round_trip_with_unicode_ops(self):
        schedule = Schedule(
            seed=9,
            config=DstConfig().to_json(),
            steps=[
                Step("op", session=0, op=ClientOp("write", "/s0/日本語", tag=3)),
                Step("crash", args={"node": 2, "delay_us": 0}),
                Step("advance", args={"delta_us": 1000}),
            ],
            tweak="tests.dst.tweaks:drop_tombstones_on_store",
        )
        assert Schedule.loads(schedule.dumps()) == schedule

    def test_subset_preserves_order_and_config(self):
        schedule = Schedule(
            seed=1,
            config=DstConfig().to_json(),
            steps=[Step("advance", args={"delta_us": i}) for i in range(6)],
        )
        sub = schedule.subset([0, 3, 5])
        assert [s.args["delta_us"] for s in sub.steps] == [0, 3, 5]
        assert sub.seed == schedule.seed and sub.config == schedule.config


class TestExplorer:
    def test_same_seed_same_schedule(self):
        cfg = faulty_config()
        assert (
            ScheduleExplorer(13, cfg).explore().to_json()
            == ScheduleExplorer(13, cfg).explore().to_json()
        )

    def test_all_ops_are_scheduled_exactly_once(self):
        cfg = DstConfig(sessions=3, ops_per_session=20)
        schedule = ScheduleExplorer(5, cfg).explore()
        assert schedule.op_count() == 3 * 20
        per_session = {}
        for step in schedule.steps:
            if step.kind == "op":
                per_session.setdefault(step.session, []).append(step.op)
        from repro.dst import OpGenerator

        assert per_session == {
            k: stream
            for k, stream in enumerate(OpGenerator(5).streams(3, 20))
        }

    def test_faulty_schedules_contain_fault_machinery(self):
        cfg = faulty_config(ops_per_session=50)
        kinds = {s.kind for s in ScheduleExplorer(19, cfg).explore().steps}
        assert {"crash", "recover", "storm_on", "storm_off"} <= kinds

    def test_every_crash_gets_a_recover(self):
        cfg = faulty_config(ops_per_session=60)
        for seed in range(6):
            steps = ScheduleExplorer(seed, cfg).explore().steps
            crashes = sum(1 for s in steps if s.kind == "crash")
            recovers = sum(1 for s in steps if s.kind == "recover")
            assert recovers >= crashes

    def test_max_down_never_exceeded(self):
        cfg = faulty_config(ops_per_session=80, crash_rate=0.3)
        down = 0
        for step in ScheduleExplorer(23, cfg).explore().steps:
            if step.kind == "crash":
                down += 1
            elif step.kind == "recover":
                down -= 1
            assert down <= cfg.max_down

    def test_crash_targets_are_real_node_ids(self):
        cfg = faulty_config(ops_per_session=80, crash_rate=0.3)
        for seed in range(4):
            for step in ScheduleExplorer(seed, cfg).explore().steps:
                if step.kind == "crash":
                    assert 1 <= step.args["node"] <= cfg.storage_nodes


class TestInterleave:
    def test_per_session_order_is_preserved(self):
        ops = [
            [ClientOp("write", "/s0/a", tag=1), ClientOp("delete", "/s0/a")],
            [ClientOp("mkdir", "/s1/d"), ClientOp("write", "/s1/d/f", tag=2)],
        ]
        for seed in range(8):
            schedule = interleave_sessions(ops, seed)
            seen = {0: [], 1: []}
            for step in schedule.steps:
                if step.kind == "op":
                    seen[step.session].append(step.op)
            assert seen[0] == ops[0] and seen[1] == ops[1]

    def test_interleavings_vary_with_seed(self):
        ops = [
            [ClientOp("write", f"/s0/f{i}", tag=i) for i in range(5)],
            [ClientOp("write", f"/s1/f{i}", tag=i) for i in range(5)],
        ]
        orders = {
            tuple(
                (s.session, s.op.path)
                for s in interleave_sessions(ops, seed).steps
                if s.kind == "op"
            )
            for seed in range(10)
        }
        assert len(orders) > 1

    def test_session_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            interleave_sessions([[]], 0, DstConfig(sessions=3))
