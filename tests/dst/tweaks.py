"""Test-only bug injections for the DST harness.

A schedule's ``tweak`` field names a ``module:function`` hook the
runner applies to the freshly built deployment before executing any
step.  The functions here deliberately break a protocol invariant so
the shrinker and the corpus round-trip can be demonstrated against a
*known* bug without shipping broken code in ``src/``.

They are addressed as ``tests.dst.tweaks:<name>``, which resolves both
under pytest and from ``python -m repro dst replay`` run at the repo
root.
"""

from __future__ import annotations


def drop_tombstones_on_store(fs) -> None:
    """Persist rings compacted: deletion tombstones never hit the store.

    This resurrects the classic CRDT mistake of treating tombstones as
    garbage too early: a peer that still holds the pre-delete child as
    *live* re-contributes it on the next merge, and with the tombstone
    gone nothing outranks it -- deleted names come back to life.  The
    model-differential oracle (V1) and view convergence (V2) catch it.
    """
    for mw in fs.middlewares:
        original = mw.store_ring

        def buggy_store_ring(fd, _original=original):
            fd.ring = fd.ring.compacted()
            _original(fd)

        mw.store_ring = buggy_store_ring


def serve_unverified_reads(fs) -> None:
    """Disable checksum verification on the read path.

    Reintroduces the pre-integrity behaviour: the store serves whatever
    bytes the first reachable replica returns, so injected corruption
    flows straight to clients (and, via repair sources, to other
    replicas).  The model-differential read check and the V6 oracle
    catch it.
    """
    fs.store.verify_reads = False


def blind_compaction_write(fs) -> None:
    """Persist in-use compactions blindly instead of read-merge-write.

    Reintroduces the pre-PR 5 ``_compact_in_use`` write-back: the
    cached compacted ring is PUT as-is.  The compaction guards prove no
    rumor or dirty chain is in flight, but not that the cache ever
    *absorbed* everything the store holds -- after total message loss a
    peer's merged children live only in the stored ring, and the blind
    PUT durably erases them.  The model-differential oracle (V1) and
    the store/cache convergence checks catch the vanished entry.
    """
    for mw in fs.middlewares:

        def blind_write_back(fd, _mw=mw):
            _mw.store_ring(fd)

        mw._write_back_compacted = blind_write_back


def leak_handoff_releases(fs) -> None:
    """Handoffs never release the old epoch's replicas.

    Reintroduces the membership bug the V7 oracle exists to catch: the
    migration window copies every partition to its new owners but the
    finalize/quiesce release pass is a no-op, so the previous epoch's
    owners keep serving copies they no longer own.  Repair and GC never
    *remove* replicas, so nothing else notices -- only the post-quiesce
    holders-equal-owners check (V7 "double-owned") exposes the leak.
    """
    membership = fs.store.membership
    membership.release_stray_replicas = lambda: 0


def strand_hinted_copies_on_release(fs) -> None:
    """Membership release treats hinted fallback copies as strays.

    Reintroduces the partition x membership edge the hint-aware
    release fix closed: when an epoch transition finalizes mid-run,
    ``release_stray_replicas`` computes the responsible set from ring
    ownership alone -- blind to the hint store -- and deletes fallback
    copies parked by sloppy-quorum writes.  If the cut that forced the
    sloppy write also severed enough owners, the hinted copy was the
    only durable replica of an acknowledged write; after heal the
    drain finds nothing to deliver and the V8 oracle reports the acked
    write lost (or V1 the vanished bytes).
    """
    store = fs.store
    membership = store.membership
    original = membership.release_stray_replicas

    def blind_release():
        hints = store.hints
        store.hints = None
        try:
            return original()
        finally:
            store.hints = hints

    membership.release_stray_replicas = blind_release


def lose_merge_updates(fs) -> None:
    """Make every second merger write-back silently drop one child.

    A deterministic "lost update" fault in the merge path: the merged
    ring is persisted minus its lexicographically last live child on
    every other write-back.  Reads on the same middleware still see the
    cached (correct) ring, so only cross-middleware checks expose it.
    """
    for mw in fs.middlewares:
        original = mw.store_ring
        state = {"count": 0}

        def buggy_store_ring(fd, _original=original, _state=state):
            _state["count"] += 1
            if _state["count"] % 2 == 0:
                live = fd.ring.live_names()
                if live:
                    fd.ring = fd.ring.without(live[-1])
            _original(fd)

        mw.store_ring = buggy_store_ring
