"""Shrinking and the corpus: failing runs become small, replayable cases.

The centerpiece is the end-to-end demo the harness exists for: inject a
known bug (a test-only tweak, not shipped code), let the explorer find
a failing schedule, shrink it with ddmin to a handful of operations,
persist it to a corpus file, and replay it through the CLI -- verifying
the recorded digest reproduces bit-for-bit.
"""

import pytest

from repro.dst import DstConfig, ScheduleExplorer, run_schedule, shrink
from repro.dst import corpus as corpus_mod
from repro.dst.cli import main as dst_main

BUG = "tests.dst.tweaks:drop_tombstones_on_store"


def failing_schedule(seed: int = 2):
    schedule = ScheduleExplorer(
        seed, DstConfig(sessions=2, ops_per_session=12)
    ).explore()
    schedule.tweak = BUG
    return schedule


@pytest.fixture(scope="module")
def shrunk():
    """One shared ddmin pass (shrinking re-runs the schedule many times)."""
    schedule = failing_schedule()
    minimal, result, runs = shrink(schedule)
    return schedule, minimal, result, runs


class TestShrink:
    def test_passing_schedule_refuses_to_shrink(self):
        clean = ScheduleExplorer(0, DstConfig(sessions=2, ops_per_session=8)).explore()
        with pytest.raises(ValueError):
            shrink(clean)

    def test_shrinks_injected_bug_to_a_minimal_repro(self, shrunk):
        schedule, minimal, result, runs = shrunk
        assert not result.ok
        assert len(minimal) < len(schedule)
        # The acceptance bar: the demo bug reduces to a handful of ops.
        assert minimal.op_count() <= 10
        assert runs <= 400
        # The minimal schedule still fails on a fresh run, and the
        # tweak rides along so the repro is self-contained.
        assert minimal.tweak == BUG
        assert not run_schedule(minimal).ok

    def test_shrunk_repro_is_one_minimal(self, shrunk):
        """Dropping any single step from the shrunk schedule makes it
        pass: ddmin's 1-minimality, the 'no irrelevant steps' promise."""
        _, minimal, _, _ = shrunk
        for index in range(len(minimal)):
            keep = [i for i in range(len(minimal)) if i != index]
            sub = minimal.subset(keep)
            assert run_schedule(sub).ok, (
                f"step {index} ({minimal.steps[index].describe()}) "
                "is irrelevant to the failure"
            )


class TestCorpus:
    def test_save_load_round_trip(self, tmp_path):
        result = run_schedule(failing_schedule())
        path = corpus_mod.save_case(result, str(tmp_path))
        schedule, meta = corpus_mod.load_case(path)
        assert schedule.to_json() == result.schedule.to_json()
        assert meta["digest"] == result.digest
        assert meta["violations"]

    def test_load_accepts_bare_schedules(self, tmp_path):
        schedule = failing_schedule()
        path = tmp_path / "bare.json"
        path.write_text(schedule.dumps(), encoding="utf-8")
        loaded, meta = corpus_mod.load_case(str(path))
        assert loaded == schedule and meta == {}

    def test_load_rejects_junk(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(ValueError):
            corpus_mod.load_case(str(path))

    def test_corpus_cases_sorted(self, tmp_path):
        result = run_schedule(failing_schedule())
        corpus_mod.save_case(result, str(tmp_path))
        assert corpus_mod.corpus_cases(str(tmp_path)) == [
            str(tmp_path / corpus_mod.case_name(result))
        ]


class TestEndToEnd:
    def test_shrink_save_replay_round_trip(self, shrunk, tmp_path):
        """The full workflow: shrink -> corpus -> CLI replay reproduces."""
        _, _minimal, result, _ = shrunk
        path = corpus_mod.save_case(result, str(tmp_path))
        # Exit code 1: the case still fails (that's the point) but the
        # digest and verdict reproduced -- exit 2 would mean divergence.
        assert dst_main(["replay", path]) == 1

    def test_committed_corpus_cases_still_reproduce(self):
        """Every case checked into tests/dst_corpus/ must replay to its
        recorded digest -- the regression suite the corpus exists for."""
        for path in corpus_mod.corpus_cases():
            schedule, meta = corpus_mod.load_case(path)
            result = run_schedule(schedule)
            assert result.digest == meta["digest"], path
            assert bool(result.violations) == bool(meta["violations"]), path
