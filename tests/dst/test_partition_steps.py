"""DST coverage for network partitions + hinted handoff (V8).

The nightly partition-storm sweep runs hundreds of seeds with
``--partitions``; these are the fast PR-tier slices: the V1-V8 oracle
stays green with cuts woven in (alone and layered with every other
regime), partition/heal steps round-trip through JSON and replay
bit-identically, the flag plumbing is intact, and -- the digest-safety
satellite -- the per-link MessageLoss refactor and the armed-but-idle
partition plan leave every pre-partition corpus digest byte-identical.
"""

import json
import pathlib

from repro.dst.cli import sweep_config
from repro.dst.explorer import (
    DstConfig,
    ScheduleExplorer,
    corruption_config,
    faulty_config,
    with_membership_steps,
    with_partition_steps,
    with_traffic_flags,
)
from repro.dst.runner import run_schedule, run_seed
from repro.dst.schedule import Schedule, Step
from repro.simcloud.failures import MessageLoss

CORPUS = pathlib.Path(__file__).resolve().parents[1] / "dst_corpus"

PARTITION_KINDS = {"partition", "heal"}


def _cutty_seed(config: DstConfig, limit: int = 50) -> int:
    """First seed whose schedule actually opens a partition cut."""
    for seed in range(limit):
        schedule = ScheduleExplorer(seed, config).explore()
        if any(s.kind == "partition" for s in schedule.steps):
            return seed
    raise AssertionError("no seed produced a partition cut")


class TestPartitionRuns:
    def test_clean_seed_passes_with_partitions(self):
        config = with_partition_steps(
            DstConfig(sessions=2, ops_per_session=15)
        )
        result = run_seed(_cutty_seed(config), config)
        assert result.ok, [v.detail for v in result.violations]
        assert result.model_checked

    def test_faulty_seed_passes_with_partitions(self):
        config = with_partition_steps(
            faulty_config(sessions=2, ops_per_session=15)
        )
        result = run_seed(_cutty_seed(config), config)
        assert result.ok, [v.detail for v in result.violations]

    def test_corruption_seed_passes_with_partitions(self):
        config = with_partition_steps(
            corruption_config(sessions=2, ops_per_session=15)
        )
        result = run_seed(_cutty_seed(config), config)
        assert result.ok, [v.detail for v in result.violations]

    def test_partitions_layer_with_membership_churn(self):
        config = with_partition_steps(
            with_membership_steps(faulty_config(sessions=2, ops_per_session=12))
        )
        result = run_seed(_cutty_seed(config), config)
        assert result.ok, [v.detail for v in result.violations]

    def test_partitions_layer_with_traffic_flags(self):
        config = with_partition_steps(
            with_traffic_flags(faulty_config(sessions=2, ops_per_session=12))
        )
        result = run_seed(_cutty_seed(config), config)
        assert result.ok, [v.detail for v in result.violations]


class TestScheduleWeave:
    def test_partition_on_schedules_contain_cut_steps(self):
        config = with_partition_steps(DstConfig(sessions=3, ops_per_session=25))
        seed = _cutty_seed(config)
        kinds = {s.kind for s in ScheduleExplorer(seed, config).explore().steps}
        assert kinds & PARTITION_KINDS

    def test_partition_off_schedules_do_not(self):
        schedule = ScheduleExplorer(
            1, faulty_config(sessions=3, ops_per_session=25)
        ).explore()
        assert all(s.kind not in PARTITION_KINDS for s in schedule.steps)

    def test_every_cut_is_healed_by_the_tail(self):
        config = with_partition_steps(DstConfig(sessions=3, ops_per_session=40))
        for seed in range(10):
            schedule = ScheduleExplorer(seed, config).explore()
            opened = [
                s.args["cut"] for s in schedule.steps if s.kind == "partition"
            ]
            healed = [
                s.args["cut"] for s in schedule.steps if s.kind == "heal"
            ]
            assert sorted(opened) == sorted(healed)

    def test_cuts_target_a_minority_of_storage_nodes(self):
        config = with_partition_steps(DstConfig(sessions=3, ops_per_session=40))
        for seed in range(10):
            for step in ScheduleExplorer(seed, config).explore().steps:
                if step.kind == "partition":
                    assert 1 <= len(step.args["nodes"]) <= config.storage_nodes // 2

    def test_partition_knobs_leave_legacy_schedules_identical(self):
        """Rate-guard regression: knobs at 0 must not shift the rng."""
        before = ScheduleExplorer(
            9, faulty_config(sessions=2, ops_per_session=20)
        ).explore()
        again = ScheduleExplorer(
            9,
            faulty_config(
                sessions=2, ops_per_session=20, max_partitions=99
            ),
        ).explore()
        assert [s.to_json() for s in before.steps] == [
            s.to_json() for s in again.steps
        ]


class TestStepSemantics:
    def test_steps_round_trip_and_replay_bit_identically(self):
        config = with_partition_steps(
            faulty_config(sessions=2, ops_per_session=12)
        )
        schedule = ScheduleExplorer(_cutty_seed(config), config).explore()
        first = run_schedule(schedule)
        second = run_schedule(Schedule.loads(schedule.dumps()))
        assert first.digest == second.digest
        assert first.ok == second.ok

    def test_partition_and_heal_outcomes(self):
        config = with_partition_steps(DstConfig(sessions=1, ops_per_session=3))
        schedule = ScheduleExplorer(0, config).explore()
        schedule.steps.insert(
            0,
            Step(
                "partition",
                args={"cut": "t0", "mw": 0, "nodes": [1, 2], "mode": "both"},
            ),
        )
        schedule.steps.insert(1, Step("heal", args={"cut": "t0"}))
        result = run_schedule(schedule)
        assert result.outcomes[0] == "partition:t0:4"  # 2 nodes x 2 dirs
        assert result.outcomes[1] == "heal:t0:4"
        assert result.ok, [v.detail for v in result.violations]

    def test_heal_of_unknown_cut_is_a_noop(self):
        """Shrunk schedules may keep a heal whose partition step was
        deleted; it must replay as a deterministic no-op."""
        config = with_partition_steps(DstConfig(sessions=1, ops_per_session=3))
        schedule = ScheduleExplorer(0, config).explore()
        schedule.steps.insert(0, Step("heal", args={"cut": "never-opened"}))
        result = run_schedule(schedule)
        assert result.outcomes[0] == "heal:never-opened:0"
        assert result.ok

    def test_quiesce_heals_cuts_a_schedule_left_open(self):
        """A shrunk schedule may drop the heal; V8 still requires a
        whole network and an empty hint store, so quiesce must heal."""
        config = with_partition_steps(DstConfig(sessions=1, ops_per_session=5))
        schedule = ScheduleExplorer(0, config).explore()
        schedule.steps.insert(
            len(schedule.steps) // 2,
            Step(
                "partition",
                args={
                    "cut": "open-ended",
                    "mw": 0,
                    "nodes": [1, 2, 3],
                    "gossip": True,
                    "mode": "both",
                },
            ),
        )
        result = run_schedule(schedule)
        assert result.ok, [v.detail for v in result.violations]


class TestSweepPlumbing:
    def test_sweep_config_layers_partitions(self):
        config = sweep_config(seed=4, partitions=True)
        assert config.partition_rate > 0
        assert config.hinted_handoff

    def test_sweep_config_default_is_partitions_off(self):
        config = sweep_config(seed=4)
        assert config.partition_rate == 0.0
        assert not config.hinted_handoff

    def test_partitions_layer_over_every_mix(self):
        odd = sweep_config(seed=5, partitions=True)  # odd seed: faulty
        assert odd.crash_rate > 0 and odd.partition_rate > 0
        storm = sweep_config(seed=6, corruption=True, partitions=True)
        assert storm.bitrot_rate > 0 and storm.partition_rate > 0
        churn = sweep_config(seed=7, membership=True, partitions=True)
        assert churn.membership_rate > 0 and churn.partition_rate > 0


class TestDigestSafety:
    """The satellite pin: refactoring MessageLoss onto per-link streams
    and arming the (idle) partition plan must not move one bit of any
    pre-partition corpus digest."""

    def test_corpus_cases_still_reproduce_recorded_digests(self):
        cases = sorted(
            p
            for p in CORPUS.glob("seed*.json")
            if not p.name.endswith((".trace.json", ".critpath.json"))
        )
        assert cases, "corpus is empty?"
        for path in cases:
            doc = json.loads(path.read_text())
            result = run_schedule(Schedule.from_json(doc["schedule"]))
            assert result.digest == doc["digest"], path.name

    def test_per_link_off_matches_legacy_stream(self):
        """per_link=False (the default) must draw from the one shared
        stream even when link coordinates are supplied."""
        legacy = MessageLoss(0.4, seed=11)
        refactored = MessageLoss(0.4, seed=11)
        a = [legacy.should_drop() for _ in range(200)]
        b = [refactored.should_drop(src=1, dst=2) for _ in range(200)]
        assert a == b

    def test_per_link_streams_are_independent_per_link(self):
        loss = MessageLoss(0.4, seed=11, per_link=True)
        ab = [loss.should_drop(src=1, dst=2) for _ in range(50)]
        # Replaying the same link from scratch reproduces its stream
        # regardless of interleaved draws on other links.
        fresh = MessageLoss(0.4, seed=11, per_link=True)
        interleaved = []
        for _ in range(50):
            interleaved.append(fresh.should_drop(src=1, dst=2))
            fresh.should_drop(src=2, dst=1)
            fresh.should_drop(src=1, dst=3)
        assert ab == interleaved
