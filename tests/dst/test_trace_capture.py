"""DST trace capture: failing schedules ship with their span trace.

Tracing must be *passive*: re-running any schedule with
``capture_trace=True`` reproduces the exact digest of the untraced run
-- checked here against the committed known-failing corpus case, the
same path ``dst run/sweep/shrink --save-failures`` takes.
"""

import json
import os

from repro.dst import corpus as corpus_mod
from repro.dst.runner import run_schedule

KNOWN_FAILING = os.path.join(
    "tests", "dst_corpus", "seed2-a978d92008ac.json"
)


def load_known_failing():
    schedule, meta = corpus_mod.load_case(KNOWN_FAILING)
    assert meta["violations"], "fixture must be a failing case"
    return schedule, meta


class TestCaptureTrace:
    def test_traced_rerun_reproduces_the_digest(self):
        schedule, meta = load_known_failing()
        plain = run_schedule(schedule)
        traced = run_schedule(schedule, capture_trace=True)
        assert plain.digest == meta["digest"]
        assert traced.digest == plain.digest
        assert traced.violations == plain.violations

    def test_traced_run_carries_spans(self):
        schedule, _ = load_known_failing()
        traced = run_schedule(schedule, capture_trace=True)
        assert traced.tracer is not None
        names = {s.name for s in traced.tracer.finished_spans()}
        assert "patch.submit" in names

    def test_untraced_run_carries_no_tracer(self):
        schedule, _ = load_known_failing()
        assert run_schedule(schedule).tracer is None


class TestSaveTrace:
    def test_writes_chrome_trace_companion(self, tmp_path):
        schedule, _ = load_known_failing()
        traced = run_schedule(schedule, capture_trace=True)
        path = corpus_mod.save_trace(traced, str(tmp_path))
        assert path is not None and path.endswith(".trace.json")
        doc = json.loads(open(path, encoding="utf-8").read())
        assert doc["otherData"]["format"] == "h2cloud-trace-v1"
        assert doc["traceEvents"]

    def test_companion_is_not_a_corpus_case(self, tmp_path):
        schedule, _ = load_known_failing()
        traced = run_schedule(schedule, capture_trace=True)
        case_path = corpus_mod.save_case(traced, str(tmp_path))
        corpus_mod.save_trace(traced, str(tmp_path))
        corpus_mod.save_critpath(traced, str(tmp_path))
        assert corpus_mod.corpus_cases(str(tmp_path)) == [case_path]

    def test_none_without_a_tracer(self, tmp_path):
        schedule, _ = load_known_failing()
        result = run_schedule(schedule)
        assert corpus_mod.save_trace(result, str(tmp_path)) is None
        assert corpus_mod.save_critpath(result, str(tmp_path)) is None


class TestSaveCritpath:
    def test_writes_tail_attribution_companion(self, tmp_path):
        schedule, _ = load_known_failing()
        traced = run_schedule(schedule, capture_trace=True)
        path = corpus_mod.save_critpath(traced, str(tmp_path))
        assert path is not None and path.endswith(".critpath.json")
        doc = json.loads(open(path, encoding="utf-8").read())
        assert doc["format"] == "h2cloud-critpath-v1"
        assert doc["classes"], "failing run attributed no op classes"
        for entry in doc["classes"].values():
            if entry["count"]:
                assert entry["tail"]["dominant"] is not None
