"""DST coverage for elastic membership (PR 6).

The nightly rebalance-storm sweep runs hundreds of seeds with
``--membership``; these are the fast PR-tier slices: the V1-V7 oracle
stays green with churn woven in, the membership steps round-trip
through JSON and replay bit-identically, and the flag plumbing
(CLI -> DstConfig -> explorer weave) is intact.
"""

from repro.dst.cli import sweep_config
from repro.dst.explorer import (
    DstConfig,
    ScheduleExplorer,
    corruption_config,
    faulty_config,
    with_membership_steps,
    with_traffic_flags,
)
from repro.dst.runner import run_schedule, run_seed
from repro.dst.schedule import Schedule, Step

MEMBERSHIP_KINDS = {"add_node", "drain_node", "remove_node", "rebalance"}


def _churny_seed(config: DstConfig, limit: int = 50) -> int:
    """First seed whose schedule actually contains a transition step."""
    for seed in range(limit):
        schedule = ScheduleExplorer(seed, config).explore()
        if any(
            s.kind in ("add_node", "drain_node", "remove_node")
            for s in schedule.steps
        ):
            return seed
    raise AssertionError("no seed produced membership churn")


class TestChurnRuns:
    def test_clean_seed_passes_with_membership_churn(self):
        config = with_membership_steps(
            DstConfig(sessions=2, ops_per_session=15)
        )
        result = run_seed(_churny_seed(config), config)
        assert result.ok, [v.detail for v in result.violations]
        assert result.model_checked

    def test_faulty_seed_passes_with_membership_churn(self):
        config = with_membership_steps(
            faulty_config(sessions=2, ops_per_session=15)
        )
        result = run_seed(_churny_seed(config), config)
        assert result.ok, [v.detail for v in result.violations]

    def test_corruption_seed_passes_with_membership_churn(self):
        config = with_membership_steps(
            corruption_config(sessions=2, ops_per_session=15)
        )
        result = run_seed(_churny_seed(config), config)
        assert result.ok, [v.detail for v in result.violations]

    def test_traffic_and_membership_layer_together(self):
        config = with_membership_steps(
            with_traffic_flags(faulty_config(sessions=2, ops_per_session=12))
        )
        result = run_seed(_churny_seed(config), config)
        assert result.ok, [v.detail for v in result.violations]


class TestScheduleWeave:
    def test_churn_on_schedules_contain_membership_steps(self):
        config = with_membership_steps(
            DstConfig(sessions=3, ops_per_session=25)
        )
        seed = _churny_seed(config)
        kinds = {
            s.kind for s in ScheduleExplorer(seed, config).explore().steps
        }
        assert kinds & MEMBERSHIP_KINDS

    def test_churn_off_schedules_do_not(self):
        schedule = ScheduleExplorer(
            1, DstConfig(sessions=3, ops_per_session=25)
        ).explore()
        assert all(s.kind not in MEMBERSHIP_KINDS for s in schedule.steps)

    def test_transitions_capped_per_schedule(self):
        config = with_membership_steps(
            DstConfig(sessions=3, ops_per_session=60)
        )
        for seed in range(10):
            schedule = ScheduleExplorer(seed, config).explore()
            transitions = sum(
                1
                for s in schedule.steps
                if s.kind in ("add_node", "drain_node", "remove_node")
            )
            assert transitions <= config.max_membership

    def test_churn_knobs_leave_legacy_schedules_identical(self):
        """Rate-guard regression: knobs at 0 must not shift the rng."""
        before = ScheduleExplorer(
            9, DstConfig(sessions=2, ops_per_session=20)
        ).explore()
        again = ScheduleExplorer(
            9, DstConfig(sessions=2, ops_per_session=20, max_membership=99)
        ).explore()
        # The config itself serialises verbatim; the *step stream* is
        # what must not shift while the rates stay 0.
        assert [s.to_json() for s in before.steps] == [
            s.to_json() for s in again.steps
        ]


class TestStepSemantics:
    def test_steps_round_trip_and_replay_bit_identically(self):
        config = with_membership_steps(
            faulty_config(sessions=2, ops_per_session=12)
        )
        schedule = ScheduleExplorer(_churny_seed(config), config).explore()
        first = run_schedule(schedule)
        second = run_schedule(Schedule.loads(schedule.dumps()))
        assert first.digest == second.digest
        assert first.ok == second.ok

    def test_second_transition_reports_busy(self):
        config = DstConfig(sessions=1, ops_per_session=3)
        schedule = ScheduleExplorer(0, config).explore()
        schedule.steps.insert(0, Step("add_node"))
        schedule.steps.insert(1, Step("add_node"))
        result = run_schedule(schedule)
        outcomes = [o for o in result.outcomes if o.startswith(("add", "busy"))]
        assert outcomes[0].startswith("add:")
        assert outcomes[1] == "busy"
        assert result.ok, [v.detail for v in result.violations]

    def test_departure_of_unknown_node_reports_no_such_node(self):
        config = DstConfig(sessions=1, ops_per_session=3)
        schedule = ScheduleExplorer(0, config).explore()
        schedule.steps.insert(0, Step("drain_node", args={"node": 77}))
        result = run_schedule(schedule)
        assert "no_such_node" in result.outcomes
        assert result.ok

    def test_rebalance_without_a_window_is_idle(self):
        config = DstConfig(sessions=1, ops_per_session=3)
        schedule = ScheduleExplorer(0, config).explore()
        schedule.steps.insert(0, Step("rebalance", args={"max": 8}))
        result = run_schedule(schedule)
        assert "idle" in result.outcomes
        assert result.ok

    def test_quiesce_closes_windows_a_schedule_left_open(self):
        """A shrunk schedule may drop every rebalance step; the V7
        oracle still requires a closed window, so quiesce must drain."""
        config = DstConfig(sessions=1, ops_per_session=5)
        schedule = ScheduleExplorer(0, config).explore()
        schedule.steps.insert(len(schedule.steps) // 2, Step("add_node"))
        result = run_schedule(schedule)
        assert result.ok, [v.detail for v in result.violations]


class TestSweepPlumbing:
    def test_sweep_config_layers_membership(self):
        config = sweep_config(seed=4, membership=True)
        assert config.membership_rate > 0
        assert config.rebalance_rate > 0

    def test_sweep_config_default_is_churn_off(self):
        config = sweep_config(seed=4)
        assert config.membership_rate == 0.0
        assert config.rebalance_rate == 0.0

    def test_membership_layers_over_faulty_and_corruption(self):
        odd = sweep_config(seed=5, membership=True)  # odd seed: faulty
        assert odd.crash_rate > 0 and odd.membership_rate > 0
        storm = sweep_config(seed=6, corruption=True, membership=True)
        assert storm.bitrot_rate > 0 and storm.membership_rate > 0
