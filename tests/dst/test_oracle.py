"""The invariant oracle: catches exactly the right divergences."""

from repro.core import H2CloudFS, H2Config
from repro.dst import check_invariants
from repro.dst.oracle import snapshot_via
from repro.simcloud import SwiftCluster
from repro.testing import ModelFS, snapshot_of


def small_fs(middlewares: int = 2) -> H2CloudFS:
    return H2CloudFS(
        SwiftCluster.fast(),
        account="dst",
        middlewares=middlewares,
        config=H2Config(auto_merge=False),
    )


def populated(fs: H2CloudFS) -> ModelFS:
    model = ModelFS()
    for op in (
        ("mkdir", "/d"),
        ("write", "/d/f", b"one"),
        ("write", "/g", b"two"),
    ):
        getattr(fs, op[0])(*op[1:])
        getattr(model, op[0])(*op[1:])
        fs.pump()  # round-robin dispatch: converge before the next op
    return model


class TestCleanDeployment:
    def test_quiesced_fs_passes_all_checks(self):
        fs = small_fs()
        model = populated(fs)
        assert check_invariants(fs, model) == []

    def test_snapshot_via_matches_snapshot_of(self):
        fs = small_fs()
        populated(fs)
        for mw in fs.middlewares:
            assert snapshot_via(mw, "dst") == snapshot_of(fs)


class TestDetection:
    def test_v1_model_divergence(self):
        fs = small_fs()
        model = populated(fs)
        model.write("/only-in-model", b"x")
        violations = check_invariants(fs, model)
        assert [v.check for v in violations] == ["V1"]
        assert "/only-in-model" in violations[0].detail

    def test_v2_view_divergence(self):
        fs = small_fs()
        populated(fs)
        # One middleware mutates without merging or gossiping: its peers
        # cannot have seen the update, so the views must differ.
        fs.middlewares[0].write_file("dst", "/fresh", b"unmerged")
        while fs.middlewares[0].merger.step():
            pass
        checks = {v.check for v in check_invariants(fs)}
        assert "V2" in checks

    def test_v5_replica_divergence(self):
        fs = small_fs(middlewares=1)
        populated(fs)
        # Corrupt one replica of one object behind the store's back.
        store = fs.store
        name = next(n for n in sorted(store.names()) if n.startswith("f:"))
        node_id = store.ring.nodes_for(name)[0]
        record = store.nodes[node_id].peek(name)
        import dataclasses

        store.nodes[node_id].write(
            dataclasses.replace(record, data=b"corrupt", etag="bogus")
        )
        checks = {v.check for v in check_invariants(fs)}
        assert "V5" in checks

    def test_model_none_skips_v1_only(self):
        fs = small_fs()
        model = populated(fs)
        model.write("/only-in-model", b"x")
        assert check_invariants(fs, None) == []
