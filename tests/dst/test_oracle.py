"""The invariant oracle: catches exactly the right divergences."""

from repro.core import H2CloudFS, H2Config
from repro.dst import check_invariants
from repro.dst.oracle import snapshot_via
from repro.simcloud import SwiftCluster
from repro.testing import ModelFS, snapshot_of


def small_fs(middlewares: int = 2) -> H2CloudFS:
    return H2CloudFS(
        SwiftCluster.fast(),
        account="dst",
        middlewares=middlewares,
        config=H2Config(auto_merge=False),
    )


def populated(fs: H2CloudFS) -> ModelFS:
    model = ModelFS()
    for op in (
        ("mkdir", "/d"),
        ("write", "/d/f", b"one"),
        ("write", "/g", b"two"),
    ):
        getattr(fs, op[0])(*op[1:])
        getattr(model, op[0])(*op[1:])
        fs.pump()  # round-robin dispatch: converge before the next op
    return model


class TestCleanDeployment:
    def test_quiesced_fs_passes_all_checks(self):
        fs = small_fs()
        model = populated(fs)
        assert check_invariants(fs, model) == []

    def test_snapshot_via_matches_snapshot_of(self):
        fs = small_fs()
        populated(fs)
        for mw in fs.middlewares:
            assert snapshot_via(mw, "dst") == snapshot_of(fs)


class TestDetection:
    def test_v1_model_divergence(self):
        fs = small_fs()
        model = populated(fs)
        model.write("/only-in-model", b"x")
        violations = check_invariants(fs, model)
        assert [v.check for v in violations] == ["V1"]
        assert "/only-in-model" in violations[0].detail

    def test_v2_view_divergence(self):
        fs = small_fs()
        populated(fs)
        # One middleware mutates without merging or gossiping: its peers
        # cannot have seen the update, so the views must differ.
        fs.middlewares[0].write_file("dst", "/fresh", b"unmerged")
        while fs.middlewares[0].merger.step():
            pass
        checks = {v.check for v in check_invariants(fs)}
        assert "V2" in checks

    def test_v5_replica_divergence(self):
        fs = small_fs(middlewares=1)
        populated(fs)
        # Corrupt one replica of one object behind the store's back.
        # Verification off: with it on, the very reads the oracle's
        # snapshot makes would detect the rot and read-repair it away
        # (covered in tests/simcloud/test_corruption.py) -- V5 must
        # catch divergence even when the serving path is blind.
        store = fs.store
        store.verify_reads = False
        name = next(n for n in sorted(store.names()) if n.startswith("f:"))
        node_id = store.ring.nodes_for(name)[0]
        record = store.nodes[node_id].peek(name)
        import dataclasses

        store.nodes[node_id].write(
            dataclasses.replace(record, data=b"corrupt", etag="bogus")
        )
        checks = {v.check for v in check_invariants(fs)}
        assert "V5" in checks

    def test_model_none_skips_v1_only(self):
        fs = small_fs()
        model = populated(fs)
        model.write("/only-in-model", b"x")
        assert check_invariants(fs, None) == []


def rot_one_replica(fs, prefix: str = "f:") -> str:
    """Silently corrupt one replica of one object; returns its name."""
    store = fs.store
    name = next(n for n in sorted(store.names()) if n.startswith(prefix))
    node_id = store.ring.nodes_for(name)[0]
    store.nodes[node_id].corrupt_object(name)
    return name


class TestV6UndetectedCorruption:
    def test_silent_rot_is_a_v6_violation(self):
        fs = small_fs(middlewares=1)
        model = populated(fs)
        # Blind the serving path so nothing detects/heals the rot: V6's
        # store-wide scan must still find it.
        fs.store.verify_reads = False
        name = rot_one_replica(fs)
        violations = check_invariants(fs, model)
        v6 = [v for v in violations if v.check == "V6"]
        assert v6 and any(name in v.detail for v in v6)

    def test_verified_reads_heal_before_v6_fires(self):
        # With the read path live, the oracle's own snapshot reads
        # detect the rot and read-repair it -- no violation survives.
        fs = small_fs(middlewares=1)
        model = populated(fs)
        rot_one_replica(fs)
        assert check_invariants(fs, model) == []
        assert fs.store.resilience.read_repairs >= 1

    def test_reported_unrecoverable_is_legal(self):
        fs = small_fs(middlewares=1)
        populated(fs)
        store = fs.store
        # Rot a *garbage-exempt* object on every replica: a patch/file
        # object would V1-diverge, so use one the tree never reads.
        store.put("spare:cold", b"never read")
        for node_id in store.ring.nodes_for("spare:cold"):
            store.nodes[node_id].corrupt_object("spare:cold")
        violations = {v.check for v in check_invariants(fs)}
        assert "V6" in violations  # silent: nothing reported it yet
        store.scrub()  # the scrub reports it unrecoverable...
        assert "spare:cold" in store.unrecoverable
        violations = {v.check for v in check_invariants(fs)}
        assert "V6" not in violations  # ...which makes the rot *loud*
