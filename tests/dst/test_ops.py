"""The DST op generator: deterministic, serialisable, well-scoped."""

import pytest

from repro.core.namespace import InvalidPath, validate_name
from repro.dst import ClientOp, HOSTILE_NAMES, ILLEGAL_NAMES, OpGenerator, payload_for
from repro.dst.ops import SHARED_DIR, SHARED_POOL, session_root


class TestNamePools:
    def test_hostile_names_are_all_legal(self):
        for name in HOSTILE_NAMES:
            validate_name(name)  # must not raise

    def test_illegal_names_are_all_rejected(self):
        for name in ILLEGAL_NAMES:
            with pytest.raises(InvalidPath):
                validate_name(name)


class TestClientOp:
    def test_json_round_trip(self):
        ops = [
            ClientOp("write", "/s0/café", tag=7),
            ClientOp("move", "/s1/a", dest="/s1/b"),
            ClientOp("list", "/shared"),
        ]
        for op in ops:
            assert ClientOp.from_json(op.to_json()) == op

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ClientOp("chmod", "/f")

    def test_payload_is_deterministic_and_distinct_per_tag(self):
        a = ClientOp("write", "/s0/f", tag=1)
        b = ClientOp("write", "/s0/f", tag=2)
        assert payload_for(a) == payload_for(a)
        assert payload_for(a) != payload_for(b)


class TestOpGenerator:
    def test_same_seed_same_streams(self):
        first = OpGenerator(42).streams(3, 40)
        second = OpGenerator(42).streams(3, 40)
        assert first == second

    def test_different_seeds_differ(self):
        assert OpGenerator(1).streams(2, 30) != OpGenerator(2).streams(2, 30)

    def test_sessions_are_independent_prefixes(self):
        """Session k's stream does not depend on how many sessions run."""
        two = OpGenerator(7).streams(2, 25)
        three = OpGenerator(7).streams(3, 25)
        assert two[0] == three[0]
        assert two[1] == three[1]

    def test_ops_stay_inside_the_session_territory(self):
        """Every path is in the own subtree, the shared pool, or a
        session-minted root entry -- sessions never touch each other's
        subtrees, which is what makes own-subtree reads checkable."""
        for session, stream in enumerate(OpGenerator(3).streams(3, 120)):
            own = session_root(session)
            for op in stream:
                for path in filter(None, [op.path, op.dest]):
                    assert (
                        path == own
                        or path.startswith(own + "/")
                        or path in SHARED_POOL
                        or path == SHARED_DIR
                        or path.startswith(f"/x{session}-")
                    ), (session, op)

    def test_hostile_names_show_up(self):
        streams = OpGenerator(5, hostile_name_rate=0.9).streams(2, 60)
        names = {
            seg
            for stream in streams
            for op in stream
            for seg in op.path.split("/")[1:]
        }
        assert any(
            any(seg.startswith(h) for h in HOSTILE_NAMES) for seg in names
        )

    def test_generated_names_are_legal(self):
        for stream in OpGenerator(11, hostile_name_rate=1.0).streams(3, 80):
            for op in stream:
                for path in filter(None, [op.path, op.dest]):
                    for seg in path.split("/")[1:]:
                        validate_name(seg)
