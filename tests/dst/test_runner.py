"""The deterministic runner: bit-reproducible, invariant-clean runs."""

import pytest

from repro.dst import DstConfig, ScheduleExplorer, faulty_config, run_schedule, run_seed
from repro.dst.cli import sweep_config
from repro.dst.runner import resolve_tweak
from repro.dst.schedule import Schedule
from repro.testing import snapshot_of

SMALL = dict(sessions=2, ops_per_session=12)


class TestDeterminism:
    def test_same_seed_identical_digest_clean(self):
        a = run_seed(4, DstConfig(**SMALL))
        b = run_seed(4, DstConfig(**SMALL))
        assert a.digest == b.digest
        assert a.tree_hash == b.tree_hash
        assert a.outcomes == b.outcomes

    def test_same_seed_identical_digest_faulty(self):
        cfg = faulty_config(**SMALL)
        a = run_seed(7, cfg)
        b = run_seed(7, cfg)
        assert a.digest == b.digest
        assert a.makespan_us == b.makespan_us

    def test_serialised_schedule_replays_identically(self):
        schedule = ScheduleExplorer(3, faulty_config(**SMALL)).explore()
        direct = run_schedule(schedule)
        replayed = run_schedule(Schedule.loads(schedule.dumps()))
        assert replayed.digest == direct.digest

    def test_different_seeds_diverge(self):
        cfg = DstConfig(**SMALL)
        assert run_seed(1, cfg).digest != run_seed(2, cfg).digest


class TestInvariants:
    def test_clean_runs_check_the_model(self):
        result = run_seed(0, DstConfig(**SMALL))
        assert result.ok, [str(v) for v in result.violations]
        assert result.model_checked
        assert result.counters["ops"] == 2 * 12

    def test_smoke_sweep_is_violation_free(self):
        """The tier-1 slice of the nightly 200-seed sweep."""
        for seed in range(12):
            result = run_seed(seed, sweep_config(seed, sessions=2, ops=10))
            assert result.ok, (seed, [str(v) for v in result.violations])

    def test_faulty_runs_quiesce_to_full_health(self):
        result = run_schedule(
            ScheduleExplorer(9, faulty_config(**SMALL)).explore(), keep_fs=True
        )
        assert result.ok, [str(v) for v in result.violations]
        assert all(not n.is_down for n in result.fs.store.nodes.values())

    def test_final_tree_matches_tree_hash(self):
        from repro.testing.model import tree_hash

        result = run_seed(6, DstConfig(**SMALL))
        rerun = run_schedule(
            ScheduleExplorer(6, DstConfig(**SMALL)).explore(), keep_fs=True
        )
        assert tree_hash(snapshot_of(rerun.fs)) == result.tree_hash


class TestTweaks:
    def test_resolve_tweak_rejects_malformed_specs(self):
        with pytest.raises(ValueError):
            resolve_tweak("no-colon-here")

    def test_injected_bug_is_caught_by_the_oracle(self):
        schedule = ScheduleExplorer(2, DstConfig(**SMALL)).explore()
        schedule.tweak = "tests.dst.tweaks:drop_tombstones_on_store"
        result = run_schedule(schedule)
        assert not result.ok
        assert {v.check for v in result.violations} & {"V1", "V2", "read"}

    def test_tweaked_runs_are_still_deterministic(self):
        schedule = ScheduleExplorer(2, DstConfig(**SMALL)).explore()
        schedule.tweak = "tests.dst.tweaks:drop_tombstones_on_store"
        assert run_schedule(schedule).digest == run_schedule(schedule).digest
