"""Acceptance: one client session yields one stitched span tree.

The ISSUE's end-to-end criterion: a single MKDIR + PUT + MOVE session
on a traced two-middleware deployment must produce an exportable trace
showing the lookup hops, the submitted patches, the merge at the
owning node, and the gossip delivery applying the update on a *peer*
middleware -- all causally linked under the originating operation.
"""

from repro.core import H2CloudFS
from repro.core.middleware import H2Config
from repro.simcloud import SwiftCluster


def by_name(tracer):
    grouped = {}
    for span in tracer.finished_spans():
        grouped.setdefault(span.name, []).append(span)
    return grouped


def traced_session(**kwargs):
    fs = H2CloudFS(
        SwiftCluster.rack_scale(), account="acc", middlewares=2,
        tracing=True, **kwargs,
    )
    fs.mkdir("/photos")
    fs.write("/photos/cat.jpg", b"meow" * 64)
    fs.move("/photos/cat.jpg", "/photos/kitten.jpg")
    fs.pump()
    return fs


class TestSessionTrace:
    def test_mkdir_patch_merges_under_the_op(self):
        fs = traced_session()
        spans = by_name(fs.tracer)
        (mkdir,) = spans["op.mkdir"]
        submits = [s for s in spans["patch.submit"] if s.parent_id == mkdir.span_id]
        assert len(submits) == 1 and submits[0].trace_id == mkdir.trace_id
        merges = [
            s for s in spans["merge.apply"] if s.parent_id == submits[0].span_id
        ]
        assert len(merges) == 1
        assert merges[0].tags["node"] == mkdir.tags["node"]

    def test_write_records_lookup_hops(self):
        fs = traced_session()
        spans = by_name(fs.tracer)
        (write,) = spans["op.write"]
        hops = [s for s in spans["lookup.hop"] if s.trace_id == write.trace_id]
        assert hops, "resolving /photos/cat.jpg must record a hop span"
        assert hops[0].parent_id == write.span_id
        assert hops[0].tags["name"] == "photos"
        assert hops[0].tags["depth"] == 0

    def test_move_trace_crosses_to_the_peer_via_gossip(self):
        fs = traced_session()
        spans = by_name(fs.tracer)
        (move,) = spans["op.move"]
        same_trace = [
            s for s in fs.tracer.finished_spans() if s.trace_id == move.trace_id
        ]
        names = {s.name for s in same_trace}
        assert {"op.move", "lookup.hop", "patch.submit", "merge.apply"} <= names
        applies = [s for s in same_trace if s.name == "gossip.apply"]
        assert applies, "the move's update must reach the peer inside the trace"
        assert any(s.tags["node"] != move.tags["node"] for s in applies)

    def test_anti_entropy_rounds_are_traced(self):
        fs = traced_session()
        spans = by_name(fs.tracer)
        assert spans["gossip.anti_entropy"], "pump() runs anti-entropy rounds"

    def test_trace_survives_chrome_export(self):
        from repro.obs.export import chrome_trace

        fs = traced_session()
        doc = chrome_trace(fs.tracer)
        names = {e["name"] for e in doc["traceEvents"]}
        for required in ("op.mkdir", "op.write", "op.move",
                        "lookup.hop", "patch.submit", "merge.apply"):
            assert required in names


class TestBackgroundMergeLinkage:
    def test_deferred_merge_links_to_originating_op(self):
        """With auto-merge off the merge runs later, from an empty span
        stack -- it must still join the trace of the patch's op via the
        context carried on the patch itself."""
        fs = H2CloudFS(
            SwiftCluster.rack_scale(), account="acc",
            config=H2Config(auto_merge=False), tracing=True,
        )
        fs.mkdir("/d")
        spans = by_name(fs.tracer)
        (mkdir,) = spans["op.mkdir"]
        assert "merge.apply" not in spans
        fs.middlewares[0].merger.run_once()
        spans = by_name(fs.tracer)
        merges = [
            s for s in spans["merge.apply"] if s.trace_id == mkdir.trace_id
        ]
        assert merges, "background merge must continue the op's trace"
        assert merges[0].parent_id is not None


class TestUntracedBaseline:
    def test_tracing_off_records_nothing(self):
        fs = H2CloudFS(SwiftCluster.rack_scale(), account="acc", middlewares=2)
        fs.mkdir("/d")
        fs.write("/d/f", b"x")
        fs.pump()
        assert fs.tracer.noop
        assert fs.tracer.spans == ()
