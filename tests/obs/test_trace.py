"""Unit tests for the passive causal tracer."""

import pytest

from repro.obs.trace import NULL_TRACER, NullTracer, TraceContext, Tracer


class FakeClock:
    def __init__(self):
        self.now_us = 0

    def advance(self, us):
        self.now_us += us


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


class TestSpans:
    def test_nesting_builds_one_trace(self, tracer, clock):
        with tracer.span("outer") as outer:
            clock.advance(10)
            with tracer.span("inner") as inner:
                clock.advance(5)
        assert outer.trace_id == inner.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.duration_us == 15
        assert inner.duration_us == 5
        assert tracer.finished_spans() == [outer, inner]

    def test_sibling_roots_get_fresh_traces(self, tracer):
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_explicit_parent_beats_stack(self, tracer):
        with tracer.span("op") as op:
            pass
        carried = op.context
        with tracer.span("unrelated"):
            with tracer.span("merge", parent=carried) as merge:
                pass
        assert merge.trace_id == op.trace_id
        assert merge.parent_id == op.span_id

    def test_current_returns_innermost_context(self, tracer):
        assert tracer.current() is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current() == TraceContext(
                    inner.trace_id, inner.span_id
                )
        assert tracer.current() is None

    def test_exception_tags_error_and_pops(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError("x")
        assert span.tags["error"] == "RuntimeError"
        assert span.end_us is not None
        assert tracer.current() is None

    def test_event_is_instant(self, tracer, clock):
        clock.advance(7)
        tracer.event("retry", tags={"attempt": 2})
        (span,) = tracer.finished_spans()
        assert span.name == "retry"
        assert span.duration_us == 0
        assert span.tags["attempt"] == 2

    def test_tags_are_copied(self, tracer):
        tags = {"k": 1}
        with tracer.span("s", tags=tags) as span:
            span.tag("extra", True)
        assert tags == {"k": 1}
        assert span.tags == {"k": 1, "extra": True}


class TestCapacity:
    def test_drops_past_cap_without_failing(self, clock):
        tracer = Tracer(clock, max_spans=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_clear_resets(self, tracer):
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.spans == []
        assert tracer.dropped == 0

    def test_cap_validation(self, clock):
        with pytest.raises(ValueError):
            Tracer(clock, max_spans=0)


class TestGrouping:
    def test_traces_groups_by_trace_id(self, tracer):
        with tracer.span("a") as a:
            with tracer.span("a.child") as child:
                pass
        with tracer.span("b") as b:
            pass
        grouped = tracer.traces()
        assert grouped[a.trace_id] == [a, child]
        assert grouped[b.trace_id] == [b]


class TestNullTracer:
    def test_everything_is_inert(self):
        null = NullTracer()
        with null.span("s", tags={"k": 1}) as span:
            span.tag("x", 1)
        null.event("e")
        assert null.current() is None
        assert null.spans == ()
        assert null.finished_spans() == []
        assert null.traces() == {}
        assert null.dropped == 0
        null.clear()

    def test_singleton_flags(self):
        assert NULL_TRACER.noop is True
        assert Tracer(FakeClock()).noop is False
