"""SLO rules: burn-rate math, episode semantics, stock ruleset."""

import pytest

from repro.obs.alerts import (
    DEFAULT_RULES,
    SloRule,
    alerts_json,
    burn_rate,
    evaluate_rules,
    format_alerts,
)


def window(t_us, rates=None, hist=None):
    return {
        "t_us": t_us,
        "span_us": 1_000,
        "fleet": {"rates": rates or {}},
        "hist": hist or {},
    }


def timeline(windows):
    return {"format": "h2cloud-timeline-v1", "windows": windows}


def latency_rule(**kw):
    defaults = dict(
        name="lat", kind="latency", hist="op.read", threshold_ms=100.0, windows=2
    )
    defaults.update(kw)
    return SloRule(**defaults)


def burn_rule(**kw):
    defaults = dict(
        name="burn",
        kind="burn_rate",
        bad=("op.*.errors",),
        good=("op.*.count",),
        budget=0.01,
        factor=2.0,
        short_windows=1,
        long_windows=3,
    )
    defaults.update(kw)
    return SloRule(**defaults)


class TestBurnRateMath:
    def test_basic(self):
        # 5% errors against a 1% budget burns 5x
        assert burn_rate(5, 95, 0.01) == pytest.approx(5.0)

    def test_no_traffic_is_zero(self):
        assert burn_rate(0, 0, 0.01) == 0.0

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            burn_rate(1, 1, 0)

    def test_monotone_in_bad(self):
        previous = -1.0
        for bad in range(0, 50, 5):
            current = burn_rate(bad, 100, 0.01)
            assert current >= previous
            previous = current


class TestRuleValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            SloRule(name="x", kind="spectral")

    def test_latency_windows_floor(self):
        with pytest.raises(ValueError):
            latency_rule(windows=0)

    def test_burn_window_ordering(self):
        with pytest.raises(ValueError):
            burn_rule(short_windows=4, long_windows=2)


class TestLatencyRule:
    def _hist(self, p99):
        return {"op.read": {"p99_ms": p99}}

    def test_needs_consecutive_windows(self):
        windows = [
            window(1_000, hist=self._hist(500)),  # over
            window(2_000, hist=self._hist(50)),  # recovers -> run resets
            window(3_000, hist=self._hist(500)),  # over again, run=1
        ]
        doc = evaluate_rules(timeline(windows), [latency_rule(windows=2)])
        assert doc["alerts"] == []

    def test_fires_once_per_episode(self):
        windows = [window(t, hist=self._hist(500)) for t in (1, 2, 3, 4, 5)]
        doc = evaluate_rules(timeline(windows), [latency_rule(windows=2)])
        assert len(doc["alerts"]) == 1
        alert = doc["alerts"][0]
        assert alert["t_us"] == 2  # first window completing the run
        assert alert["consecutive_windows"] == 2
        assert alert["value_ms"] == 500

    def test_refires_after_recovery(self):
        over, under = self._hist(500), self._hist(50)
        windows = [
            window(1, hist=over),
            window(2, hist=over),  # episode 1 fires
            window(3, hist=under),  # clears
            window(4, hist=over),
            window(5, hist=over),  # episode 2 fires
        ]
        doc = evaluate_rules(timeline(windows), [latency_rule(windows=2)])
        assert [a["t_us"] for a in doc["alerts"]] == [2, 5]

    def test_empty_hist_selector_takes_worst(self):
        hist = {"op.read": {"p99_ms": 10.0}, "op.write": {"p99_ms": 900.0}}
        windows = [window(1, hist=hist), window(2, hist=hist)]
        doc = evaluate_rules(timeline(windows), [latency_rule(hist="")])
        assert doc["alerts"][0]["value_ms"] == 900.0

    def test_missing_histogram_never_fires(self):
        windows = [window(t, hist={"op.write": {"p99_ms": 999.0}}) for t in (1, 2)]
        doc = evaluate_rules(timeline(windows), [latency_rule(hist="op.read")])
        assert doc["alerts"] == []


class TestBurnRateRule:
    def test_short_spike_gated_by_long_window(self):
        """One hot window: short avg burns, long avg does not -> quiet."""
        quiet = {"op.read.count": 100.0}
        windows = [
            window(1, rates=quiet),
            window(2, rates=quiet),
            window(3, rates={"op.read.count": 50.0, "op.read.errors": 50.0}),
        ]
        rule = burn_rule(budget=0.01, factor=10.0, long_windows=3)
        doc = evaluate_rules(timeline(windows), [rule])
        # window 3 alone: short burn 50x, long burn ~16.7x >= 10 would fire;
        # tighten the factor so the long window gates it out.
        rule = burn_rule(budget=0.01, factor=20.0, long_windows=3)
        doc = evaluate_rules(timeline(windows), [rule])
        assert doc["alerts"] == []

    def test_sustained_burn_fires_once(self):
        hot = {"op.read.count": 90.0, "op.read.errors": 10.0}  # 10x of 1%
        windows = [window(t, rates=hot) for t in (1, 2, 3, 4)]
        doc = evaluate_rules(timeline(windows), [burn_rule(factor=5.0)])
        assert len(doc["alerts"]) == 1
        alert = doc["alerts"][0]
        assert alert["t_us"] == 1
        assert alert["short_burn"] == pytest.approx(10.0)

    def test_glob_patterns_select_counters(self):
        rates = {
            "op.read.errors": 5.0,
            "op.write.errors": 5.0,
            "op.read.count": 90.0,
            "gossip.sends": 1_000.0,  # must not count as traffic
        }
        windows = [window(1, rates=rates)]
        doc = evaluate_rules(timeline(windows), [burn_rule(factor=2.0)])
        # bad=10, good=90 -> ratio 0.1 -> 10x of 1% budget
        assert doc["alerts"][0]["short_burn"] == pytest.approx(10.0)

    def test_no_traffic_is_silent(self):
        windows = [window(t) for t in (1, 2, 3)]
        doc = evaluate_rules(timeline(windows), [burn_rule()])
        assert doc["alerts"] == []


class TestEvaluateRules:
    def test_document_shape_and_ordering(self):
        hot = {"op.read.count": 50.0, "op.read.errors": 50.0}
        hist = {"op.read": {"p99_ms": 500.0}}
        windows = [window(t, rates=hot, hist=hist) for t in (1, 2, 3)]
        doc = evaluate_rules(
            timeline(windows),
            [latency_rule(windows=1), burn_rule(factor=2.0)],
        )
        assert doc["format"] == "h2cloud-alerts-v1"
        assert doc["rules"] == ["lat", "burn"]
        assert doc["windows_evaluated"] == 3
        times = [(a["t_us"], a["rule"]) for a in doc["alerts"]]
        assert times == sorted(times)

    def test_serialize_and_render(self):
        hist = {"op.read": {"p99_ms": 500.0}}
        windows = [window(t, hist=hist) for t in (1, 2)]
        doc = evaluate_rules(timeline(windows), [latency_rule()])
        assert alerts_json(doc).endswith("\n")
        text = format_alerts(doc)
        assert "1 firing" in text and "lat" in text

    def test_default_rules_quiet_on_healthy_traffic(self):
        """The stock ruleset stays silent over clean windows -- the
        nightly catalog gate depends on this."""
        healthy = {"op.read.count": 1_000.0}
        hist = {"op.read": {"p99_ms": 120.0}}
        windows = [window(t * 1_000, rates=healthy, hist=hist) for t in range(20)]
        doc = evaluate_rules(timeline(windows), DEFAULT_RULES)
        assert doc["alerts"] == []
        assert doc["rules"] == [
            "client-op-p99",
            "error-budget-burn",
            "degraded-serve-burn",
        ]
