"""Exporter formats: Prometheus text, JSON, Chrome trace events."""

import json

from repro.core import H2CloudFS
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    deployment_metrics,
    format_span_tree,
    metrics_json,
    prometheus_text,
    span_tree,
    write_chrome_trace,
)
from repro.obs.trace import Span, Tracer
from repro.simcloud import SwiftCluster


def small_fs(**kwargs):
    fs = H2CloudFS(SwiftCluster.rack_scale(), account="obs", **kwargs)
    fs.mkdir("/d")
    fs.write("/d/f", b"payload")
    fs.pump()
    return fs


class TestPrometheus:
    def test_exposition_shape(self):
        fs = small_fs(middlewares=2)
        text = prometheus_text(deployment_metrics(fs))
        lines = text.splitlines()
        assert text.endswith("\n")
        assert "# TYPE h2_fd_cache_hit_rate gauge" in lines
        assert any(
            line.startswith('h2_maintenance_patches_submitted{node="1"} ')
            for line in lines
        )
        # every family header precedes its samples, one label per node
        assert 'h2_clock_now_ms{node="2"}' in text

    def test_sanitises_metric_names(self):
        text = prometheus_text({"n": {"op.read.p99_ms": 1.5}})
        assert "h2_op_read_p99_ms" in text

    def test_empty(self):
        assert prometheus_text({}) == ""


class TestMetricsJson:
    def test_document_shape(self):
        fs = small_fs()
        doc = metrics_json(fs)
        assert doc["format"] == "h2cloud-metrics-v1"
        assert doc["sim_now_ms"] == fs.clock.now_ms
        node = doc["nodes"][str(fs.middlewares[0].node_id)]
        assert node["maintenance.patches_submitted"] >= 2
        json.dumps(doc)  # must be JSON-serialisable as-is


class TestChromeTrace:
    def test_events_and_metadata(self):
        fs = small_fs(tracing=True)
        doc = chrome_trace(fs.tracer)
        assert doc["otherData"]["format"] == "h2cloud-trace-v1"
        assert doc["otherData"]["dropped_spans"] == 0
        events = doc["traceEvents"]
        assert events[0] == {
            "ph": "M",
            "pid": 1,
            "name": "process_name",
            "args": {"name": "h2cloud"},
        }
        phases = {e["ph"] for e in events}
        assert "X" in phases  # timed spans
        completes = [e for e in events if e["ph"] == "X"]
        assert all("dur" in e and "ts" in e for e in completes)
        names = {e["name"] for e in completes}
        assert "op.mkdir" in names and "patch.submit" in names

    def test_zero_duration_spans_become_instants(self):
        tracer = Tracer(type("C", (), {"now_us": 0})())
        tracer.event("breaker.trip", tags={"store_node": 3})
        (meta1, meta2, instant) = chrome_trace_events(tracer.spans)
        assert instant["ph"] == "i"
        assert instant["tid"] == 0  # store events render on the shared row
        assert instant["args"]["store_node"] == 3

    def test_write_round_trips(self, tmp_path):
        fs = small_fs(tracing=True)
        path = write_chrome_trace(fs.tracer, tmp_path / "t" / "trace.json")
        loaded = json.loads(path.read_text())
        assert loaded == chrome_trace(fs.tracer)


class TestSpanTree:
    def _spans(self):
        root = Span(trace_id=1, span_id=1, parent_id=None, name="op", start_us=0, end_us=10)
        child = Span(trace_id=1, span_id=2, parent_id=1, name="hop", start_us=1, end_us=2)
        orphan = Span(trace_id=1, span_id=9, parent_id=99, name="lost", start_us=3, end_us=4)
        return root, child, orphan

    def test_roots_and_children(self):
        root, child, orphan = self._spans()
        roots, children = span_tree([root, child, orphan])
        assert roots == [root]
        assert children[1] == [child]
        assert children[99] == [orphan]

    def test_format_indents_and_marks_orphans(self):
        root, child, orphan = self._spans()
        text = format_span_tree([root, child, orphan])
        lines = text.splitlines()
        assert lines[0].startswith("op [trace 1 span 1]")
        assert lines[1].startswith("  hop")
        assert lines[2].startswith("~ lost") and "parent 99" in lines[2]
