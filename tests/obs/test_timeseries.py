"""TelemetrySampler: cadence, classification, ring buffer, rewinds."""

import json

from repro.core import H2CloudFS
from repro.obs.timeseries import (
    LEVEL_KEYS,
    TelemetrySampler,
    _classify,
    condense_timeline,
    format_timeline,
    timeline_json,
)
from repro.simcloud import SwiftCluster


def build(middlewares: int = 1) -> H2CloudFS:
    return H2CloudFS(
        SwiftCluster.rack_scale(), account="ts", middlewares=middlewares
    )


def drive(fs: H2CloudFS, rounds: int = 5, root: str = "/d") -> None:
    fs.mkdir(root)
    for i in range(rounds):
        fs.write(f"{root}/f{i}", b"x" * 64)
        fs.read(f"{root}/f{i}")
        fs.listdir(root)
    fs.pump()


class TestClassification:
    def test_levels_are_levels(self):
        for key in LEVEL_KEYS:
            assert _classify(key) == "level"

    def test_cumulative_op_stats_dropped(self):
        assert _classify("op.read.p99_ms") == "drop"
        assert _classify("op.read.mean_ms") == "drop"
        assert _classify("clock.now_ms") == "drop"

    def test_op_counters_kept(self):
        assert _classify("op.read.count") == "counter"
        assert _classify("op.read.errors") == "counter"
        assert _classify("store.gets") == "counter"


class TestSampler:
    def test_windows_on_cadence(self):
        fs = build()
        sampler = TelemetrySampler(fs, interval_us=50_000).attach()
        drive(fs)
        sampler.detach(flush=False)
        assert sampler.samples > 1
        for window in sampler.windows:
            assert window["due_us"] % 50_000 == 0
            assert window["t_us"] >= window["due_us"]
            assert window["span_us"] > 0

    def test_windows_cover_elapsed_time_exactly(self):
        fs = build()
        start = fs.clock.now_us
        sampler = TelemetrySampler(fs, interval_us=50_000).attach()
        drive(fs)
        sampler.detach()  # flush=True: final partial window
        covered = sum(w["span_us"] for w in sampler.windows)
        assert covered == fs.clock.now_us - start

    def test_counter_deltas_non_negative_and_levels_split(self):
        fs = build(middlewares=2)
        sampler = TelemetrySampler(fs, interval_us=50_000).attach()
        drive(fs)
        sampler.detach()
        saw_rate = saw_level = False
        for window in sampler.windows:
            for node in window["nodes"].values():
                for key, delta in node["rates"].items():
                    assert delta >= 0, key
                    assert _classify(key) == "counter"
                    saw_rate = True
                for key in node["levels"]:
                    assert _classify(key) == "level"
                    saw_level = True
            for key, total in window["fleet"]["rates"].items():
                assert total >= 0, key
        assert saw_rate and saw_level

    def test_per_window_histogram_stats(self):
        fs = build()
        sampler = TelemetrySampler(fs, interval_us=50_000).attach()
        drive(fs)
        sampler.detach()
        names = set()
        for window in sampler.windows:
            for name, stats in window["hist"].items():
                names.add(name)
                assert stats["count"] >= 1
                assert 0 <= stats["p50_ms"] <= stats["p99_ms"] <= stats["max_ms"]
        assert any(name.startswith("op.") for name in names)

    def test_ring_buffer_evicts_oldest(self):
        fs = build()
        sampler = TelemetrySampler(fs, interval_us=10_000, max_windows=3)
        sampler.attach()
        drive(fs, rounds=8)
        sampler.detach(flush=False)
        assert len(sampler.windows) == 3
        assert sampler.evicted == sampler.samples - 3 > 0
        doc = sampler.timeline()
        assert doc["evicted"] == sampler.evicted

    def test_isolated_rewind_never_resamples(self):
        """``run_isolated`` rewinds the clock without notifying; the
        monotone guard must keep windows unique and time-ordered."""
        fs = build(middlewares=2)  # gossip -> background() -> run_isolated
        sampler = TelemetrySampler(fs, interval_us=20_000).attach()
        drive(fs)
        fs.pump()
        sampler.detach(flush=False)
        dues = [w["due_us"] for w in sampler.windows]
        assert dues == sorted(dues)
        assert len(set(dues)) == len(dues)

    def test_detach_is_idempotent_and_stops_sampling(self):
        fs = build()
        sampler = TelemetrySampler(fs, interval_us=10_000).attach()
        drive(fs, rounds=2)
        sampler.detach()
        count = sampler.samples
        drive(fs, rounds=2, root="/e")
        sampler.detach()
        assert sampler.samples == count

    def test_timeline_document_shape(self):
        fs = build()
        sampler = TelemetrySampler(fs, interval_us=50_000).attach()
        drive(fs)
        sampler.detach()
        doc = sampler.timeline()
        assert doc["format"] == "h2cloud-timeline-v1"
        assert doc["interval_us"] == 50_000
        assert len(doc["windows"]) == doc["samples"]
        json.loads(timeline_json(sampler))  # round-trips

    def test_condense_and_render(self):
        fs = build()
        sampler = TelemetrySampler(fs, interval_us=50_000).attach()
        drive(fs)
        sampler.detach()
        doc = sampler.timeline()
        condensed = condense_timeline(doc, keep=2)
        assert len(condensed["windows"]) <= 2
        assert condensed["samples"] == doc["samples"]
        text = format_timeline(doc)
        assert "t_ms" in text and len(text.splitlines()) == 1 + len(
            doc["windows"]
        )

    def test_two_identical_sessions_identical_timelines(self):
        def timeline() -> str:
            fs = build(middlewares=2)
            sampler = TelemetrySampler(fs, interval_us=50_000).attach()
            drive(fs)
            sampler.detach()
            return timeline_json(sampler)

        assert timeline() == timeline()
