"""Golden test: ``Monitor.snapshot()`` key names are a compatibility
contract.

Dashboards, the Prometheus exporter and the bench-trajectory artifacts
all address metrics by these names.  Renaming one is an intentional,
reviewed act: update the golden set here *and* grep the docs
(docs/OBSERVABILITY.md) in the same change.
"""

import re

from repro.core import H2CloudFS
from repro.simcloud import SwiftCluster

#: every fixed (non-per-op) snapshot key, exactly
GOLDEN_KEYS = frozenset(
    {
        "fd_cache.size",
        "fd_cache.hits",
        "fd_cache.misses",
        "fd_cache.hit_rate",
        "fd_cache.evictions",
        "maintenance.patches_submitted",
        "maintenance.merges",
        "maintenance.merge_steps",
        "maintenance.patches_applied",
        "maintenance.merge_blocked",
        "store.puts",
        "store.gets",
        "store.heads",
        "store.deletes",
        "store.copies",
        "store.bytes_in",
        "store.bytes_out",
        "store.background_ms",
        "clock.now_ms",
        "resilience.retries",
        "resilience.backoff_ms",
        "resilience.timeouts",
        "resilience.io_errors",
        "resilience.fast_failures",
        "resilience.repaired_replicas",
        "resilience.breaker_trips",
        "resilience.breakers_open",
        "integrity.corrupt_replicas",
        "integrity.read_repairs",
        "integrity.scrub_repairs",
        "integrity.quarantined_replicas",
        "integrity.unrecoverable_objects",
        "degraded.serves",
        "degraded.stale_rings",
        "traffic.negative_hits",
        "traffic.revalidations",
        "traffic.group_commits",
        "traffic.patches_coalesced",
        "traffic.put_elisions",
        "traffic.digest_skips",
        "membership.epoch",
        "membership.transitions",
        "membership.pending_moves",
        "membership.partitions_moved",
        "membership.bytes_migrated",
        "membership.dual_reads",
        "membership.write_throughs",
        "membership.handoffs",
        "membership.handoff_p50_ms",
        "membership.handoff_p99_ms",
        "partition.active_cuts",
        "partition.cuts_applied",
        "partition.heals",
        "partition.blocked_requests",
        "partition.blocked_rumors",
        "gc.passes",
        "gc.swept",
        "gc.reclaimed_bytes",
        "gc.compacted_rings",
        "trace.spans",
        "trace.dropped",
    }
)

GOSSIP_KEYS = frozenset(
    {
        "gossip.rumors_sent",
        "gossip.rumors_delivered",
        "gossip.single_deliveries",
        "gossip.anti_entropy_rounds",
        "gossip.in_flight",
        "traffic.rumors_coalesced",
    }
)

#: present only when hinted handoff is armed (enable_hinted_handoff)
HINT_KEYS = frozenset(
    {
        "traffic.hints_sloppy_writes",
        "traffic.hints_stored",
        "traffic.hints_delivered",
        "traffic.hints_superseded",
        "traffic.hints_dropped",
        "traffic.hints_unverified",
        "traffic.hints_outstanding",
    }
)

#: per-op keys follow exactly these two shapes
_OP_KEY = re.compile(
    r"^op\.[a-z_]+\.(count|mean_ms|min_ms|max_ms|p50_ms|p95_ms|p99_ms|errors)$"
)


def snapshot_for(middlewares: int) -> dict:
    fs = H2CloudFS(
        SwiftCluster.rack_scale(), account="gold", middlewares=middlewares
    )
    fs.mkdir("/d")
    fs.write("/d/f", b"x")
    fs.listdir("/d")
    fs.pump()
    fs.gc()
    return fs.middlewares[0].monitor.snapshot()


class TestGoldenKeys:
    def test_single_middleware_key_set(self):
        snapshot = snapshot_for(middlewares=1)
        fixed = {k for k in snapshot if not k.startswith("op.")}
        assert fixed == GOLDEN_KEYS

    def test_gossip_deployment_adds_exactly_gossip_keys(self):
        snapshot = snapshot_for(middlewares=2)
        fixed = {k for k in snapshot if not k.startswith("op.")}
        assert fixed == GOLDEN_KEYS | GOSSIP_KEYS

    def test_hinted_handoff_adds_exactly_hint_keys(self):
        cluster = SwiftCluster.rack_scale()
        cluster.enable_hinted_handoff()
        fs = H2CloudFS(cluster, account="gold", middlewares=1)
        fs.mkdir("/d")
        fs.pump()
        snapshot = fs.middlewares[0].monitor.snapshot()
        fixed = {k for k in snapshot if not k.startswith("op.")}
        assert fixed == GOLDEN_KEYS | HINT_KEYS

    def test_op_keys_follow_the_contract(self):
        snapshot = snapshot_for(middlewares=1)
        op_keys = [k for k in snapshot if k.startswith("op.")]
        assert op_keys, "instrumented ops must appear in the snapshot"
        for key in op_keys:
            assert _OP_KEY.match(key), key
        # the canned session exercised these ops; all seven stats exist
        for op in ("mkdir", "write", "list"):
            for stat in (
                "count", "mean_ms", "min_ms", "max_ms",
                "p50_ms", "p95_ms", "p99_ms",
            ):
                assert f"op.{op}.{stat}" in snapshot

    def test_values_are_numbers(self):
        snapshot = snapshot_for(middlewares=2)
        for key, value in snapshot.items():
            assert isinstance(value, (int, float)), key
