"""Property tests for the temporal-observability layer.

Hypothesis drives three invariants the hand-written cases can only
spot-check: timelines are a pure function of the op sequence, critical-
path buckets always partition the root span exactly (any tree shape,
any wait carve), and burn-rate is monotone in badness.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.alerts import burn_rate
from repro.obs.critpath import analyze
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TelemetrySampler, timeline_json
from repro.obs.trace import Tracer
from repro.simcloud.clock import SimClock


# ----------------------------------------------------------------------
# critical path: generated span trees
# ----------------------------------------------------------------------
_SPAN_NAMES = (
    "store.get",
    "store.put",
    "lookup.hop",
    "gossip.apply",
    "merge.apply",
    "membership.handoff",  # unclassified -> parent absorbs
)

# A segment is one step inside a span: idle time, a retry sleep that
# announces itself via an instant event, or a recursive child span.
_leaf_segment = st.one_of(
    st.tuples(st.just("advance"), st.integers(min_value=0, max_value=200)),
    st.tuples(st.just("retry"), st.integers(min_value=1, max_value=100)),
)
_segments = st.recursive(
    _leaf_segment,
    lambda inner: st.tuples(
        st.just("child"),
        st.sampled_from(_SPAN_NAMES),
        st.lists(inner, max_size=4),
    ),
    max_leaves=25,
)
_span_tree = st.lists(_segments, max_size=6)


def _replay(tracer, clock, segments):
    for segment in segments:
        if segment[0] == "advance":
            clock.advance(segment[1])
        elif segment[0] == "retry":
            clock.advance(segment[1])
            tracer.event("store.retry", tags={"wait_us": segment[1]})
        else:
            _, name, inner = segment
            with tracer.span(name):
                _replay(tracer, clock, inner)


@settings(max_examples=60, deadline=None)
@given(_span_tree)
def test_buckets_always_partition_the_root(segments):
    clock = SimClock()
    tracer = Tracer(clock)
    with tracer.span("op.read"):
        _replay(tracer, clock, segments)
    [attribution] = analyze(tracer)
    assert attribution.attributed_us == attribution.duration_us
    assert all(us >= 0 for us in attribution.buckets.values())
    assert all(n >= 1 for n in attribution.events.values())


@settings(max_examples=30, deadline=None)
@given(_span_tree)
def test_attribution_is_deterministic(segments):
    def run():
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("op.write"):
            _replay(tracer, clock, segments)
        [attribution] = analyze(tracer)
        return attribution.to_json()

    assert run() == run()


# ----------------------------------------------------------------------
# time series: generated metric programs on a stub deployment
# ----------------------------------------------------------------------
class _StubMonitor:
    def __init__(self, registry):
        self._registry = registry

    def snapshot(self):
        return self._registry.snapshot()


class _StubMiddleware:
    def __init__(self, node_id):
        self.node_id = node_id
        self.metrics = MetricsRegistry()
        self.monitor = _StubMonitor(self.metrics)


class _StubFS:
    def __init__(self, nodes=2):
        self.clock = SimClock()
        self.middlewares = [_StubMiddleware(i) for i in range(nodes)]


_program = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50_000),  # advance_us
        st.integers(min_value=0, max_value=1),  # node
        st.integers(min_value=0, max_value=9),  # counter increment
        st.integers(min_value=0, max_value=5_000),  # latency sample (us)
    ),
    max_size=40,
)


def _run_program(program, interval_us):
    fs = _StubFS()
    sampler = TelemetrySampler(fs, interval_us=interval_us).attach()
    for advance_us, node, inc, latency_us in program:
        mw = fs.middlewares[node]
        if inc:
            mw.metrics.counter("store.gets").inc(inc)
        mw.metrics.histogram("op.read").observe(latency_us)
        if advance_us:
            fs.clock.advance(advance_us)
    sampler.detach()
    return sampler


@settings(max_examples=50, deadline=None)
@given(_program, st.sampled_from([1_000, 10_000, 25_000]))
def test_counter_deltas_never_negative(program, interval_us):
    sampler = _run_program(program, interval_us)
    for window in sampler.windows:
        assert window["span_us"] > 0
        for node in window["nodes"].values():
            assert all(delta >= 0 for delta in node["rates"].values())
        assert all(v >= 0 for v in window["fleet"]["rates"].values())


@settings(max_examples=50, deadline=None)
@given(_program, st.sampled_from([1_000, 10_000, 25_000]))
def test_windows_partition_elapsed_time(program, interval_us):
    sampler = _run_program(program, interval_us)
    elapsed = sum(advance for advance, _, _, _ in program)
    assert sum(w["span_us"] for w in sampler.windows) == elapsed


@settings(max_examples=30, deadline=None)
@given(_program, st.sampled_from([1_000, 10_000]))
def test_timeline_is_a_pure_function_of_the_program(program, interval_us):
    first = timeline_json(_run_program(program, interval_us))
    second = timeline_json(_run_program(program, interval_us))
    assert first == second


# ----------------------------------------------------------------------
# burn rate: monotone, bounded
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0, max_value=1e6),
    st.floats(min_value=0, max_value=1e6),
    st.floats(min_value=0, max_value=1e6),
    st.floats(min_value=1e-6, max_value=1.0),
)
def test_burn_rate_monotone_in_bad(bad, extra_bad, good, budget):
    base = burn_rate(bad, good, budget)
    worse = burn_rate(bad + extra_bad, good, budget)
    assert worse >= base
    assert base >= 0.0
    # ratio is capped at 1, so the burn is capped at 1/budget
    assert worse <= 1.0 / budget + 1e-9
