"""Unit tests for the unified metrics registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        assert int(counter) == 4

    def test_rejects_decrement(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6

    def test_pull_gauge_tracks_callable(self):
        box = {"n": 1}
        gauge = Gauge("g", fn=lambda: box["n"])
        assert gauge.value == 1
        box["n"] = 7
        assert gauge.value == 7

    def test_pull_gauge_rejects_set(self):
        with pytest.raises(ValueError):
            Gauge("g", fn=lambda: 0).set(1)


class TestHistogram:
    def test_exact_quantiles_small(self):
        hist = Histogram("h")
        for v in (10, 20, 30, 40, 50, 60, 70, 80, 90, 100):
            hist.observe(v)
        assert hist.samples == 10
        assert hist.mean == 55
        assert hist.max == 100
        assert hist.min == 10
        # linear interpolation over the sorted reservoir
        assert hist.percentile(0.50) == pytest.approx(55.0)
        assert hist.percentile(1.0) == 100.0
        assert hist.percentile(0.95) == pytest.approx(95.5)

    def test_single_sample(self):
        hist = Histogram("h")
        hist.observe(42)
        assert hist.percentile(0.5) == 42.0
        assert hist.percentile(1.0) == 42.0

    def test_empty_percentile_is_zero(self):
        assert Histogram("h").percentile(0.99) == 0.0

    def test_empty_extrema_are_none(self):
        """No observations: both extrema are None (a zero ``max`` on an
        empty stream would claim a sample that never happened)."""
        hist = Histogram("h")
        assert hist.max is None
        assert hist.min is None

    def test_all_negative_stream_extrema(self):
        hist = Histogram("h")
        for v in (-30, -10, -20):
            hist.observe(v)
        assert hist.max == -10
        assert hist.min == -30

    def test_window_buffer_off_by_default(self):
        hist = Histogram("h")
        hist.observe(5)
        assert hist.drain_window() == []

    def test_window_buffer_drains_sorted_and_resets(self):
        hist = Histogram("h")
        hist.enable_window()
        for v in (30, 10, 20):
            hist.observe(v)
        assert hist.drain_window() == [10, 20, 30]
        assert hist.drain_window() == []
        hist.observe(7)
        assert hist.drain_window() == [7]

    def test_percentile_validation(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_reservoir_is_deterministic(self):
        """Same name + same stream -> identical retained sample."""

        def fill():
            hist = Histogram("dup", reservoir_size=16)
            for v in range(1000):
                hist.observe(v)
            return hist.values()

        assert fill() == fill()
        assert len(fill()) == 16

    def test_reservoir_overflow_keeps_stats_exact(self):
        hist = Histogram("h", reservoir_size=8)
        for v in range(100):
            hist.observe(v)
        assert hist.samples == 100
        assert hist.max == 99
        assert hist.min == 0
        assert hist.values() == sorted(hist.values())

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1))
    def test_percentile_within_range(self, values):
        hist = Histogram("prop")
        for v in values:
            hist.observe(v)
        for q in (0.01, 0.5, 0.95, 0.99, 1.0):
            p = hist.percentile(q)
            assert min(values) <= p <= max(values)


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_name_collision_across_types(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_flattens(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(2)
        registry.gauge("depth").set(3)
        registry.gauge("live", fn=lambda: 9)
        hist = registry.histogram("lat")
        hist.observe(100)
        hist.observe(300)
        snap = registry.snapshot()
        assert snap["jobs"] == 2
        assert snap["depth"] == 3
        assert snap["live"] == 9
        assert snap["lat.count"] == 2
        assert snap["lat.mean"] == 200
        assert snap["lat.min"] == 100
        assert snap["lat.max"] == 300
        assert snap["lat.p50"] == pytest.approx(200.0)
        assert snap["lat.p99"] == pytest.approx(298.0)

    def test_snapshot_empty_histogram_reports_zero_extrema(self):
        """Snapshot values are numbers: None extrema flatten to 0.0."""
        registry = MetricsRegistry()
        registry.histogram("lat")
        snap = registry.snapshot()
        assert snap["lat.min"] == 0.0
        assert snap["lat.max"] == 0.0

    def test_enable_windows_covers_late_instruments(self):
        registry = MetricsRegistry()
        early = registry.histogram("early")
        registry.enable_windows()
        late = registry.histogram("late")
        early.observe(1)
        late.observe(2)
        assert early.drain_window() == [1]
        assert late.drain_window() == [2]


class TestNullRegistry:
    def test_swallows_writes(self):
        registry = NullRegistry()
        registry.counter("a").inc(5)
        registry.gauge("b").set(5)
        registry.histogram("c").observe(5)
        assert registry.counter("a").value == 0
        assert registry.gauge("b").value == 0
        assert registry.histogram("c").samples == 0
        assert registry.snapshot() == {}

    def test_shared_singleton_flags(self):
        assert NULL_REGISTRY.noop is True
        assert MetricsRegistry().noop is False
