"""The ``python -m repro metrics|trace`` subcommands."""

import json

from repro.__main__ import main as repro_main
from repro.obs.cli import metrics_main, trace_main


class TestMetricsCommand:
    def test_prometheus_text_by_default(self, capsys):
        assert metrics_main([]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# TYPE h2_")
        assert 'h2_maintenance_patches_submitted{node="1"}' in out
        assert 'node="2"' in out  # two middlewares by default

    def test_json_format(self, capsys):
        assert metrics_main(["--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "h2cloud-metrics-v1"
        assert set(doc["nodes"]) == {"1", "2"}

    def test_deterministic_output(self, capsys):
        assert metrics_main([]) == 0
        first = capsys.readouterr().out
        assert metrics_main([]) == 0
        assert capsys.readouterr().out == first


class TestTraceCommand:
    def test_chrome_json_to_stdout(self, capsys):
        assert trace_main([]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["otherData"]["format"] == "h2cloud-trace-v1"
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"op.mkdir", "op.write", "op.move", "gossip.apply"} <= names

    def test_tree_rendering(self, capsys):
        assert trace_main(["--tree"]) == 0
        out = capsys.readouterr().out
        assert "op.move" in out
        assert "  patch.submit" in out  # indented child

    def test_out_file(self, tmp_path, capsys):
        target = tmp_path / "session.trace.json"
        assert trace_main(["--out", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(target.read_text())
        assert doc["otherData"]["format"] == "h2cloud-trace-v1"


class TestTopLevelDispatch:
    def test_metrics_subcommand(self, capsys):
        assert repro_main(["metrics"]) == 0
        assert "# TYPE h2_" in capsys.readouterr().out

    def test_trace_subcommand(self, capsys):
        assert repro_main(["trace", "--tree"]) == 0
        assert "op.mkdir" in capsys.readouterr().out
