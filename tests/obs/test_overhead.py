"""Overhead guard: full instrumentation must stay cheap.

Compares the same hot workload (cache-hit ``read_relative``) on a
fully observed deployment (metrics + tracing) against the no-op fast
path (``observe=False`` + null tracer).  The bound is deliberately
generous -- this is a tripwire for accidentally quadratic
instrumentation (per-call registry lookups, unbounded span lists),
not a microbenchmark.
"""

import time

from repro.core import H2CloudFS
from repro.core.middleware import H2Config
from repro.simcloud import SwiftCluster

#: instrumented may cost at most this multiple of the no-op path
MAX_FACTOR = 5.0
REPEATS = 3
OPS = 300


def build(observe: bool):
    fs = H2CloudFS(
        SwiftCluster.rack_scale(),
        account="perf",
        config=H2Config(observe=observe),
        tracing=observe,
    )
    fs.mkdir("/hot")
    fs.write("/hot/f", b"z" * 256)
    rel = fs.relative_path_of("/hot/f")
    fs.read_relative(rel)  # warm the descriptor cache
    return fs, rel


def best_of(fs, rel) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(OPS):
            fs.read_relative(rel)
        best = min(best, time.perf_counter() - start)
    return best


class TestOverheadGuard:
    def test_fast_path_is_actually_off(self):
        fs, _ = build(observe=False)
        mw = fs.middlewares[0]
        assert mw.metrics.noop
        assert fs.tracer.noop
        assert mw.monitor.snapshot().get("op.read_relative.count", 0) == 0

    def test_fast_path_skips_membership_instrumentation(self):
        """A transition on an unobserved deployment emits no trace
        events: every membership tracer call sits behind the noop
        guard, so the fast path pays only plain-int counters."""
        fs, _ = build(observe=False)
        membership = fs.store.membership
        membership.add_node()
        membership.quiesce()
        assert fs.tracer.noop
        assert not fs.tracer.spans
        assert membership.transitions == 1  # counters still work

    def test_instrumented_path_records_membership_events(self):
        fs, _ = build(observe=True)
        membership = fs.store.membership
        membership.add_node()
        membership.quiesce()
        names = {event.name for event in fs.tracer.spans}
        assert "membership.transition" in names
        assert "membership.handoff" in names
        snapshot = fs.middlewares[0].monitor.snapshot()
        assert snapshot["membership.transitions"] == 1
        assert snapshot["membership.handoffs"] == 1

    def test_instrumented_path_records(self):
        fs, rel = build(observe=True)
        fs.read_relative(rel)
        snapshot = fs.middlewares[0].monitor.snapshot()
        assert snapshot["op.read_relative.count"] >= 1
        assert snapshot["trace.spans"] > 0

    def test_overhead_within_bound(self):
        baseline_fs, baseline_rel = build(observe=False)
        observed_fs, observed_rel = build(observe=True)
        baseline = best_of(baseline_fs, baseline_rel)
        observed = best_of(observed_fs, observed_rel)
        # 10ms grace absorbs scheduler noise when both sides are tiny
        assert observed <= baseline * MAX_FACTOR + 0.010, (
            f"instrumentation overhead {observed / baseline:.1f}x "
            f"exceeds {MAX_FACTOR}x guard "
            f"({observed * 1e3:.1f}ms vs {baseline * 1e3:.1f}ms "
            f"for {OPS} ops)"
        )

    def test_sampler_off_pays_no_window_buffering(self):
        """Without a TelemetrySampler attached, histograms keep no
        window buffers and the hot path pays one ``is None`` check."""
        fs, rel = build(observe=True)
        for _ in range(10):
            fs.read_relative(rel)
        mw = fs.middlewares[0]
        for hist in mw.metrics.histograms():
            assert hist._window is None
            assert hist.drain_window() == []

    def test_sampler_overhead_within_bound(self):
        """An attached sampler must not blow the instrumentation
        budget: same workload, sampler pumping every sim second."""
        from repro.obs.timeseries import TelemetrySampler

        baseline_fs, baseline_rel = build(observe=False)
        sampled_fs, sampled_rel = build(observe=True)
        sampler = TelemetrySampler(sampled_fs, interval_us=10_000)
        sampler.attach()
        baseline = best_of(baseline_fs, baseline_rel)
        sampled = best_of(sampled_fs, sampled_rel)
        sampler.detach()
        assert sampler.samples > 0  # the cadence actually fired
        assert sampled <= baseline * (2 * MAX_FACTOR) + 0.020, (
            f"sampler overhead {sampled / baseline:.1f}x exceeds "
            f"{2 * MAX_FACTOR}x guard"
        )

    def test_null_tracer_fast_paths_are_constant(self):
        """NULL_TRACER's whole surface (incl. the new mute/index APIs)
        stays allocation-free no-ops."""
        from repro.obs.trace import NULL_TRACER, _NULL_SPAN

        assert NULL_TRACER.span("op.x") is _NULL_SPAN
        assert NULL_TRACER.mute() is _NULL_SPAN
        with NULL_TRACER.mute():
            assert NULL_TRACER.current() is None
        assert NULL_TRACER.finished_spans() == []
        assert NULL_TRACER.traces() == {}

    def test_memoized_finished_spans_reuse(self):
        """finished_spans() is memoized between mutations: the critpath
        analyzer can call it repeatedly without a full rescan."""
        fs, rel = build(observe=True)
        fs.read_relative(rel)
        first = fs.tracer.finished_spans()
        assert fs.tracer.finished_spans() is first  # cached
        fs.read_relative(rel)
        second = fs.tracer.finished_spans()
        assert second is not first and len(second) > len(first)
