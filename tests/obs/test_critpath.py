"""Critical-path analyzer: exact partitions, carves, tail blame."""

from repro.obs.critpath import (
    analyze,
    blame_summary,
    classify_span,
    critpath_json,
    format_report,
    tail_report,
)
from repro.obs.trace import Tracer
from repro.simcloud.clock import SimClock


def build() -> tuple[SimClock, Tracer]:
    clock = SimClock()
    return clock, Tracer(clock)


def one_root(tracer):
    [attribution] = analyze(tracer)
    return attribution


class TestClassify:
    def test_store_ops(self):
        assert classify_span("store.get") == "store_get"
        assert classify_span("store.get_range") == "store_get"
        assert classify_span("store.put") == "store_put"
        assert classify_span("store.head") == "store_other"

    def test_maintenance(self):
        assert classify_span("lookup.hop") == "lookup"
        assert classify_span("patch.group_flush") == "merge_flush"
        assert classify_span("merge.apply") == "merge_flush"
        assert classify_span("gossip.apply") == "gossip"

    def test_unclassified(self):
        assert classify_span("http") is None
        assert classify_span("op.read") is None


class TestAttribution:
    def test_buckets_partition_the_root_exactly(self):
        clock, tracer = build()
        with tracer.span("op.read"):
            clock.advance(10)  # op self time
            with tracer.span("lookup.hop"):
                clock.advance(5)  # lookup self time
                with tracer.span("store.get"):
                    clock.advance(40)
            with tracer.span("store.get"):
                clock.advance(30)
            clock.advance(15)  # more self time
        attribution = one_root(tracer)
        assert attribution.duration_us == 100
        assert attribution.buckets == {
            "op_self": 25,
            "lookup": 5,
            "store_get": 70,
        }
        assert attribution.attributed_us == attribution.duration_us

    def test_deepest_active_span_wins(self):
        """A store GET inside a lookup hop is store service time, not
        lookup time -- depth breaks the tie."""
        clock, tracer = build()
        with tracer.span("op.stat"):
            with tracer.span("lookup.hop"):
                with tracer.span("store.get"):
                    clock.advance(50)
        attribution = one_root(tracer)
        assert attribution.buckets == {"store_get": 50}

    def test_retry_wait_is_carved_out_of_the_store_call(self):
        clock, tracer = build()
        with tracer.span("op.write"):
            with tracer.span("store.put"):
                clock.advance(20)  # first attempt
                clock.advance(30)  # backoff sleep
                tracer.event("store.retry", tags={"wait_us": 30})
                clock.advance(25)  # winning attempt
        attribution = one_root(tracer)
        assert attribution.buckets == {"store_put": 45, "retry_backoff": 30}
        assert attribution.events == {"retry_backoff": 1}
        assert attribution.attributed_us == 75

    def test_timeout_wait_is_carved(self):
        clock, tracer = build()
        with tracer.span("op.read"):
            with tracer.span("store.get"):
                clock.advance(100)
                tracer.event("store.timeout", tags={"waited_us": 100})
                clock.advance(10)
        attribution = one_root(tracer)
        assert attribution.buckets == {"timeout_wait": 100, "store_get": 10}

    def test_zero_duration_events_only_count(self):
        clock, tracer = build()
        with tracer.span("op.read"):
            tracer.event("breaker.fast_fail", tags={"store_node": 1})
            tracer.event("membership.dual_read", tags={"object": "o"})
            clock.advance(5)
        attribution = one_root(tracer)
        assert attribution.events == {"breaker_wait": 1, "membership": 1}
        assert attribution.buckets == {"op_self": 5}

    def test_error_tag_is_surfaced(self):
        clock, tracer = build()
        try:
            with tracer.span("op.mkdir"):
                clock.advance(3)
                raise ValueError("denied")
        except ValueError:
            pass
        attribution = one_root(tracer)
        assert attribution.error == "ValueError"

    def test_nested_op_roots_fold_into_outermost(self):
        clock, tracer = build()
        with tracer.span("op.write"):
            with tracer.span("op.mkdir"):  # re-entered inbound API
                clock.advance(10)
        attributions = analyze(tracer)
        assert [a.name for a in attributions] == ["write"]

    def test_background_traces_have_no_roots(self):
        clock, tracer = build()
        with tracer.span("merge.apply"):
            clock.advance(10)
        assert analyze(tracer) == []

    def test_zero_duration_op(self):
        _, tracer = build()
        with tracer.span("op.exists"):
            pass
        attribution = one_root(tracer)
        assert attribution.duration_us == 0
        assert attribution.buckets == {}


class TestTailReport:
    def _populate(self, clock, tracer, durations, op="op.read"):
        for us in durations:
            with tracer.span(op):
                with tracer.span("store.get"):
                    clock.advance(us)

    def test_dominant_bucket_named_per_class(self):
        clock, tracer = build()
        self._populate(clock, tracer, [10] * 99 + [500])
        report = tail_report(analyze(tracer))
        doc = report["classes"]["read"]
        assert doc["count"] == 100
        assert doc["tail"]["dominant"] == "store_get"
        assert doc["tail"]["count"] >= 1
        assert doc["worst"]["duration_us"] == 500

    def test_classes_mapping_groups_ops(self):
        clock, tracer = build()
        self._populate(clock, tracer, [10, 20], op="op.stat")
        self._populate(clock, tracer, [10, 20], op="op.list")
        report = tail_report(
            analyze(tracer), classes={"stat": "meta", "list": "meta"}
        )
        assert set(report["classes"]) == {"meta"}
        assert report["classes"]["meta"]["count"] == 4

    def test_errors_excluded_from_distribution(self):
        clock, tracer = build()
        self._populate(clock, tracer, [10, 20])
        try:
            with tracer.span("op.read"):
                clock.advance(9_999)
                raise RuntimeError("unavailable")
        except RuntimeError:
            pass
        report = tail_report(analyze(tracer))
        doc = report["classes"]["read"]
        assert doc["count"] == 2
        assert doc["errors"] == 1
        assert doc["worst"]["duration_us"] == 20  # not the failed op

    def test_blame_shares_sum_to_one(self):
        clock, tracer = build()
        with tracer.span("op.read"):
            clock.advance(10)
            with tracer.span("store.get"):
                clock.advance(30)
        summary = blame_summary(analyze(tracer))
        assert sum(b["share"] for b in summary["blame"].values()) == 1.0

    def test_report_serializes_and_renders(self):
        clock, tracer = build()
        self._populate(clock, tracer, [10, 20, 30])
        report = tail_report(analyze(tracer))
        assert report["format"] == "h2cloud-critpath-v1"
        assert critpath_json(report).endswith("\n")
        text = format_report(report)
        assert "dominant" in text and "read" in text
