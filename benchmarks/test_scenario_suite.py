"""Smoke slice of the million-user scenario suite.

One smoke-tier replay (~1k declared accounts, ~10k ops) of the
reference ``sync-storm`` scenario, graded into per-tenant SLO report
cards.  The nightly ``scale-replay`` job runs the whole catalog across
seeds and fault mixes; this slice keeps the PR CI honest about the
suite still executing cleanly end to end.
"""

from conftest import run_once

import pytest

from repro.bench.scale import run_scenario
from repro.workloads.scenarios import build_scenario


@pytest.mark.smoke
def test_sync_storm_smoke_slice(benchmark):
    spec = build_scenario("sync-storm", tier="smoke", seed=7)
    report = run_once(benchmark, run_scenario, spec)
    result = report.result
    assert result.ok, result.violations
    assert result.counters["denied"] == 0  # clean run: every op valid

    doc = report.document
    population = doc["population"]
    assert population["declared"] == 1_000
    assert population["activated"] > 300  # the arrival process spreads out
    assert population["heavy_activated"] >= 1  # anchor + hotspot seeded

    fleet = doc["fleet"]
    assert fleet["ops"] >= 10_000
    assert fleet["ops_per_sec"] > 0
    assert 0 < fleet["latency"]["p50_ms"] <= fleet["latency"]["p99_ms"]
    assert doc["worst_tenant"]["ops"] >= 16  # graded above the noise floor

    # Every activated tenant got a card, and the cards are well-formed.
    assert len(report.cards) == population["activated"]
    assert all(card["ops"] or card["errors"] for card in report.cards)
