"""Ablation (§3.3.1): strawman synchronous vs asynchronous maintenance.

The paper rejects the synchronous strawman because it hurts the client
path.  With ``auto_merge=True`` (write-through: the client waits for
patch submission *and* the ring merge) mutations are strictly slower
than with the asynchronous protocol (client returns after the patch is
durably submitted; the Background Merger catches up off-path).
"""

from conftest import run_once

from repro.core import H2CloudFS, H2Config
from repro.simcloud import SwiftCluster


def measure_mkdir_burst(auto_merge: bool, n: int = 50) -> tuple[float, float]:
    fs = H2CloudFS(
        SwiftCluster.rack_scale(),
        account="alice",
        config=H2Config(auto_merge=auto_merge),
    )
    start = fs.clock.now_us
    for i in range(n):
        fs.mkdir(f"/dir{i:03d}")
    foreground_us = fs.clock.now_us - start
    fs.pump()  # asynchronous mode drains merges here (background time)
    background_us = fs.store.ledger.background_us
    return foreground_us / 1000, background_us / 1000


def test_async_is_faster_on_the_client_path(benchmark):
    (sync_fg, _), (async_fg, async_bg) = benchmark.pedantic(
        lambda: (measure_mkdir_burst(True), measure_mkdir_burst(False)),
        rounds=1,
        iterations=1,
    )
    # The async protocol removes the merge round trips from the client
    # path entirely...
    assert async_fg < sync_fg * 0.8
    # ...the work does not vanish -- it moves to the background merger.
    assert async_bg > 0


def test_async_converges_to_same_tree():
    sync_fs = H2CloudFS(
        SwiftCluster.fast(), account="a", config=H2Config(auto_merge=True)
    )
    async_fs = H2CloudFS(
        SwiftCluster.fast(), account="a", config=H2Config(auto_merge=False)
    )
    for fs in (sync_fs, async_fs):
        fs.makedirs("/x/y")
        fs.write("/x/f", b"1")
        fs.pump()
    from repro.testing import snapshot_of

    assert snapshot_of(sync_fs) == snapshot_of(async_fs)
