"""Table 1's scalability column: burst makespan vs front-end count."""

from conftest import run_once

from repro.bench import scalability


def speedup(result, name: str) -> float:
    points = dict(result.series_for(name).points)
    xs = sorted(points)
    return points[xs[0]] / points[xs[-1]]


def test_scalability_column(benchmark):
    result = run_once(benchmark, scalability)

    # "Yes": H2Cloud and DP speed up near-linearly with front-ends.
    assert speedup(result, "h2cloud") > 4.0
    assert speedup(result, "dynamic-partition") > 4.0

    # "Limited": the single namenode never speeds up; Swift saturates
    # on its container DB (sublinear, visibly below the Yes systems).
    assert speedup(result, "single-index") < 1.3
    assert 1.0 < speedup(result, "swift") < 4.5

    # "No": skewed static partitioning gains nothing from more servers.
    assert speedup(result, "static-partition (skewed)") < 1.3
