"""Figure 7: MOVE/RENAME vs n -- Swift O(n), H2Cloud & Dropbox O(1)."""

import pytest

from conftest import run_once, slope

from repro.bench import fig7_move_rename


def test_fig07_move_rename(benchmark):
    result = run_once(benchmark, fig7_move_rename)
    swift = result.series_for("swift").points
    h2 = result.series_for("h2cloud").points
    dropbox = result.series_for("dropbox").points

    # Swift grows linearly; H2 and Dropbox stay flat.
    assert slope(swift) > 0.7
    assert slope(h2) < 0.25
    assert slope(dropbox) < 0.25

    # "Orders of magnitude" at the top of the sweep.
    n_max = max(x for x, _ in swift)
    swift_ms = result.series_for("swift").ms_at(n_max)
    h2_ms = result.series_for("h2cloud").ms_at(n_max)
    assert swift_ms > 50 * h2_ms


@pytest.mark.smoke
def test_fig07_smoke(benchmark):
    """Two-point quick slice for PR CI: the O(n)-vs-O(1) gap exists."""
    result = run_once(benchmark, fig7_move_rename, [10, 100])
    swift = result.series_for("swift")
    assert swift.ms_at(100) > swift.ms_at(10)  # Swift really is O(n)
    assert 0 < result.series_for("h2cloud").ms_at(100)
