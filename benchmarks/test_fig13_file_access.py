"""Figure 13: file access vs depth -- Swift flat ~10ms, H2 ∝ d, Dropbox ~flat."""

import pytest

from conftest import run_once, slope

from repro.bench import fig13_file_access


def test_fig13_file_access(benchmark):
    result = run_once(benchmark, fig13_file_access)
    swift = result.series_for("swift").points
    h2 = result.series_for("h2cloud").points
    dropbox = result.series_for("dropbox").points

    # Swift: one full-path hash, stably ~10 ms at any depth.
    assert slope(swift) < 0.15
    assert all(4 < ms < 25 for _, ms in swift)

    # H2: one NameRing per level -- linear in d.
    assert slope(h2) > 0.6

    # Paper: at the workload-average depth (d=4) H2 averages ~61 ms,
    # which is shorter than Dropbox's roughly constant access time.
    h2_at_4 = result.series_for("h2cloud").ms_at(4)
    assert 20 < h2_at_4 < 120
    dropbox_at_4 = result.series_for("dropbox").ms_at(4)
    assert dropbox_at_4 > h2_at_4

    # Dropbox: constant with fluctuations (hops add noise, not slope).
    assert slope(dropbox) < 0.2


@pytest.mark.smoke
def test_fig13_smoke(benchmark):
    """Two-point quick slice for PR CI: H2 lookup grows with depth."""
    result = run_once(benchmark, fig13_file_access, [1, 8])
    h2 = result.series_for("h2cloud")
    assert h2.ms_at(8) > h2.ms_at(1)
    swift = result.series_for("swift")
    assert 4 < swift.ms_at(8) < 25  # flat full-path hash
