"""Figure 9: LIST vs n with m fixed -- LIST depends on m, not n."""

import pytest

from conftest import run_once, slope

from repro.bench import fig9_list_vs_n


def test_fig09_list_vs_n(benchmark):
    result = run_once(benchmark, fig9_list_vs_n)
    for system in ("h2cloud", "swift", "dropbox"):
        points = result.series_for(system).points
        assert slope(points) < 0.35, f"{system} LIST grew with n, not m"

    # Swift costs the most throughout (its per-child marker queries
    # each pay a B-tree descent over the whole row population).
    for x, _ in result.series_for("swift").points:
        swift_ms = result.series_for("swift").ms_at(x)
        h2_ms = result.series_for("h2cloud").ms_at(x)
        assert swift_ms > h2_ms


@pytest.mark.smoke
def test_fig09_smoke(benchmark):
    """Two-point quick slice for PR CI: LIST cost is m-bound, not n."""
    result = run_once(benchmark, fig9_list_vs_n, [10, 100], m=20)
    for system in ("h2cloud", "swift", "dropbox"):
        assert 0 < result.series_for(system).ms_at(100)
