"""Ablation (§4.5): the File Descriptor Cache's effect on lookups.

Warm descriptors turn the O(d) regular access into pure memory work;
a capacity-starved cache forces every resolution back to the store.
"""

from repro.core import H2CloudFS, H2Config
from repro.simcloud import SwiftCluster
from repro.workloads import chain_directories


def build_deep_fs(capacity: int) -> H2CloudFS:
    fs = H2CloudFS(
        SwiftCluster.rack_scale(),
        account="alice",
        config=H2Config(fd_cache_capacity=capacity),
    )
    for path in chain_directories(10):
        fs.mkdir(path)
    fs.write(chain_directories(10)[-1] + "/leaf", b"x")
    fs.pump()
    fs.drop_caches()
    return fs


def repeated_lookups(fs, repeats: int = 20) -> float:
    leaf = chain_directories(10)[-1] + "/leaf"
    start = fs.clock.now_us
    for _ in range(repeats):
        fs.stat(leaf)
    return (fs.clock.now_us - start) / 1000


def test_descriptor_cache_accelerates_repeated_lookups(benchmark):
    big, tiny = benchmark.pedantic(
        lambda: (
            repeated_lookups(build_deep_fs(capacity=4096)),
            repeated_lookups(build_deep_fs(capacity=1)),
        ),
        rounds=1,
        iterations=1,
    )
    # With a real cache only the first walk pays; capacity=1 thrashes.
    assert big < tiny / 5


def test_cache_hit_rate_reflects_capacity():
    generous = build_deep_fs(capacity=4096)
    starved = build_deep_fs(capacity=1)
    repeated_lookups(generous)
    repeated_lookups(starved)
    generous_rate = generous.middlewares[0].fd_cache.stats.hit_rate
    starved_rate = starved.middlewares[0].fd_cache.stats.hit_rate
    assert generous_rate > starved_rate
