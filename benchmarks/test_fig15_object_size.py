"""Figure 15: size of objects -- H2Cloud's byte overhead is negligible."""

import pytest

from conftest import run_once

from repro.bench import fig14_15_storage


def test_fig15_object_size(benchmark):
    _, fig15 = run_once(benchmark, fig14_15_storage)
    for x, _ in fig15.series_for("swift").points:
        swift_mb = fig15.series_for("swift").ms_at(x)
        h2_mb = fig15.series_for("h2cloud").ms_at(x)
        # Directory/NameRing objects are <1 KB vs ~1 MB files: the
        # extra bytes must stay within a few percent.
        assert h2_mb < swift_mb * 1.05
        assert h2_mb > swift_mb * 0.95


@pytest.mark.smoke
def test_fig15_smoke(benchmark):
    """Two-point quick slice for PR CI: byte overhead stays negligible."""
    _, fig15 = run_once(benchmark, fig14_15_storage, [1, 2])
    swift_mb = fig15.series_for("swift").ms_at(2)
    h2_mb = fig15.series_for("h2cloud").ms_at(2)
    assert h2_mb < swift_mb * 1.05
