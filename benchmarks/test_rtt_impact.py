"""§5.3 RTT impact: alpha = RTT / op time, by operation and depth."""

from conftest import run_once

from repro.bench import rtt_impact


def test_rtt_impact(benchmark):
    result = run_once(benchmark, rtt_impact)
    h2 = dict(result.series_for("h2cloud").points)
    swift = dict(result.series_for("swift").points)
    dropbox = dict(result.series_for("dropbox").points)

    depths = sorted(h2)
    shallow, deep = depths[0], depths[-1]

    # H2: alpha falls from ~2.7 toward ~0.3 as depth grows 0 -> 20.
    assert h2[shallow] > 1.0
    assert h2[deep] < 0.8
    assert h2[shallow] > 3 * h2[deep]

    # Swift: ~10 ms accesses are RTT-dominated at every depth (alpha ~5).
    assert all(alpha > 2.0 for alpha in swift.values())

    # Dropbox: alpha fluctuates around ~0.5.
    assert all(0.2 < alpha < 2.0 for alpha in dropbox.values())

    # Directory operations on H2 and Dropbox: alpha stays ~0.2-1.0, so
    # the operation time -- not the network -- dominates user
    # experience; this is the paper's argument for optimising directory
    # operations.  (Swift's sub-25 ms MKDIR is the one RTT-dominated
    # directory op; its MOVE at n=1000 takes seconds, alpha ~ 0.)
    h2_dropbox_alphas = [
        float(note.rsplit("=", 1)[1])
        for note in result.notes
        if note.startswith("alpha[") and ("h2cloud" in note or "dropbox" in note)
    ]
    assert h2_dropbox_alphas
    assert all(alpha < 1.2 for alpha in h2_dropbox_alphas)
    swift_move = [
        float(note.rsplit("=", 1)[1])
        for note in result.notes
        if note.startswith("alpha[MOVE") and "swift" in note
    ]
    assert swift_move and swift_move[0] < 0.1
