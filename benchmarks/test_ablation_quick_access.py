"""Ablation (§3.2): quick O(1) relative-path access vs O(d) regular.

The paper offers two access methods: hashing a namespace-decorated
relative path reaches the object in one step; the user-friendly full
path walks d NameRings.  This ablation quantifies the gap across
depths -- the argument for why internal system operations should carry
relative paths around.
"""

from conftest import run_once, slope

from repro.core import H2CloudFS
from repro.simcloud import SwiftCluster
from repro.workloads import chain_directories


def access_costs(depth: int) -> tuple[float, float]:
    """(regular ms, quick ms) for a file at the given depth."""
    fs = H2CloudFS(SwiftCluster.rack_scale(), account="alice")
    for path in chain_directories(depth - 1):
        fs.mkdir(path)
    parent = chain_directories(depth - 1)[-1] if depth > 1 else ""
    leaf = parent + "/leaf"
    fs.write(leaf, b"payload")
    rel = fs.relative_path_of(leaf)
    fs.pump()

    fs.drop_caches()
    _, regular = fs.clock.measure(lambda: fs.read(leaf))
    fs.drop_caches()
    _, quick = fs.clock.measure(lambda: fs.read_relative(rel))
    return regular / 1000, quick / 1000


def test_quick_access_beats_regular_at_depth(benchmark):
    results = benchmark.pedantic(
        lambda: {d: access_costs(d) for d in (1, 4, 8, 16)},
        rounds=1,
        iterations=1,
    )
    regular = [(d, r) for d, (r, _) in results.items()]
    quick = [(d, q) for d, (_, q) in results.items()]

    # Regular access is O(d); quick access is O(1).
    assert slope(regular) > 0.5
    assert slope(quick) < 0.2

    # At the paper's maximum observed depth (19-20), the gap is large.
    deep_regular, deep_quick = results[16]
    assert deep_regular > 5 * deep_quick

    # At depth 1 the two are within the same couple of round trips.
    shallow_regular, shallow_quick = results[1]
    assert shallow_regular < 3 * shallow_quick
