"""Figure 14: number of objects -- H2Cloud stores more than Swift."""

import pytest

from conftest import run_once

from repro.bench import fig14_15_storage


def test_fig14_object_count(benchmark):
    fig14, _ = run_once(benchmark, fig14_15_storage)
    for x, _count in fig14.series_for("swift").points:
        swift_count = fig14.series_for("swift").ms_at(x)
        h2_count = fig14.series_for("h2cloud").ms_at(x)
        # Every directory and every NameRing is an extra object.
        assert h2_count > swift_count * 1.05
        # ...but not absurdly many: bounded by ~2 extra per directory.
        assert h2_count < swift_count * 4


@pytest.mark.smoke
def test_fig14_smoke(benchmark):
    """Two-point quick slice for PR CI: H2 stores more objects."""
    fig14, _ = run_once(benchmark, fig14_15_storage, [1, 2])
    assert fig14.series_for("h2cloud").ms_at(2) > fig14.series_for(
        "swift"
    ).ms_at(2)
