"""Ablation (§3.3.2): gossip fan-out vs convergence effort.

Higher fan-out floods rumors faster (fewer rounds to quiescence) at
the price of more messages; message loss shifts work onto the
anti-entropy backstop.
"""

from repro.core import H2CloudFS
from repro.simcloud import MessageLoss, SwiftCluster


def converge_with(fanout: int, middlewares: int = 6, loss: float = 0.0):
    fs = H2CloudFS(
        SwiftCluster.fast(),
        account="alice",
        middlewares=middlewares,
        gossip_fanout=fanout,
        message_loss=MessageLoss(loss, seed=3) if loss else None,
    )
    for i in range(10):
        fs.middlewares[i % middlewares].mkdir("alice", f"/d{i:02d}")
    rounds = fs.network.run_until_quiet()
    fs.network.converge()
    return rounds, fs.network.rumors_sent


def test_fanout_trades_messages_for_rounds(benchmark):
    results = benchmark.pedantic(
        lambda: {f: converge_with(f) for f in (1, 2, 4)},
        rounds=1,
        iterations=1,
    )
    rounds = {f: r for f, (r, _) in results.items()}
    messages = {f: m for f, (_, m) in results.items()}
    assert rounds[4] <= rounds[1]
    assert messages[4] > messages[1]


def test_convergence_survives_heavy_loss():
    rounds_clean, _ = converge_with(fanout=2, loss=0.0)
    rounds_lossy, _ = converge_with(fanout=2, loss=0.7)
    # Anti-entropy converges either way; loss only changes the path.
    assert rounds_clean >= 0 and rounds_lossy >= 0
