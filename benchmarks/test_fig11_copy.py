"""Figure 11: COPY vs n -- O(n) for all three, curves close together."""

import pytest

from conftest import adjusted_slope, run_once

from repro.bench import fig11_copy


def test_fig11_copy(benchmark):
    result = run_once(benchmark, fig11_copy)
    for system in ("h2cloud", "swift", "dropbox"):
        # Fixed request costs sit under the curves at small n; judge
        # linearity on the baseline-adjusted fit.
        assert adjusted_slope(result.series_for(system).points) > 0.6, system

    # The three systems are within an order of magnitude of each other.
    ms_at_top = [
        result.series_for(system).ms_at(1000)
        for system in ("h2cloud", "swift", "dropbox")
    ]
    assert max(ms_at_top) < 10 * min(ms_at_top)

    # §1 headline: COPYing 1000 files costs ~10 seconds.
    h2_seconds = result.series_for("h2cloud").ms_at(1000) / 1000
    assert 3 < h2_seconds < 30


@pytest.mark.smoke
def test_fig11_smoke(benchmark):
    """Two-point quick slice for PR CI: COPY is O(n) for everyone."""
    result = run_once(benchmark, fig11_copy, [10, 50])
    h2 = result.series_for("h2cloud")
    assert h2.ms_at(50) > h2.ms_at(10)
