"""Figure 12: MKDIR -- constant; Swift fastest; H2/Dropbox acceptable."""

import pytest

from conftest import run_once, slope

from repro.bench import fig12_mkdir


def test_fig12_mkdir(benchmark):
    result = run_once(benchmark, fig12_mkdir)
    for system in ("h2cloud", "swift", "dropbox"):
        assert slope(result.series_for(system).points) < 0.2, system

    xs = [x for x, _ in result.series_for("swift").points]
    top = max(xs)
    swift_ms = result.series_for("swift").ms_at(top)
    h2_ms = result.series_for("h2cloud").ms_at(top)
    dropbox_ms = result.series_for("dropbox").ms_at(top)

    assert swift_ms < h2_ms  # Swift is, in fact, the fastest
    assert swift_ms < dropbox_ms
    # Paper: H2Cloud and Dropbox take 150-200 ms on average -- "well
    # acceptable".  Allow a generous band around it.
    assert 40 < h2_ms < 300
    assert 120 < dropbox_ms < 320


@pytest.mark.smoke
def test_fig12_smoke(benchmark):
    """Two-point quick slice for PR CI: MKDIR stays in the paper band."""
    result = run_once(benchmark, fig12_mkdir, [10, 100])
    h2 = result.series_for("h2cloud")
    assert 40 < h2.ms_at(100) < 300
