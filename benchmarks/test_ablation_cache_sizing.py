"""Ablation: descriptor-cache sizing under Zipfian lookup traffic.

Real traffic concentrates on hot directories; a modest File Descriptor
Cache absorbs most resolutions.  This ablation replays a skewed lookup
trace against H2Cloud at several cache capacities and reports hit rate
and mean lookup time -- the sizing curve an operator would use.
"""

from conftest import run_once

from repro.core import H2CloudFS, H2Config
from repro.simcloud import SwiftCluster
from repro.workloads import TreeSpec, generate, hot_lookup_trace, populate


def replay_at_capacity(capacity: int, n_ops: int = 800) -> tuple[float, float]:
    """(cache hit rate, mean lookup ms) for one capacity."""
    fs = H2CloudFS(
        SwiftCluster.rack_scale(),
        account="alice",
        config=H2Config(fd_cache_capacity=capacity),
    )
    tree = generate(TreeSpec(seed=31, target_files=200, max_depth=6))
    populate(fs, tree)
    trace = hot_lookup_trace(tree, n_ops, alpha=1.1, seed=32)
    fs.pump()
    fs.drop_caches()
    start = fs.clock.now_us
    for path in trace:
        fs.stat(path)
    elapsed_ms = (fs.clock.now_us - start) / 1000
    stats = fs.middlewares[0].fd_cache.stats
    return stats.hit_rate, elapsed_ms / n_ops


def test_cache_sizing_curve(benchmark):
    results = benchmark.pedantic(
        lambda: {cap: replay_at_capacity(cap) for cap in (1, 8, 64, 4096)},
        rounds=1,
        iterations=1,
    )
    hit_rates = {cap: hr for cap, (hr, _) in results.items()}
    mean_ms = {cap: ms for cap, (_, ms) in results.items()}

    # More capacity -> monotonically better hit rate and cheaper lookups.
    assert hit_rates[1] < hit_rates[8] < hit_rates[4096]
    assert mean_ms[4096] < mean_ms[8] < mean_ms[1]

    # Skew means a small cache already gets most of the benefit: going
    # 8 -> 4096 saves less than going 1 -> 8.
    assert (mean_ms[1] - mean_ms[8]) > (mean_ms[8] - mean_ms[4096])

    # A generous cache serves the hot set almost entirely from memory.
    assert hit_rates[4096] > 0.9
