"""Ablation (§3.3.3a): fake deletion + deferred compaction.

Fake deletion keeps DELETE at one patch (O(1)) but leaves tombstones
in the ring.  ``compact_on_use`` (the paper's "really removing the
tuple when the NameRing is in use") bounds the bloat; with it disabled
the ring keeps paying transfer and merge costs for dead tuples.
"""

from conftest import run_once

from repro.core import H2CloudFS, H2Config
from repro.simcloud import SwiftCluster


def churn_and_measure(compact_on_use: bool, churn: int = 400) -> tuple[float, int]:
    """(final LIST ms, stored ring bytes) after write+delete churn."""
    fs = H2CloudFS(
        SwiftCluster.rack_scale(),
        account="alice",
        config=H2Config(compact_on_use=compact_on_use),
    )
    fs.mkdir("/d")
    for i in range(churn):
        fs.write(f"/d/f{i:04d}", b"x")
        fs.delete(f"/d/f{i:04d}")
        if compact_on_use and i % 50 == 0:
            fs.listdir("/d")  # "in use": triggers compaction
    fs.pump()
    if compact_on_use:
        fs.listdir("/d")  # final in-use compaction
        fs.pump()
    fs.drop_caches()
    _, cost = fs.clock.measure(lambda: fs.listdir("/d"))
    mw = fs.middlewares[0]
    from repro.core import Namespace, namering_key

    ns = mw.lookup.resolve_dir("alice", "/d")
    ring_bytes = fs.store.get(namering_key(ns)).size
    return cost / 1000, ring_bytes


def test_compaction_bounds_tombstone_bloat(benchmark):
    (with_ms, with_bytes), (without_ms, without_bytes) = benchmark.pedantic(
        lambda: (churn_and_measure(True), churn_and_measure(False)),
        rounds=1,
        iterations=1,
    )
    # Without in-use compaction the stored ring keeps every tombstone.
    assert without_bytes > 10 * with_bytes
    # The bloat also shows up (mildly, at this churn) in LIST transfer.
    assert with_ms <= without_ms * 1.05

    # And deletion itself stays O(1) either way: one patch, no ring
    # rewrite on the client path.
    fs = H2CloudFS(SwiftCluster.rack_scale(), account="bob")
    fs.mkdir("/d")
    for i in range(200):
        fs.write(f"/d/f{i:04d}", b"x")
    fs.pump()
    fs.drop_caches()
    _, one = fs.clock.measure(lambda: fs.delete("/d/f0000"))
    _, two = fs.clock.measure(lambda: fs.delete("/d/f0199"))
    assert abs(one - two) < max(one, two)  # same order of magnitude
