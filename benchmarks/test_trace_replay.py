"""§5.1 methodology: one user workload replayed on all three systems."""

from conftest import run_once

from repro.bench.experiments import trace_replay


def test_trace_replay(benchmark):
    result = run_once(benchmark, trace_replay)

    totals = {}
    for note in result.notes:
        system, rest = note.split(":", 1)
        totals[system] = float(rest.rsplit("total", 1)[1].split("simulated")[0])

    # Warm caches + O(1) directory ops give H2Cloud the lowest total.
    assert totals["h2cloud"] < totals["swift"]
    # Dropbox pays its per-request metadata service cost on every op.
    assert totals["dropbox"] > totals["swift"]

    # Every op class got replayed on every system.
    for system in ("h2cloud", "swift", "dropbox"):
        assert len(result.series_for(system).points) >= 8
