"""Figure 8: RMDIR vs n -- the same shape as Figure 7."""

import pytest

from conftest import run_once, slope

from repro.bench import fig8_rmdir


def test_fig08_rmdir(benchmark):
    result = run_once(benchmark, fig8_rmdir)
    swift = result.series_for("swift").points
    h2 = result.series_for("h2cloud").points
    dropbox = result.series_for("dropbox").points

    assert slope(swift) > 0.7
    assert slope(h2) < 0.25
    assert slope(dropbox) < 0.25

    n_max = max(x for x, _ in swift)
    assert result.series_for("swift").ms_at(n_max) > 20 * result.series_for(
        "h2cloud"
    ).ms_at(n_max)

    # H2's RMDIR is a single fake-deletion patch: tens of ms, flat.
    assert all(ms < 500 for _, ms in h2)


@pytest.mark.smoke
def test_fig08_smoke(benchmark):
    """Two-point quick slice for PR CI: O(1) fake delete vs O(n)."""
    result = run_once(benchmark, fig8_rmdir, [10, 100])
    swift = result.series_for("swift")
    assert swift.ms_at(100) > swift.ms_at(10)
    assert 0 < result.series_for("h2cloud").ms_at(100)
