"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark regenerates one table/figure via the
:mod:`repro.bench` harness (simulated time), wraps the regeneration in
pytest-benchmark (wall time of the harness itself), and asserts the
*shape* the paper reports -- who wins, what grows, where the bands lie.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a regeneration exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def slope(points):
    from repro.bench import fit_power_law

    return fit_power_law(points).exponent


def adjusted_slope(points):
    """Slope with the additive fixed cost removed (fit_sweep)."""
    from repro.bench.complexity import fit_sweep

    return fit_sweep(points).exponent


@pytest.fixture(autouse=True)
def _quick_scale(monkeypatch):
    """Benchmarks always run the quick sweep unless the env overrides."""
    import os

    if "REPRO_BENCH_SCALE" not in os.environ:
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
