"""Wall-clock microbenchmarks of the core data structures.

Everything else under ``benchmarks/`` measures *simulated* time; these
measure real Python throughput of the hot structures -- the NameRing
merge, the formatter, the B-tree and the hash ring -- so a performance
regression in the reproduction itself (not the modelled system) shows
up in CI.
"""

import random

from repro.core import Child, NameRing, dumps_ring, loads_ring
from repro.simcloud import BTree, HashRing, Timestamp


def make_ring(n: int, offset: int = 0) -> NameRing:
    return NameRing(
        children={
            f"file{i:06d}": Child(
                name=f"file{i:06d}",
                timestamp=Timestamp(i + offset, i, 0),
                kind="file",
                size=i,
            )
            for i in range(n)
        }
    )


class TestNameRingThroughput:
    def test_merge_1000_children(self, benchmark):
        a = make_ring(1000)
        b = make_ring(1000, offset=500)
        merged = benchmark(lambda: a.merge(b))
        assert len(merged) == 1000

    def test_serialize_1000_children(self, benchmark):
        ring = make_ring(1000)
        data = benchmark(lambda: dumps_ring(ring))
        assert data.startswith(b"H2NR")

    def test_parse_1000_children(self, benchmark):
        data = dumps_ring(make_ring(1000))
        ring = benchmark(lambda: loads_ring(data))
        assert len(ring) == 1000

    def test_compaction_with_tombstones(self, benchmark):
        ring = make_ring(1000)
        ts = Timestamp(10_000, 1, 0)
        for i in range(0, 1000, 2):
            ring = ring.with_child(ring.get(f"file{i:06d}").tombstone(ts))
        compacted = benchmark(ring.compacted)
        assert len(compacted) == 500


class TestBTreeThroughput:
    def test_insert_10k(self, benchmark):
        keys = [f"/p/{i:06d}" for i in range(10_000)]

        def build():
            tree = BTree(min_degree=64)
            for key in keys:
                tree.insert(key, None)
            return tree

        tree = benchmark(build)
        assert len(tree) == 10_000

    def test_point_lookup_in_100k(self, benchmark):
        tree = BTree(min_degree=64)
        for i in range(100_000):
            tree.insert(f"/p/{i:07d}", i)
        rng = random.Random(1)
        probes = [f"/p/{rng.randrange(100_000):07d}" for _ in range(1000)]
        total = benchmark(lambda: sum(tree.get(p) for p in probes))
        assert total > 0

    def test_range_scan_10k_rows(self, benchmark):
        tree = BTree(min_degree=64)
        for i in range(20_000):
            tree.insert(f"/p/{i:07d}", i)
        rows = benchmark(lambda: tree.scan_from("/p/0005000", 10_000))
        assert len(rows) == 10_000


class TestHashRingThroughput:
    def test_placement_lookups(self, benchmark):
        ring = HashRing(replicas=3, vnodes=128)
        for node_id in range(1, 9):
            ring.add_node(node_id)
        keys = [f"f:{i}.1.0::file{i}" for i in range(2000)]
        placements = benchmark(lambda: [ring.nodes_for(k) for k in keys])
        assert len(placements) == 2000

    def test_ring_construction(self, benchmark):
        def build():
            ring = HashRing(replicas=3, vnodes=128)
            for node_id in range(1, 17):
                ring.add_node(node_id)
            return ring

        ring = benchmark(build)
        assert len(ring) == 16
