"""§1 headline numbers: LIST 1000 ~ 0.35 s, COPY 1000 ~ 10 s."""

from conftest import run_once

from repro.bench import headline_numbers


def test_headline_numbers(benchmark):
    result = run_once(benchmark, headline_numbers)
    list_ms = result.series_for("h2cloud").ms_at(1)
    copy_ms = result.series_for("h2cloud").ms_at(2)
    assert 150 < list_ms < 700  # paper: ~350 ms
    assert 3_000 < copy_ms < 30_000  # paper: ~10 s
