"""Figure 10: LIST vs m -- everyone O(m); Swift slowest; H2 headline."""

import pytest

from conftest import run_once, slope

from repro.bench import fig10_list_vs_m


def test_fig10_list_vs_m(benchmark):
    result = run_once(benchmark, fig10_list_vs_m)
    swift = result.series_for("swift").points
    h2 = result.series_for("h2cloud").points

    assert slope(swift) > 0.6
    assert slope(h2) > 0.4  # fixed resolution costs soften the low end

    # Ordering at m = 1000: Swift > (Dropbox ~ H2).
    swift_ms = result.series_for("swift").ms_at(1000)
    h2_ms = result.series_for("h2cloud").ms_at(1000)
    dropbox_ms = result.series_for("dropbox").ms_at(1000)
    assert swift_ms > 2 * h2_ms
    assert 0.2 * h2_ms < dropbox_ms < 5 * h2_ms

    # §1 headline: LISTing 1000 files costs just ~0.35 s.
    assert 150 < h2_ms < 700


@pytest.mark.smoke
def test_fig10_smoke(benchmark):
    """Two-point quick slice for PR CI: LIST grows with m for everyone."""
    result = run_once(benchmark, fig10_list_vs_m, [10, 100])
    h2 = result.series_for("h2cloud")
    assert h2.ms_at(100) > h2.ms_at(10)
