"""Table 1: measured complexity class of every system and operation.

The harness sweeps each of the nine data structures over workload
scale (and depth, where the claim is about d), fits the scaling
exponent, and compares against the paper's claimed class.
"""

from conftest import run_once

from repro.bench import table1_complexity


def test_table1_complexity(benchmark):
    result = run_once(benchmark, table1_complexity)
    mismatches = [note for note in result.notes if note.endswith("MISMATCH")]
    assert not mismatches, "complexity classes diverged:\n" + "\n".join(mismatches)
    # All 9 systems x 5 operations were measured.
    assert len(result.notes) == 45
