"""The seed corpus: failing DST runs persisted as regression cases.

Every schedule the explorer finds that violates an invariant -- ideally
after shrinking -- is saved as one JSON document under
``tests/dst_corpus/``.  A corpus case records the schedule (config,
seed, steps, optional tweak hook), the violations observed and the run
digest, so a later session can re-execute it exactly:

    python -m repro dst replay tests/dst_corpus/<case>.json

``load_case`` also accepts a bare schedule document, so hand-written
schedules replay through the same door.
"""

from __future__ import annotations

import json
import os

from .runner import RunResult
from .schedule import FORMAT as SCHEDULE_FORMAT
from .schedule import Schedule

CORPUS_FORMAT = "h2cloud-dst-corpus-v1"
DEFAULT_DIR = os.path.join("tests", "dst_corpus")


def corpus_entry(result: RunResult) -> dict:
    """The JSON document recording one failing run."""
    return {
        "format": CORPUS_FORMAT,
        "seed": result.schedule.seed,
        "schedule": result.schedule.to_json(),
        "violations": [
            {"check": v.check, "detail": v.detail} for v in result.violations
        ],
        "digest": result.digest,
        "tree_hash": result.tree_hash,
        "counters": dict(result.counters),
    }


def case_name(result: RunResult) -> str:
    return f"seed{result.schedule.seed}-{result.digest[:12]}.json"


def save_case(result: RunResult, directory: str = DEFAULT_DIR) -> str:
    """Persist one failing run; returns the file path written."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, case_name(result))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(corpus_entry(result), fh, ensure_ascii=False, indent=2)
        fh.write("\n")
    return path


def save_trace(result: RunResult, directory: str = DEFAULT_DIR) -> str | None:
    """Persist a failing run's captured trace next to its corpus case.

    Written as ``<case>.trace.json`` in Chrome Trace Event format, so
    the repro for a failing schedule ships with the span tree of what
    the deployment was doing.  Returns the path, or None when the run
    carried no tracer (``capture_trace=False``) or recorded nothing.
    """
    tracer = result.tracer
    if tracer is None or not tracer.spans:
        return None
    from ..obs.export import write_chrome_trace

    os.makedirs(directory, exist_ok=True)
    stem = case_name(result)[: -len(".json")]
    path = os.path.join(directory, f"{stem}.trace.json")
    write_chrome_trace(tracer, path)
    return path


def save_critpath(result: RunResult, directory: str = DEFAULT_DIR) -> str | None:
    """Persist a traced run's critical-path report next to its case.

    Written as ``<case>.critpath.json``: the tail-attribution report
    over the captured span trees, so a saved failure answers "where did
    the time go" without replaying anything.  Returns the path, or None
    when the run carried no tracer or no ``op.*`` roots finished.
    """
    tracer = result.tracer
    if tracer is None or not tracer.spans:
        return None
    from ..obs.critpath import analyze, tail_report, write_critpath

    attributions = analyze(tracer)
    if not attributions:
        return None
    os.makedirs(directory, exist_ok=True)
    stem = case_name(result)[: -len(".json")]
    path = os.path.join(directory, f"{stem}.critpath.json")
    write_critpath(tail_report(attributions), path)
    return path


def load_case(path: str) -> tuple[Schedule, dict]:
    """(schedule, metadata) from a corpus case or bare schedule file."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") == CORPUS_FORMAT:
        return Schedule.from_json(doc["schedule"]), doc
    if doc.get("format") == SCHEDULE_FORMAT:
        return Schedule.from_json(doc), {}
    raise ValueError(f"{path}: neither a corpus case nor a schedule")


def corpus_cases(directory: str = DEFAULT_DIR) -> list[str]:
    """All corpus case paths, sorted for deterministic iteration.

    ``*.trace.json`` / ``*.critpath.json`` companions (captured failure
    traces and their tail-attribution reports) are not cases and are
    excluded.
    """
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".json")
        and not name.endswith((".trace.json", ".critpath.json"))
    )
