"""`repro.dst` -- deterministic simulation testing for H2Cloud.

A seeded schedule explorer drives N concurrent client sessions against
a simulated deployment while interleaving single gossip deliveries,
merger steps, GC passes, cache drops, node crash/recover cycles and
transient-fault storms at explorer-chosen points -- all on the
simulated clock, bit-reproducible from the seed.  After quiesce an
oracle checks model equivalence, view convergence, structural
integrity (fsck), garbage accounting and replica agreement; failing
schedules are shrunk with delta debugging and persisted to a seed
corpus for replay.  See ``docs/TESTING.md``.
"""

from .explorer import DstConfig, ScheduleExplorer, faulty_config, interleave_sessions
from .ops import ClientOp, HOSTILE_NAMES, ILLEGAL_NAMES, OpGenerator, payload_for
from .oracle import InvariantViolation, check_invariants
from .runner import RunResult, run_schedule, run_seed
from .schedule import Schedule, Step
from .shrink import shrink

__all__ = [
    "ClientOp",
    "DstConfig",
    "HOSTILE_NAMES",
    "ILLEGAL_NAMES",
    "InvariantViolation",
    "OpGenerator",
    "RunResult",
    "Schedule",
    "ScheduleExplorer",
    "Step",
    "check_invariants",
    "faulty_config",
    "interleave_sessions",
    "payload_for",
    "run_schedule",
    "run_seed",
    "shrink",
]
