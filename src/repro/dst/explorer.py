"""Seeded schedule exploration: turning a seed into one full history.

The :class:`ScheduleExplorer` owns every random decision of a DST run
*up front*: it draws the per-session operation streams, then weaves
them into a single total order interspersed with background-protocol
steps (single gossip deliveries, merger steps, GC passes, cache drops,
anti-entropy rounds), node crash/recover cycles and fault-plan storm
windows, and explicit clock advances.  The output is a plain
:class:`~repro.dst.schedule.Schedule`; the runner that executes it
makes no random choices of its own, which is what makes the pair
(seed -> schedule -> run) bit-reproducible.

Crash scheduling respects ``max_down`` so a replica-3 cluster never
loses quorum entirely; recovery is always re-injected before the
stream runs dry, and the runner's quiesce phase recovers any node a
shrunk schedule leaves down.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass

from .ops import ClientOp, OpGenerator
from .schedule import Schedule, Step


@dataclass(frozen=True)
class DstConfig:
    """Knobs of one DST run; serialised into the schedule verbatim."""

    sessions: int = 3
    middlewares: int = 3
    ops_per_session: int = 25
    storage_nodes: int = 6
    replicas: int = 3
    vnodes: int = 16
    latency: str = "rack"  # "rack" | "zero"
    message_loss: float = 0.0
    io_error_rate: float = 0.0
    timeout_rate: float = 0.0
    slow_rate: float = 0.0
    max_down: int = 1
    crash_rate: float = 0.0  # per-step probability of starting a crash cycle
    storm_rate: float = 0.0  # per-step probability of opening a fault window
    # Silent-corruption regime (all default off so pre-integrity corpus
    # schedules replay bit-identically):
    bitrot_rate: float = 0.0  # per-read replica rot inside storm windows
    torn_write_rate: float = 0.0  # p(crash event tears the last write)
    corrupt_rate: float = 0.0  # per-step probability of a corrupt event
    scrub_rate: float = 0.0  # per-step probability of a scrub pass
    hostile_name_rate: float = 0.15
    check_model: bool = True
    # Traffic-reduction flags (all default off so pre-traffic corpus
    # schedules replay bit-identically; ``from_json`` drops unknown
    # keys, so old schedule files stay loadable either way):
    negative_cache: bool = False
    group_commit: bool = False
    group_commit_window_us: int = 200_000
    gossip_digests: bool = False
    memoize_serialization: bool = False
    flush_rate: float = 0.0  # per-step probability of a group flush
    # Elastic membership (all default off so pre-membership corpus
    # schedules replay bit-identically -- same rate-guard idiom as the
    # corruption and traffic knobs above):
    membership_rate: float = 0.0  # per-step p(open an epoch transition)
    rebalance_rate: float = 0.0  # per-step p(one bounded migration batch)
    max_membership: int = 3  # cap on transitions per schedule
    # Network partitions (all default off so pre-partition corpus
    # schedules replay bit-identically -- rate-guard idiom again):
    partition_rate: float = 0.0  # per-step p(opening a partition cut)
    max_partitions: int = 2  # cap on concurrently open cuts
    hinted_handoff: bool = False  # arm the sloppy-quorum hint store
    # Sharded NameRings (default off so pre-shard corpus schedules
    # replay bit-identically -- rate-guard idiom again).  The DST
    # thresholds are tiny so ordinary op counts cross the split point.
    sharded_rings: bool = False
    shard_split_threshold: int = 1024
    shard_merge_threshold: int = 256
    shard_target_entries: int = 512

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, doc: dict) -> "DstConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in doc.items() if k in known})


#: A config with faults on -- what ``dst run`` uses by default.
def faulty_config(**overrides) -> DstConfig:
    base = dict(
        message_loss=0.05,
        io_error_rate=0.08,
        timeout_rate=0.03,
        slow_rate=0.08,
        crash_rate=0.03,
        storm_rate=0.04,
    )
    base.update(overrides)
    return DstConfig(**base)


#: The corruption-storm mix -- silent corruption (scheduled bit-rot,
#: per-read rot inside storm windows, torn writes on crash) layered on a
#: moderated transient-fault diet, with scrub passes woven in so healing
#: races the damage.  ``dst run --corruption`` / the nightly
#: corruption-storm sweep use this.
def corruption_config(**overrides) -> DstConfig:
    base = dict(
        message_loss=0.02,
        io_error_rate=0.04,
        timeout_rate=0.02,
        slow_rate=0.04,
        crash_rate=0.03,
        storm_rate=0.04,
        bitrot_rate=0.002,
        torn_write_rate=0.3,
        corrupt_rate=0.06,
        scrub_rate=0.04,
    )
    base.update(overrides)
    return DstConfig(**base)


def with_membership_steps(config: DstConfig) -> DstConfig:
    """``config`` with elastic-membership churn woven into the run.

    Used by ``dst run|sweep|shrink --membership``: node joins, graceful
    drains and crash-style removals open epoch transitions mid-run, and
    explicit ``rebalance`` steps drain the migration plan in bounded
    batches *between* client ops, faults and corruption events -- the
    dual-ownership window stays open across whatever the rest of the
    schedule throws at it.  The V7 oracle then insists that after
    quiesce no object is lost, unreadable, or double-owned.
    """
    from dataclasses import replace

    return replace(config, membership_rate=0.02, rebalance_rate=0.20)


def with_partition_steps(config: DstConfig) -> DstConfig:
    """``config`` with link-level network partitions woven into the run.

    Used by ``dst run|sweep|shrink --partitions``: scheduled cuts sever
    one middleware from a minority of storage nodes (and sometimes from
    its gossip peers), then heal a bounded number of steps later.
    Hinted handoff is armed so sloppy-quorum writes park durable hints
    on fallback nodes while the cut is open; the V8 oracle then insists
    that after every cut heals and the hint store drains, no
    acknowledged write is lost and no hint is stranded.
    """
    from dataclasses import replace

    return replace(config, partition_rate=0.04, hinted_handoff=True)


def with_sharded_rings(config: DstConfig) -> DstConfig:
    """``config`` with sharded NameRings armed at DST-sized thresholds.

    Used by ``dst run|sweep|shrink --sharded``: real deployments split
    at ~1k children, but DST directories hold tens of names, so the
    split point drops to 8 (merge back at 3, ~5 entries per shard) --
    ordinary schedules then cross the split, steady-state, reshard and
    collapse transitions, and every crash/corruption/partition event
    can land between a shard PUT and its manifest flip.  V1-V8 run
    unchanged: the oracles read through ``load_ring``/fsck, which
    reassemble sharded directories transparently.
    """
    from dataclasses import replace

    return replace(
        config,
        sharded_rings=True,
        shard_split_threshold=8,
        shard_merge_threshold=3,
        shard_target_entries=5,
    )


def with_traffic_flags(config: DstConfig) -> DstConfig:
    """``config`` with every traffic-reduction mechanism switched on.

    Used by ``dst run|sweep|shrink --traffic``: the same schedules run
    with negative caching, group commit, gossip digests and PUT elision
    active, plus explicit ``flush_groups`` steps woven in so open
    group-commit windows are closed at adversarial moments, not only at
    merge time.
    """
    from dataclasses import replace

    return replace(
        config,
        negative_cache=True,
        group_commit=True,
        gossip_digests=True,
        memoize_serialization=True,
        flush_rate=0.10,
    )


# Background / environment steps the explorer can weave between ops.
# Probabilities are per inter-op gap, evaluated independently.
_BG_WEIGHTS = (
    ("gossip_one", 0.30),
    ("merge", 0.25),
    ("advance", 0.20),
    ("gossip_round", 0.10),
    ("drop_caches", 0.08),
    ("gc", 0.05),
    ("anti_entropy", 0.02),
)


class ScheduleExplorer:
    """Expands ``(seed, config)`` into one deterministic schedule."""

    def __init__(self, seed: int, config: DstConfig | None = None):
        self.seed = seed
        self.config = config or DstConfig()

    def explore(self) -> Schedule:
        cfg = self.config
        rng = random.Random(f"{self.seed}:schedule")
        streams = OpGenerator(
            self.seed, hostile_name_rate=cfg.hostile_name_rate
        ).streams(cfg.sessions, cfg.ops_per_session)
        steps: list[Step] = []
        cursors = [0] * cfg.sessions
        down: list[int] = []  # nodes currently crashed, with a recovery due
        recover_after = 0  # steps until the pending recovery is emitted
        # Elastic membership bookkeeping: which node ids the explorer
        # believes exist (the runner re-validates -- a drain aimed at an
        # already-departed node deterministically reports ``busy`` or
        # ``no_such_node`` rather than failing).
        population = list(range(1, cfg.storage_nodes + 1))
        next_node = cfg.storage_nodes + 1
        transitions = 0
        # Partition bookkeeping: open cuts as [cut_id, steps_until_heal]
        # (same shape as the crash/recover cycle above -- the tail heals
        # anything still open so hand-read schedules stay honest).
        open_cuts: list[list] = []
        next_cut = 0
        while True:
            live = [
                k for k in range(cfg.sessions) if cursors[k] < len(streams[k])
            ]
            if not live:
                break
            # Fault machinery between ops.
            if down:
                recover_after -= 1
                if recover_after <= 0:
                    steps.append(
                        Step("recover", args={"node": down.pop(0), "delay_us": 0})
                    )
            elif cfg.crash_rate and rng.random() < cfg.crash_rate:
                node = rng.randrange(cfg.storage_nodes) + 1  # node ids are 1-based
                if len(down) < cfg.max_down:
                    steps.append(
                        Step("crash", args={"node": node, "delay_us": 0})
                    )
                    down.append(node)
                    recover_after = rng.randint(3, 12)
            if cfg.storm_rate and rng.random() < cfg.storm_rate:
                steps.append(
                    Step(
                        "storm_on",
                        args={"duration_us": rng.randint(20_000, 200_000)},
                    )
                )
            # Silent corruption (rate guards keep the rng stream
            # untouched for configs predating the integrity regime, so
            # old corpus schedules re-explore bit-identically).
            if cfg.corrupt_rate and rng.random() < cfg.corrupt_rate:
                steps.append(
                    Step(
                        "corrupt",
                        args={
                            "node": rng.randrange(cfg.storage_nodes) + 1,
                            "mode": rng.choice(["bitflip", "truncate"]),
                        },
                    )
                )
            if cfg.scrub_rate and rng.random() < cfg.scrub_rate:
                steps.append(Step("scrub"))
            # Group-commit flush points (rate guard: the rng stream is
            # untouched when the traffic flags are off, so pre-traffic
            # schedules re-explore bit-identically).
            if cfg.flush_rate and rng.random() < cfg.flush_rate:
                steps.append(
                    Step(
                        "flush_groups",
                        args={"mw": rng.randrange(cfg.middlewares)},
                    )
                )
            # Elastic membership churn (rate guards again: with the
            # knobs at 0 the rng stream is untouched, so pre-membership
            # schedules re-explore bit-identically).
            if cfg.membership_rate and rng.random() < cfg.membership_rate:
                if transitions < cfg.max_membership:
                    roll = rng.random()
                    if roll < 0.45 or len(population) <= cfg.replicas:
                        steps.append(Step("add_node"))
                        population.append(next_node)
                        next_node += 1
                    else:
                        victim = population[rng.randrange(len(population))]
                        kind = "drain_node" if roll < 0.80 else "remove_node"
                        steps.append(Step(kind, args={"node": victim}))
                        population.remove(victim)
                    transitions += 1
            if cfg.rebalance_rate and rng.random() < cfg.rebalance_rate:
                steps.append(
                    Step("rebalance", args={"max": rng.choice((4, 8, 16))})
                )
            # Network partition cuts (rate guard: with partition_rate at
            # 0 the rng stream is untouched, so pre-partition schedules
            # re-explore bit-identically).
            if cfg.partition_rate:
                for entry in open_cuts:
                    entry[1] -= 1
                while open_cuts and open_cuts[0][1] <= 0:
                    cut_id, _ = open_cuts.pop(0)
                    steps.append(Step("heal", args={"cut": cut_id}))
                if rng.random() < cfg.partition_rate:
                    if len(open_cuts) < cfg.max_partitions:
                        mw = rng.randrange(cfg.middlewares)
                        pool = sorted(population)
                        # Minority cuts only: the majority side keeps
                        # quorum, so sloppy writes can park hints.
                        count = rng.randint(1, max(1, len(pool) // 2))
                        nodes = sorted(rng.sample(pool, min(count, len(pool))))
                        cut = f"c{next_cut}"
                        next_cut += 1
                        steps.append(
                            Step(
                                "partition",
                                args={
                                    "cut": cut,
                                    "mw": mw,
                                    "nodes": nodes,
                                    "gossip": rng.random() < 0.35,
                                    "mode": rng.choice(
                                        ("both", "both", "in", "out")
                                    ),
                                },
                            )
                        )
                        open_cuts.append([cut, rng.randint(4, 15)])
            # Background protocol steps.
            for kind, p in _BG_WEIGHTS:
                if rng.random() >= p:
                    continue
                if kind == "merge" or kind == "gc" or kind == "drop_caches":
                    steps.append(
                        Step(kind, args={"mw": rng.randrange(cfg.middlewares)})
                    )
                elif kind == "advance":
                    steps.append(
                        Step("advance", args={"delta_us": rng.randint(500, 50_000)})
                    )
                else:
                    steps.append(Step(kind))
            # One client op from a randomly chosen live session.
            k = rng.choice(live)
            steps.append(Step("op", session=k, op=streams[k][cursors[k]]))
            cursors[k] += 1
        # Leave no node down and no storm open past the scripted part:
        # the runner's quiesce also enforces this, but an explicit tail
        # keeps hand-read schedules honest.
        for node in down:
            steps.append(Step("recover", args={"node": node, "delay_us": 0}))
        for cut_id, _ in open_cuts:
            steps.append(Step("heal", args={"cut": cut_id}))
        steps.append(Step("storm_off"))
        return Schedule(seed=self.seed, config=cfg.to_json(), steps=steps)


def interleave_sessions(
    ops_by_session: list[list[ClientOp]],
    seed: int,
    config: DstConfig | None = None,
) -> Schedule:
    """Weave explicit per-session op lists into a DST schedule.

    The integration tests use this to run hand-written concurrency
    scenarios (the old fixed interleavings) under many explorer-chosen
    interleavings: per-session order is preserved, the cross-session
    order and the background steps vary with ``seed``.
    """
    cfg = config or DstConfig(sessions=len(ops_by_session), check_model=False)
    if cfg.sessions != len(ops_by_session):
        raise ValueError("config.sessions must match ops_by_session")
    rng = random.Random(f"{seed}:interleave")
    steps: list[Step] = []
    cursors = [0] * len(ops_by_session)
    while True:
        live = [
            k for k in range(len(ops_by_session))
            if cursors[k] < len(ops_by_session[k])
        ]
        if not live:
            break
        for kind, p in _BG_WEIGHTS:
            if rng.random() >= p:
                continue
            if kind in ("merge", "gc", "drop_caches"):
                steps.append(
                    Step(kind, args={"mw": rng.randrange(cfg.middlewares)})
                )
            elif kind == "advance":
                steps.append(
                    Step("advance", args={"delta_us": rng.randint(500, 50_000)})
                )
            else:
                steps.append(Step(kind))
        k = rng.choice(live)
        steps.append(Step("op", session=k, op=ops_by_session[k][cursors[k]]))
        cursors[k] += 1
    return Schedule(seed=seed, config=cfg.to_json(), steps=steps)
