"""Client operations for deterministic simulation testing.

A DST run drives N concurrent client *sessions* against one H2Cloud
account.  Each session is pinned to one middleware (sticky load
balancing) and owns a private subtree ``/s<k>`` where it may use the
full operation vocabulary; all sessions additionally contend on a small
pool of *shared* files directly under ``/shared`` (write / delete /
read races -- the delete-then-recreate and lost-update scenarios the
NameRing's last-writer-wins merge must resolve) and mint fresh
session-prefixed entries in the account root (so the root ring sees
patch and gossip traffic too).

Ops are plain serialisable data: a schedule that contains its ops can
be replayed and shrunk without re-running the generator, which is what
makes delta-debugging a failing run possible.

The generator tracks an *optimistic* model of each session's subtree,
so own-subtree ops are valid whenever the run is fault-free; under
injected faults an op may legitimately fail at run time, and the runner
treats filesystem errors as outcomes rather than test failures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

# ----------------------------------------------------------------------
# hostile-but-legal names (unicode, whitespace, lookalikes) -- the pool
# the generator draws from and the web-API fuzz tests reuse.  Every
# entry passes ``namespace.validate_name``.
# ----------------------------------------------------------------------
HOSTILE_NAMES: tuple[str, ...] = (
    "café",
    "naïve.txt",
    "日本語ファイル",
    "файл",
    "ملف",
    "🙂🚀",
    "a b c",
    " leading-space",
    "trailing-space ",
    "...",
    "..hidden",
    "-rf",
    "~tilde",
    "name\twith\ttabs",
    "ZWJ‍name",
    "NFC-é",
    "NFD-é",
    "𝒻𝒶𝓃𝒸𝓎",
    "x" * 120,
    "%2F",
    "CON",
    "aux.txt",
)

# Names that ``validate_name`` must reject -- the web-API fuzzer throws
# these at the service expecting a clean 4xx, never a traceback.
ILLEGAL_NAMES: tuple[str, ...] = (
    "",
    ".",
    "..",
    "a/b",
    "a::b",
    "nl\nname",
    "nul\x00name",
)

_OP_KINDS = (
    "mkdir",
    "rmdir",
    "write",
    "delete",
    "read",
    "list",
    "stat",
    "move",
    "rename",
    "copy",
)


@dataclass(frozen=True)
class ClientOp:
    """One client call: kind + path (+ destination for move/copy).

    ``account`` is ``None`` for classic DST runs (every session shares
    the one ``dst`` account); the multi-tenant scenario suite sets it so
    one schedule can interleave ops across thousands of tenants.  Old
    corpus JSON has no ``account`` field and round-trips unchanged.
    """

    kind: str
    path: str
    dest: str | None = None
    tag: int = 0  # drives the deterministic payload for writes
    account: str | None = None  # multi-tenant scenarios; None = shared "dst"

    def __post_init__(self) -> None:
        if self.kind not in _OP_KINDS:
            raise ValueError(f"unknown op kind: {self.kind!r}")

    def to_json(self) -> dict:
        doc: dict = {"kind": self.kind, "path": self.path}
        if self.dest is not None:
            doc["dest"] = self.dest
        if self.tag:
            doc["tag"] = self.tag
        if self.account is not None:
            doc["account"] = self.account
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "ClientOp":
        return cls(
            kind=doc["kind"],
            path=doc["path"],
            dest=doc.get("dest"),
            tag=doc.get("tag", 0),
            account=doc.get("account"),
        )

    def describe(self) -> str:
        prefix = f"{self.account}:" if self.account is not None else ""
        if self.dest is not None:
            return f"{prefix}{self.kind} {self.path} -> {self.dest}"
        return f"{prefix}{self.kind} {self.path}"


def payload_for(op: ClientOp) -> bytes:
    """The deterministic content a write op stores (small, unique)."""
    return f"{op.path}#{op.tag}".encode("utf-8")


SHARED_DIR = "/shared"
SHARED_POOL = tuple(f"{SHARED_DIR}/k{i}" for i in range(6))


def session_root(session: int) -> str:
    return f"/s{session}"


_DEFAULT_WEIGHTS = {
    "write": 0.26,
    "read": 0.14,
    "mkdir": 0.10,
    "delete": 0.08,
    "list": 0.07,
    "stat": 0.05,
    "move": 0.05,
    "rename": 0.04,
    "copy": 0.04,
    "rmdir": 0.04,
    "shared_write": 0.06,
    "shared_delete": 0.04,
    "shared_read": 0.02,
    "root_mkdir": 0.03,
    "root_rmdir": 0.02,
}


class OpGenerator:
    """Seeded generator of per-session operation streams.

    ``streams(sessions, ops_per_session)`` returns one list of
    :class:`ClientOp` per session.  Own-subtree ops are tracked against
    an optimistic model so they are valid when executed in per-session
    order; shared-pool and root-level ops are intentionally racy.
    """

    def __init__(self, seed: int, hostile_name_rate: float = 0.15):
        self._seed = seed
        self._hostile_rate = hostile_name_rate

    def streams(self, sessions: int, ops_per_session: int) -> list[list[ClientOp]]:
        return [
            self._session_stream(k, ops_per_session)
            for k in range(sessions)
        ]

    # ------------------------------------------------------------------
    def _session_stream(self, session: int, n_ops: int) -> list[ClientOp]:
        rng = random.Random(f"{self._seed}:session:{session}")
        root = session_root(session)
        dirs = [root]  # own dirs, insertion order
        files: list[str] = []  # own files
        root_dirs: list[str] = []  # session-minted root-level dirs
        serial = 0
        ops: list[ClientOp] = []
        while len(ops) < n_ops:
            kind = self._pick(rng)
            serial += 1
            op = self._make(kind, rng, session, serial, dirs, files, root_dirs)
            if op is not None:
                ops.append(op)
        return ops

    def _pick(self, rng: random.Random) -> str:
        roll = rng.random()
        cumulative = 0.0
        for kind, weight in _DEFAULT_WEIGHTS.items():
            cumulative += weight
            if roll <= cumulative:
                return kind
        return "write"

    def _fresh_name(self, rng: random.Random, stem: str, serial: int) -> str:
        if rng.random() < self._hostile_rate:
            # Hostile names are suffixed to stay unique per session.
            return f"{rng.choice(HOSTILE_NAMES)}-{stem}{serial}"
        return f"{stem}{serial:04d}"

    def _make(
        self,
        kind: str,
        rng: random.Random,
        session: int,
        serial: int,
        dirs: list[str],
        files: list[str],
        root_dirs: list[str],
    ) -> ClientOp | None:
        if kind == "mkdir":
            parent = rng.choice(dirs)
            path = f"{parent}/{self._fresh_name(rng, 'd', serial)}"
            dirs.append(path)
            return ClientOp("mkdir", path)
        if kind == "write":
            if files and rng.random() < 0.35:  # overwrite / recreate
                path = rng.choice(files)
            else:
                parent = rng.choice(dirs)
                path = f"{parent}/{self._fresh_name(rng, 'f', serial)}"
                files.append(path)
            return ClientOp("write", path, tag=serial)
        if kind == "delete":
            if not files:
                return None
            path = rng.choice(files)
            # Half the time keep the name on the books so a later write
            # recreates it -- fake-delete resurrection through the
            # tombstone is exactly the path worth hammering.
            if rng.random() < 0.5:
                files.remove(path)
            return ClientOp("delete", path)
        if kind == "read" or kind == "stat":
            if not files:
                return None
            return ClientOp(kind, rng.choice(files))
        if kind == "list":
            return ClientOp("list", rng.choice(dirs))
        if kind in ("move", "rename", "copy"):
            if not files:
                return None
            src = rng.choice(files)
            if kind == "rename":
                dest = src.rsplit("/", 1)[0] + f"/r{serial:04d}"
            else:
                dest = f"{rng.choice(dirs)}/{kind[0]}{serial:04d}"
            if dest == src:
                return None
            if kind == "copy":
                files.append(dest)
            else:
                if src in files:
                    files.remove(src)
                files.append(dest)
            return ClientOp(kind, src, dest=dest)
        if kind == "rmdir":
            candidates = [d for d in dirs if d != session_root(session)]
            if not candidates:
                return None
            path = rng.choice(candidates)
            prefix = path + "/"
            dirs[:] = [d for d in dirs if d != path and not d.startswith(prefix)]
            files[:] = [f for f in files if not f.startswith(prefix)]
            return ClientOp("rmdir", path)
        if kind == "shared_write":
            return ClientOp("write", rng.choice(SHARED_POOL), tag=serial)
        if kind == "shared_delete":
            return ClientOp("delete", rng.choice(SHARED_POOL))
        if kind == "shared_read":
            return ClientOp("read", rng.choice(SHARED_POOL))
        if kind == "root_mkdir":
            path = f"/x{session}-{serial:04d}"
            root_dirs.append(path)
            return ClientOp("mkdir", path)
        if kind == "root_rmdir":
            if not root_dirs:
                return None
            path = root_dirs.pop(rng.randrange(len(root_dirs)))
            return ClientOp("rmdir", path)
        return None  # pragma: no cover - weight table is exhaustive
