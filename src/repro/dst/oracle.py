"""The DST oracle: what must be true of a quiesced deployment.

After the runner executes a schedule and drives the system to quiesce
(all nodes recovered, faults off, repair swept, mergers drained, gossip
converged, GC run), these checks must all hold:

* **V1 model equivalence** -- the filesystem tree equals the
  :class:`~repro.testing.model.ModelFS` mirror built from the ops that
  succeeded, in schedule order.  Sound because every child timestamp
  comes from the cluster's single strictly-increasing factory, so
  last-writer-wins order *is* schedule order.  Skipped when a mutating
  op died of a storage-layer error (a half-applied multi-object op may
  legitimately diverge from an all-or-nothing model).
* **V2 view convergence** -- every middleware walks the same tree: the
  NameRing CRDT plus gossip/anti-entropy converged all local versions.
* **V3 structural integrity** -- :class:`~repro.tools.fsck.H2Fsck`
  finds no broken invariants (I1-I4) and no degraded replica sets
  (outages were repaired).
* **V4 no leaked objects** -- after GC, fsck reports no unreachable
  ``dir:``/``nr:``/``f:``/``patch:`` garbage.
* **V5 replica agreement** -- no object's surviving replicas diverge
  (fsck I7): recoveries plus repair restored bit-identical copies.
* **V6 no undetected corruption** -- after the quiesce-time scrub,
  every present replica of every object verifies against its
  write-time checksum, except objects the store *loudly* reported
  unrecoverable (``store.unrecoverable``).  Together with V1/V5 this
  closes the integrity loop: corruption injected during the run was
  either healed (read-repair, repair sweep, scrub) or reported --
  never silently retained, and (by the verified read path) never
  served.
* **V7 membership convergence** -- after quiesce no epoch transition
  is still open (every migration window drained and finalized), and
  every registered object is held by *exactly* its current replica
  set: no partition lost (a replica missing from an owner), none
  double-owned (a stray replica on a node outside the owner set --
  e.g. an old-epoch owner that was never released, or a departed
  epoch's copy resurrected by repair).  Holds vacuously for schedules
  without membership steps, so it runs unconditionally.
* **V8 heal convergence** -- only when hinted handoff was armed
  (``--partitions`` runs): after every partition cut healed and the
  hint-delivery sweeper drained, (a) no cut is still open, (b) the
  hint store is empty (no hint stranded on a fallback), and (c) every
  *acknowledged* write survives -- its name is deleted, loudly
  unrecoverable, or some current ring owner holds a verified replica
  at least as new as the acknowledged timestamp.  This is the whole
  point of sloppy quorum: availability during the partition must not
  cost durability after it.

Unrecoverable objects -- every replica rotted, nothing to heal from --
are a *legal* outcome of a corruption storm provided they are reported:
the tree snapshots mark them with a sentinel and V1 compares around
them (the model still remembers bytes no replica can produce).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.namering import KIND_DIR
from ..simcloud.errors import CorruptObjectError
from ..simcloud.integrity import verify_record
from ..testing.model import ModelFS, snapshot_of, tree_hash
from ..tools.fsck import H2Fsck

#: Snapshot value for paths whose object has no verified replica left:
#: deterministic (same store -> same verdict on every middleware) so
#: view convergence still hashes equal, and excluded from V1.
UNREADABLE = b"\x00<unrecoverable>\x00"


@dataclass(frozen=True)
class InvariantViolation:
    """One broken promise, with enough detail to debug the repro."""

    check: str  # "V1".."V5" | "crash" | "quiesce" | "read"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.check}] {self.detail}"


def _diff_trees(expected: dict, actual: dict, limit: int = 5) -> str:
    lines: list[str] = []
    for path in sorted(set(expected) | set(actual)):
        if len(lines) >= limit:
            lines.append("...")
            break
        want, got = expected.get(path, "<absent>"), actual.get(path, "<absent>")
        if want != got:
            want_s = "<dir>" if want is None else repr(want)[:40]
            got_s = "<dir>" if got is None else repr(got)[:40]
            lines.append(f"{path}: model={want_s} fs={got_s}")
    return "; ".join(lines)


def snapshot_via(middleware, account: str) -> dict[str, bytes | None]:
    """One middleware's view of the whole account tree.

    Unrecoverable objects (the verified read path refuses every
    replica) appear as :data:`UNREADABLE` -- for a directory, its
    subtree is simply absent -- so a loudly-reported corruption cannot
    crash the oracle's walk.
    """
    tree: dict[str, bytes | None] = {}

    def walk(top: str) -> None:
        for entry in middleware.list_dir(account, top, detailed=False):
            full = (top.rstrip("/") or "") + "/" + entry.name
            if entry.kind == KIND_DIR:
                tree[full] = None
                try:
                    walk(full)
                except CorruptObjectError:
                    tree[full] = UNREADABLE
            else:
                try:
                    tree[full] = middleware.read_file(account, full)
                except CorruptObjectError:
                    tree[full] = UNREADABLE

    walk("/")
    return tree


def _prune_unreadable(
    trees: list[dict[str, bytes | None]],
) -> list[dict[str, bytes | None]]:
    """Drop every path any tree marked UNREADABLE (and its subtree)."""
    pruned = {
        path
        for tree in trees
        for path, value in tree.items()
        if value == UNREADABLE
    }
    if not pruned:
        return trees
    return [
        {
            path: value
            for path, value in tree.items()
            if not any(path == p or path.startswith(p + "/") for p in pruned)
        }
        for tree in trees
    ]


def check_invariants(fs, model: ModelFS | None = None) -> list[InvariantViolation]:
    """All post-quiesce checks; ``model=None`` skips V1."""
    violations: list[InvariantViolation] = []

    per_mw = [snapshot_via(mw, fs.account) for mw in fs.middlewares]

    if model is not None:
        expected, actual = _prune_unreadable([model.snapshot(), per_mw[0]])
        if tree_hash(expected) != tree_hash(actual):
            violations.append(
                InvariantViolation(
                    "V1", f"model divergence: {_diff_trees(expected, actual)}"
                )
            )

    baseline = tree_hash(per_mw[0])
    for mw, snap in zip(fs.middlewares[1:], per_mw[1:]):
        if tree_hash(snap) != baseline:
            violations.append(
                InvariantViolation(
                    "V2",
                    f"middleware {mw.node_id} diverges from middleware "
                    f"{fs.middlewares[0].node_id}: "
                    f"{_diff_trees(per_mw[0], snap)}",
                )
            )

    report = H2Fsck(fs.middlewares[0]).check()
    for error in report.errors:
        violations.append(InvariantViolation("V3", error))
    for degraded in report.degraded_replicas:
        violations.append(
            InvariantViolation("V3", f"degraded after repair: {degraded}")
        )
    for leaked in report.garbage:
        violations.append(
            InvariantViolation("V4", f"leaked object after GC: {leaked}")
        )
    for divergent in report.divergent_replicas:
        violations.append(InvariantViolation("V5", divergent))

    # V6: a direct store-wide scan, independent of tree reachability --
    # garbage and patch objects rot too.  Any present replica failing
    # verification must belong to an object the store has loudly
    # reported unrecoverable; anything else is *silent* corruption that
    # survived read-repair, the repair sweep and the quiesce scrub.
    store = fs.store
    reported = getattr(store, "unrecoverable", set())
    for name in sorted(store.names()):
        if name in reported:
            continue
        for node_id in store.ring.nodes_for(name):
            record = store.nodes[node_id].peek(name)
            if record is not None and not verify_record(record):
                violations.append(
                    InvariantViolation(
                        "V6",
                        f"undetected corruption: replica of {name} on node "
                        f"{node_id} fails checksum verification and the "
                        f"object is not reported unrecoverable",
                    )
                )

    # V7: membership convergence.  The quiesced cluster must be out of
    # any migration window, and holders must equal owners exactly --
    # no object lost from its replica set, none double-owned by a node
    # outside it.  Unrecoverable objects are exempt from the "owners
    # hold it" half (a wiped-out partition cannot be re-replicated) but
    # not from the stray-copy half.
    membership = getattr(store, "membership", None)
    if membership is not None and membership.in_transition:
        violations.append(
            InvariantViolation(
                "V7",
                "migration window still open after quiesce: "
                f"{membership.plan.describe()}",
            )
        )
    for name in sorted(store.names()):
        owners = set(store.ring.nodes_for(name))
        holders = {
            node_id
            for node_id, node in store.nodes.items()
            if node.peek(name) is not None
        }
        if name not in reported and not owners <= holders:
            violations.append(
                InvariantViolation(
                    "V7",
                    f"partition lost: {name} missing from owner(s) "
                    f"{sorted(owners - holders)}",
                )
            )
        if holders - owners:
            violations.append(
                InvariantViolation(
                    "V7",
                    f"double-owned: {name} also held by non-owner(s) "
                    f"{sorted(holders - owners)}",
                )
            )

    # V8: heal convergence.  Gated on the hint store -- deployments
    # that never armed hinted handoff (everything predating the
    # partition regime) skip it entirely.
    hints = getattr(store, "hints", None)
    if hints is not None:
        partitions = getattr(store, "partitions", None)
        if partitions is not None and partitions.active:
            violations.append(
                InvariantViolation(
                    "V8",
                    "partition cut(s) still open after quiesce: "
                    f"{sorted(partitions.active)}",
                )
            )
        if hints.outstanding:
            stranded = [
                (h.name, h.home_node, h.fallback_node) for h in hints.hints()
            ][:5]
            violations.append(
                InvariantViolation(
                    "V8",
                    f"{hints.outstanding} hint(s) stranded after heal "
                    f"and drain: {stranded}",
                )
            )
        # Acked-write durability: for every acknowledged PUT, the name
        # is since deleted, loudly unrecoverable, or some *current*
        # owner holds a verified replica at least as new as the ack.
        # "The ack" is the *last* acknowledgement in schedule order,
        # not the max-timestamp one: node writes overwrite in schedule
        # order, and a later physical write can legitimately carry a
        # smaller timestamp (ring-CRDT merges stamp the merged version,
        # not the wall clock of the rewrite).
        live = set(store.names())
        acked_newest: dict = {}
        for name, ts in hints.acked:
            acked_newest[name] = ts
        for name in sorted(acked_newest):
            if name not in live or name in reported:
                continue
            ts = acked_newest[name]
            if not any(
                record is not None
                and record.timestamp >= ts
                and verify_record(record)
                for record in (
                    store.nodes[node_id].peek(name)
                    for node_id in store.ring.nodes_for(name)
                    if node_id in store.nodes
                )
            ):
                violations.append(
                    InvariantViolation(
                        "V8",
                        f"acked write lost: {name} was acknowledged at "
                        f"{ts} but no current owner holds a verified "
                        f"replica that new",
                    )
                )
    return violations


def final_tree_hash(fs) -> str:
    """Canonical digest of the quiesced tree (run-digest component).

    A tree holding an unrecoverable object digests to a deterministic
    marker naming the first refusal -- still replayable, never a crash.
    """
    try:
        return tree_hash(snapshot_of(fs))
    except CorruptObjectError as exc:
        return f"<unrecoverable:{exc.name}>"
