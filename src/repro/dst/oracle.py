"""The DST oracle: what must be true of a quiesced deployment.

After the runner executes a schedule and drives the system to quiesce
(all nodes recovered, faults off, repair swept, mergers drained, gossip
converged, GC run), these checks must all hold:

* **V1 model equivalence** -- the filesystem tree equals the
  :class:`~repro.testing.model.ModelFS` mirror built from the ops that
  succeeded, in schedule order.  Sound because every child timestamp
  comes from the cluster's single strictly-increasing factory, so
  last-writer-wins order *is* schedule order.  Skipped when a mutating
  op died of a storage-layer error (a half-applied multi-object op may
  legitimately diverge from an all-or-nothing model).
* **V2 view convergence** -- every middleware walks the same tree: the
  NameRing CRDT plus gossip/anti-entropy converged all local versions.
* **V3 structural integrity** -- :class:`~repro.tools.fsck.H2Fsck`
  finds no broken invariants (I1-I4) and no degraded replica sets
  (outages were repaired).
* **V4 no leaked objects** -- after GC, fsck reports no unreachable
  ``dir:``/``nr:``/``f:``/``patch:`` garbage.
* **V5 replica agreement** -- no object's surviving replicas diverge
  (fsck I7): recoveries plus repair restored bit-identical copies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.namering import KIND_DIR
from ..testing.model import ModelFS, snapshot_of, tree_hash
from ..tools.fsck import H2Fsck


@dataclass(frozen=True)
class InvariantViolation:
    """One broken promise, with enough detail to debug the repro."""

    check: str  # "V1".."V5" | "crash" | "quiesce" | "read"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.check}] {self.detail}"


def _diff_trees(expected: dict, actual: dict, limit: int = 5) -> str:
    lines: list[str] = []
    for path in sorted(set(expected) | set(actual)):
        if len(lines) >= limit:
            lines.append("...")
            break
        want, got = expected.get(path, "<absent>"), actual.get(path, "<absent>")
        if want != got:
            want_s = "<dir>" if want is None else repr(want)[:40]
            got_s = "<dir>" if got is None else repr(got)[:40]
            lines.append(f"{path}: model={want_s} fs={got_s}")
    return "; ".join(lines)


def snapshot_via(middleware, account: str) -> dict[str, bytes | None]:
    """One middleware's view of the whole account tree."""
    tree: dict[str, bytes | None] = {}

    def walk(top: str) -> None:
        for entry in middleware.list_dir(account, top, detailed=False):
            full = (top.rstrip("/") or "") + "/" + entry.name
            if entry.kind == KIND_DIR:
                tree[full] = None
                walk(full)
            else:
                tree[full] = middleware.read_file(account, full)

    walk("/")
    return tree


def check_invariants(fs, model: ModelFS | None = None) -> list[InvariantViolation]:
    """All post-quiesce checks; ``model=None`` skips V1."""
    violations: list[InvariantViolation] = []

    per_mw = [snapshot_via(mw, fs.account) for mw in fs.middlewares]

    if model is not None:
        expected = model.snapshot()
        actual = per_mw[0]
        if tree_hash(expected) != tree_hash(actual):
            violations.append(
                InvariantViolation(
                    "V1", f"model divergence: {_diff_trees(expected, actual)}"
                )
            )

    baseline = tree_hash(per_mw[0])
    for mw, snap in zip(fs.middlewares[1:], per_mw[1:]):
        if tree_hash(snap) != baseline:
            violations.append(
                InvariantViolation(
                    "V2",
                    f"middleware {mw.node_id} diverges from middleware "
                    f"{fs.middlewares[0].node_id}: "
                    f"{_diff_trees(per_mw[0], snap)}",
                )
            )

    report = H2Fsck(fs.middlewares[0]).check()
    for error in report.errors:
        violations.append(InvariantViolation("V3", error))
    for degraded in report.degraded_replicas:
        violations.append(
            InvariantViolation("V3", f"degraded after repair: {degraded}")
        )
    for leaked in report.garbage:
        violations.append(
            InvariantViolation("V4", f"leaked object after GC: {leaked}")
        )
    for divergent in report.divergent_replicas:
        violations.append(InvariantViolation("V5", divergent))
    return violations


def final_tree_hash(fs) -> str:
    """Canonical digest of the quiesced tree (run-digest component)."""
    return tree_hash(snapshot_of(fs))
