"""Deterministic schedule execution with a model-differential mirror.

``run_schedule`` builds a fresh simulated deployment from a schedule's
embedded config, executes the schedule's steps one by one on the
simulated clock, mirrors every *successful* client op into a
:class:`~repro.testing.model.ModelFS`, drives the system to quiesce,
and hands the result to the :mod:`~repro.dst.oracle`.

Everything is deterministic: the cluster's latency jitter, fault plan
and message loss are seeded from the schedule's seed; the runner makes
no random choices; and scheduled crash/recover events fire via a clock
listener at the exact simulated microsecond they are due -- *inside* a
client op's quorum write if that is where the clock crosses the event
time.  Running the same schedule twice therefore produces the same
outcome string for every step and the same final tree hash, which is
what the run digest asserts.

Error taxonomy per client op:

* ``FilesystemError`` -- a semantic refusal (not-found, exists, ...):
  a legal outcome; the model is not updated.
* other ``SimCloudError`` -- the storage layer gave out (quorum loss,
  exhausted retries, open breakers): also legal under injected faults;
  counted, because a half-applied multi-object op makes the
  all-or-nothing model an unsound oracle for this run (V1 is skipped).
* anything else -- a bug: recorded as a ``crash`` violation and the
  run aborts to quiesce.
"""

from __future__ import annotations

import hashlib
import importlib
from dataclasses import dataclass, field

from ..core.fs import H2CloudFS
from ..core.gc import collect_once
from ..core.middleware import H2Config
from ..simcloud.cluster import ClusterConfig, SwiftCluster
from ..simcloud.errors import (
    CorruptObjectError,
    FilesystemError,
    MembershipError,
    SimCloudError,
)
from ..simcloud.failures import (
    FaultPlan,
    MessageLoss,
    mw_endpoint,
    node_endpoint,
)
from ..simcloud.latency import LatencyModel
from ..testing.model import ModelFS
from .explorer import DstConfig, ScheduleExplorer
from .ops import ClientOp, payload_for, session_root
from .oracle import InvariantViolation, check_invariants, final_tree_hash
from .schedule import Schedule, Step

_MUTATORS = frozenset(
    {"mkdir", "rmdir", "write", "delete", "move", "rename", "copy"}
)

ACCOUNT = "dst"


@dataclass
class RunResult:
    """Everything one schedule execution produced."""

    schedule: Schedule
    outcomes: list[str]
    violations: list[InvariantViolation]
    digest: str
    tree_hash: str
    model_checked: bool
    makespan_us: int
    counters: dict[str, int] = field(default_factory=dict)
    #: the quiesced deployment, kept only when ``run_schedule(...,
    #: keep_fs=True)`` -- for tests that assert on the final tree.
    fs: object | None = field(default=None, repr=False, compare=False)
    #: the deployment's shared Tracer when ``capture_trace=True`` --
    #: exportable via :func:`repro.obs.chrome_trace`.  Tracing is
    #: passive (no clock writes, counter-based ids), so digests are
    #: identical with capture on or off.
    tracer: object | None = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (
            f"dst seed={self.schedule.seed}: {status} -- "
            f"{self.counters.get('ops', 0)} ops "
            f"({self.counters.get('denied', 0)} denied, "
            f"{self.counters.get('unavailable', 0)} unavailable), "
            f"{len(self.schedule)} steps, "
            f"model={'checked' if self.model_checked else 'skipped'}, "
            f"digest={self.digest[:12]}"
        )


def resolve_tweak(spec: str):
    """``module:function`` -> the callable (for corpus-replayed bugs)."""
    module_name, _, func_name = spec.partition(":")
    if not module_name or not func_name:
        raise ValueError(f"tweak must be 'module:function', got {spec!r}")
    module = importlib.import_module(module_name)
    return getattr(module, func_name)


class _Run:
    """Mutable state of one schedule execution."""

    def __init__(self, schedule: Schedule, capture_trace: bool = False):
        self.schedule = schedule
        self.capture_trace = capture_trace
        self.cfg = DstConfig.from_json(schedule.config)
        cfg = self.cfg
        latency = (
            LatencyModel.zero() if cfg.latency == "zero" else LatencyModel.rack_scale()
        )
        self.cluster = SwiftCluster(
            ClusterConfig(
                storage_nodes=cfg.storage_nodes,
                replicas=cfg.replicas,
                vnodes=cfg.vnodes,
            ),
            latency,
        )
        # The fault window starts closed: transient faults fire only
        # inside explorer-scheduled storm windows.
        self.plan = FaultPlan(
            seed=schedule.seed * 2_000_003 + 1,
            io_error_rate=cfg.io_error_rate,
            timeout_rate=cfg.timeout_rate,
            slow_rate=cfg.slow_rate,
            bitrot_rate=cfg.bitrot_rate,
            torn_write_rate=cfg.torn_write_rate,
            window_us=(0, 0),
        )
        self.cluster.install_fault_plan(self.plan)
        self.cluster.enable_auto_repair()
        if cfg.hinted_handoff:
            # Sloppy quorum: quorum-short writes park durable hints on
            # fallback nodes; healing a cut triggers a delivery sweep.
            self.cluster.enable_hinted_handoff()
        self.fs = H2CloudFS(
            self.cluster,
            account=ACCOUNT,
            middlewares=cfg.middlewares,
            config=H2Config(
                auto_merge=False,
                negative_cache=cfg.negative_cache,
                group_commit=cfg.group_commit,
                group_commit_window_us=cfg.group_commit_window_us,
                gossip_digests=cfg.gossip_digests,
                memoize_serialization=cfg.memoize_serialization,
                sharded_rings=cfg.sharded_rings,
                shard_split_threshold=cfg.shard_split_threshold,
                shard_merge_threshold=cfg.shard_merge_threshold,
                shard_target_entries=cfg.shard_target_entries,
            ),
            message_loss=MessageLoss(
                cfg.message_loss,
                seed=schedule.seed * 2_000_003 + 2,
                # Per-link loss streams only arm alongside partitions:
                # the legacy shared stream keeps pre-partition corpus
                # digests bit-identical.
                per_link=cfg.partition_rate > 0,
            ),
            tracing=capture_trace,
        )
        if schedule.tweak:
            resolve_tweak(schedule.tweak)(self.fs)
        self.model = ModelFS() if cfg.check_model else None
        self.outcomes: list[str] = []
        self.violations: list[InvariantViolation] = []
        # When a mutating op fails at the storage layer it may have been
        # half-applied, which invalidates the all-or-nothing model.
        self.mutation_storage_errors = 0
        self.own_mirror_misses = 0
        self.counters = {"ops": 0, "denied": 0, "unavailable": 0}
        self._listener = None

    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Create the session subtrees and the shared contention pool."""
        from .ops import SHARED_DIR

        mw = self.fs.middlewares[0]
        for path in [SHARED_DIR] + [
            session_root(k) for k in range(self.cfg.sessions)
        ]:
            mw.mkdir(ACCOUNT, path)
            if self.model is not None:
                self.model.mkdir(path)
        self.fs.pump()  # every middleware starts from the same base tree
        self._listener = self.fs.clock.subscribe(
            lambda now_us: (
                self.cluster.failures.pump(),
                self.cluster.partitions.pump(),
            )
        )

    # ------------------------------------------------------------------
    def execute(self) -> None:
        for index, step in enumerate(self.schedule.steps):
            try:
                self.outcomes.append(self._step(step))
            except Exception as exc:  # noqa: BLE001 - any escape is a bug
                self.outcomes.append(f"crash:{type(exc).__name__}")
                self.violations.append(
                    InvariantViolation(
                        "crash",
                        f"step {index} ({step.describe()}) raised "
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                return

    def _step(self, step: Step) -> str:
        kind = step.kind
        if kind == "op":
            return self._client_op(step.session, step.op)
        fs, cluster = self.fs, self.cluster
        if kind == "gossip_one":
            if fs.network is None:
                return "idle"
            try:
                return "delivered" if fs.network.pump_one() else "idle"
            except SimCloudError as exc:
                return f"unavailable:{type(exc).__name__}"
        if kind == "gossip_round":
            if fs.network is None:
                return "round:0"
            try:
                return f"round:{fs.network.pump()}"
            except SimCloudError as exc:
                return f"unavailable:{type(exc).__name__}"
        if kind == "anti_entropy":
            if fs.network is None:
                return "ae:0"
            try:
                return f"ae:{fs.network.anti_entropy_round()}"
            except SimCloudError as exc:
                return f"unavailable:{type(exc).__name__}"
        if kind == "merge":
            mw = fs.middlewares[step.args["mw"] % len(fs.middlewares)]
            try:
                return "merged" if mw.merger.step() else "clean"
            except SimCloudError as exc:
                return f"unavailable:{type(exc).__name__}"
        if kind == "gc":
            mw = fs.middlewares[step.args["mw"] % len(fs.middlewares)]
            try:
                report = collect_once(mw)
                return f"gc:{report.swept}/{report.marked}"
            except SimCloudError as exc:
                return f"unavailable:{type(exc).__name__}"
        if kind == "drop_caches":
            mw = fs.middlewares[step.args["mw"] % len(fs.middlewares)]
            return f"dropped:{mw.fd_cache.drop_clean()}"
        if kind == "flush_groups":
            mw = fs.middlewares[step.args["mw"] % len(fs.middlewares)]
            try:
                return f"flushed:{mw.flush_patch_groups()}"
            except SimCloudError as exc:
                return f"unavailable:{type(exc).__name__}"
        if kind == "crash":
            node = step.args["node"]
            if node not in cluster.nodes:
                return "no_such_node"
            cluster.failures.crash_at(
                fs.clock.now_us + step.args.get("delay_us", 0), node
            )
            cluster.failures.pump()
            return f"crash:{node}"
        if kind == "recover":
            node = step.args["node"]
            if node not in cluster.nodes:
                return "no_such_node"
            cluster.failures.recover_at(
                fs.clock.now_us + step.args.get("delay_us", 0), node
            )
            cluster.failures.pump()
            return f"recover:{node}"
        if kind == "corrupt":
            node = step.args["node"]
            if node not in cluster.nodes:
                return "no_such_node"
            cluster.failures.corrupt_at(
                fs.clock.now_us, node, mode=step.args.get("mode", "bitflip")
            )
            before = len(cluster.failures.corrupted)
            cluster.failures.pump()
            landed = len(cluster.failures.corrupted) - before
            return f"corrupt:{node}:{landed}"
        if kind == "scrub":
            try:
                report = fs.scrub()
            except SimCloudError as exc:
                return f"unavailable:{type(exc).__name__}"
            return (
                f"scrub:{report.repaired_replicas}"
                f"/{report.corrupt_replicas}"
                f"/{len(report.unrecoverable)}"
            )
        if kind == "storm_on":
            start = fs.clock.now_us
            self.plan.window_us = (start, start + step.args["duration_us"])
            return "storm_on"
        if kind == "storm_off":
            self.plan.window_us = (0, 0)
            return "storm_off"
        if kind == "advance":
            cluster.step(step.args["delta_us"])
            return "advanced"
        if kind == "add_node":
            try:
                node = cluster.membership.add_node(
                    weight=step.args.get("weight", 1.0)
                )
            except MembershipError:
                return "busy"
            return f"add:{node.node_id}"
        if kind == "drain_node":
            node = step.args["node"]
            if node not in cluster.nodes:
                return "no_such_node"
            try:
                cluster.membership.drain_node(node)
            except MembershipError:
                return "busy"
            return f"drain:{node}"
        if kind == "remove_node":
            node = step.args["node"]
            if node not in cluster.nodes:
                return "no_such_node"
            try:
                cluster.membership.remove_node(node)
            except MembershipError:
                return "busy"
            return f"remove:{node}"
        if kind == "partition":
            cut = step.args["cut"]
            mw = fs.middlewares[step.args["mw"] % len(fs.middlewares)]
            island = [mw_endpoint(mw.node_id)]
            peers = [
                node_endpoint(n) for n in step.args.get("nodes", [])
            ]
            if step.args.get("gossip"):
                peers.extend(
                    mw_endpoint(other.node_id)
                    for other in fs.middlewares
                    if other.node_id != mw.node_id
                )
            links = cluster.partitions.isolate(
                island, peers, cut, mode=step.args.get("mode", "both")
            )
            return f"partition:{cut}:{links}"
        if kind == "heal":
            cut = step.args["cut"]
            # Unknown cut ids heal zero links -- shrunk schedules may
            # keep a heal whose partition step was deleted.
            return f"heal:{cut}:{cluster.partitions.heal(cut)}"
        if kind == "rebalance":
            moved = cluster.membership.sweeper.step(
                max_objects=step.args.get("max", 16)
            )
            if not cluster.membership.in_transition and not moved:
                return "idle"
            return f"moved:{moved}:{cluster.membership.pending_moves}"
        raise AssertionError(f"unhandled step kind {kind!r}")

    # ------------------------------------------------------------------
    def _client_op(self, session: int, op: ClientOp) -> str:
        mw = self.fs.middlewares[session % len(self.fs.middlewares)]
        self.counters["ops"] += 1
        try:
            result = self._dispatch(mw, op)
        except FilesystemError as exc:
            self.counters["denied"] += 1
            return f"denied:{type(exc).__name__}"
        except SimCloudError as exc:
            self.counters["unavailable"] += 1
            if op.kind in _MUTATORS:
                self.mutation_storage_errors += 1
            return f"unavailable:{type(exc).__name__}"
        self._mirror(session, op, result)
        return result

    def _dispatch(self, mw, op: ClientOp) -> str:
        kind, path = op.kind, op.path
        account = op.account or ACCOUNT
        if kind == "mkdir":
            mw.mkdir(account, path)
            return "ok"
        if kind == "rmdir":
            mw.rmdir(account, path, recursive=True)
            return "ok"
        if kind == "write":
            mw.write_file(account, path, payload_for(op))
            return "ok"
        if kind == "delete":
            mw.delete_file(account, path)
            return "ok"
        if kind == "read":
            data = mw.read_file(account, path)
            return f"ok:{hashlib.sha256(data).hexdigest()[:12]}"
        if kind == "list":
            entries = mw.list_dir(account, path, detailed=False)
            return f"ok:{len(entries)}"
        if kind == "stat":
            resolution = mw.stat(account, path)
            return "ok:dir" if resolution.is_dir else "ok:file"
        if kind in ("move", "rename"):
            getattr(mw, kind)(account, path, op.dest)
            return "ok"
        if kind == "copy":
            mw.copy(account, path, op.dest)
            return "ok"
        raise AssertionError(f"unhandled op kind {kind!r}")

    def _mirror(self, session: int, op: ClientOp, result: str) -> None:
        """Reflect a successful SUT op into the model, in schedule order."""
        model = self.model
        if model is None:
            return
        own = op.path.startswith(session_root(session) + "/")
        try:
            if op.kind == "mkdir":
                model.mkdir(op.path)
            elif op.kind == "rmdir":
                model.rmdir(op.path)
            elif op.kind == "write":
                model.write(op.path, payload_for(op))
            elif op.kind == "delete":
                model.delete(op.path)
            elif op.kind == "read" and own and self.mutation_storage_errors == 0:
                want = hashlib.sha256(model.read(op.path)).hexdigest()[:12]
                if result != f"ok:{want}":
                    self.violations.append(
                        InvariantViolation(
                            "read",
                            f"s{session} read {op.path}: fs returned "
                            f"{result}, model expects ok:{want}",
                        )
                    )
            elif op.kind in ("move", "rename"):
                model.move(op.path, op.dest)
            elif op.kind == "copy":
                model.copy(op.path, op.dest)
        except FilesystemError as exc:
            # Cross-session asynchrony makes this legal for shared paths
            # (e.g. two sessions' deletes of one file both succeed on
            # their own stale views); the model converges to the same
            # final state because mutations are LWW by global timestamp.
            # For a session's own subtree it would mean the mirror lost
            # sync -- only tolerable after a half-applied op already
            # invalidated the model.
            if own and self.mutation_storage_errors == 0:
                self.own_mirror_misses += 1
                self.violations.append(
                    InvariantViolation(
                        "read",
                        f"s{session} {op.describe()} succeeded on the fs "
                        f"but the model refused: {type(exc).__name__}",
                    )
                )

    # ------------------------------------------------------------------
    def quiesce(self) -> None:
        """Stop the weather, heal the cluster, drain all asynchrony."""
        fs, cluster = self.fs, self.cluster
        if self._listener is not None:
            fs.clock.unsubscribe(self._listener)
        cluster.failures.clear_pending()
        self.plan.window_us = (0, 0)
        for node_id, node in sorted(cluster.nodes.items()):
            if node.is_down:
                cluster.failures.recover_at(fs.clock.now_us, node_id)
        cluster.failures.pump()  # recoveries trigger auto-repair sweeps
        # The cluster is healthy again, but breakers tripped during the
        # run would quarantine their nodes for a 2-second cooldown --
        # quiesce-time writes would silently skip those replicas and the
        # oracle would blame the resulting divergence on the protocols.
        for breaker in fs.store.breakers.values():
            breaker.record_success(fs.clock.now_us)
        # Heal every partition cut and drain parked hints home *before*
        # the migration window closes: hint delivery re-routes by the
        # live ring, and the V8 oracle insists the hint store is empty
        # once the network is whole again.
        cluster.partitions.clear_pending()
        cluster.partitions.heal_all()
        sweeper = getattr(cluster, "hint_sweeper", None)
        if sweeper is not None:
            sweeper.drain_to_empty()
        # Close any open migration window first: repair and the oracle
        # both reason about the *current* epoch's placement, so the
        # dual-ownership view must drain before they run.  Every node
        # is back up by now, so the sweeper is guaranteed to finish.
        cluster.membership.quiesce()
        fs.repair()
        fs.pump()
        self._revalidate_caches()
        try:
            fs.gc()
        except CorruptObjectError:
            # An unrecoverable ring leaves the mark phase without full
            # reachability knowledge; sweeping blind could delete live
            # data, so GC (rightly) sits this quiesce out.
            pass
        fs.pump()
        # Writes since the first sweep (merges, compactions) may have
        # landed while a replica was still unreachable mid-run; one last
        # sweep leaves every object fully and identically replicated.
        fs.repair()
        # Final integrity pass: heal what rot remains now that every
        # holder is back, and settle the unrecoverable-object report the
        # V6 oracle checks against.  Background-accounted -- the clock
        # (and so the digest of corruption-free runs) does not move.
        fs.scrub()

    def _revalidate_caches(self) -> None:
        """Bring every cached ring view up to date with the store.

        Anti-entropy syncs caches *pairwise* but never against the
        store, so a view that missed a rumor can stay stale until some
        client touches it; GC's resurrection guard then (correctly)
        refuses to sweep.  Quiesce re-reads every loaded ring --
        ``load_ring`` merges, so cached-only children survive -- and
        drops descriptors whose ring object no longer exists.
        """
        for mw in self.fs.middlewares:
            for fd in mw.fd_cache.descriptors():
                if not fd.loaded or fd.dirty:
                    continue
                try:
                    mw.load_ring(fd.ns, use_cache=False)
                except (FilesystemError, CorruptObjectError):
                    # A ring object with no verified replica left is
                    # loudly unreadable; the cache must not keep serving
                    # its pre-rot view as if nothing happened.
                    mw.fd_cache.invalidate(fd.ns)

    # ------------------------------------------------------------------
    @property
    def model_sound(self) -> bool:
        return (
            self.model is not None
            and self.mutation_storage_errors == 0
            and self.own_mirror_misses == 0
        )


def run_schedule(
    schedule: Schedule, keep_fs: bool = False, capture_trace: bool = False
) -> RunResult:
    run = _Run(schedule, capture_trace=capture_trace)
    run.setup()
    run.execute()
    try:
        run.quiesce()
    except Exception as exc:  # noqa: BLE001 - quiesce must never fail
        run.violations.append(
            InvariantViolation(
                "quiesce", f"{type(exc).__name__}: {exc}"
            )
        )
        return _result(run, tree="<quiesce-failed>", keep_fs=keep_fs)
    try:
        run.violations.extend(
            check_invariants(run.fs, run.model if run.model_sound else None)
        )
        tree = final_tree_hash(run.fs)
    except Exception as exc:  # noqa: BLE001 - oracle must never crash
        run.violations.append(
            InvariantViolation("quiesce", f"oracle: {type(exc).__name__}: {exc}")
        )
        tree = "<oracle-failed>"
    return _result(run, tree=tree, keep_fs=keep_fs)


def _result(run: _Run, tree: str, keep_fs: bool = False) -> RunResult:
    digest = hashlib.sha256()
    for step, outcome in zip(run.schedule.steps, run.outcomes):
        digest.update(step.describe().encode("utf-8", "surrogatepass"))
        digest.update(b"=")
        digest.update(outcome.encode("utf-8", "surrogatepass"))
        digest.update(b"\n")
    digest.update(tree.encode())
    digest.update(str(run.fs.clock.now_us).encode())
    counters = dict(run.counters)
    counters["storage_errors"] = run.mutation_storage_errors
    return RunResult(
        fs=run.fs if keep_fs else None,
        tracer=run.fs.tracer if run.capture_trace else None,
        schedule=run.schedule,
        outcomes=run.outcomes,
        violations=run.violations,
        digest=digest.hexdigest(),
        tree_hash=tree,
        model_checked=run.model_sound,
        makespan_us=run.fs.clock.now_us,
        counters=counters,
    )


def run_seed(
    seed: int, config: DstConfig | None = None, capture_trace: bool = False
) -> RunResult:
    """Explore ``seed`` into a schedule and execute it."""
    return run_schedule(
        ScheduleExplorer(seed, config).explore(), capture_trace=capture_trace
    )
