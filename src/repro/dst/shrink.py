"""Automatic shrinking of failing schedules (delta debugging).

A failing DST schedule found by the explorer typically has a couple of
hundred steps, most of them irrelevant to the bug.  ``shrink`` applies
the classic ddmin algorithm [Zeller & Hildebrandt 2002] to the step
list: repeatedly re-run subsets of the schedule and keep the smallest
one that still violates an invariant.  Any subset of a schedule is a
valid schedule -- ops that lost their preconditions simply fail with a
tolerated ``denied`` outcome -- so no repair pass is needed between
attempts, and because runs are bit-reproducible the predicate is
deterministic: a subset either fails always or never.

The result is the minimal repro that goes into the seed corpus.
"""

from __future__ import annotations

from collections.abc import Callable

from .runner import RunResult, run_schedule
from .schedule import Schedule

Predicate = Callable[[RunResult], bool]


def default_predicate(result: RunResult) -> bool:
    """The schedule "still fails": any invariant violation at all."""
    return bool(result.violations)


def shrink(
    schedule: Schedule,
    predicate: Predicate = default_predicate,
    max_runs: int = 400,
    run=run_schedule,
) -> tuple[Schedule, RunResult, int]:
    """Minimise ``schedule`` while ``predicate`` holds on its run result.

    Returns ``(minimal_schedule, its_run_result, runs_used)``.  Raises
    ``ValueError`` if the full schedule does not fail to begin with.
    ``run`` executes one candidate schedule; the default is the classic
    DST runner, and the scenario suite passes its multi-tenant runner so
    scenario schedules shrink with the same ddmin loop.
    """
    result = run(schedule)
    if not predicate(result):
        raise ValueError("schedule does not fail; nothing to shrink")
    runs = 1
    keep = list(range(len(schedule.steps)))
    best = result
    granularity = 2
    while len(keep) >= 2 and runs < max_runs:
        chunk = max(1, len(keep) // granularity)
        reduced = False
        start = 0
        while start < len(keep) and runs < max_runs:
            candidate = keep[:start] + keep[start + chunk:]
            if not candidate:
                start += chunk
                continue
            attempt = run(schedule.subset(candidate))
            runs += 1
            if predicate(attempt):
                keep = candidate
                best = attempt
                granularity = max(granularity - 1, 2)
                reduced = True
                # restart scanning the (smaller) list from the top
                start = 0
                chunk = max(1, len(keep) // granularity)
                continue
            start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(granularity * 2, len(keep))
    return schedule.subset(keep), best, runs
