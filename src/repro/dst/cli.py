"""``python -m repro dst`` -- drive the deterministic simulator.

    dst run     --seed 7 [--faulty | --corruption] [--traffic] [--membership] [--partitions] [--sharded]
    dst sweep   --seeds 200 [--start 0] [--corruption] [--traffic] [--membership] [--partitions] [--sharded]
    dst replay  CASE.json
    dst shrink  CASE.json | --seed 7 [--faulty | --corruption] [--traffic] [--membership] [--partitions] [--sharded]

``run`` executes one seed and prints the verdict; ``sweep`` runs a
range of seeds alternating fault-free and fault-storm configs (the CI
nightly job) -- with ``--corruption`` every seed instead runs the
corruption-storm mix (bit-rot, torn writes, scheduled corrupt events)
against the V1-V6 oracle; ``replay`` re-executes a persisted corpus
case and checks it reproduces the recorded digest/verdict; ``shrink``
minimises a failing case with ddmin and saves the result to the corpus.
``--membership`` weaves elastic-membership churn (node joins, drains,
crash-style removals and bounded rebalance batches) into whichever mix
the seed gets, and arms the V7 membership-convergence oracle.
``--partitions`` weaves scheduled link-level network cuts (one
middleware severed from a minority of storage nodes, sometimes from
its gossip peers too) into the run, arms sloppy-quorum hinted handoff,
and turns on the V8 heal-convergence oracle.  ``--sharded`` arms
sharded NameRings at DST-sized split/merge thresholds, so the same
schedules exercise manifest flips, per-shard write-backs, reshard and
collapse transitions under whatever fault mix the seed gets.

Exit codes: 0 clean / reproduced, 1 invariant violations found,
2 usage or non-reproduction.
"""

from __future__ import annotations

import argparse

from . import corpus as corpus_mod
from .explorer import (
    DstConfig,
    ScheduleExplorer,
    corruption_config,
    faulty_config,
    with_membership_steps,
    with_partition_steps,
    with_sharded_rings,
    with_traffic_flags,
)
from .runner import RunResult, run_schedule, run_seed
from .shrink import shrink


def _config_from(args: argparse.Namespace) -> DstConfig:
    overrides = {
        "sessions": args.sessions,
        "ops_per_session": args.ops,
    }
    if getattr(args, "corruption", False):
        config = corruption_config(**overrides)
    elif args.faulty:
        config = faulty_config(**overrides)
    else:
        config = DstConfig(**overrides)
    if getattr(args, "traffic", False):
        config = with_traffic_flags(config)
    if getattr(args, "membership", False):
        config = with_membership_steps(config)
    if getattr(args, "partitions", False):
        config = with_partition_steps(config)
    if getattr(args, "sharded", False):
        config = with_sharded_rings(config)
    return config


def sweep_config(
    seed: int,
    sessions: int = 3,
    ops: int = 25,
    corruption: bool = False,
    traffic: bool = False,
    membership: bool = False,
    partitions: bool = False,
    sharded: bool = False,
) -> DstConfig:
    """The nightly mix: even seeds run fault-free (full model check),
    odd seeds run under crash cycles, fault storms and message loss.
    ``corruption=True`` runs *every* seed under the corruption-storm
    mix instead (the nightly integrity sweep).  ``traffic=True`` layers
    the traffic-reduction flags (negative cache, group commit, gossip
    digests, PUT elision) over whichever base config the seed gets.
    ``membership=True`` weaves elastic-membership churn on top -- the
    nightly rebalance-storm sweep.  ``partitions=True`` layers
    scheduled link-level cuts plus hinted handoff (V8) on top -- the
    nightly partition-storm sweep.  ``sharded=True`` arms sharded
    NameRings at DST-sized thresholds -- the nightly huge-directory
    sweep."""
    if corruption:
        config = corruption_config(sessions=sessions, ops_per_session=ops)
    elif seed % 2 == 0:
        config = DstConfig(sessions=sessions, ops_per_session=ops)
    else:
        config = faulty_config(sessions=sessions, ops_per_session=ops)
    if traffic:
        config = with_traffic_flags(config)
    if membership:
        config = with_membership_steps(config)
    if partitions:
        config = with_partition_steps(config)
    if sharded:
        config = with_sharded_rings(config)
    return config


def _report(result: RunResult, verbose: bool = True) -> None:
    print(result.summary())
    if verbose:
        for violation in result.violations:
            print(f"  [{violation.check}] {violation.detail}")


def _save_failure(result: RunResult, directory: str) -> None:
    """Persist a failing run -- and the span trace of what it was doing.

    Capture re-executes the schedule with tracing on; tracing is
    passive, so the re-run reproduces the exact same digest (asserted,
    as a live determinism check on every saved failure).
    """
    print("saved:", corpus_mod.save_case(result, directory))
    traced = run_schedule(result.schedule, capture_trace=True)
    if traced.digest != result.digest:  # pragma: no cover - would be a bug
        print("WARNING: traced re-run diverged; trace not saved")
        return
    trace_path = corpus_mod.save_trace(traced, directory)
    if trace_path:
        print("trace:", trace_path)
    critpath_path = corpus_mod.save_critpath(traced, directory)
    if critpath_path:
        print("critpath:", critpath_path)


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_seed(args.seed, _config_from(args))
    _report(result)
    if result.violations and args.save_failures:
        _save_failure(result, args.save_failures)
    return 0 if result.ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    failures = 0
    for seed in range(args.start, args.start + args.seeds):
        result = run_seed(
            seed,
            sweep_config(
                seed,
                args.sessions,
                args.ops,
                args.corruption,
                traffic=getattr(args, "traffic", False),
                membership=getattr(args, "membership", False),
                partitions=getattr(args, "partitions", False),
                sharded=getattr(args, "sharded", False),
            ),
        )
        if result.ok:
            if args.verbose:
                _report(result, verbose=False)
            continue
        failures += 1
        _report(result)
        if args.save_failures:
            _save_failure(result, args.save_failures)
    print(
        f"sweep: {args.seeds} seeds from {args.start}, "
        f"{failures} failing"
    )
    return 1 if failures else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    schedule, meta = corpus_mod.load_case(args.case)
    result = run_schedule(schedule)
    _report(result)
    if not meta:
        return 0 if result.ok else 1
    recorded_digest = meta.get("digest")
    recorded_failing = bool(meta.get("violations"))
    if recorded_digest and result.digest != recorded_digest:
        print(
            f"replay DIVERGED: digest {result.digest[:12]} != "
            f"recorded {recorded_digest[:12]}"
        )
        return 2
    if bool(result.violations) != recorded_failing:
        print("replay DIVERGED: verdict differs from the recording")
        return 2
    print("replay reproduced the recorded run")
    return 0 if result.ok else 1


def _cmd_shrink(args: argparse.Namespace) -> int:
    if args.case:
        schedule, _ = corpus_mod.load_case(args.case)
    else:
        schedule = ScheduleExplorer(args.seed, _config_from(args)).explore()
    try:
        minimal, result, runs = shrink(schedule, max_runs=args.max_runs)
    except ValueError as exc:
        print(exc)
        return 2
    print(
        f"shrunk {len(schedule)} -> {len(minimal)} steps "
        f"({minimal.op_count()} ops) in {runs} runs"
    )
    _report(result)
    _save_failure(result, args.corpus)
    return 1


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro dst",
        description="deterministic simulation testing for H2Cloud",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--sessions", type=int, default=3)
        p.add_argument("--ops", type=int, default=25, help="ops per session")
        p.add_argument(
            "--faulty",
            action="store_true",
            help="crash cycles, fault storms and message loss",
        )
        p.add_argument(
            "--corruption",
            action="store_true",
            help="corruption storms: bit-rot, torn writes, scrubs (V6)",
        )
        p.add_argument(
            "--traffic",
            action="store_true",
            help="traffic-reduction flags on: negative cache, group "
            "commit, gossip digests, PUT elision",
        )
        p.add_argument(
            "--membership",
            action="store_true",
            help="weave elastic-membership churn: joins, drains, "
            "removals and live rebalance batches (V7 oracle)",
        )
        p.add_argument(
            "--partitions",
            action="store_true",
            help="weave link-level network cuts and arm sloppy-quorum "
            "hinted handoff (V8 heal-convergence oracle)",
        )
        p.add_argument(
            "--sharded",
            action="store_true",
            help="arm sharded NameRings at DST-sized split thresholds",
        )

    p_run = sub.add_parser("run", help="execute one seed")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--save-failures", metavar="DIR", default=None)
    common(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser("sweep", help="execute a seed range")
    p_sweep.add_argument("--seeds", type=int, default=20, help="seed count")
    p_sweep.add_argument("--start", type=int, default=0)
    p_sweep.add_argument("--save-failures", metavar="DIR", default=None)
    p_sweep.add_argument("--verbose", action="store_true")
    p_sweep.add_argument("--sessions", type=int, default=3)
    p_sweep.add_argument("--ops", type=int, default=25)
    p_sweep.add_argument(
        "--corruption",
        action="store_true",
        help="run every seed under the corruption-storm mix (V6 oracle)",
    )
    p_sweep.add_argument(
        "--traffic",
        action="store_true",
        help="layer the traffic-reduction flags over every seed's config",
    )
    p_sweep.add_argument(
        "--membership",
        action="store_true",
        help="weave elastic-membership churn over every seed's config",
    )
    p_sweep.add_argument(
        "--partitions",
        action="store_true",
        help="weave link-level cuts + hinted handoff over every seed",
    )
    p_sweep.add_argument(
        "--sharded",
        action="store_true",
        help="arm sharded NameRings at DST-sized split thresholds",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_replay = sub.add_parser("replay", help="re-execute a corpus case")
    p_replay.add_argument("case")
    p_replay.set_defaults(func=_cmd_replay)

    p_shrink = sub.add_parser("shrink", help="minimise a failing run")
    p_shrink.add_argument("case", nargs="?", default=None)
    p_shrink.add_argument("--seed", type=int, default=0)
    p_shrink.add_argument("--max-runs", type=int, default=400)
    p_shrink.add_argument("--corpus", default=corpus_mod.DEFAULT_DIR)
    common(p_shrink)
    p_shrink.set_defaults(func=_cmd_shrink)

    args = parser.parse_args(argv)
    return args.func(args)
