"""Explicit, replayable schedules for deterministic simulation runs.

A :class:`Schedule` is the full script of one simulated history: every
client operation, every background-protocol step (single gossip
delivery, one merger step, a GC pass, a cache drop), every fault event
(crash/recover, fault-storm window) and every explicit clock advance,
in the exact order the runner will execute them.  Because the runner is
single-threaded and every source of randomness is seeded, a schedule is
*the* interleaving -- replaying it bit-reproduces the run, and deleting
steps from it (delta debugging) explores strictly smaller histories.

Schedules serialise to JSON so failing runs can be persisted to the
seed corpus (``tests/dst_corpus/``) and replayed from the CLI:

    python -m repro dst replay tests/dst_corpus/<case>.json

The optional ``tweak`` field names a ``module:function`` hook applied
to the cluster before the run -- how regression cases that need a
(test-only) injected bug round-trip through the CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .ops import ClientOp

# Step kinds and the extra fields each carries:
#   op          session, op        -- one client call on that session
#   gossip_one               -- deliver exactly one queued rumor
#   gossip_round             -- one full gossip pump round
#   anti_entropy             -- one full-state anti-entropy round
#   merge       mw           -- one merger step on middleware ``mw``
#   gc          mw           -- one mark-and-sweep attempt via ``mw``
#   drop_caches mw           -- drop clean descriptors on ``mw``
#   flush_groups mw          -- close open group-commit windows on ``mw``
#   crash       node, delay_us -- schedule node crash after delay
#   recover     node, delay_us -- schedule node recovery after delay
#   corrupt     node, mode   -- silently rot one replica on ``node``
#   scrub                    -- one checksum scrub pass over the store
#   storm_on    duration_us  -- open the fault-plan window
#   storm_off                -- close the fault-plan window
#   advance     delta_us     -- advance the simulated clock
#   add_node    [weight]     -- elastic membership: join one node
#   drain_node  node         -- graceful decommission of ``node``
#   remove_node node         -- crash-style departure of ``node``
#   rebalance   [max]        -- one bounded migration batch
#   partition   cut, mw, nodes, [gossip], [mode]
#                            -- sever middleware ``mw`` from storage
#                               ``nodes`` (and, with gossip, from its
#                               peer middlewares) under cut id ``cut``
#   heal        cut          -- heal one named partition cut
STEP_KINDS = frozenset(
    {
        "op",
        "gossip_one",
        "gossip_round",
        "anti_entropy",
        "merge",
        "gc",
        "drop_caches",
        "flush_groups",
        "crash",
        "recover",
        "corrupt",
        "scrub",
        "storm_on",
        "storm_off",
        "advance",
        "add_node",
        "drain_node",
        "remove_node",
        "rebalance",
        "partition",
        "heal",
    }
)


@dataclass(frozen=True)
class Step:
    """One schedule entry; ``args`` holds the kind-specific fields."""

    kind: str
    session: int | None = None
    op: ClientOp | None = None
    args: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in STEP_KINDS:
            raise ValueError(f"unknown step kind: {self.kind!r}")
        if self.kind == "op" and self.op is None:
            raise ValueError("op step requires an op")

    def to_json(self) -> dict:
        doc: dict = {"kind": self.kind}
        if self.session is not None:
            doc["session"] = self.session
        if self.op is not None:
            doc["op"] = self.op.to_json()
        if self.args:
            doc["args"] = dict(self.args)
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "Step":
        return cls(
            kind=doc["kind"],
            session=doc.get("session"),
            op=ClientOp.from_json(doc["op"]) if "op" in doc else None,
            args=dict(doc.get("args", {})),
        )

    def describe(self) -> str:
        if self.kind == "op":
            return f"s{self.session}: {self.op.describe()}"
        if self.args:
            detail = " ".join(f"{k}={v}" for k, v in sorted(self.args.items()))
            return f"{self.kind} {detail}"
        return self.kind


FORMAT = "h2cloud-dst-schedule-v1"


@dataclass
class Schedule:
    """A complete scripted history plus the config that interprets it."""

    seed: int
    config: dict
    steps: list[Step]
    tweak: str | None = None  # "module:function" applied to the cluster

    def __len__(self) -> int:
        return len(self.steps)

    def subset(self, keep: list[int]) -> "Schedule":
        """A schedule containing only the steps at ``keep`` (in order)."""
        return Schedule(
            seed=self.seed,
            config=dict(self.config),
            steps=[self.steps[i] for i in keep],
            tweak=self.tweak,
        )

    def op_count(self) -> int:
        return sum(1 for s in self.steps if s.kind == "op")

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        doc = {
            "format": FORMAT,
            "seed": self.seed,
            "config": dict(self.config),
            "steps": [s.to_json() for s in self.steps],
        }
        if self.tweak:
            doc["tweak"] = self.tweak
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "Schedule":
        if doc.get("format") != FORMAT:
            raise ValueError(f"not a {FORMAT} document")
        return cls(
            seed=doc["seed"],
            config=dict(doc["config"]),
            steps=[Step.from_json(s) for s in doc["steps"]],
            tweak=doc.get("tweak"),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_json(), ensure_ascii=False, indent=2)

    @classmethod
    def loads(cls, text: str) -> "Schedule":
        return cls.from_json(json.loads(text))
