"""repro -- a full reproduction of "H2Cloud: Maintaining the Whole
Filesystem in an Object Storage Cloud" (Zhao et al., ICPP 2018).

Subpackages
-----------
``repro.simcloud``
    The substrate: a from-scratch simulated object storage cloud
    (consistent-hash ring, replicated nodes, Swift-style container DB,
    failure injection, deterministic latency model).
``repro.core``
    The paper's contribution: the Hierarchical Hash (H2) data
    structure -- namespaces, NameRings, the asynchronous patch+gossip
    maintenance protocol -- and the :class:`~repro.core.H2CloudFS`
    filesystem built on it.
``repro.baselines``
    All eight comparison data structures from the paper's Table 1,
    speaking the same filesystem API.
``repro.workloads``
    Seeded generators reproducing the paper's ~150-user corpus,
    file-size mixture, and POSIX-like operation traces.
``repro.bench``
    The harness that regenerates every table and figure of §5.
``repro.testing``
    The dict-backed oracle every implementation is verified against.

Quickstart
----------
    >>> from repro.core import H2CloudFS
    >>> fs = H2CloudFS.launch(account="alice")
    >>> fs.mkdir("/photos")
    >>> fs.write("/photos/cat.jpg", b"meow")
    >>> fs.listdir("/photos")
    ['cat.jpg']
"""

from . import baselines, bench, core, simcloud, testing, workloads
from .core import H2CloudFS
from .simcloud import LatencyModel, SimClock, SwiftCluster

__version__ = "1.0.0"

__all__ = [
    "H2CloudFS",
    "LatencyModel",
    "SimClock",
    "SwiftCluster",
    "__version__",
    "baselines",
    "bench",
    "core",
    "simcloud",
    "testing",
    "workloads",
]
