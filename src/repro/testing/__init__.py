"""`repro.testing` -- oracles and helpers for equivalence testing.

Exposes :class:`ModelFS`, the dict-backed reference filesystem every
implementation in this repository is tested against, plus
:func:`snapshot_of` for walking any filesystem into a comparable tree.
"""

from .model import ModelFS, snapshot_of, tree_hash

__all__ = ["ModelFS", "snapshot_of", "tree_hash"]
