"""A reference in-memory filesystem: the oracle for equivalence tests.

Every filesystem in this repository -- H2Cloud and all eight Table-1
baselines -- must agree with this model on the *logical* outcome of any
operation sequence.  The model is deliberately the dumbest possible
correct implementation: plain dicts, no hashing, no rings, no clouds.
Property-based tests drive random schedules through a system under
test and the model side by side and compare trees and error outcomes.
"""

from __future__ import annotations

from ..simcloud.errors import (
    AlreadyExists,
    DirectoryNotEmpty,
    InvalidPath,
    IsADirectory,
    NotADirectory,
    PathNotFound,
)
from ..core.namespace import normalize_path, parent_and_base, split_path


class ModelFS:
    """Dict-backed oracle with the shared operation vocabulary."""

    def __init__(self) -> None:
        self._dirs: set[str] = {"/"}
        self._files: dict[str, bytes] = {}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _require_dir(self, path: str) -> str:
        path = normalize_path(path)
        if path != "/":
            self._require_parent(path)
        if path in self._files:
            raise NotADirectory(path)
        if path not in self._dirs:
            raise PathNotFound(path)
        return path

    def _require_parent(self, path: str) -> tuple[str, str]:
        parent, base = parent_and_base(normalize_path(path))
        # Surface the *first* missing/contorted component like real
        # resolution would.
        probe = ""
        for component in split_path(parent) if parent != "/" else []:
            probe += "/" + component
            if probe in self._files:
                raise NotADirectory(probe)
            if probe not in self._dirs:
                raise PathNotFound(probe)
        return parent, base

    def _check_absent(self, path: str) -> None:
        if path in self._dirs or path in self._files:
            raise AlreadyExists(path)

    def _subtree(self, root: str) -> tuple[list[str], list[str]]:
        prefix = root.rstrip("/") + "/"
        dirs = [d for d in self._dirs if d == root or d.startswith(prefix)]
        files = [f for f in self._files if f.startswith(prefix)]
        return dirs, files

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def mkdir(self, path: str) -> None:
        path = normalize_path(path)
        if path == "/":
            raise AlreadyExists(path)
        self._require_parent(path)
        self._check_absent(path)
        self._dirs.add(path)

    def makedirs(self, path: str) -> None:
        partial = ""
        for component in split_path(path):
            partial += "/" + component
            if partial in self._files:
                raise NotADirectory(partial)
            if partial not in self._dirs:
                self._dirs.add(partial)

    def write(self, path: str, data: bytes) -> None:
        path = normalize_path(path)
        self._require_parent(path)
        if path in self._dirs:
            raise IsADirectory(path)
        self._files[path] = data

    def read(self, path: str) -> bytes:
        path = normalize_path(path)
        self._require_parent(path)
        if path in self._dirs:
            raise IsADirectory(path)
        if path not in self._files:
            raise PathNotFound(path)
        return self._files[path]

    def delete(self, path: str) -> None:
        path = normalize_path(path)
        self._require_parent(path)
        if path in self._dirs:
            raise IsADirectory(path)
        if path not in self._files:
            raise PathNotFound(path)
        del self._files[path]

    def rmdir(self, path: str, recursive: bool = True) -> None:
        path = normalize_path(path)
        if path == "/":
            raise InvalidPath(path, "cannot remove the root")
        self._require_parent(path)
        if path in self._files:
            raise NotADirectory(path)
        path = self._require_dir(path)
        if not recursive and self.listdir(path):
            raise DirectoryNotEmpty(path)
        dirs, files = self._subtree(path)
        for d in dirs:
            self._dirs.discard(d)
        for f in files:
            del self._files[f]

    def move(self, src: str, dst: str) -> None:
        src, dst = normalize_path(src), normalize_path(dst)
        if src == "/":
            raise InvalidPath(src, "cannot move the root")
        if src not in self._dirs and src not in self._files:
            # resolve for the precise error
            self._require_parent(src)
            raise PathNotFound(src)
        self._require_parent(dst)
        self._check_absent(dst)
        if src in self._dirs and (dst == src or dst.startswith(src + "/")):
            raise InvalidPath(dst, "destination is inside the moved directory")
        if src in self._files:
            self._files[dst] = self._files.pop(src)
            return
        dirs, files = self._subtree(src)
        for d in dirs:
            self._dirs.discard(d)
            self._dirs.add(dst + d[len(src):])
        for f in files:
            self._files[dst + f[len(src):]] = self._files.pop(f)

    def rename(self, src: str, dst: str) -> None:
        self.move(src, dst)

    def copy(self, src: str, dst: str) -> None:
        # Error precedence mirrors H2Middleware.copy: source resolution,
        # then destination parent, then destination collision, then the
        # root-source guard.
        src, dst = normalize_path(src), normalize_path(dst)
        if src != "/":
            self._require_parent(src)
            if src not in self._files and src not in self._dirs:
                raise PathNotFound(src)
        self._require_parent(dst)
        self._check_absent(dst)
        if src in self._files:
            self._files[dst] = self._files[src]
            return
        if src == "/":
            raise InvalidPath(src, "cannot copy the root onto a child")
        dirs, files = self._subtree(src)
        for d in dirs:
            self._dirs.add(dst + d[len(src):])
        for f in files:
            self._files[dst + f[len(src):]] = self._files[f]

    def listdir(self, path: str = "/") -> list[str]:
        path = self._require_dir(path)
        prefix = path.rstrip("/") + "/"
        names: set[str] = set()
        for entry in list(self._dirs) + list(self._files):
            if entry != path and entry.startswith(prefix):
                names.add(entry[len(prefix):].split("/", 1)[0])
        return sorted(names)

    def exists(self, path: str) -> bool:
        path = normalize_path(path)
        return path in self._dirs or path in self._files

    def is_dir(self, path: str) -> bool:
        return normalize_path(path) in self._dirs

    # ------------------------------------------------------------------
    # snapshots for comparison
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, bytes | None]:
        """{path: content-or-None-for-dirs} over the whole tree."""
        tree: dict[str, bytes | None] = {d: None for d in self._dirs if d != "/"}
        tree.update(self._files)
        return tree

    @property
    def file_count(self) -> int:
        return len(self._files)

    @property
    def dir_count(self) -> int:
        return len(self._dirs) - 1  # excluding root


def tree_hash(snapshot: dict[str, bytes | None]) -> str:
    """A canonical digest of a model-style snapshot.

    Stable across dict ordering and independent of how the snapshot was
    produced (model, full walk, per-middleware walk), so two filesystems
    are logically identical iff their tree hashes match.  This is the
    "final tree hash" component of a deterministic-simulation run digest.
    """
    import hashlib

    h = hashlib.sha256()
    for path in sorted(snapshot):
        content = snapshot[path]
        h.update(path.encode("utf-8", "surrogatepass"))
        if content is None:
            h.update(b"\x00DIR\x00")
        else:
            h.update(b"\x00FILE\x00")
            h.update(hashlib.sha256(bytes(content)).digest())
        h.update(b"\x00")
    return h.hexdigest()


def snapshot_of(fs, top: str = "/") -> dict[str, bytes | None]:
    """Walk any filesystem with the shared API into a model-style snapshot."""
    tree: dict[str, bytes | None] = {}
    for dirpath, dirnames, filenames in fs.walk(top):
        for d in dirnames:
            tree[(dirpath.rstrip("/") or "") + "/" + d] = None
        for f in filenames:
            full = (dirpath.rstrip("/") or "") + "/" + f
            tree[full] = fs.read(full)
    return tree
