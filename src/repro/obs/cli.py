"""``python -m repro metrics|trace|obs`` -- observability from the shell.

    repro metrics [--format prom|json]
        Run a small canned session on a fresh deployment and print its
        metrics -- Prometheus exposition text (default) or JSON.

    repro trace [--out FILE] [--tree]
        Run a two-middleware MKDIR + PUT + MOVE session with causal
        tracing enabled and emit the Chrome Trace Event JSON (load it
        in chrome://tracing or https://ui.perfetto.dev).  ``--tree``
        prints an indented span-tree rendering instead.

    repro obs timeline|critpath|alerts [--scenario N] [--tier T] [--seed S]
        Replay a scenario with telemetry enabled and render, in turn:
        the fleet telemetry timeline, the critical-path tail-latency
        attribution report, or the default SLO ruleset's alert
        evaluation.  ``--json`` prints the raw document, ``--out FILE``
        writes it.

All commands are deterministic: sessions run on the simulated clock,
so two invocations print identical output.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from .alerts import DEFAULT_RULES, alerts_json, evaluate_rules, format_alerts
from .critpath import critpath_json, format_report
from .export import (
    chrome_trace,
    deployment_metrics,
    format_span_tree,
    metrics_json,
    prometheus_text,
    write_chrome_trace,
)
from .timeseries import format_timeline


def _canned_session(middlewares: int, tracing: bool):
    """A small deterministic workload touching every major subsystem."""
    from ..core.fs import H2CloudFS
    from ..simcloud.cluster import SwiftCluster

    fs = H2CloudFS(
        SwiftCluster.rack_scale(),
        account="demo",
        middlewares=middlewares,
        tracing=tracing,
    )
    fs.mkdir("/photos")
    fs.write("/photos/cat.jpg", b"meow" * 64)
    fs.listdir("/photos")
    fs.read("/photos/cat.jpg")
    fs.move("/photos/cat.jpg", "/photos/kitten.jpg")
    fs.pump()
    return fs


def _cmd_metrics(args: argparse.Namespace) -> int:
    fs = _canned_session(middlewares=args.middlewares, tracing=False)
    if args.format == "json":
        print(json.dumps(metrics_json(fs), indent=2, sort_keys=True))
    else:
        print(prometheus_text(deployment_metrics(fs)), end="")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    fs = _canned_session(middlewares=args.middlewares, tracing=True)
    if args.tree:
        print(format_span_tree(fs.tracer.finished_spans()))
        return 0
    if args.out:
        path = write_chrome_trace(fs.tracer, args.out)
        print(f"wrote {len(fs.tracer.spans)} spans to {path}")
        return 0
    print(json.dumps(chrome_trace(fs.tracer), indent=1))
    return 0


def metrics_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description="print deployment metrics for a canned session",
    )
    parser.add_argument("--format", choices=("prom", "json"), default="prom")
    parser.add_argument("--middlewares", type=int, default=2)
    return _cmd_metrics(parser.parse_args(argv))


def trace_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="emit a Chrome trace for a canned traced session",
    )
    parser.add_argument("--out", metavar="FILE", default=None)
    parser.add_argument(
        "--tree", action="store_true", help="print an indented span tree"
    )
    parser.add_argument("--middlewares", type=int, default=2)
    return _cmd_trace(parser.parse_args(argv))


# ----------------------------------------------------------------------
# python -m repro obs timeline|critpath|alerts
# ----------------------------------------------------------------------
def _telemetry_report(args: argparse.Namespace):
    """Replay the requested scenario with telemetry captured."""
    from ..bench.scale import (
        SCALE_SAMPLE_INTERVAL_US,
        run_scenario,
    )
    from ..workloads.scenarios import build_scenario

    spec = build_scenario(args.scenario, tier=args.tier, seed=args.seed)
    return run_scenario(
        spec,
        capture_trace=True,
        sample_interval_us=SCALE_SAMPLE_INTERVAL_US,
    )


def _emit(doc: dict, text: str, serialized: str, args) -> int:
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(serialized)
        print(f"wrote {args.out}")
    elif args.json:
        print(serialized, end="")
    else:
        print(text)
    return 0


def obs_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="temporal telemetry, tail attribution and SLO alerts "
        "over a deterministic scenario replay",
    )
    parser.add_argument(
        "command", choices=("timeline", "critpath", "alerts")
    )
    parser.add_argument("--scenario", default="sync-storm")
    parser.add_argument("--tier", default="smoke")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json", action="store_true", help="print the raw JSON document"
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write the JSON document here"
    )
    args = parser.parse_args(argv)

    report = _telemetry_report(args)
    if args.command == "timeline":
        doc = report.timeline or {}
        return _emit(
            doc,
            format_timeline(doc),
            json.dumps(doc, indent=2, sort_keys=True) + "\n",
            args,
        )
    if args.command == "critpath":
        doc = report.critpath or {}
        return _emit(doc, format_report(doc), critpath_json(doc), args)
    doc = evaluate_rules(report.timeline or {}, DEFAULT_RULES)
    status = _emit(doc, format_alerts(doc), alerts_json(doc), args)
    return 1 if doc["alerts"] else status
