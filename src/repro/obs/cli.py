"""``python -m repro metrics|trace`` -- observability from the shell.

    repro metrics [--format prom|json]
        Run a small canned session on a fresh deployment and print its
        metrics -- Prometheus exposition text (default) or JSON.

    repro trace [--out FILE] [--tree]
        Run a two-middleware MKDIR + PUT + MOVE session with causal
        tracing enabled and emit the Chrome Trace Event JSON (load it
        in chrome://tracing or https://ui.perfetto.dev).  ``--tree``
        prints an indented span-tree rendering instead.

Both commands are deterministic: the session runs on the simulated
clock, so two invocations print identical output.
"""

from __future__ import annotations

import argparse
import json

from .export import (
    chrome_trace,
    deployment_metrics,
    format_span_tree,
    metrics_json,
    prometheus_text,
    write_chrome_trace,
)


def _canned_session(middlewares: int, tracing: bool):
    """A small deterministic workload touching every major subsystem."""
    from ..core.fs import H2CloudFS
    from ..simcloud.cluster import SwiftCluster

    fs = H2CloudFS(
        SwiftCluster.rack_scale(),
        account="demo",
        middlewares=middlewares,
        tracing=tracing,
    )
    fs.mkdir("/photos")
    fs.write("/photos/cat.jpg", b"meow" * 64)
    fs.listdir("/photos")
    fs.read("/photos/cat.jpg")
    fs.move("/photos/cat.jpg", "/photos/kitten.jpg")
    fs.pump()
    return fs


def _cmd_metrics(args: argparse.Namespace) -> int:
    fs = _canned_session(middlewares=args.middlewares, tracing=False)
    if args.format == "json":
        print(json.dumps(metrics_json(fs), indent=2, sort_keys=True))
    else:
        print(prometheus_text(deployment_metrics(fs)), end="")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    fs = _canned_session(middlewares=args.middlewares, tracing=True)
    if args.tree:
        print(format_span_tree(fs.tracer.finished_spans()))
        return 0
    if args.out:
        path = write_chrome_trace(fs.tracer, args.out)
        print(f"wrote {len(fs.tracer.spans)} spans to {path}")
        return 0
    print(json.dumps(chrome_trace(fs.tracer), indent=1))
    return 0


def metrics_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description="print deployment metrics for a canned session",
    )
    parser.add_argument("--format", choices=("prom", "json"), default="prom")
    parser.add_argument("--middlewares", type=int, default=2)
    return _cmd_metrics(parser.parse_args(argv))


def trace_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="emit a Chrome trace for a canned traced session",
    )
    parser.add_argument("--out", metavar="FILE", default=None)
    parser.add_argument(
        "--tree", action="store_true", help="print an indented span tree"
    )
    parser.add_argument("--middlewares", type=int, default=2)
    return _cmd_trace(parser.parse_args(argv))
