"""The unified metrics registry.

One :class:`MetricsRegistry` per middleware replaces the ad-hoc
attribute counters the seed scattered across ``middleware.py``,
``merger.py`` and friends: components obtain named instruments once at
construction and bump them on the hot path; ``snapshot()`` flattens
everything into the stable ``dict[str, float]`` the Monitor has always
exported.

Instruments:

* :class:`Counter` -- monotonically increasing float/int;
* :class:`Gauge` -- a settable level, or a *pull* gauge bound to a
  zero-argument callable evaluated at snapshot time (how snapshot
  keys like ``fd_cache.size`` stay live without write traffic);
* :class:`Histogram` -- latency/size distribution with exact
  p50/p95/p99 from a seeded reservoir (algorithm R with a
  deterministic per-name seed, so runs stay bit-reproducible).

:class:`NullRegistry` is the no-op fast path: every instrument it
hands out swallows writes at near-zero cost, which is what the
tracing/metrics overhead guard benchmarks against.
"""

from __future__ import annotations

import random
import zlib
from bisect import insort
from typing import Callable, Iterable, Sequence


def percentile_of(sorted_values: Sequence, q: float) -> float:
    """Linear-interpolated quantile ``q`` in (0, 1] over sorted values.

    The one quantile definition used everywhere latency percentiles are
    reported -- :class:`Histogram`, the workload replayer's
    :class:`~repro.workloads.traces.TraceStats` and the scenario SLO
    report cards all call this, so "p99" means the same number no
    matter which layer printed it.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError("q must be in (0, 1]")
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = q * (len(sorted_values) - 1)
    lo = int(rank)
    frac = rank - lo
    if lo + 1 >= len(sorted_values):
        return float(sorted_values[-1])
    return sorted_values[lo] + (sorted_values[lo + 1] - sorted_values[lo]) * frac


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def __int__(self) -> int:
        return int(self.value)


class Gauge:
    """A level that can go up and down (or be pulled from a callable)."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Callable[[], float] | None = None):
        self.name = name
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name} is pull-based")
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1) -> None:
        self.set(self._value - amount)

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Histogram:
    """A distribution with exact quantiles from a seeded reservoir.

    Up to ``reservoir_size`` observations are kept verbatim (sorted),
    so quantiles are *exact* for the workload sizes the simulation
    produces; beyond that, reservoir sampling (algorithm R) keeps an
    unbiased sample.  The RNG is seeded from the metric name via CRC32
    -- no wall-clock entropy, so deterministic-simulation digests are
    unaffected by instrumentation.
    """

    __slots__ = (
        "name",
        "reservoir_size",
        "samples",
        "total",
        "max",
        "min",
        "_sorted",
        "_rng",
        "_window",
    )

    def __init__(self, name: str, reservoir_size: int = 4096):
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.name = name
        self.reservoir_size = reservoir_size
        self.samples = 0
        self.total = 0
        # Both extrema are None until the first observation: a zero max
        # on an all-negative (or empty) stream is a lie.
        self.max: int | float | None = None
        self.min: int | float | None = None
        self._sorted: list = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._window: list | None = None

    def enable_window(self) -> None:
        """Start buffering raw observations for per-window statistics.

        Used by the telemetry sampler: between two ``drain_window``
        calls every observation is also kept verbatim, so a time-series
        window can report *its own* p50/p99 rather than the cumulative
        reservoir's.  Off by default -- the unsampled hot path pays one
        ``is None`` check per observation.
        """
        if self._window is None:
            self._window = []

    def drain_window(self) -> list:
        """Return (sorted) and reset the current window buffer."""
        if not self._window:
            return []
        window = sorted(self._window)
        self._window.clear()
        return window

    def observe(self, value) -> None:
        self.samples += 1
        self.total += value
        if self.max is None or value > self.max:
            self.max = value
        if self.min is None or value < self.min:
            self.min = value
        if self._window is not None:
            self._window.append(value)
        if len(self._sorted) < self.reservoir_size:
            insort(self._sorted, value)
            return
        slot = self._rng.randrange(self.samples)
        if slot < self.reservoir_size:
            del self._sorted[self._rng.randrange(self.reservoir_size)]
            insort(self._sorted, value)

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated quantile ``q`` in (0, 1] over the reservoir."""
        return percentile_of(self._sorted, q)

    def values(self) -> list:
        """The retained observations, sorted (tests and exporters)."""
        return list(self._sorted)


class MetricsRegistry:
    """Named instruments for one component (typically one middleware).

    ``counter``/``gauge``/``histogram`` are get-or-create and stable:
    the same name always returns the same instrument, so callers bind
    instruments once at construction and never re-look-up on the hot
    path.
    """

    noop = False

    def __init__(self, reservoir_size: int = 4096):
        self._reservoir_size = reservoir_size
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._windowed = False

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str, fn: Callable[[], float] | None = None) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._gauges[name] = Gauge(name, fn)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._histograms[name] = Histogram(
                name, self._reservoir_size
            )
            if self._windowed:
                instrument.enable_window()
        return instrument

    def enable_windows(self) -> None:
        """Window-buffer every histogram, including ones created later.

        Called by the telemetry sampler when it attaches; instruments
        are created lazily on first use, so the registry remembers the
        windowing choice for late arrivals.
        """
        self._windowed = True
        for hist in self._histograms.values():
            hist.enable_window()

    def _check_free(self, name: str) -> None:
        if name in self._counters or name in self._gauges or name in self._histograms:
            raise ValueError(f"metric {name!r} already registered with another type")

    # ------------------------------------------------------------------
    def counters(self) -> Iterable[Counter]:
        return self._counters.values()

    def gauges(self) -> Iterable[Gauge]:
        return self._gauges.values()

    def histograms(self) -> Iterable[Histogram]:
        return self._histograms.values()

    def snapshot(self) -> dict[str, float]:
        """Flat name -> value map; histogram stats get dotted suffixes."""
        out: dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, hist in self._histograms.items():
            out[f"{name}.count"] = hist.samples
            out[f"{name}.mean"] = hist.mean
            # Extrema are None until the first observation; the snapshot
            # contract is numbers only, so empty reports 0.0 for both.
            out[f"{name}.min"] = hist.min if hist.min is not None else 0.0
            out[f"{name}.max"] = hist.max if hist.max is not None else 0.0
            out[f"{name}.p50"] = hist.percentile(0.50)
            out[f"{name}.p95"] = hist.percentile(0.95)
            out[f"{name}.p99"] = hist.percentile(0.99)
        return out


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The no-op fast path: hands out write-swallowing instruments.

    Singletons, allocated once: ``registry.counter(...).inc()`` on a
    null registry costs two attribute lookups and a no-op call, which
    is what keeps the uninstrumented baseline of the overhead guard
    honest.
    """

    noop = True

    def __init__(self):
        super().__init__(reservoir_size=1)
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null", 1)

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str, fn: Callable[[], float] | None = None) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        return self._null_histogram

    def snapshot(self) -> dict[str, float]:
        return {}


NULL_REGISTRY = NullRegistry()
