"""Critical-path analysis: *where did each operation's time go?*

The tracer (PR 3) collects span trees nobody reads.  This module walks
every finished ``op.*`` root and partitions its wall time into named
cause buckets by interval sweep: at every instant of the root's window
the *deepest* active classified descendant span owns that instant, so
the buckets are an exact partition -- they sum to the root's duration
by construction, never merely "approximately".

Two wait causes have no span of their own, only instant events carrying
how long the clock was just advanced (``store.retry`` tags ``wait_us``,
``store.timeout`` tags ``waited_us``).  Those waits become pseudo
intervals ending at the event, deeper than any real span: backoff time
is carved *out of* the store call that paid it and blamed on
``retry_backoff``/``timeout_wait``, still without breaking the
partition.

Zero-duration causes (breaker fast-fails, dual-epoch reads,
write-throughs, degraded serves, breaker trips) cannot own time; they
are tallied as per-bucket event *counts* instead.

The tail-attribution report then takes every op at or beyond its class
p99 and aggregates blame: "p99 writes are 78% retry backoff" becomes
``python -m repro obs critpath``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .metrics import percentile_of

CRITPATH_FORMAT = "h2cloud-critpath-v1"

#: depth assigned to retry/timeout wait pseudo-intervals: deeper than
#: any real span, so carved waits always win the sweep.
_WAIT_DEPTH = 1 << 30

#: span name (or prefix, for entries ending in ".") -> time bucket
_TIME_BUCKETS = (
    ("store.get_range", "store_get"),
    ("store.get", "store_get"),
    ("store.put", "store_put"),
    ("store.head", "store_other"),
    ("store.delete", "store_other"),
    ("lookup.hop", "lookup"),
    ("patch.submit", "patch_submit"),
    ("patch.group_flush", "merge_flush"),
    ("merge.", "merge_flush"),
    ("gossip.", "gossip"),
    ("gc.", "gc"),
    ("scrub", "scrub"),
)

#: instant-event span name -> count bucket
_EVENT_BUCKETS = {
    "store.retry": "retry_backoff",
    "store.timeout": "timeout_wait",
    "breaker.fast_fail": "breaker_wait",
    "breaker.trip": "breaker_wait",
    "membership.dual_read": "membership",
    "membership.write_through": "membership",
    "degraded.read": "degraded",
    "store.corrupt_replica": "integrity",
    "store.read_repair": "integrity",
}

#: bucket an event's carved wait time lands in (else it only counts)
_WAIT_TAGS = {
    "store.retry": ("wait_us", "retry_backoff"),
    "store.timeout": ("waited_us", "timeout_wait"),
}


def classify_span(name: str) -> str | None:
    """The time bucket a span's self-time belongs to (None: unclassified)."""
    for prefix, bucket in _TIME_BUCKETS:
        if name.startswith(prefix):
            return bucket
    return None


@dataclass
class OpAttribution:
    """One ``op.*`` root's wall time, partitioned into cause buckets."""

    name: str  # op name without the "op." prefix
    trace_id: int
    start_us: int
    duration_us: int
    node: object = None
    path: object = None
    error: str | None = None
    buckets: dict[str, int] = field(default_factory=dict)  # bucket -> us
    events: dict[str, int] = field(default_factory=dict)  # bucket -> count

    @property
    def attributed_us(self) -> int:
        return sum(self.buckets.values())

    def to_json(self) -> dict:
        return {
            "op": self.name,
            "trace_id": self.trace_id,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "node": self.node,
            "path": self.path,
            "error": self.error,
            "buckets": dict(sorted(self.buckets.items())),
            "events": dict(sorted(self.events.items())),
        }


def _descendants(root, children):
    """(span, depth) for every descendant of ``root``, recording order."""
    out = []
    frontier = [(root, 0)]
    while frontier:
        span, depth = frontier.pop()
        for child in children.get(span.span_id, ()):
            out.append((child, depth + 1))
            frontier.append((child, depth + 1))
    return out


def _attribute(root, children) -> OpAttribution:
    """Partition one root's window by interval sweep (see module doc)."""
    attribution = OpAttribution(
        name=root.name[len("op."):],
        trace_id=root.trace_id,
        start_us=root.start_us,
        duration_us=root.duration_us,
        node=root.tags.get("node"),
        path=root.tags.get("path"),
        error=root.tags.get("error"),
    )
    lo, hi = root.start_us, root.end_us
    # (start, end, depth, order, bucket) intervals competing for instants.
    intervals: list[tuple[int, int, int, int, str]] = []
    order = 0
    for span, depth in _descendants(root, children):
        if span.end_us is None:
            continue
        event_bucket = _EVENT_BUCKETS.get(span.name)
        if event_bucket is not None:
            attribution.events[event_bucket] = (
                attribution.events.get(event_bucket, 0) + 1
            )
        wait = _WAIT_TAGS.get(span.name)
        if wait is not None:
            tag, bucket = wait
            wait_us = int(span.tags.get(tag, 0))
            start = max(lo, span.end_us - wait_us)
            if span.end_us > start:
                order += 1
                intervals.append(
                    (start, min(hi, span.end_us), _WAIT_DEPTH, order, bucket)
                )
            continue
        bucket = classify_span(span.name)
        if bucket is None:
            continue
        start, end = max(lo, span.start_us), min(hi, span.end_us)
        if end > start:
            order += 1
            intervals.append((start, end, depth, order, bucket))
    if hi > lo:
        bounds = {lo, hi}
        for start, end, _, _, _ in intervals:
            bounds.add(start)
            bounds.add(end)
        points = sorted(bounds)
        buckets = attribution.buckets
        for t0, t1 in zip(points, points[1:]):
            best = None
            for start, end, depth, order, bucket in intervals:
                if start <= t0 and end >= t1:
                    key = (depth, order)
                    if best is None or key > best[0]:
                        best = (key, bucket)
            bucket = best[1] if best is not None else "op_self"
            buckets[bucket] = buckets.get(bucket, 0) + (t1 - t0)
    return attribution


def analyze(tracer) -> list[OpAttribution]:
    """One :class:`OpAttribution` per finished ``op.*`` root span.

    ``tracer`` is a :class:`~repro.obs.trace.Tracer` (its per-trace
    index makes this linear in the span count).  Nested ``op.*`` spans
    (an op re-entering the inbound API) are folded into their outermost
    ancestor rather than analyzed twice.
    """
    out: list[OpAttribution] = []
    for spans in tracer.traces().values():
        by_id = {s.span_id: s for s in spans}
        children: dict[int, list] = {}
        for span in spans:
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)
        for span in spans:
            if not span.name.startswith("op.") or span.end_us is None:
                continue
            parent, nested = span.parent_id, False
            while parent is not None:
                ancestor = by_id.get(parent)
                if ancestor is None:
                    break
                if ancestor.name.startswith("op."):
                    nested = True
                    break
                parent = ancestor.parent_id
            if not nested:
                out.append(_attribute(span, children))
    return out


# ----------------------------------------------------------------------
# tail attribution
# ----------------------------------------------------------------------
def blame_summary(group: list[OpAttribution]) -> dict:
    """Aggregate bucket blame (time shares + event counts) over a group."""
    time_us: dict[str, int] = {}
    events: dict[str, int] = {}
    for attribution in group:
        for bucket, us in attribution.buckets.items():
            time_us[bucket] = time_us.get(bucket, 0) + us
        for bucket, count in attribution.events.items():
            events[bucket] = events.get(bucket, 0) + count
    total = sum(time_us.values())
    blame = {
        bucket: {
            "ms": round(us / 1000.0, 3),
            "share": round(us / total, 4) if total else 0.0,
        }
        for bucket, us in sorted(time_us.items())
    }
    dominant = None
    if time_us:
        dominant = max(sorted(time_us), key=lambda b: time_us[b])
    elif group:
        # Zero-duration ops (cache hits, existence probes) have no time
        # to blame; the op itself is trivially the whole critical path.
        dominant = "op_self"
    return {
        "count": len(group),
        "dominant": dominant,
        "blame": blame,
        "events": dict(sorted(events.items())),
    }


def tail_report(
    attributions: list[OpAttribution],
    quantile: float = 0.99,
    classes: dict[str, str] | None = None,
) -> dict:
    """Blame aggregation for every op at or beyond its class ``quantile``.

    ``classes`` maps op name -> SLO class (e.g. the scale runner's
    ``OP_CLASSES``); unmapped ops form their own class.  Failed ops are
    excluded from the latency distribution (they are refusals, not slow
    successes) but reported separately as ``errors``.
    """
    grouped: dict[str, list[OpAttribution]] = {}
    errors: dict[str, int] = {}
    for attribution in attributions:
        cls = (classes or {}).get(attribution.name, attribution.name)
        if attribution.error is not None:
            errors[cls] = errors.get(cls, 0) + 1
            continue
        grouped.setdefault(cls, []).append(attribution)
    out_classes: dict[str, dict] = {}
    for cls in sorted(grouped):
        group = grouped[cls]
        durations = sorted(a.duration_us for a in group)
        threshold = percentile_of(durations, quantile)
        tail = [a for a in group if a.duration_us >= threshold]
        worst = max(group, key=lambda a: (a.duration_us, a.start_us))
        out_classes[cls] = {
            "count": len(group),
            "errors": errors.pop(cls, 0),
            "p_ms": round(threshold / 1000.0, 3),
            "all": blame_summary(group),
            "tail": blame_summary(tail),
            "worst": worst.to_json(),
        }
    for cls, count in sorted(errors.items()):  # classes with only failures
        out_classes[cls] = {
            "count": 0,
            "errors": count,
            "p_ms": 0.0,
            "all": blame_summary([]),
            "tail": blame_summary([]),
            "worst": None,
        }
    return {
        "format": CRITPATH_FORMAT,
        "quantile": quantile,
        "ops_analyzed": len(attributions),
        "classes": out_classes,
    }


def critpath_json(report: dict) -> str:
    """The canonical byte-stable serialization of a tail report."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def write_critpath(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(critpath_json(report))
    return path


def format_report(report: dict) -> str:
    """An aligned text rendering of a tail-attribution report."""
    lines = [
        f"critical-path tail attribution "
        f"(q={report['quantile']}, {report['ops_analyzed']} ops)"
    ]
    for cls, doc in report["classes"].items():
        tail = doc["tail"]
        head = (
            f"{cls}: {doc['count']} ops, p{int(report['quantile'] * 100)}"
            f"={doc['p_ms']}ms, {tail['count']} in tail"
        )
        if doc["errors"]:
            head += f", {doc['errors']} failed"
        lines.append(head)
        for bucket, share in sorted(
            tail["blame"].items(), key=lambda kv: -kv[1]["ms"]
        ):
            marker = " <- dominant" if bucket == tail["dominant"] else ""
            lines.append(
                f"  {bucket:<14} {share['ms']:>10.3f}ms "
                f"{share['share']:>7.1%}{marker}"
            )
        if tail["events"]:
            lines.append(
                "  events: "
                + ", ".join(
                    f"{bucket}={count}"
                    for bucket, count in tail["events"].items()
                )
            )
    return "\n".join(lines)
