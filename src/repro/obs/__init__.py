"""`repro.obs` -- the observability layer (paper Fig 6's monitoring module).

The paper reserves middleware modules for "inter-communications and
system monitoring"; this package is that module grown to production
shape:

* :mod:`~repro.obs.metrics` -- a :class:`MetricsRegistry` of named
  counters, gauges and histograms (exact p50/p95/p99 via a seeded
  reservoir) that backs :class:`repro.core.monitoring.Monitor`;
* :mod:`~repro.obs.trace` -- causal tracing: a :class:`TraceContext`
  propagated from every ``webapi``/``fs`` entry point through lookup
  hops, patch submission, merges, gossip rumor hops, anti-entropy,
  breaker/retry/degraded-read events and GC, carried inside patch and
  rumor metadata so one span tree survives crossing middleware nodes;
* :mod:`~repro.obs.export` -- Prometheus-text and JSON metric
  exporters plus a Chrome-trace-event (``chrome://tracing`` /
  Perfetto) trace exporter;
* :mod:`~repro.obs.timeseries` -- temporal telemetry: a
  :class:`TelemetrySampler` snapshotting every registry on a fixed
  sim-clock cadence into ring-buffered windows (counter deltas,
  gauge levels, per-window histogram percentiles);
* :mod:`~repro.obs.critpath` -- critical-path analysis partitioning
  each ``op.*`` root span's wall time into named cause buckets, and
  the tail-attribution report built on it;
* :mod:`~repro.obs.alerts` -- declarative SLO rules (latency
  thresholds, multi-window burn rates) evaluated over timelines;
* :mod:`~repro.obs.cli` -- ``python -m repro metrics|trace|obs``.
"""

from .alerts import (
    DEFAULT_RULES,
    SloRule,
    alerts_json,
    burn_rate,
    evaluate_rules,
    format_alerts,
    write_alerts,
)
from .critpath import (
    OpAttribution,
    analyze,
    classify_span,
    critpath_json,
    format_report,
    tail_report,
    write_critpath,
)
from .export import (
    chrome_trace,
    chrome_trace_events,
    deployment_metrics,
    metrics_json,
    prometheus_text,
    span_tree,
    write_chrome_trace,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    percentile_of,
)
from .timeseries import (
    TelemetrySampler,
    condense_timeline,
    format_timeline,
    timeline_json,
    write_timeline,
)
from .trace import NULL_TRACER, NullTracer, Span, TraceContext, Tracer

__all__ = [
    "DEFAULT_RULES",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "OpAttribution",
    "SloRule",
    "Span",
    "TelemetrySampler",
    "TraceContext",
    "Tracer",
    "alerts_json",
    "analyze",
    "burn_rate",
    "chrome_trace",
    "chrome_trace_events",
    "classify_span",
    "condense_timeline",
    "critpath_json",
    "deployment_metrics",
    "evaluate_rules",
    "format_alerts",
    "format_report",
    "format_timeline",
    "metrics_json",
    "percentile_of",
    "prometheus_text",
    "span_tree",
    "tail_report",
    "timeline_json",
    "write_alerts",
    "write_chrome_trace",
    "write_critpath",
    "write_timeline",
]
