"""`repro.obs` -- the observability layer (paper Fig 6's monitoring module).

The paper reserves middleware modules for "inter-communications and
system monitoring"; this package is that module grown to production
shape:

* :mod:`~repro.obs.metrics` -- a :class:`MetricsRegistry` of named
  counters, gauges and histograms (exact p50/p95/p99 via a seeded
  reservoir) that backs :class:`repro.core.monitoring.Monitor`;
* :mod:`~repro.obs.trace` -- causal tracing: a :class:`TraceContext`
  propagated from every ``webapi``/``fs`` entry point through lookup
  hops, patch submission, merges, gossip rumor hops, anti-entropy,
  breaker/retry/degraded-read events and GC, carried inside patch and
  rumor metadata so one span tree survives crossing middleware nodes;
* :mod:`~repro.obs.export` -- Prometheus-text and JSON metric
  exporters plus a Chrome-trace-event (``chrome://tracing`` /
  Perfetto) trace exporter;
* :mod:`~repro.obs.cli` -- ``python -m repro metrics|trace``.
"""

from .export import (
    chrome_trace,
    chrome_trace_events,
    deployment_metrics,
    metrics_json,
    prometheus_text,
    span_tree,
    write_chrome_trace,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    percentile_of,
)
from .trace import NULL_TRACER, NullTracer, Span, TraceContext, Tracer

__all__ = [
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Span",
    "TraceContext",
    "Tracer",
    "chrome_trace",
    "chrome_trace_events",
    "deployment_metrics",
    "metrics_json",
    "percentile_of",
    "prometheus_text",
    "span_tree",
    "write_chrome_trace",
]
