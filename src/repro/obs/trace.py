"""Causal tracing through the asynchronous maintenance pipeline.

*Where is my patch right now?*  A :class:`TraceContext` is born at a
``webapi``/``fs`` entry point and rides along as the operation fans
out: one span per NameRing hop during lookup, a span per submitted
patch, merge spans linked to the patch that caused them (even when the
merge runs later, in the background), gossip rumor deliveries on *peer*
middlewares, anti-entropy pulls, breaker/retry/degraded-read events and
GC passes.  Patches and rumors carry the context in their in-memory
metadata, so one span tree survives crossing middleware nodes.

The tracer is deliberately passive: it reads the simulated clock but
never advances it, allocates ids from plain counters (no wall-clock or
RNG entropy), and when full simply counts drops -- so enabling tracing
can never change a deterministic-simulation digest.

:data:`NULL_TRACER` is the disabled fast path: ``span()`` returns a
shared no-op context manager and ``event()`` is a constant-time no-op,
which is what uninstrumented deployments run against.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceContext:
    """The propagated half of a span: enough to parent a remote child."""

    trace_id: int
    span_id: int


@dataclass
class Span:
    """One timed operation in one trace."""

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    start_us: int
    end_us: int | None = None
    tags: dict[str, object] = field(default_factory=dict)

    @property
    def duration_us(self) -> int:
        return (self.end_us or self.start_us) - self.start_us

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def tag(self, key: str, value: object) -> None:
        self.tags[key] = value


class _ActiveSpan:
    """Context manager binding one :class:`Span` to the tracer stack."""

    __slots__ = ("_tracer", "span", "retained")

    def __init__(self, tracer: "Tracer", span: Span, retained: bool):
        self._tracer = tracer
        self.span = span
        self.retained = retained

    def __enter__(self) -> Span:
        self._tracer._stack.append(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self.span
        span.end_us = self._tracer._clock.now_us
        if exc_type is not None:
            span.tags.setdefault("error", exc_type.__name__)
        if self.retained:
            self._tracer._finished_count += 1
        stack = self._tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced exits
            stack.remove(span)


class _NullSpan:
    """Reusable no-op context manager (and inert span stand-in)."""

    __slots__ = ()
    tags: dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def tag(self, key: str, value: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one deployment (all middlewares share one).

    Every span either continues the active span on the stack, continues
    an explicit :class:`TraceContext` carried by a patch or rumor, or
    starts a fresh trace -- that is the entire propagation model, and it
    is enough because the simulation is single-threaded.
    """

    noop = False

    def __init__(self, clock, max_spans: int = 250_000):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self._clock = clock
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._stack: list[Span] = []
        self._next_trace = 0
        self._next_span = 0
        self._muted = 0
        # Incremental trace-id index + finished-span memo: the critpath
        # analyzer asks for both repeatedly, and a 250k-span rescan per
        # call would make it quadratic.
        self._by_trace: dict[int, list[Span]] = {}
        self._finished_count = 0
        self._finished_key: tuple[int, int] = (-1, -1)
        self._finished: list[Span] = []

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        tags: dict[str, object] | None = None,
        parent: TraceContext | None = None,
    ) -> _ActiveSpan:
        """Open a span as a context manager.

        Parentage: explicit ``parent`` (a carried context) wins, then
        the innermost active span, else a brand-new trace id.
        """
        if parent is None and self._stack:
            parent = self._stack[-1].context
        if parent is None:
            self._next_trace += 1
            trace_id, parent_id = self._next_trace, None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        self._next_span += 1
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span,
            parent_id=parent_id,
            name=name,
            start_us=self._clock.now_us,
            tags=dict(tags) if tags else {},
        )
        retained = False
        if self._muted:
            pass  # suppressed, not counted as dropped (see mute())
        elif len(self.spans) < self.max_spans:
            self.spans.append(span)
            self._by_trace.setdefault(trace_id, []).append(span)
            retained = True
        else:
            self.dropped += 1
        return _ActiveSpan(self, span, retained)

    def event(
        self,
        name: str,
        tags: dict[str, object] | None = None,
        parent: TraceContext | None = None,
    ) -> None:
        """Record an instant (zero-duration) span -- retries, trips, ..."""
        with self.span(name, tags=tags, parent=parent):
            pass

    # ------------------------------------------------------------------
    def current(self) -> TraceContext | None:
        """The context to stamp onto outbound metadata (patches, rumors)."""
        return self._stack[-1].context if self._stack else None

    def mute(self) -> "_Muted":
        """Context manager: suppress span *retention* inside the block.

        Spans still open, stack, parent and close normally -- contexts
        carried by patches/rumors born inside stay coherent -- but
        nothing is appended to ``spans`` (and nothing counts as
        dropped).  Scale runs mute bulk provisioning so the span budget
        is spent on client ops, not tenant seeding.
        """
        return _Muted(self)

    def finished_spans(self) -> list[Span]:
        """Spans with an end time, in recording order (memoized)."""
        key = (len(self.spans), self._finished_count)
        if key != self._finished_key:
            self._finished = [s for s in self.spans if s.end_us is not None]
            self._finished_key = key
        return self._finished

    def traces(self) -> dict[int, list[Span]]:
        """Spans grouped by trace id, in recording order.

        The returned mapping is the tracer's live index -- treat it as
        read-only (it is rebuilt only by :meth:`clear`).
        """
        return self._by_trace

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0
        self._by_trace = {}
        self._finished_count = 0
        self._finished_key = (-1, -1)
        self._finished = []


class _Muted:
    """Reentrant guard for :meth:`Tracer.mute`."""

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer"):
        self._tracer = tracer

    def __enter__(self) -> "Tracer":
        self._tracer._muted += 1
        return self._tracer

    def __exit__(self, *exc) -> None:
        self._tracer._muted -= 1


class NullTracer:
    """Tracing disabled: every call is a constant-time no-op."""

    noop = True
    spans: tuple = ()
    dropped = 0

    def span(self, name, tags=None, parent=None) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name, tags=None, parent=None) -> None:
        pass

    def current(self) -> None:
        return None

    def mute(self) -> _NullSpan:
        return _NULL_SPAN

    def finished_spans(self) -> list:
        return []

    def traces(self) -> dict:
        return {}

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
