"""Declarative SLO rules evaluated over telemetry timelines.

Two rule kinds, both evaluated deterministically against the windows a
:class:`~repro.obs.timeseries.TelemetrySampler` produced (sim-clock
time only -- same seed, same alerts, byte for byte):

* **latency**: a per-window fleet histogram stat (say ``op.read``'s
  ``p99_ms``) stays at/over a threshold for N *consecutive* windows.
  One window over is noise; N windows over is an incident.
* **burn_rate**: the classic multi-window budget burn.  Each window's
  bad ratio is ``bad / (bad + good)`` over the window's counter deltas
  (keys selected by glob patterns); the rule fires when both the short
  and the long trailing average burn the budget at >= ``factor`` --
  the short window makes the alert fast, the long window keeps a
  single spike from paging.

Each contiguous episode fires exactly one alert record (at the first
window satisfying the rule); the episode must fully clear before the
rule can fire again.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path

ALERTS_FORMAT = "h2cloud-alerts-v1"


def burn_rate(bad: float, good: float, budget: float) -> float:
    """How many times faster than ``budget`` the error budget burns.

    ``(bad / (bad + good)) / budget``; 0 when the window saw no
    traffic.  Monotone: more bad (good, budget fixed) never lowers it.
    """
    if budget <= 0:
        raise ValueError("budget must be > 0")
    total = bad + good
    if total <= 0:
        return 0.0
    return (bad / total) / budget


@dataclass(frozen=True)
class SloRule:
    """One declarative SLO rule (see module docstring for semantics)."""

    name: str
    kind: str  # "latency" | "burn_rate"
    # latency rules
    hist: str = ""  # fleet histogram name ("" = worst across all)
    stat: str = "p99_ms"
    threshold_ms: float = 0.0
    windows: int = 2
    # burn-rate rules
    bad: tuple[str, ...] = ()  # glob patterns over fleet rate keys
    good: tuple[str, ...] = ()
    budget: float = 0.001
    factor: float = 2.0
    short_windows: int = 1
    long_windows: int = 6

    def __post_init__(self):
        if self.kind not in ("latency", "burn_rate"):
            raise ValueError(f"unknown rule kind {self.kind!r}")
        if self.kind == "latency" and self.windows < 1:
            raise ValueError("windows must be >= 1")
        if self.kind == "burn_rate":
            if not (1 <= self.short_windows <= self.long_windows):
                raise ValueError("need 1 <= short_windows <= long_windows")
            burn_rate(0, 0, self.budget)  # validates budget > 0


def _matched_sum(rates: dict, patterns: tuple[str, ...]) -> float:
    return sum(
        value
        for key, value in rates.items()
        if any(fnmatchcase(key, pattern) for pattern in patterns)
    )


def _latency_value(window: dict, rule: SloRule) -> float:
    hist = window.get("hist", {})
    if rule.hist:
        stats = hist.get(rule.hist)
        return stats[rule.stat] if stats else 0.0
    return max((s[rule.stat] for s in hist.values()), default=0.0)


def _eval_latency(windows: list[dict], rule: SloRule) -> list[dict]:
    alerts = []
    run = 0
    fired = False
    for window in windows:
        value = _latency_value(window, rule)
        if value >= rule.threshold_ms and rule.threshold_ms > 0:
            run += 1
            if run >= rule.windows and not fired:
                fired = True
                alerts.append(
                    {
                        "rule": rule.name,
                        "kind": "latency",
                        "t_us": window["t_us"],
                        "value_ms": value,
                        "threshold_ms": rule.threshold_ms,
                        "consecutive_windows": run,
                    }
                )
        else:
            run = 0
            fired = False
    return alerts


def _eval_burn_rate(windows: list[dict], rule: SloRule) -> list[dict]:
    ratios = []
    for window in windows:
        rates = window.get("fleet", {}).get("rates", {})
        bad = _matched_sum(rates, rule.bad)
        good = _matched_sum(rates, rule.good)
        ratios.append(burn_rate(bad, good, rule.budget))
    alerts = []
    fired = False
    for i, window in enumerate(windows):
        if i + 1 < rule.short_windows:
            continue
        short = ratios[max(0, i + 1 - rule.short_windows): i + 1]
        long = ratios[max(0, i + 1 - rule.long_windows): i + 1]
        short_burn = sum(short) / len(short)
        long_burn = sum(long) / len(long)
        if short_burn >= rule.factor and long_burn >= rule.factor:
            if not fired:
                fired = True
                alerts.append(
                    {
                        "rule": rule.name,
                        "kind": "burn_rate",
                        "t_us": window["t_us"],
                        "short_burn": round(short_burn, 4),
                        "long_burn": round(long_burn, 4),
                        "factor": rule.factor,
                        "budget": rule.budget,
                    }
                )
        else:
            fired = False
    return alerts


def evaluate_rules(timeline: dict, rules: list[SloRule]) -> dict:
    """Evaluate ``rules`` against a timeline document; returns the doc."""
    windows = timeline.get("windows", [])
    alerts: list[dict] = []
    for rule in rules:
        if rule.kind == "latency":
            alerts.extend(_eval_latency(windows, rule))
        else:
            alerts.extend(_eval_burn_rate(windows, rule))
    alerts.sort(key=lambda a: (a["t_us"], a["rule"]))
    return {
        "format": ALERTS_FORMAT,
        "rules": [rule.name for rule in rules],
        "windows_evaluated": len(windows),
        "alerts": alerts,
    }


#: The stock ruleset the nightly scenario catalog is evaluated against.
#: Thresholds are calibrated so the committed scenarios pass clean --
#: a firing means a regression (or a deliberately nastier scenario).
DEFAULT_RULES = [
    SloRule(
        name="client-op-p99",
        kind="latency",
        hist="",  # worst op class in the window
        stat="p99_ms",
        threshold_ms=30_000.0,
        windows=3,
    ),
    SloRule(
        name="error-budget-burn",
        kind="burn_rate",
        bad=("op.*.errors",),
        good=("op.*.count",),
        budget=0.02,
        factor=4.0,
        short_windows=2,
        long_windows=8,
    ),
    SloRule(
        name="degraded-serve-burn",
        kind="burn_rate",
        bad=("degraded.serves",),
        good=("op.*.count",),
        budget=0.01,
        factor=4.0,
        short_windows=2,
        long_windows=8,
    ),
]


def alerts_json(doc: dict) -> str:
    """The canonical byte-stable serialization of an alerts document."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_alerts(doc: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(alerts_json(doc))
    return path


def format_alerts(doc: dict) -> str:
    """An aligned text rendering of an alerts document."""
    head = (
        f"alerts: {len(doc['alerts'])} firing "
        f"({doc['windows_evaluated']} windows, "
        f"rules: {', '.join(doc['rules'])})"
    )
    lines = [head]
    for alert in doc["alerts"]:
        t_ms = alert["t_us"] / 1000.0
        if alert["kind"] == "latency":
            detail = (
                f"value {alert['value_ms']}ms >= {alert['threshold_ms']}ms "
                f"for {alert['consecutive_windows']} windows"
            )
        else:
            detail = (
                f"burn short={alert['short_burn']}x long={alert['long_burn']}x "
                f">= {alert['factor']}x of budget {alert['budget']}"
            )
        lines.append(f"  [{t_ms:.1f}ms] {alert['rule']}: {detail}")
    return "\n".join(lines)
