"""Temporal telemetry: registry snapshots on a fixed sim-clock cadence.

``Monitor.snapshot()`` answers "what happened in total"; this module
answers *when*.  A :class:`TelemetrySampler` subscribes to the
simulated clock and, each time an advance crosses an interval
boundary, snapshots every middleware's metrics into one *window*:

* cumulative counters become per-window **deltas** (and rates -- the
  window records its own span, so gaps are honest);
* gauges become **levels** (the value at sample time);
* histograms get **per-window** p50/p95/p99 from a window buffer the
  sampler drains each sample (the cumulative reservoir cannot answer
  "p99 *during this second*"), pooled across middlewares into a fleet
  view.

Everything reads the sim clock and never writes it: sampling is
passive, so enabling it cannot change a deterministic-simulation
digest.  Windows live in a bounded ring buffer; the timeline document
(:func:`timeline_json`) is byte-stable for a given run.

    sampler = TelemetrySampler(fs, interval_us=1_000_000)
    sampler.attach()
    ...  # drive the workload
    sampler.detach()
    doc = sampler.timeline()
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from .metrics import percentile_of

TIMELINE_FORMAT = "h2cloud-timeline-v1"

#: snapshot keys that are levels (sampled as-is), not cumulative counters
LEVEL_KEYS = frozenset(
    {
        "fd_cache.size",
        "fd_cache.hit_rate",
        "maintenance.merge_blocked",
        "gossip.in_flight",
        "membership.epoch",
        "membership.pending_moves",
        "membership.handoff_p50_ms",
        "membership.handoff_p99_ms",
        "resilience.breakers_open",
        "degraded.stale_rings",
        "integrity.quarantined_replicas",
        "integrity.unrecoverable_objects",
        "trace.spans",
    }
)

#: snapshot keys the timeline drops outright: the window carries its own
#: time, and cumulative distribution stats are replaced by the per-window
#: histogram section.
_DROP_KEYS = frozenset({"clock.now_ms"})

_CUMULATIVE_OP_SUFFIXES = (".count", ".errors")


def _classify(key: str) -> str:
    """'level' | 'counter' | 'drop' for one Monitor.snapshot key."""
    if key in _DROP_KEYS:
        return "drop"
    if key in LEVEL_KEYS:
        return "level"
    if key.startswith("op.") and not key.endswith(_CUMULATIVE_OP_SUFFIXES):
        # op.<name>.{mean,min,max,p50,p95,p99}_ms -- cumulative
        # distribution stats; the per-window histogram section owns these.
        return "drop"
    return "counter"


def _window_stats(samples_us: list) -> dict[str, float]:
    """count/p50/p95/p99/max (ms) over one window's latency samples."""
    return {
        "count": len(samples_us),
        "p50_ms": round(percentile_of(samples_us, 0.50) / 1000.0, 3),
        "p95_ms": round(percentile_of(samples_us, 0.95) / 1000.0, 3),
        "p99_ms": round(percentile_of(samples_us, 0.99) / 1000.0, 3),
        "max_ms": round(samples_us[-1] / 1000.0, 3),
    }


class TelemetrySampler:
    """Snapshots a deployment's registries into ring-buffered windows.

    ``interval_us`` is the cadence on the *simulated* clock.  Windows
    are emitted lazily: the first real advance at or past a boundary
    emits one window covering everything since the previous sample (a
    quiet deployment produces no empty filler windows -- the window
    records its own ``span_us``).  ``max_windows`` bounds memory; older
    windows are evicted and counted.
    """

    def __init__(self, fs, interval_us: int = 1_000_000, max_windows: int = 512):
        if interval_us < 1:
            raise ValueError("interval_us must be >= 1")
        if max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        self.fs = fs
        self.interval_us = interval_us
        self.max_windows = max_windows
        self.windows: deque = deque()
        self.evicted = 0
        self.samples = 0
        self._listener = None
        self._prev: dict[int, dict[str, float]] = {}
        self._prev_t_us = fs.clock.now_us
        # Monotone guard: ``run_isolated`` rewinds the clock without
        # notifying listeners, so later advances re-cross times we have
        # already sampled.  Sampling strictly at/after _next_due keeps
        # every window emitted exactly once.
        self._next_due = self._boundary(fs.clock.now_us) + interval_us

    # ------------------------------------------------------------------
    def _boundary(self, now_us: int) -> int:
        return now_us - (now_us % self.interval_us)

    def attach(self) -> "TelemetrySampler":
        """Subscribe to the clock and window-buffer every histogram."""
        if self._listener is None:
            for mw in self.fs.middlewares:
                mw.metrics.enable_windows()
            self._prev = {
                mw.node_id: mw.monitor.snapshot() for mw in self.fs.middlewares
            }
            self._prev_t_us = self.fs.clock.now_us
            self._listener = self.fs.clock.subscribe(self._on_advance)
        return self

    def detach(self, flush: bool = True) -> None:
        """Unsubscribe; optionally emit one final partial window.

        A no-op when already detached -- time that passed while not
        attached is never flushed into a window.
        """
        if self._listener is None:
            return
        self.fs.clock.unsubscribe(self._listener)
        self._listener = None
        if flush and self.fs.clock.now_us > self._prev_t_us:
            self._sample(self.fs.clock.now_us, self.fs.clock.now_us)

    def _on_advance(self, now_us: int) -> None:
        if now_us < self._next_due:
            return
        due = self._boundary(now_us)
        self._sample(due, now_us)
        self._next_due = due + self.interval_us

    # ------------------------------------------------------------------
    def _sample(self, due_us: int, now_us: int) -> None:
        """Emit one window covering (prev sample, now]."""
        span_us = now_us - self._prev_t_us
        nodes: dict[str, dict] = {}
        fleet_rates: dict[str, float] = {}
        fleet_samples: dict[str, list] = {}
        for mw in self.fs.middlewares:
            snapshot = mw.monitor.snapshot()
            prev = self._prev.get(mw.node_id, {})
            rates: dict[str, float] = {}
            levels: dict[str, float] = {}
            for key, value in snapshot.items():
                kind = _classify(key)
                if kind == "drop":
                    continue
                if kind == "level":
                    levels[key] = round(float(value), 6)
                    continue
                delta = value - prev.get(key, 0.0)
                if delta:
                    rates[key] = round(float(delta), 6)
                    fleet_rates[key] = round(
                        fleet_rates.get(key, 0.0) + float(delta), 6
                    )
            nodes[str(mw.node_id)] = {"rates": rates, "levels": levels}
            self._prev[mw.node_id] = snapshot
            for hist in mw.metrics.histograms():
                drained = hist.drain_window()
                if drained:
                    merged = fleet_samples.setdefault(hist.name, [])
                    merged.extend(drained)
        hist_stats = {
            name: _window_stats(sorted(samples))
            for name, samples in sorted(fleet_samples.items())
        }
        self.windows.append(
            {
                "due_us": due_us,
                "t_us": now_us,
                "span_us": span_us,
                "nodes": nodes,
                "fleet": {"rates": dict(sorted(fleet_rates.items()))},
                "hist": hist_stats,
            }
        )
        self.samples += 1
        self._prev_t_us = now_us
        while len(self.windows) > self.max_windows:
            self.windows.popleft()
            self.evicted += 1

    # ------------------------------------------------------------------
    def timeline(self) -> dict:
        """The JSON timeline document (byte-stable under sort_keys)."""
        return {
            "format": TIMELINE_FORMAT,
            "interval_us": self.interval_us,
            "samples": self.samples,
            "evicted": self.evicted,
            "windows": list(self.windows),
        }


def timeline_json(sampler: TelemetrySampler) -> str:
    """The canonical byte-stable serialization of a sampler's timeline."""
    return json.dumps(sampler.timeline(), indent=2, sort_keys=True) + "\n"


def write_timeline(sampler: TelemetrySampler, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(timeline_json(sampler))
    return path


# ----------------------------------------------------------------------
# text rendering (CLI)
# ----------------------------------------------------------------------
def condense_timeline(doc: dict, keep: int = 32) -> dict:
    """A bench-artifact-sized digest of a timeline document.

    Keeps the fleet view of (at most) the last ``keep`` windows --
    enough for "when did the storm hit" archaeology in BENCH_scale.json
    without shipping per-node detail.
    """
    windows = doc.get("windows", [])
    condensed = [
        {
            "t_ms": round(w["t_us"] / 1000.0, 3),
            "span_ms": round(w["span_us"] / 1000.0, 3),
            "rates": w["fleet"]["rates"],
            "hist": w["hist"],
        }
        for w in windows[-keep:]
    ]
    return {
        "interval_us": doc.get("interval_us"),
        "samples": doc.get("samples", len(windows)),
        "evicted": doc.get("evicted", 0),
        "windows": condensed,
    }


def format_timeline(doc: dict, columns: tuple[str, ...] | None = None) -> str:
    """An aligned text rendering of a timeline's fleet view."""
    windows = doc.get("windows", [])
    if not windows:
        return "timeline: no windows sampled"
    if columns is None:
        # The busiest fleet counters, by total volume across the run.
        totals: dict[str, float] = {}
        for w in windows:
            for key, value in w["fleet"]["rates"].items():
                totals[key] = totals.get(key, 0.0) + value
        columns = tuple(
            sorted(totals, key=lambda k: (-totals[k], k))[:6]
        )
    header = f"{'t_ms':>10} {'span_ms':>8}" + "".join(
        f" {c.split('.', 1)[-1]:>14}" for c in columns
    ) + f" {'p99_ms':>8}"
    lines = [header]
    for w in windows:
        p99 = max(
            (s["p99_ms"] for s in w["hist"].values()), default=0.0
        )
        lines.append(
            f"{w['t_us'] / 1000.0:>10.1f} {w['span_us'] / 1000.0:>8.1f}"
            + "".join(
                f" {w['fleet']['rates'].get(c, 0):>14g}" for c in columns
            )
            + f" {p99:>8.3f}"
        )
    return "\n".join(lines)
