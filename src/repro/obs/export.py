"""Exporters: Prometheus text, JSON metrics, Chrome trace events.

The formats are intentionally boring -- the point of this module is
that an operator can point an existing toolchain at the simulation:

* :func:`prometheus_text` emits the exposition format every Prometheus
  scraper parses (one ``h2_*`` family per snapshot key, ``node``
  label per middleware);
* :func:`metrics_json` is the same data for programmatic consumers
  (the bench-trajectory artifacts build on it);
* :func:`chrome_trace` converts a tracer's spans into the Trace Event
  JSON that ``chrome://tracing`` and Perfetto load directly: one row
  (tid) per middleware node, complete events for timed spans, instant
  events for retries/trips/degraded reads.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .trace import Span

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(key: str) -> str:
    return "h2_" + _NAME_RE.sub("_", key)


def deployment_metrics(fs) -> dict[str, dict[str, float]]:
    """Per-middleware Monitor snapshots, keyed by node id (as str)."""
    return {str(mw.node_id): mw.monitor.snapshot() for mw in fs.middlewares}


def prometheus_text(per_node: dict[str, dict[str, float]]) -> str:
    """Prometheus exposition text for a deployment's metric snapshots."""
    families: dict[str, list[str]] = {}
    for node, snapshot in sorted(per_node.items()):
        for key, value in sorted(snapshot.items()):
            name = _prom_name(key)
            families.setdefault(name, []).append(
                f'{name}{{node="{node}"}} {float(value):g}'
            )
    lines: list[str] = []
    for name in sorted(families):
        lines.append(f"# TYPE {name} gauge")
        lines.extend(families[name])
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_json(fs) -> dict:
    """A JSON-ready dump of every middleware's metrics snapshot."""
    return {
        "format": "h2cloud-metrics-v1",
        "sim_now_ms": fs.clock.now_ms,
        "nodes": deployment_metrics(fs),
    }


# ----------------------------------------------------------------------
# Chrome trace events (chrome://tracing, Perfetto)
# ----------------------------------------------------------------------
def chrome_trace_events(spans: list[Span]) -> list[dict]:
    """Trace Event list: one ``X`` per timed span, ``i`` per event."""
    events: list[dict] = [
        {"ph": "M", "pid": 1, "name": "process_name", "args": {"name": "h2cloud"}}
    ]
    tids = sorted(
        {int(s.tags.get("node", 0)) for s in spans}, key=lambda t: t
    )
    for tid in tids:
        label = f"middleware {tid}" if tid else "deployment"
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": label},
            }
        )
    for span in spans:
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        args.update({k: v for k, v in span.tags.items() if k != "node"})
        tid = int(span.tags.get("node", 0))
        duration = span.duration_us
        if duration == 0 and span.end_us is not None:
            events.append(
                {
                    "ph": "i",
                    "pid": 1,
                    "tid": tid,
                    "ts": span.start_us,
                    "s": "t",
                    "name": span.name,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": span.start_us,
                    "dur": duration,
                    "name": span.name,
                    "args": args,
                }
            )
    return events


def chrome_trace(tracer) -> dict:
    """The full Perfetto-loadable document for one tracer's spans."""
    return {
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "h2cloud-trace-v1",
            "dropped_spans": tracer.dropped,
        },
        "traceEvents": chrome_trace_events(list(tracer.spans)),
    }


def write_chrome_trace(tracer, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer), indent=1) + "\n")
    return path


# ----------------------------------------------------------------------
# span-tree introspection (tests, CLI pretty-printer)
# ----------------------------------------------------------------------
def span_tree(spans: list[Span]) -> tuple[list[Span], dict[int, list[Span]]]:
    """(roots, children-by-parent-span-id) in recording order."""
    roots: list[Span] = []
    children: dict[int, list[Span]] = {}
    for span in spans:
        if span.parent_id is None:
            roots.append(span)
        else:
            children.setdefault(span.parent_id, []).append(span)
    return roots, children


def format_span_tree(spans: list[Span]) -> str:
    """An indented text rendering of the span forest (CLI output)."""
    roots, children = span_tree(spans)
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        tags = " ".join(
            f"{k}={v}" for k, v in sorted(span.tags.items(), key=lambda kv: kv[0])
        )
        lines.append(
            f"{'  ' * depth}{span.name} "
            f"[trace {span.trace_id} span {span.span_id}] "
            f"{span.duration_us / 1000.0:.2f}ms"
            + (f" {tags}" if tags else "")
        )
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    # Orphans (parent dropped by the span cap) still deserve a line.
    seen = {s.span_id for s in roots}

    def collect(span: Span) -> None:
        seen.add(span.span_id)
        for child in children.get(span.span_id, []):
            collect(child)

    for root in roots:
        collect(root)
    for span in spans:
        if span.span_id not in seen:
            lines.append(
                f"~ {span.name} [trace {span.trace_id} span {span.span_id}] "
                f"(parent {span.parent_id} not captured)"
            )
    return "\n".join(lines)
