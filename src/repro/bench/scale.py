"""Scale bench: replay multi-tenant scenarios, grade per-tenant SLOs.

Executes the schedules :mod:`repro.workloads.scenarios` produces
through a multi-tenant variant of the DST runner and grades the result
like an SRE would: one *SLO report card* per activated tenant
(p50/p99 by op class, error and degraded-read counts, all fed from the
:class:`~repro.obs.metrics.MetricsRegistry`), aggregated into the
``BENCH_scale.json`` artifact the bench guard diffs run over run
(fleet ops/sec, fleet p99 per class, worst-tenant p99).

Everything is simulated-clock only -- op latencies, throughput and the
run digest never see the wall clock -- so two runs of the same
``(scenario, tier, seed)`` produce byte-identical cards, artifact and
digest.  The runner subclasses the DST :class:`~repro.dst.runner._Run`
(same step vocabulary, same fault semantics) and returns a real
:class:`~repro.dst.runner.RunResult`, so scenario schedules compose
with the corpus tooling and shrink with ``shrink(schedule, predicate,
run=lambda s: run_scale_schedule(s).result)``.

Tenants are materialised lazily on first touch: the population is
declared at schedule-build time, but accounts, starter trees and the
anchor tenant's hotspot directory (one bulk patch, up to half a
million files at the full tier) are only created when the arrival
process first routes an op at them.  Seeding time advances the
simulated clock -- provisioning is real work -- but is excluded from
the op latency it precedes.

    python -m repro scenario sync-storm --seed 7 --out results/
"""

from __future__ import annotations

import argparse
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..obs.critpath import OpAttribution, analyze, tail_report
from ..obs.metrics import Histogram, MetricsRegistry, percentile_of
from ..obs.timeseries import TelemetrySampler, condense_timeline
from ..simcloud.errors import FilesystemError, SimCloudError
from ..simcloud.sparse import payload_of
from ..workloads.scenarios import (
    HOTSPOT_DIR,
    SCENARIOS,
    TIERS,
    ScenarioExplorer,
    ScenarioSpec,
    account_of,
    build_scenario,
    hotspot_name,
    scenario_env,
    scenario_spec_of,
    seed_layout,
)
from ..dst.oracle import InvariantViolation
from ..dst.runner import _MUTATORS, ACCOUNT, RunResult, _Run, _result
from ..dst.schedule import Schedule

SCALE_FORMAT = "h2cloud-bench-scale-v1"

#: telemetry cadence for scale runs: 60s of simulated time per window
#: keeps a smoke-tier storm (~9 sim-hours) around 500 windows.
SCALE_SAMPLE_INTERVAL_US = 60_000_000

#: per-tenant tail attribution is reported for the worst N tenants
#: only -- the full fleet would dwarf the artifact.
TAIL_TENANTS = 8

#: op kind -> SLO class.  Cards and the fleet artifact report per
#: *class*, not per kind: an SLO cares whether metadata reads are slow,
#: not whether it was ``stat`` or ``list`` that exposed it.
OP_CLASSES = {
    "read": "data_read",
    "write": "data_write",
    "list": "list",
    "stat": "meta_read",
    "mkdir": "namespace",
    "rmdir": "namespace",
    "delete": "namespace",
    "move": "namespace",
    "rename": "namespace",
    "copy": "namespace",
}

_READ_KINDS = frozenset({"read", "stat", "list"})


def _hist_ms(hist: Histogram) -> dict[str, float]:
    return {
        "count": hist.samples,
        "mean_ms": round(hist.mean / 1000.0, 3),
        "p50_ms": round(hist.percentile(0.50) / 1000.0, 3),
        "p99_ms": round(hist.percentile(0.99) / 1000.0, 3),
        "max_ms": round((hist.max or 0) / 1000.0, 3),
    }


class TenantCard:
    """One tenant's SLO report card, fed from a MetricsRegistry."""

    def __init__(self, account: str, heavy: bool):
        self.account = account
        self.heavy = heavy
        self.registry = MetricsRegistry()
        self.denied = self.registry.counter("slo.denied")
        self.unavailable = self.registry.counter("slo.unavailable")
        self.degraded_reads = self.registry.counter("slo.degraded_reads")
        self._all = self.registry.histogram("slo.all_us")
        self._classes: dict[str, Histogram] = {}

    def observe(self, kind: str, elapsed_us: int, degraded: int = 0) -> None:
        cls = OP_CLASSES[kind]
        hist = self._classes.get(cls)
        if hist is None:
            hist = self._classes[cls] = self.registry.histogram(f"slo.{cls}_us")
        hist.observe(elapsed_us)
        self._all.observe(elapsed_us)
        if degraded and kind in _READ_KINDS:
            self.degraded_reads.inc(degraded)

    @property
    def ops(self) -> int:
        return self._all.samples

    @property
    def p99_us(self) -> float:
        return self._all.percentile(0.99)

    def to_json(self) -> dict:
        return {
            "account": self.account,
            "heavy": self.heavy,
            "ops": self.ops,
            "denied": int(self.denied),
            "unavailable": int(self.unavailable),
            "errors": int(self.denied) + int(self.unavailable),
            "degraded_reads": int(self.degraded_reads),
            "latency": _hist_ms(self._all),
            "classes": {
                cls: _hist_ms(hist)
                for cls, hist in sorted(self._classes.items())
            },
        }


# ----------------------------------------------------------------------
# the multi-tenant runner
# ----------------------------------------------------------------------
class _ScenarioRun(_Run):
    """A DST run over thousands of tenant accounts with SLO timing.

    Differences from the classic run: no per-session subtrees or shared
    pool (tenants own whole accounts), client ops are timed on the
    simulated clock into per-tenant cards, LIST is paginated to the
    tier's page size (a client fetches a page, not half a million
    names), and quiesce is light -- no model oracle, no GC sweep, and
    repair/scrub only when the scenario armed faults or corruption.
    """

    def __init__(
        self,
        schedule: Schedule,
        capture_trace: bool = False,
        sample_interval_us: int | None = None,
    ):
        super().__init__(schedule, capture_trace=capture_trace)
        self.spec: ScenarioSpec = scenario_spec_of(schedule)
        self.mixer = self.spec_mixer()
        self.cards: dict[int, TenantCard] = {}
        self.fleet = MetricsRegistry()
        self._fleet_all = self.fleet.histogram("fleet.all_us")
        self._fleet_classes: dict[str, Histogram] = {}
        self.busy_us = 0
        self.seeded_files = 0
        self._materialized: set[int] = set()
        self.sampler: TelemetrySampler | None = None
        if sample_interval_us:
            self.sampler = TelemetrySampler(
                self.fs, interval_us=sample_interval_us, max_windows=1024
            )
        # With tracing on, one log entry per dispatched client op (in
        # execution order, which is also span recording order) maps
        # ``op.*`` roots back to the tenant that issued them.
        self.op_log: list[tuple[str, str]] = []  # (account, kind)

    def spec_mixer(self):
        from ..workloads.scenarios import TenantMix

        tier = self.spec.tier
        return TenantMix(
            tier.tenants,
            tier.heavy_fraction,
            self.spec.seed,
            alpha=self.spec.tenant_alpha,
        )

    # ------------------------------------------------------------------
    def setup(self) -> None:
        # No session roots, no shared pool -- tenants bring their own
        # namespaces.  The fault pump subscription is still needed so
        # scheduled crash/recover events fire mid-op.
        self._listener = self.fs.clock.subscribe(
            lambda now_us: self.cluster.failures.pump()
        )
        if self.sampler is not None:
            self.sampler.attach()

    # ------------------------------------------------------------------
    def _card(self, index: int) -> TenantCard:
        card = self.cards.get(index)
        if card is None:
            card = self.cards[index] = TenantCard(
                account_of(index), heavy=self.mixer.is_heavy(index)
            )
        return card

    def _materialize(self, index: int, mw) -> None:
        """First touch: create the account and its starter tree.

        One bulk ``write_files`` patch per seeded directory, and one
        for the anchor's whole hotspot -- n object PUTs plus O(1) ring
        round trips, the provisioning path a migration would use.
        """
        account = account_of(index)
        anchor = index == self.mixer.anchor_index
        dirs, files = seed_layout(
            self.spec.seed, index, self.mixer.is_heavy(index), anchor,
            self.spec.tier,
        )
        mw.create_account(account)
        for path in dirs:
            mw.mkdir(account, path)
        by_dir: dict[str, list] = {}
        for path, size in files:
            parent, name = path.rsplit("/", 1)
            by_dir.setdefault(parent, []).append(
                (name, payload_of(size, tag=f"{account}:{path}"))
            )
        for parent in sorted(by_dir):
            mw.write_files(account, parent, by_dir[parent])
            self.seeded_files += len(by_dir[parent])
        if anchor:
            items = [
                (
                    hotspot_name(i),
                    payload_of(96 + (i % 7) * 32, tag=f"{account}:hot:{i}"),
                )
                for i in range(self.spec.tier.hotspot_files)
            ]
            mw.write_files(account, HOTSPOT_DIR, items)
            self.seeded_files += len(items)

    # ------------------------------------------------------------------
    def _client_op(self, session: int, op) -> str:
        mw = self.fs.middlewares[session % len(self.fs.middlewares)]
        self.counters["ops"] += 1
        card = self._card(session)
        if session not in self._materialized:
            # Marked first: a fault mid-seeding leaves a partial tenant
            # (later ops may be denied), which is deterministic and the
            # honest outcome -- retrying the bulk load would double-seed.
            self._materialized.add(session)
            try:
                # Provisioning is real (clock-advancing) work but not a
                # client op: mute span retention so the trace budget is
                # spent on the ops the tail report attributes.
                with self.fs.tracer.mute():
                    self._materialize(session, mw)
            except SimCloudError as exc:
                self.counters["unavailable"] += 1
                card.unavailable.inc()
                return f"seed_unavailable:{type(exc).__name__}"
        degraded_before = mw.degraded_serves
        started = self.fs.clock.now_us
        if self.capture_trace:
            self.op_log.append((card.account, op.kind))
        try:
            result = self._dispatch(mw, op)
        except FilesystemError as exc:
            self.counters["denied"] += 1
            card.denied.inc()
            return f"denied:{type(exc).__name__}"
        except SimCloudError as exc:
            self.counters["unavailable"] += 1
            card.unavailable.inc()
            if op.kind in _MUTATORS:
                self.mutation_storage_errors += 1
            return f"unavailable:{type(exc).__name__}"
        elapsed = self.fs.clock.now_us - started
        self.busy_us += elapsed
        card.observe(op.kind, elapsed, degraded=mw.degraded_serves - degraded_before)
        cls = OP_CLASSES[op.kind]
        hist = self._fleet_classes.get(cls)
        if hist is None:
            hist = self._fleet_classes[cls] = self.fleet.histogram(
                f"fleet.{cls}_us"
            )
        hist.observe(elapsed)
        self._fleet_all.observe(elapsed)
        return result

    def _dispatch(self, mw, op) -> str:
        if op.kind == "read":
            # Seeded objects are sparse payloads (size without bytes), so
            # the classic runner's content hash is unavailable; the length
            # is deterministic for both sparse and real payloads.
            data = mw.read_file(op.account or ACCOUNT, op.path)
            return f"ok:{len(data)}"
        if op.kind == "list":
            # A scale client fetches a page, not the whole directory --
            # the half-million-entry hotspot LIST stays one ring fetch
            # plus one page either way.
            entries = mw.list_dir(
                op.account or ACCOUNT,
                op.path,
                detailed=False,
                limit=self.spec.tier.list_page,
            )
            return f"ok:{len(entries)}"
        return super()._dispatch(mw, op)

    # ------------------------------------------------------------------
    def _faults_armed(self) -> bool:
        cfg = self.cfg
        return bool(
            cfg.crash_rate
            or cfg.io_error_rate
            or cfg.bitrot_rate
            or cfg.corrupt_rate
            or cfg.membership_rate
        )

    def quiesce(self) -> None:
        """Light quiesce: heal and drain, skip the DST oracle machinery.

        No GC (a cluster-wide mark over every tenant account is a
        maintenance window, not a run epilogue) and no model
        revalidation (scenarios run model-free); repair + scrub only
        when the scenario armed faults, so clean runs do not pay a
        full-store sweep over millions of seeded objects.
        """
        fs, cluster = self.fs, self.cluster
        if self._listener is not None:
            fs.clock.unsubscribe(self._listener)
        cluster.failures.clear_pending()
        self.plan.window_us = (0, 0)
        for node_id, node in sorted(cluster.nodes.items()):
            if node.is_down:
                cluster.failures.recover_at(fs.clock.now_us, node_id)
        cluster.failures.pump()
        for breaker in fs.store.breakers.values():
            breaker.record_success(fs.clock.now_us)
        cluster.membership.quiesce()
        fs.pump()
        if self._faults_armed():
            fs.repair()
            fs.scrub()


# ----------------------------------------------------------------------
# report assembly
# ----------------------------------------------------------------------
@dataclass
class ScaleReport:
    """One scenario execution: the run result plus its SLO grading."""

    spec: ScenarioSpec
    result: RunResult
    cards: list[dict]
    document: dict = field(default_factory=dict)
    # Telemetry extras (None unless the run captured them).  They live
    # outside ``cards`` on purpose: the run digest commits to the cards,
    # and observability must never change a digest.
    timeline: dict | None = None
    critpath: dict | None = None
    tenant_attribution: dict | None = None

    @property
    def digest(self) -> str:
        return self.result.digest

    def cards_text(self) -> str:
        """The canonical (byte-stable) per-tenant report-card JSON."""
        return json.dumps(self.cards, indent=2, sort_keys=True) + "\n"


#: Tenants with fewer timed ops than this are not graded for the
#: worst-tenant slot (a two-op card's "p99" is one unlucky op, and the
#: bench guard would inherit that brittleness); if no tenant clears the
#: floor (micro runs), every scored tenant is eligible.
WORST_TENANT_MIN_OPS = 16


def _worst_tenant(cards: list[TenantCard]) -> dict:
    graded = [c for c in cards if c.ops >= WORST_TENANT_MIN_OPS]
    graded = graded or [c for c in cards if c.ops]
    if not graded:
        return {}
    worst = max(graded, key=lambda c: (c.p99_us, c.account))
    return {
        "account": worst.account,
        "heavy": worst.heavy,
        "ops": worst.ops,
        "p99_ms": round(worst.p99_us / 1000.0, 3),
    }


def _tenant_attribution(
    attributions: list[OpAttribution],
    op_log: list[tuple[str, str]],
    quantile: float = 0.99,
) -> dict:
    """Per-tenant tail blame for the worst :data:`TAIL_TENANTS` tenants.

    ``op.*`` roots are recorded in dispatch order, so zipping them with
    the op log recovers each root's tenant (a span-budget overflow only
    truncates the zip -- the retained prefix stays aligned).
    """
    from ..obs.critpath import blame_summary

    by_account: dict[str, list[OpAttribution]] = {}
    for attribution, (account, _kind) in zip(attributions, op_log):
        if attribution.error is None:
            by_account.setdefault(account, []).append(attribution)
    graded = {
        account: group
        for account, group in by_account.items()
        if len(group) >= WORST_TENANT_MIN_OPS
    } or by_account
    p99 = {
        account: percentile_of(
            sorted(a.duration_us for a in group), quantile
        )
        for account, group in graded.items()
    }
    worst = sorted(graded, key=lambda acct: (-p99[acct], acct))[:TAIL_TENANTS]
    out = {}
    for account in worst:
        group = graded[account]
        tail = [a for a in group if a.duration_us >= p99[account]]
        out[account] = {
            "ops": len(group),
            "p99_ms": round(p99[account] / 1000.0, 3),
            "tail": blame_summary(tail),
        }
    return out


def run_scale_schedule(
    schedule: Schedule,
    keep_fs: bool = False,
    capture_trace: bool = False,
    sample_interval_us: int | None = None,
) -> ScaleReport:
    """Execute one scenario schedule and grade it.

    ``capture_trace`` enables span capture and the critical-path tail
    attribution; ``sample_interval_us`` attaches a telemetry sampler on
    that sim-clock cadence.  Both are passive: the run digest is byte
    identical with them on or off.
    """
    run = _ScenarioRun(
        schedule,
        capture_trace=capture_trace,
        sample_interval_us=sample_interval_us,
    )
    run.setup()
    run.execute()
    try:
        run.quiesce()
    except Exception as exc:  # noqa: BLE001 - quiesce must never fail
        run.violations.append(
            InvariantViolation("quiesce", f"{type(exc).__name__}: {exc}")
        )
    if run.sampler is not None:
        run.sampler.detach()
    cards = [
        run.cards[index].to_json() for index in sorted(run.cards)
    ]
    cards_sha = hashlib.sha256(
        json.dumps(cards, sort_keys=True).encode()
    ).hexdigest()
    # The cards stand in for the tree hash: the digest commits to every
    # per-tenant latency distribution, so a behaviour change anywhere in
    # the fleet changes the digest even though no model oracle ran.
    result = _result(run, tree=f"cards:{cards_sha}", keep_fs=keep_fs)
    report = ScaleReport(spec=run.spec, result=result, cards=cards)
    if run.sampler is not None:
        report.timeline = run.sampler.timeline()
    if capture_trace:
        attributions = analyze(run.fs.tracer)
        report.critpath = tail_report(attributions, classes=OP_CLASSES)
        report.tenant_attribution = _tenant_attribution(
            attributions, run.op_log
        )
    report.document = _scale_document(run, result, report)
    return report


def run_scenario(spec: ScenarioSpec, keep_fs: bool = False, **kwargs) -> ScaleReport:
    """Explore a spec into its schedule and execute it."""
    return run_scale_schedule(
        ScenarioExplorer(spec).explore(), keep_fs=keep_fs, **kwargs
    )


def _scale_document(
    run: _ScenarioRun, result: RunResult, report: ScaleReport | None = None
) -> dict:
    """The ``BENCH_scale.json`` body for one graded scenario run."""
    spec = run.spec
    cards = list(run.cards.values())
    timed_ops = run._fleet_all.samples
    busy_us = max(run.busy_us, 1)
    classes = {
        cls: _hist_ms(hist)
        for cls, hist in sorted(run._fleet_classes.items())
    }
    document = {
        "format": SCALE_FORMAT,
        "artifact": "scale",
        "scenario": spec.name,
        "seed": spec.seed,
        "scale": spec.tier.name,
        "sim_makespan_ms": round(result.makespan_us / 1000.0, 3),
        "population": {
            "declared": spec.tier.tenants,
            "activated": len(cards),
            "heavy_activated": sum(1 for c in cards if c.heavy),
            "seeded_files": run.seeded_files,
        },
        "fleet": {
            "ops": timed_ops,
            "denied": result.counters.get("denied", 0),
            "unavailable": result.counters.get("unavailable", 0),
            "degraded_reads": sum(int(c.degraded_reads) for c in cards),
            "busy_ms": round(run.busy_us / 1000.0, 3),
            # sim-time service throughput: ops over summed op latency --
            # wall clock never appears in the artifact.
            "ops_per_sec": round(timed_ops / (busy_us / 1e6), 1),
            "latency": _hist_ms(run._fleet_all),
            "classes": classes,
        },
        "worst_tenant": _worst_tenant(cards),
        "digest": result.digest,
    }
    # Telemetry sections are additive: the bench guard reads only its
    # guarded paths, and the digest never covers the document.
    if report is not None and report.timeline is not None:
        document["timeline"] = condense_timeline(report.timeline, keep=48)
    if report is not None and report.critpath is not None:
        document["tail_attribution"] = {
            "fleet": report.critpath,
            "tenants": report.tenant_attribution or {},
        }
    return document


def write_scale_artifact(
    out_dir: str | Path = ".",
    scenario: str = "sync-storm",
    tier: str | None = None,
    seed: int = 7,
) -> Path:
    """Generate the guarded ``BENCH_scale.json`` (the CI baseline shape).

    The default tier follows the bench scale switch: ``quick`` grades
    the smoke tier, ``REPRO_BENCH_SCALE=full`` the full tier.
    """
    from .harness import bench_scale

    if tier is None:
        tier = "full" if bench_scale() == "full" else "smoke"
    report = run_scenario(
        build_scenario(scenario, tier=tier, seed=seed),
        capture_trace=True,
        sample_interval_us=SCALE_SAMPLE_INTERVAL_US,
    )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "BENCH_scale.json"
    path.write_text(json.dumps(report.document, indent=2, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# CLI: python -m repro scenario ...
# ----------------------------------------------------------------------
def _print_report(report: ScaleReport) -> None:
    doc = report.document
    fleet, population = doc["fleet"], doc["population"]
    print(
        f"scenario {doc['scenario']} tier={doc['scale']} seed={doc['seed']}"
    )
    print(
        f"schedule: {len(report.result.schedule)} steps, "
        f"{report.result.schedule.op_count()} client op steps"
    )
    print(
        f"population: declared={population['declared']} "
        f"activated={population['activated']} "
        f"(heavy={population['heavy_activated']}) "
        f"seeded_files={population['seeded_files']}"
    )
    print(
        f"fleet: ops={fleet['ops']} denied={fleet['denied']} "
        f"unavailable={fleet['unavailable']} "
        f"degraded_reads={fleet['degraded_reads']}"
    )
    print(
        f"fleet: {fleet['ops_per_sec']} ops/sec (sim), "
        f"p50={fleet['latency']['p50_ms']}ms "
        f"p99={fleet['latency']['p99_ms']}ms"
    )
    for cls, stats in fleet["classes"].items():
        print(
            f"  {cls:10s} n={stats['count']:<7d} "
            f"p50={stats['p50_ms']}ms p99={stats['p99_ms']}ms"
        )
    worst = doc["worst_tenant"]
    if worst:
        print(
            f"worst tenant: {worst['account']} "
            f"({'heavy' if worst['heavy'] else 'light'}) "
            f"p99={worst['p99_ms']}ms over {worst['ops']} ops"
        )
    if not report.result.ok:
        for violation in report.result.violations:
            print(f"VIOLATION[{violation.check}]: {violation.detail}")
    print(f"digest: {report.digest}")


def scenario_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro scenario",
        description="replay a deterministic multi-tenant scenario",
    )
    parser.add_argument(
        "name",
        nargs="?",
        help=f"scenario name ({', '.join(sorted(SCENARIOS))}) "
        "or omit with --replay/--list",
    )
    parser.add_argument("--tier", default="smoke", choices=sorted(TIERS))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--faulty", action="store_true",
                        help="arm transient faults and node crashes")
    parser.add_argument("--corruption", action="store_true",
                        help="arm bit-rot/torn writes and scrubbing")
    parser.add_argument("--membership", action="store_true",
                        help="weave join/drain/remove + live rebalancing")
    parser.add_argument("--traffic", action="store_true",
                        help="enable the traffic-reduction middleware flags")
    parser.add_argument("--telemetry", action="store_true",
                        help="capture traces + timeline; adds the "
                        "tail_attribution and timeline artifact sections")
    parser.add_argument("--out", metavar="DIR",
                        help="write BENCH_scale.json + SLO_cards.json here")
    parser.add_argument("--cards", action="store_true",
                        help="print the per-tenant SLO report cards (JSON)")
    parser.add_argument("--save", metavar="FILE",
                        help="save the explored schedule as JSON")
    parser.add_argument("--replay", metavar="FILE",
                        help="replay a saved scenario schedule instead")
    parser.add_argument("--list", action="store_true", dest="list_catalog",
                        help="list the scenario catalog and tiers")
    args = parser.parse_args(argv)

    if args.list_catalog:
        print("scenarios:", ", ".join(sorted(SCENARIOS)))
        for name, tier in TIERS.items():
            print(
                f"tier {name:6s}: {tier.tenants} tenants, {tier.ops} ops, "
                f"hotspot={tier.hotspot_files} files"
            )
        return 0

    if args.replay:
        schedule = Schedule.loads(Path(args.replay).read_text())
    else:
        if not args.name:
            parser.error("scenario name required (or --replay/--list)")
        env = scenario_env(
            faulty=args.faulty,
            corruption=args.corruption,
            membership=args.membership,
            traffic=args.traffic,
        )
        spec = build_scenario(
            args.name, tier=args.tier, seed=args.seed, env=env
        )
        schedule = ScenarioExplorer(spec).explore()
    if args.save:
        Path(args.save).write_text(schedule.dumps())
        print(f"saved schedule: {args.save}")

    report = run_scale_schedule(
        schedule,
        capture_trace=args.telemetry,
        sample_interval_us=SCALE_SAMPLE_INTERVAL_US if args.telemetry else None,
    )
    _print_report(report)
    if report.critpath is not None:
        from ..obs.critpath import format_report

        print(format_report(report.critpath))
    if args.cards:
        print(report.cards_text(), end="")
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        bench_path = out / "BENCH_scale.json"
        bench_path.write_text(
            json.dumps(report.document, indent=2, sort_keys=True) + "\n"
        )
        cards_path = out / "SLO_cards.json"
        cards_path.write_text(report.cards_text())
        print(f"wrote {bench_path}")
        print(f"wrote {cards_path}")
    return 0 if report.result.ok else 1
