"""Rendering: paper-style tables and ASCII log-log charts.

The harness produces :class:`ExperimentResult` objects; this module
turns them into the rows/series the paper reports, readable in a
terminal and diffable in EXPERIMENTS.md.
"""

from __future__ import annotations

import math

from .harness import ExperimentResult


def format_result(result: ExperimentResult, chart: bool = True) -> str:
    """A full text block for one experiment."""
    blocks = [
        f"== {result.experiment_id}: {result.title} ==",
        f"paper expectation: {result.expectation}" if result.expectation else "",
        format_table(result),
    ]
    if chart and result.series and all(
        len(s.points) >= 2 for s in result.series.values()
    ):
        blocks.append(ascii_chart(result))
    if result.notes:
        blocks.append("notes:")
        blocks.extend(f"  - {note}" for note in result.notes)
    return "\n".join(b for b in blocks if b)


def format_table(result: ExperimentResult) -> str:
    """x-by-system table of values (ms for timings; counts/MB for censuses)."""
    if not result.series:
        return "(no series)"
    systems = sorted(result.series)
    xs = sorted({x for s in result.series.values() for x, _ in s.points})
    header = [result.x_label[:28].rjust(28)] + [s[:16].rjust(16) for s in systems]
    lines = ["  ".join(header)]
    for x in xs:
        row = [f"{x:28g}"]
        for system in systems:
            try:
                value = result.series[system].ms_at(x)
                row.append(f"{_fmt(value, result.unit):>16s}")
            except KeyError:
                row.append(" " * 15 + "-")
        lines.append("  ".join(row))
    return "\n".join(lines)


def _fmt(value: float, unit: str = "ms") -> str:
    if unit != "ms":
        return f"{value:,.1f} {unit}" if value % 1 else f"{value:,.0f} {unit}"
    return _fmt_ms(value)


def _fmt_ms(ms: float) -> str:
    if ms >= 10_000:
        return f"{ms / 1000:.1f} s"
    if ms >= 1:
        return f"{ms:.1f} ms"
    return f"{ms * 1000:.0f} us"


def ascii_chart(
    result: ExperimentResult, width: int = 64, height: int = 16
) -> str:
    """A log-log scatter of every series (the paper's figures are log-log)."""
    points_by_system = {
        name: [(x, ms) for x, ms in series.points if x > 0 and ms > 0]
        for name, series in result.series.items()
    }
    everything = [p for pts in points_by_system.values() for p in pts]
    if not everything:
        return ""
    lx = [math.log10(x) for x, _ in everything]
    ly = [math.log10(y) for _, y in everything]
    x0, x1 = min(lx), max(lx)
    y0, y1 = min(ly), max(ly)
    x_span = (x1 - x0) or 1.0
    y_span = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    legend = []
    for idx, (name, pts) in enumerate(sorted(points_by_system.items())):
        mark = markers[idx % len(markers)]
        legend.append(f"{mark}={name}")
        for x, y in pts:
            col = int((math.log10(x) - x0) / x_span * (width - 1))
            row = int((math.log10(y) - y0) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark
    top = f"{10 ** y1:10.3g} ms +" + "-" * width + "+"
    bottom = f"{10 ** y0:10.3g} ms +" + "-" * width + "+"
    body = [f"{'':13s}|{''.join(row)}|" for row in grid]
    x_axis = (
        f"{'':14s}{10 ** x0:<10.3g}{'':{max(0, width - 20)}s}{10 ** x1:>10.3g}"
    )
    return "\n".join([top, *body, bottom, x_axis, "  " + "  ".join(legend)])


def markdown_table(result: ExperimentResult) -> str:
    """The same table as GitHub-flavoured markdown (for EXPERIMENTS.md)."""
    systems = sorted(result.series)
    xs = sorted({x for s in result.series.values() for x, _ in s.points})
    lines = [
        "| " + result.x_label + " | " + " | ".join(systems) + " |",
        "|" + "---|" * (len(systems) + 1),
    ]
    for x in xs:
        cells = []
        for system in systems:
            try:
                cells.append(_fmt_ms(result.series[system].ms_at(x)))
            except KeyError:
                cells.append("-")
        lines.append(f"| {x:g} | " + " | ".join(cells) + " |")
    return "\n".join(lines)
