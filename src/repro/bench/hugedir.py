"""Giant-directory benchmark: sharded vs monolithic NameRings.

The fig-10 sweep shape (one directory, m direct children, m pushed to
500k at full scale) applied to the costs sharding is meant to bend:

* **per-op store bytes** -- a single-child insert against a monolithic
  ring rewrites all m tuples (O(m) bytes per op); against a sharded
  ring it rewrites one shard (~``target_entries`` tuples, O(m/k));
* **paged LIST** -- first page of a cold listing needs the manifest
  plus every shard once, whole-ring bytes either way, so the sweep
  records it to show sharding does *not* regress it asymptotically;
* **hotspot phase** -- the :class:`~repro.workloads.HugeDirSpec` op
  mix (Zipf-hot lookups, insert/delete churn, paged listings) replayed
  against both layouts on a rack-scale cluster, reporting per-class
  p99 latency deltas.

Everything runs on the simulated clock, so the emitted
``BENCH_hugedir.json`` is deterministic for a given scale and is
guarded by ``python -m repro.bench guard`` like the other artifacts.

    python -m repro.bench hugedir [--out results/]
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.fs import H2CloudFS
from ..core.middleware import H2Config
from ..simcloud.cluster import SwiftCluster
from ..workloads import HugeDirSpec, huge_directory_ops
from .harness import bench_scale, sweep_points
from .trajectory import FORMAT

DIR = "/huge"

#: the sharded side of every comparison (production-shaped thresholds)
SHARDED = H2Config().with_sharded_rings()


def _ledger_snapshot(fs) -> dict[str, int]:
    ledger = fs.store.ledger
    return {
        "gets": ledger.gets,
        "puts": ledger.puts,
        "bytes_in": ledger.bytes_in,
        "bytes_out": ledger.bytes_out,
    }


def _delta(fs, before: dict[str, int]) -> dict[str, int]:
    now = _ledger_snapshot(fs)
    return {key: now[key] - before[key] for key in before}


def _build(sharded: bool, rack: bool = False) -> H2CloudFS:
    cluster = SwiftCluster.rack_scale() if rack else SwiftCluster.fast()
    config = SHARDED if sharded else H2Config()
    return H2CloudFS(cluster, account="bench", config=config)


def _populate(fs, m: int) -> None:
    fs.mkdir(DIR)
    fs.write_many(DIR, [(f"c{i:07d}", b"x") for i in range(m)])
    fs.pump()


def _measure_side(m: int, sharded: bool) -> dict:
    fs = _build(sharded)
    before = _ledger_snapshot(fs)
    _populate(fs, m)
    populate = _delta(fs, before)

    before = _ledger_snapshot(fs)
    fs.write(f"{DIR}/zz-probe", b"x")
    fs.pump()  # drain the merge: the per-op cost includes write-back
    insert = _delta(fs, before)

    fs.drop_caches()
    before = _ledger_snapshot(fs)
    fs.listdir(DIR, limit=1_000)
    list_page = _delta(fs, before)

    fs.drop_caches()
    before = _ledger_snapshot(fs)
    fs.read(f"{DIR}/c{m // 2:07d}")
    lookup = _delta(fs, before)

    return {
        "populate": populate,
        "insert": insert,
        "list_page": list_page,
        "lookup_cold": lookup,
    }


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    k = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[k]


def _hotspot_side(spec: HugeDirSpec, sharded: bool) -> dict:
    fs = _build(sharded, rack=True)
    _populate(fs, spec.children)
    live = {spec.child_name(i) for i in range(spec.children)}
    samples: dict[str, list[float]] = {}
    for op, operand in huge_directory_ops(spec):
        if op in ("delete", "lookup") and operand not in live:
            continue  # the Zipf stream can re-draw an already-deleted name
        start = fs.clock.now_ms
        if op == "insert":
            fs.write(f"{DIR}/{operand}", b"x")
            live.add(operand)
        elif op == "delete":
            fs.delete(f"{DIR}/{operand}")
            live.discard(operand)
        elif op == "list_page":
            fs.listdir(DIR, marker=operand, limit=spec.page_size)
        else:
            fs.read(f"{DIR}/{operand}")
        samples.setdefault(op, []).append(fs.clock.now_ms - start)
    fs.pump()
    return {
        "classes": {
            op: {
                "count": len(vals),
                "p50_ms": round(_percentile(vals, 0.50), 3),
                "p99_ms": round(_percentile(vals, 0.99), 3),
            }
            for op, vals in sorted(samples.items())
        },
        "sim_makespan_ms": fs.clock.now_ms,
    }


def hugedir_trajectory() -> dict:
    """The ``BENCH_hugedir.json`` document (deterministic per scale)."""
    # Points sit below shard-capacity boundaries (count * target_entries)
    # so the +1-child probe measures the steady-state path, not a
    # reshard: 5000 < 8*512*2, 10k < 32*512, 100k < 256*512, 500k < 1024*512.
    ms = sweep_points(quick=[512, 5_000], full=[10_000, 100_000, 500_000])
    sweep = []
    for m in ms:
        mono = _measure_side(m, sharded=False)
        shard = _measure_side(m, sharded=True)
        point = {"m": m, "mono": mono, "sharded": shard}
        if mono["insert"]["bytes_in"]:
            point["insert_bytes_ratio"] = round(
                shard["insert"]["bytes_in"] / mono["insert"]["bytes_in"], 4
            )
        sweep.append(point)

    # Off shard-capacity boundaries too: the insert churn must not
    # cross a reshard point mid-phase.
    spec = HugeDirSpec(
        children=3_000 if bench_scale() == "quick" else 20_000,
        ops=300,
        seed=42,
    )
    hotspot = {
        "spec": {
            "children": spec.children,
            "ops": spec.ops,
            "alpha": spec.alpha,
            "seed": spec.seed,
        },
        "mono": _hotspot_side(spec, sharded=False),
        "sharded": _hotspot_side(spec, sharded=True),
    }
    return {
        "format": FORMAT,
        "artifact": "hugedir",
        "scale": bench_scale(),
        # The guard treats this as the artifact's headline cost: the
        # hotspot phase's combined simulated makespan across layouts.
        "sim_makespan_ms": round(
            hotspot["mono"]["sim_makespan_ms"]
            + hotspot["sharded"]["sim_makespan_ms"],
            3,
        ),
        "policy": {
            "split_threshold": SHARDED.shard_split_threshold,
            "merge_threshold": SHARDED.shard_merge_threshold,
            "target_entries": SHARDED.shard_target_entries,
        },
        "sweep": sweep,
        "hotspot": hotspot,
    }


def write_hugedir_artifact(out_dir: str | Path = ".") -> Path:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "BENCH_hugedir.json"
    path.write_text(
        json.dumps(hugedir_trajectory(), indent=2, sort_keys=True) + "\n"
    )
    return path
