"""Bench-trajectory artifacts: machine-readable headline numbers.

Two JSON artifacts summarise what a deterministic reference workload
costs, fed by the unified metrics registry (the same numbers
``Monitor.snapshot()`` exports):

* ``BENCH_headline.json`` -- per-operation latency distributions
  (count, mean, p50/p95/p99, max in simulated ms) from a
  single-middleware write-through deployment running every Inbound
  API operation;
* ``BENCH_maintenance.json`` -- the asynchronous maintenance
  pipeline's throughput on a three-middleware deployment (patches,
  merges, gossip traffic, anti-entropy, GC, background time);
* ``BENCH_rebalance.json`` -- client-visible cost of an elastic
  membership transition: steady-state vs mid-migration ops/sec and
  p99 latency while the sweeper migrates partitions live, plus the
  handoff totals (partitions, bytes, dual-epoch traffic);
* ``BENCH_partition.json`` -- availability under a minority network
  partition: the fig-12-shaped write storm runs with one middleware
  severed from half the storage nodes, once with hinted handoff off
  (writes that lose their quorum fail) and once with it on (sloppy
  quorum parks durable hints on fallbacks), recording acked-write
  success rate, write p99 and post-heal durability for both;
* ``BENCH_scale.json`` (written by :mod:`repro.bench.scale`) -- the
  multi-tenant scenario suite's fleet throughput, per-class p99 and
  worst-tenant SLO numbers for the reference ``sync-storm`` replay;
* ``BENCH_hugedir.json`` (written by :mod:`repro.bench.hugedir`) --
  the giant-directory sweep: per-op store bytes for insert/LIST/lookup
  against monolithic vs sharded NameRings at growing m, plus the
  huge-directory hotspot workload's per-class p99 for both layouts.

All are deterministic for a given scale: the simulated clock is the
only time source, so CI can diff them run over run.

    python -m repro.bench trajectory --out results/
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from ..core.fs import H2CloudFS
from ..core.middleware import H2Config
from ..simcloud.cluster import SwiftCluster
from .harness import bench_scale

FORMAT = "h2cloud-bench-trajectory-v1"

#: per-op stats exported for every operation histogram
_OP_KEYS = ("count", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms")


def _op_stats(mw) -> dict[str, dict[str, float]]:
    ops: dict[str, dict[str, float]] = {}
    for name, hist in sorted(mw.monitor.ops.items()):
        if not hist.samples:
            continue
        ops[name] = {
            "count": hist.samples,
            "mean_ms": hist.mean / 1000.0,
            "p50_ms": hist.percentile(0.50) / 1000.0,
            "p95_ms": hist.percentile(0.95) / 1000.0,
            "p99_ms": hist.percentile(0.99) / 1000.0,
            "max_ms": hist.max / 1000.0,
        }
    return ops


def _workload_shape() -> tuple[int, int]:
    """(directories, files per directory) for the reference workload."""
    return (24, 12) if bench_scale() == "full" else (8, 4)


def _drive_workload(fs: H2CloudFS) -> None:
    """Every Inbound API operation, deterministically, hot and cold."""
    dirs, files = _workload_shape()
    for d in range(dirs):
        fs.mkdir(f"/d{d:03d}")
        for f in range(files):
            fs.write(f"/d{d:03d}/f{f:03d}", b"x" * (64 + 8 * f))
    for d in range(dirs):
        fs.listdir(f"/d{d:03d}")
        fs.stat(f"/d{d:03d}/f000")
        fs.exists(f"/d{d:03d}/f001")
        fs.read(f"/d{d:03d}/f000")
        rel = fs.relative_path_of(f"/d{d:03d}/f001")
        fs.read_relative(rel)
        if d % 4 == 0:
            fs.drop_caches()  # expose the cold O(d) lookup path too
    fs.du("/")
    for d in range(0, dirs, 4):
        fs.move(f"/d{d:03d}/f002", f"/d{d:03d}/moved")
        fs.copy(f"/d{d:03d}/f003", f"/d{d:03d}/copied")
        fs.delete(f"/d{d:03d}/f001")
    fs.rmdir(f"/d{dirs - 1:03d}")


def _lookup_workload_traffic(config: H2Config) -> dict:
    """Fig 13's worst case, measured in store round trips.

    A depth-4 walk done cold (``drop_caches`` every round) plus a burst
    of ``exists()`` probes for names that are *not* there -- the access
    pattern where §3.2's "revalidate cached rings on a miss" rule costs
    a double GET per probe.  Returns the GET/PUT deltas the rounds cost,
    so the caller can diff a baseline config against the
    traffic-reduction flags.
    """
    fs = H2CloudFS(SwiftCluster.rack_scale(), account="bench", config=config)
    depth = 4
    path = ""
    for level in range(depth):
        path += f"/w{level}"
        fs.mkdir(path)
    fs.write(f"{path}/present", b"z" * 64)
    fs.pump()
    ledger = fs.store.ledger
    gets0, puts0 = ledger.gets, ledger.puts
    rounds = 30 if bench_scale() == "full" else 12
    missing, probes = 4, 5
    for _ in range(rounds):
        fs.drop_caches()  # cold walk: every level re-read from the store
        fs.stat(f"{path}/present")
        for name in range(missing):
            for _ in range(probes):
                fs.exists(f"{path}/missing{name:02d}")
    snapshot = fs.middlewares[0].monitor.snapshot()
    return {
        "rounds": rounds,
        "probes": rounds * missing * probes,
        "store_gets": ledger.gets - gets0,
        "store_puts": ledger.puts - puts0,
        "negative_hits": int(snapshot["traffic.negative_hits"]),
        "revalidations": int(snapshot["traffic.revalidations"]),
    }


def _mkdir_storm_traffic(config: H2Config) -> dict:
    """Fig 12's worst case, measured in store round trips.

    A single-parent mkdir storm on a three-middleware gossiping
    deployment with gossip delivered continuously (a live deployment
    drains the rumor queue while the storm runs, so every baseline
    merge announcement costs its peers an absorb round trip).  The
    closing ``pump()`` is part of the measurement -- group commit only
    wins if the deferred flush plus convergence still costs fewer PUTs
    overall.
    """
    fs = H2CloudFS(
        SwiftCluster.rack_scale(),
        account="bench",
        middlewares=3,
        config=config,
    )
    fs.mkdir("/storm")
    fs.pump()
    ledger = fs.store.ledger
    gets0, puts0 = ledger.gets, ledger.puts
    count = 48 if bench_scale() == "full" else 16
    for d in range(count):
        fs.mkdir(f"/storm/d{d:03d}")
        fs.network.pump()  # live gossip: rumors drain while the storm runs
    fs.pump()
    group_commits = patches_coalesced = 0
    for mw in fs.middlewares:
        snapshot = mw.monitor.snapshot()
        group_commits += int(snapshot["traffic.group_commits"])
        patches_coalesced += int(snapshot["traffic.patches_coalesced"])
    return {
        "mkdirs": count,
        "store_puts": ledger.puts - puts0,
        "store_gets": ledger.gets - gets0,
        "puts_per_mkdir": round((ledger.puts - puts0) / count, 2),
        "group_commits": group_commits,
        "patches_coalesced": patches_coalesced,
        "rumors_sent": fs.network.rumors_sent,
        "rumors_coalesced": fs.network.rumors_coalesced,
    }


def _traffic_comparison(baseline: dict, optimized: dict) -> dict:
    """Before/after store-traffic section shared by both artifacts."""
    section = {"baseline": baseline, "optimized": optimized}
    if baseline["store_gets"]:
        section["get_reduction"] = round(
            1.0 - optimized["store_gets"] / baseline["store_gets"], 4
        )
    if baseline["store_puts"]:
        section["put_ratio"] = round(
            baseline["store_puts"] / max(optimized["store_puts"], 1), 2
        )
    return section


def headline_trajectory() -> dict:
    """Per-op latency distributions on the write-through configuration."""
    fs = H2CloudFS(SwiftCluster.rack_scale(), account="bench")
    _drive_workload(fs)
    fs.pump()
    mw = fs.middlewares[0]
    snapshot = mw.monitor.snapshot()
    return {
        "format": FORMAT,
        "artifact": "headline",
        "scale": bench_scale(),
        "sim_makespan_ms": fs.clock.now_ms,
        "ops": _op_stats(mw),
        "store": {
            key.split(".", 1)[1]: snapshot[key]
            for key in snapshot
            if key.startswith("store.")
        },
        "fd_cache_hit_rate": snapshot["fd_cache.hit_rate"],
        "traffic": dict(
            workload="cold deep walk + exists()-heavy probes (fig 13)",
            **_traffic_comparison(
                _lookup_workload_traffic(H2Config()),
                _lookup_workload_traffic(H2Config().with_traffic_flags()),
            ),
        ),
    }


def maintenance_trajectory() -> dict:
    """The async pipeline's throughput on a gossiping deployment."""
    fs = H2CloudFS(
        SwiftCluster.rack_scale(),
        account="bench",
        middlewares=3,
        config=H2Config(auto_merge=False),
    )
    dirs, files = _workload_shape()
    for d in range(dirs):
        fs.mkdir(f"/m{d:03d}")
        # With auto-merge off the mkdir is only a pending patch; the
        # background merger must apply it before children can resolve
        # -- exactly the interleaving a live deployment runs.
        for mw in fs.middlewares:
            mw.merger.run_once()
        for f in range(files):
            fs.write(f"/m{d:03d}/f{f:03d}", b"y" * 128)
        if d % 3 == 0:
            fs.network.pump()
    fs.pump()
    for d in range(0, dirs, 3):
        fs.delete(f"/m{d:03d}/f000")
    fs.pump()
    gc_report = fs.gc()
    per_node = {}
    totals = {
        "patches_submitted": 0,
        "merges": 0,
        "patches_applied": 0,
        "merge_steps": 0,
    }
    for mw in fs.middlewares:
        snapshot = mw.monitor.snapshot()
        per_node[str(mw.node_id)] = {
            key: snapshot[key]
            for key in snapshot
            if key.startswith("maintenance.")
        }
        for key in totals:
            totals[key] += int(snapshot[f"maintenance.{key}"])
    network = fs.network
    snapshot = fs.middlewares[0].monitor.snapshot()
    return {
        "format": FORMAT,
        "artifact": "maintenance",
        "scale": bench_scale(),
        "sim_makespan_ms": fs.clock.now_ms,
        "background_ms": snapshot["store.background_ms"],
        "totals": totals,
        "per_node": per_node,
        "gossip": {
            "rumors_sent": network.rumors_sent,
            "rumors_delivered": network.rumors_delivered,
            "anti_entropy_rounds": network.anti_entropy_rounds,
        },
        "gc": {
            "marked": gc_report.marked,
            "swept": gc_report.swept,
            "reclaimed_bytes": gc_report.reclaimed_bytes,
            "compacted_rings": gc_report.compacted_rings,
        },
        "traffic": dict(
            workload="single-parent mkdir storm, 3 middlewares (fig 12)",
            **_traffic_comparison(
                _mkdir_storm_traffic(H2Config()),
                _mkdir_storm_traffic(
                    replace(
                        H2Config().with_traffic_flags(),
                        # a storm-length window: the whole burst lands in
                        # one group and flushes once at the pump
                        group_commit_window_us=2_000_000,
                    )
                ),
            ),
        ),
    }


def _p99_ms(samples_us: list[int]) -> float:
    if not samples_us:
        return 0.0
    ordered = sorted(samples_us)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))] / 1000.0


def _timed_mix(fs: H2CloudFS, rounds: int, dirs: int, files: int,
               migrate_batch: int = 0) -> dict:
    """One read+write client phase, each op timed on the sim clock.

    With ``migrate_batch`` set the phase interleaves one bounded
    rebalance batch per round while the migration window is open --
    the client traffic runs *through* the dual-ownership window, which
    is exactly the overhead the artifact exists to pin down.
    """
    clock = fs.clock
    membership = fs.store.membership
    reads: list[int] = []
    writes: list[int] = []
    batches = 0
    started = clock.now_us
    for r in range(rounds):
        if migrate_batch and membership.in_transition:
            membership.sweeper.step(max_objects=migrate_batch)
            batches += 1
        t0 = clock.now_us
        fs.read(f"/r{r % dirs:03d}/f{r % files:03d}")
        reads.append(clock.now_us - t0)
        t0 = clock.now_us
        fs.write(f"/r{r % dirs:03d}/hot{r % files:03d}", b"h" * 256)
        writes.append(clock.now_us - t0)
    elapsed_us = max(clock.now_us - started, 1)
    return {
        "ops": len(reads) + len(writes),
        "elapsed_ms": round(elapsed_us / 1000.0, 3),
        "ops_per_sec": round((len(reads) + len(writes)) / (elapsed_us / 1e6), 1),
        "read_p99_ms": round(_p99_ms(reads), 3),
        "write_p99_ms": round(_p99_ms(writes), 3),
        "rebalance_batches": batches,
    }


def rebalance_trajectory() -> dict:
    """Steady-state vs mid-migration client cost of a node join.

    A reference tree is written, a steady-state phase is measured, a
    node joins (opening the dual-ownership window), and the *same*
    phase re-runs with the sweeper draining the migration plan in
    small batches between client ops.  The quiesce tail hands off the
    remainder so the artifact also records the full transition totals.
    """
    fs = H2CloudFS(SwiftCluster.rack_scale(), account="bench")
    membership = fs.store.membership
    dirs, files = _workload_shape()
    for d in range(dirs):
        fs.mkdir(f"/r{d:03d}")
        for f in range(files):
            fs.write(f"/r{d:03d}/f{f:03d}", b"x" * (128 + 16 * f))
    fs.pump()
    rounds = dirs * files
    steady = _timed_mix(fs, rounds, dirs, files)

    node = membership.add_node()
    pending_at_open = membership.pending_moves
    migration = _timed_mix(fs, rounds, dirs, files, migrate_batch=1)
    membership.quiesce()
    fs.pump()

    comparison = {}
    if steady["ops_per_sec"]:
        comparison["ops_per_sec_ratio"] = round(
            migration["ops_per_sec"] / steady["ops_per_sec"], 3
        )
    if steady["read_p99_ms"]:
        comparison["read_p99_ratio"] = round(
            migration["read_p99_ms"] / steady["read_p99_ms"], 3
        )
    return {
        "format": FORMAT,
        "artifact": "rebalance",
        "scale": bench_scale(),
        "sim_makespan_ms": fs.clock.now_ms,
        "steady": steady,
        "migration": migration,
        "comparison": comparison,
        "handoff": {
            "joined_node": node.node_id,
            "epoch": membership.epoch,
            "transitions": membership.transitions,
            "pending_at_open": pending_at_open,
            "partitions_moved": membership.partitions_moved,
            "bytes_migrated": membership.bytes_migrated,
            "dual_reads": membership.dual_reads,
            "write_throughs": membership.write_throughs,
            "handoff_ms": round(membership.handoff_us[-1] / 1000.0, 3)
            if membership.handoff_us
            else 0.0,
        },
    }


def _partition_storm_phase(hinted: bool) -> dict:
    """The fig-12 write storm under a minority cut, hints on or off.

    Three middlewares; middleware 1 is severed from half the storage
    nodes, so roughly a third of the storm's writes route through a
    degraded link.  Without hints any write whose replica set loses
    its majority behind the cut fails; with hints it completes against
    a sloppy quorum.  After the storm the cut heals, hints drain, and
    the phase re-reads every acknowledged file through a healthy
    middleware -- acked writes must all survive the partition.
    """
    from ..simcloud.errors import SimCloudError
    from ..simcloud.failures import mw_endpoint, node_endpoint

    cluster = SwiftCluster.rack_scale()
    if hinted:
        cluster.enable_hinted_handoff()
    fs = H2CloudFS(cluster, account="bench", middlewares=3)
    fs.mkdir("/storm")
    fs.pump()
    minority = list(range(1, len(cluster.nodes) // 2 + 1))
    cluster.partitions.isolate(
        [mw_endpoint(1)],
        [node_endpoint(n) for n in minority],
        "storm-cut",
    )
    count = 48 if bench_scale() == "full" else 16
    clock = fs.clock
    acked: list[str] = []
    failed = 0
    writes_us: list[int] = []
    for d in range(count):
        path = f"/storm/f{d:03d}"
        t0 = clock.now_us
        try:
            fs.write(path, b"s" * 256)
        except SimCloudError:
            failed += 1
            continue
        acked.append(path)
        writes_us.append(clock.now_us - t0)
    cluster.partitions.heal_all()
    if hinted:
        cluster.hint_sweeper.drain_to_empty()
    hint_counters = dict(cluster.store.hints.snapshot()) if hinted else {}
    fs.pump()
    fs.repair()
    durable = 0
    reader = fs.middlewares[1]  # never behind the cut
    for path in acked:
        if reader.read_file("bench", path) == b"s" * 256:
            durable += 1
    return {
        "writes_attempted": count,
        "writes_acked": len(acked),
        "writes_failed": failed,
        "ack_rate": round(len(acked) / count, 4),
        "write_p99_ms": round(_p99_ms(writes_us), 3),
        "acked_durable_after_heal": durable,
        "severed_nodes": minority,
        "sim_makespan_ms": fs.clock.now_ms,
        "hints": hint_counters,
    }


def partition_trajectory() -> dict:
    """Availability under a minority partition, hints off vs on."""
    baseline = _partition_storm_phase(hinted=False)
    hinted = _partition_storm_phase(hinted=True)
    comparison = {
        "ack_rate_gain": round(hinted["ack_rate"] - baseline["ack_rate"], 4),
    }
    if baseline["write_p99_ms"]:
        comparison["write_p99_ratio"] = round(
            hinted["write_p99_ms"] / baseline["write_p99_ms"], 3
        )
    return {
        "format": FORMAT,
        "artifact": "partition",
        "scale": bench_scale(),
        "sim_makespan_ms": hinted["sim_makespan_ms"],
        "hints_off": baseline,
        "hints_on": hinted,
        "comparison": comparison,
    }


def write_bench_artifacts(out_dir: str | Path = ".") -> list[Path]:
    """Write every guarded artifact; returns the paths written."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for name, doc in (
        ("BENCH_headline.json", headline_trajectory()),
        ("BENCH_maintenance.json", maintenance_trajectory()),
        ("BENCH_rebalance.json", rebalance_trajectory()),
        ("BENCH_partition.json", partition_trajectory()),
    ):
        path = out / name
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        written.append(path)
    from .scale import write_scale_artifact

    written.append(write_scale_artifact(out))
    from .hugedir import write_hugedir_artifact

    written.append(write_hugedir_artifact(out))
    return written
