"""Export experiment results for external plotting.

``python -m repro.bench --out results/ fig7 fig13`` writes, per
experiment, a ``<id>.csv`` (long format: experiment,system,x,value)
and a ``<id>.json`` carrying the full result including notes and the
paper expectation -- enough to regenerate any figure in the plotting
tool of your choice without re-running the simulation.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .harness import ExperimentResult


def result_to_rows(result: ExperimentResult) -> list[dict[str, object]]:
    """Long-format rows: one per (system, x) point."""
    rows: list[dict[str, object]] = []
    for system in sorted(result.series):
        for x, value in result.series[system].points:
            rows.append(
                {
                    "experiment": result.experiment_id,
                    "system": system,
                    "x": x,
                    "value": value,
                    "unit": result.unit,
                }
            )
    return rows


def result_to_dict(result: ExperimentResult) -> dict[str, object]:
    """A JSON-ready dump of everything the experiment produced."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "x_label": result.x_label,
        "unit": result.unit,
        "expectation": result.expectation,
        "series": {
            system: series.points for system, series in sorted(result.series.items())
        },
        "notes": list(result.notes),
    }


def write_csv(result: ExperimentResult, directory: Path) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.experiment_id}.csv"
    rows = result_to_rows(result)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(
            handle, fieldnames=["experiment", "system", "x", "value", "unit"]
        )
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_json(result: ExperimentResult, directory: Path) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.experiment_id}.json"
    path.write_text(json.dumps(result_to_dict(result), indent=2) + "\n")
    return path


def export_results(results, directory: str | Path) -> list[Path]:
    """CSV + JSON for every result; returns the files written."""
    directory = Path(directory)
    written: list[Path] = []
    for result in results:
        written.append(write_csv(result, directory))
        written.append(write_json(result, directory))
    return written


def load_result_json(path: str | Path) -> dict[str, object]:
    """Round-trip helper (and a tested contract for external tools)."""
    return json.loads(Path(path).read_text())
