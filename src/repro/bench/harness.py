"""The experiment runner: build, populate, measure, repeat.

One :class:`ExperimentResult` per paper figure/table; the runner
handles the methodology the paper describes in §5.2: operation time is
read off the *simulated* clock (excluding WAN RTT -- that is studied
separately in the RTT-impact experiment), caches are dropped before
each measurement so cold-path costs are visible, and several repeats
with distinct workloads give a mean and spread.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from ..baselines import make_system
from ..simcloud.cluster import SwiftCluster

#: The three systems the paper's figures compare.
FIGURE_SYSTEMS = ("h2cloud", "swift", "dropbox")


def bench_scale() -> str:
    """'quick' (default) or 'full' via REPRO_BENCH_SCALE.

    Quick keeps the sweeps to ~1e3-file workloads so the whole harness
    runs in minutes; full pushes to the paper's 1e5 points.
    """
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def sweep_points(quick: list[int], full: list[int]) -> list[int]:
    return full if bench_scale() == "full" else quick


@dataclass
class Series:
    """One line on one figure: (x, mean simulated ms) points."""

    system: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, ms: float) -> None:
        self.points.append((x, ms))

    def ms_at(self, x: float) -> float:
        for px, ms in self.points:
            if px == x:
                return ms
        raise KeyError(x)


@dataclass
class ExperimentResult:
    """Everything one figure/table reproduction produced."""

    experiment_id: str  # e.g. "fig7"
    title: str
    x_label: str
    series: dict[str, Series] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    expectation: str = ""  # what the paper's version shows
    unit: str = "ms"  # what series values measure ("ms", "objects", "MB")

    def series_for(self, system: str) -> Series:
        if system not in self.series:
            self.series[system] = Series(system=system)
        return self.series[system]

    def note(self, text: str) -> None:
        self.notes.append(text)


def measure_op(fs, thunk: Callable[[], object]) -> int:
    """Cold-cache simulated cost of one operation, in microseconds."""
    fs.pump()
    fs.drop_caches()
    _, cost = fs.clock.measure(thunk)
    return cost


def run_sweep(
    result: ExperimentResult,
    systems: tuple[str, ...],
    xs: list[int],
    setup: Callable[[object, int], None],
    operation: Callable[[object, int], Callable[[], object]],
    repeats: int = 1,
) -> ExperimentResult:
    """The generic figure loop.

    For each system and sweep point: fresh cluster, ``setup(fs, x)``
    to build the workload, then time ``operation(fs, x)()`` cold.
    Repeats rebuild from scratch (the op may be destructive).
    """
    for system in systems:
        series = result.series_for(system)
        for x in xs:
            total_us = 0
            for _ in range(max(1, repeats)):
                fs = make_system(system, SwiftCluster.rack_scale())
                setup(fs, x)
                total_us += measure_op(fs, operation(fs, x))
            series.add(x, total_us / max(1, repeats) / 1000.0)
    return result
