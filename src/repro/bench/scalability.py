"""The Table-1 "System Scalability" column, made measurable.

The paper grades each data structure Yes/Limited/No/Constrained on
scalability but never plots it.  This experiment does: a burst of
metadata operations is offered to a deployment with a varying number
of metadata front-ends, and the makespan is measured.

* **H2Cloud** front-ends are stateless middlewares over the shared
  object cloud -- adding middlewares divides the burst (scalability
  "Yes", and the §1 argument: application instances "become stateless
  ... and thus can easily scale").
* **Dynamic Partition** scales with its index-server count the same
  way ("Yes"), but those servers are stateful -- scaling requires
  migration, which :class:`~repro.baselines.DynamicPartitionFS`'s
  rebalancer models.
* **Single Index Server**: every metadata mutation funnels through one
  namenode, so extra front-ends change nothing ("Limited").
* **Swift**: object PUTs spread over the rack, but the per-account
  file-path DB serialises its row updates ("Limited").
* **Static Partition**: scales only until the busiest volume saturates
  its one server; with a skewed (single-volume) workload, extra
  servers are dead weight ("No").

The *serial resource* is what distinguishes the rows, so the model
runs the burst through each system's actual bottleneck: front-end
parallelism is makespan over k lanes, but work bound to one stateful
server (namenode ops, container-DB writes, one volume's server) stays
on one lane.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines import (
    DynamicPartitionFS,
    SingleIndexFS,
    StaticPartitionFS,
    SwiftFS,
)
from ..core.fs import H2CloudFS
from ..simcloud.cluster import SwiftCluster
from .harness import ExperimentResult


@dataclass(frozen=True)
class ScalabilityPoint:
    """Throughput at one front-end count."""

    frontends: int
    makespan_ms: float
    ops_per_second: float


def _burst_makespan(clock, thunks, lanes: int) -> float:
    """Makespan (ms) of running the burst over ``lanes`` front-ends."""
    start = clock.now_us
    clock.parallel(thunks, workers=lanes)
    return (clock.now_us - start) / 1000.0


def h2cloud_burst(frontends: int, ops: int) -> float:
    """H2Cloud: each mkdir can go to any stateless middleware."""
    fs = H2CloudFS(
        SwiftCluster.rack_scale(), account="scale", middlewares=frontends
    )
    thunks = [
        (lambda i=i: fs.middlewares[i % frontends].mkdir("scale", f"/d{i:04d}"))
        for i in range(ops)
    ]
    return _burst_makespan(fs.clock, thunks, lanes=frontends)


def dynamic_partition_burst(frontends: int, ops: int) -> float:
    """DP: index servers share the namespace; ops spread across them."""
    fs = DynamicPartitionFS(
        SwiftCluster.rack_scale(),
        account="scale",
        index_servers=frontends,
        rebalance_every=0,
    )
    thunks = [(lambda i=i: fs.mkdir(f"/d{i:04d}")) for i in range(ops)]
    return _burst_makespan(fs.clock, thunks, lanes=frontends)


def single_index_burst(frontends: int, ops: int) -> float:
    """Single namenode: front-ends multiply, the bottleneck does not."""
    fs = SingleIndexFS(SwiftCluster.rack_scale(), account="scale")
    thunks = [(lambda i=i: fs.mkdir(f"/d{i:04d}")) for i in range(ops)]
    return _burst_makespan(fs.clock, thunks, lanes=1)


def swift_burst(frontends: int, ops: int) -> float:
    """Swift: proxies scale, the per-account container DB does not.

    The object PUT part of each MKDIR parallelises over the proxies;
    the DB row insert is serialised on the container server.  We model
    that split by running the bursts through the real system with the
    front-end lane count, then adding the serialised DB time.
    """
    fs = SwiftFS(SwiftCluster.rack_scale(), account="scale")
    clock = fs.clock
    # Measure one mkdir's DB share to serialise it explicitly.
    db_before = clock.now_us
    fs.db.insert("/probe/", {"dir_marker": True})
    db_cost_us = clock.now_us - db_before
    fs.db.delete("/probe/")
    thunks = [(lambda i=i: fs.mkdir(f"/d{i:04d}")) for i in range(ops)]
    parallel_part = _burst_makespan(clock, thunks, lanes=frontends)
    # The DB inserts inside those mkdirs already ran once; the extra
    # serialisation penalty is (ops - ops/lanes) DB slots.
    serial_extra = db_cost_us * (ops - ops / frontends) / 1000.0
    clock.advance(int(serial_extra * 1000))
    return parallel_part + serial_extra


def static_partition_burst(frontends: int, ops: int) -> float:
    """AFS with a skewed workload: everything lands in one volume."""
    fs = StaticPartitionFS(
        SwiftCluster.rack_scale(), account="scale", partitions=max(frontends, 1)
    )
    fs.mkdir("/hotvol")
    thunks = [(lambda i=i: fs.mkdir(f"/hotvol/d{i:04d}")) for i in range(ops)]
    return _burst_makespan(fs.clock, thunks, lanes=1)  # one volume server


BURSTS = {
    "h2cloud": h2cloud_burst,
    "dynamic-partition": dynamic_partition_burst,
    "single-index": single_index_burst,
    "swift": swift_burst,
    "static-partition (skewed)": static_partition_burst,
}


def scalability(
    frontend_counts: list[int] | None = None, ops: int = 64
) -> ExperimentResult:
    """Makespan of a fixed metadata burst vs number of front-ends."""
    frontend_counts = frontend_counts or [1, 2, 4, 8]
    result = ExperimentResult(
        experiment_id="scalability",
        title=f"Metadata burst makespan ({ops} MKDIRs) vs front-ends",
        x_label="metadata front-ends",
        expectation=(
            "Table 1's scalability column, measured: H2Cloud and DP "
            "speed up with front-ends (Yes); Single Index and Swift "
            "barely move (Limited); skewed Static Partition not at all "
            "(No)."
        ),
    )
    for name, burst in BURSTS.items():
        series = result.series_for(name)
        for frontends in frontend_counts:
            series.add(frontends, burst(frontends, ops))
    for name in BURSTS:
        points = dict(result.series_for(name).points)
        first, last = points[frontend_counts[0]], points[frontend_counts[-1]]
        result.note(
            f"{name}: speedup x{first / last:.1f} from "
            f"{frontend_counts[0]} to {frontend_counts[-1]} front-ends"
        )
    return result
