"""Empirical complexity fitting for the Table-1 reproduction.

Given measured (workload size, simulated time) points, fit the scaling
exponent by least squares on log-log axes and classify it into the
complexity vocabulary Table 1 uses.  This turns "O(n) vs O(1)" from a
claim into a measurement: the Table-1 benchmark sweeps every system
and prints the fitted class next to the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Fit:
    """A fitted power law t = c * x^exponent."""

    exponent: float
    r_squared: float
    label: str  # "O(1)" | "O(log x)" | "O(x)" | "O(x^k)"

    def __str__(self) -> str:
        return f"{self.label} (k={self.exponent:.2f}, R²={self.r_squared:.2f})"


def fit_power_law(points: list[tuple[float, float]]) -> Fit:
    """Least-squares slope of log(t) against log(x)."""
    if len(points) < 2:
        raise ValueError("need at least two points to fit")
    xs = [math.log(max(x, 1e-12)) for x, _ in points]
    ys = [math.log(max(t, 1e-12)) for _, t in points]
    n = len(xs)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        return Fit(exponent=0.0, r_squared=1.0, label="O(1)")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return Fit(exponent=slope, r_squared=r_squared, label=classify(slope))


def classify(exponent: float) -> str:
    """Map a fitted exponent to a Table-1-style complexity class."""
    if exponent < 0.25:
        return "O(1)"
    if exponent < 0.6:
        return "O(log x)"
    if exponent < 1.35:
        return "O(x)"
    return f"O(x^{exponent:.1f})"


def fit_sweep(points: list[tuple[float, float]]) -> Fit:
    """Classify a sweep that may sit on a large additive constant.

    Real operations cost ``a + b * x^k``: resolution round trips and
    request overheads contribute an ``a`` that flattens a naive log-log
    fit at small x.  This fitter first asks whether the sweep grew at
    all (if not: O(1)); if it did, it subtracts 90% of the smallest
    observation as the constant and fits the remainder.
    """
    if len(points) < 2:
        raise ValueError("need at least two points to fit")
    xs = [x for x, _ in points]
    ts = [t for _, t in points]
    scale = max(xs) / max(min(xs), 1e-12)
    growth = max(ts) / max(min(ts), 1e-12)
    if growth < max(1.8, scale**0.15):
        return Fit(exponent=0.0, r_squared=1.0, label="O(1)")
    # Estimate the additive constant as the intercept of a plain
    # linear fit (robust for t = a + b*x data), capped just below the
    # smallest observation so flat-ish tails cannot go negative.
    n = len(xs)
    mean_x, mean_t = sum(xs) / n, sum(ts) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxt = sum((x - mean_x) * (t - mean_t) for x, t in zip(xs, ts))
    intercept = mean_t - (sxt / sxx) * mean_x if sxx else 0.0
    baseline = min(max(intercept, 0.0), 0.95 * min(ts))
    adjusted = [(x, max(t - baseline, 0.02 * t)) for x, t in points]
    return fit_power_law(adjusted)


def is_flat(points: list[tuple[float, float]], tolerance: float = 0.25) -> bool:
    """True when time does not meaningfully grow with workload size."""
    return fit_power_law(points).exponent < tolerance


def is_linear(points: list[tuple[float, float]]) -> bool:
    exponent = fit_power_law(points).exponent
    return 0.6 <= exponent < 1.35


def consistent_with(points: list[tuple[float, float]], claim: str) -> bool:
    """Does a measured sweep match a Table-1 claim string?

    Claims like "O(1) or O(d)" accept either branch; log-factor claims
    ("O(m·logN)") are judged on the dominant variable's exponent.
    Uses the baseline-adjusted :func:`fit_sweep`, so an O(1) claim only
    matches a sweep that genuinely did not grow.
    """
    fit = fit_sweep(points)
    options = [c.strip() for c in claim.split(" or ")]
    for option in options:
        if option == "O(1)":
            if fit.exponent < 0.3:
                return True
            continue
        if option.startswith("O(log"):
            if fit.exponent < 0.6:
                return True
            continue
        # Linear in the swept variable: O(n), O(m), O(d), O(N),
        # O(m·logN), O(n + logN) all fit exponent ~1 when sweeping
        # the leading variable.
        if 0.5 <= fit.exponent < 2.0:
            return True
    return False
