"""One entry per table/figure of the paper's evaluation (§5.3).

Every function regenerates the corresponding result on the simulated
rack and returns an :class:`~repro.bench.harness.ExperimentResult`
whose series carry the same x-axes the paper plots.  The module-level
``ALL_EXPERIMENTS`` registry is what ``python -m repro.bench`` and the
pytest benchmarks drive; EXPERIMENTS.md records paper-vs-measured for
each entry.

Methodology notes (paper §5.2): the reported operation time is
simulated service time *excluding* Internet RTT; file access times are
lookup-only (no payload transfer); caches are dropped before every
measurement.
"""

from __future__ import annotations

from ..baselines import TABLE1_SYSTEMS, make_system
from ..core.namespace import join
from ..simcloud.cluster import SwiftCluster
from ..simcloud.latency import LatencyModel
from ..simcloud.sparse import payload_of
from ..workloads import build_corpus, chain_directories, populate
from .complexity import consistent_with, fit_sweep
from .harness import (
    FIGURE_SYSTEMS,
    ExperimentResult,
    measure_op,
    run_sweep,
    sweep_points,
)

MB = 1 << 20

#: systems whose implementations slice real bytes (no sparse payloads)
REAL_BYTES_SYSTEMS = {"compressed-snapshot", "cas"}


def _fill_flat(fs, n: int, prefix: str = "/dir", size: int = MB) -> None:
    """A directory of n files; ~1 MB sparse objects like the paper's mean.

    Uses H2Cloud's bulk loader when available: one patch for the whole
    batch keeps population O(n) in wall time (per-write patching would
    re-serialize the growing ring n times), without touching what the
    sweeps measure.
    """
    sparse = fs.name not in REAL_BYTES_SYSTEMS if hasattr(fs, "name") else True
    real_size = size if sparse else min(size, 256)
    fs.mkdir(prefix)
    names = [f"file{i:06d}" for i in range(n)]
    if hasattr(fs, "write_many"):
        fs.write_many(
            prefix,
            [
                (name, payload_of(real_size, tag=f"{prefix}/{name}", sparse=sparse))
                for name in names
            ],
        )
        return
    for name in names:
        path = f"{prefix}/{name}"
        fs.write(path, payload_of(real_size, tag=path, sparse=sparse))


# ======================================================================
# Figure 7: MOVE / RENAME vs n
# ======================================================================
def fig7_move_rename(ns: list[int] | None = None) -> ExperimentResult:
    ns = ns or sweep_points(quick=[10, 100, 1000], full=[10, 100, 1000, 10_000, 100_000])
    result = ExperimentResult(
        experiment_id="fig7",
        title="Operation time for MOVE and RENAME",
        x_label="files in the moved directory (n)",
        expectation=(
            "Swift grows linearly with n (per-member copy+delete); "
            "H2Cloud and Dropbox stay flat (pointer/patch updates)."
        ),
    )
    run_sweep(
        result,
        FIGURE_SYSTEMS,
        ns,
        setup=lambda fs, n: _fill_flat(fs, n),
        operation=lambda fs, n: (lambda: fs.move("/dir", "/dir-moved")),
    )
    result.note("RENAME is measured identically: it is MOVE within one parent.")
    return result


# ======================================================================
# Figure 8: RMDIR vs n
# ======================================================================
def fig8_rmdir(ns: list[int] | None = None) -> ExperimentResult:
    ns = ns or sweep_points(quick=[10, 100, 1000], full=[10, 100, 1000, 10_000, 100_000])
    result = ExperimentResult(
        experiment_id="fig8",
        title="Operation time for RMDIR",
        x_label="files in the removed directory (n)",
        expectation="Same shape as Fig 7: Swift O(n), H2Cloud/Dropbox O(1).",
    )
    return run_sweep(
        result,
        FIGURE_SYSTEMS,
        ns,
        setup=lambda fs, n: _fill_flat(fs, n),
        operation=lambda fs, n: (lambda: fs.rmdir("/dir")),
    )


# ======================================================================
# Figure 9: LIST vs n (m held constant)
# ======================================================================
def fig9_list_vs_n(ns: list[int] | None = None, m: int = 200) -> ExperimentResult:
    ns = ns or sweep_points(quick=[64, 256, 1024], full=[64, 1024, 10_000, 100_000])
    result = ExperimentResult(
        experiment_id="fig9",
        title=f"Operation time for LIST vs n (m = {m} direct children)",
        x_label="files stored under the directory (n)",
        expectation=(
            "LIST depends on m, not n: every curve is roughly flat "
            "while n grows; Swift sits above Dropbox and H2Cloud."
        ),
    )

    def setup(fs, n):
        # m direct subdirectories, files spread evenly beneath them.
        fs.mkdir("/dir")
        sparse = fs.name not in REAL_BYTES_SYSTEMS
        per_child = max(1, n // m)
        for i in range(m):
            sub = f"/dir/sub{i:04d}"
            fs.mkdir(sub)
            for j in range(per_child):
                path = f"{sub}/file{j:06d}"
                fs.write(path, payload_of(1024, tag=path, sparse=sparse))

    return run_sweep(
        result,
        FIGURE_SYSTEMS,
        ns,
        setup=setup,
        operation=lambda fs, n: (lambda: fs.listdir("/dir", detailed=True)),
    )


# ======================================================================
# Figure 10: LIST vs m
# ======================================================================
def fig10_list_vs_m(ms: list[int] | None = None) -> ExperimentResult:
    ms = ms or sweep_points(quick=[10, 100, 1000], full=[10, 100, 1000, 10_000, 100_000])
    result = ExperimentResult(
        experiment_id="fig10",
        title="Operation time for LIST vs m (detailed listing)",
        x_label="direct children of the directory (m)",
        expectation=(
            "All three grow with m; Swift pays O(m·logN) serial marker "
            "queries and costs the most; H2Cloud's 1000-child LIST "
            "lands near the paper's 0.35 s headline."
        ),
    )
    run_sweep(
        result,
        FIGURE_SYSTEMS,
        ms,
        setup=lambda fs, m: _fill_flat(fs, m, size=64 * 1024),
        operation=lambda fs, m: (lambda: fs.listdir("/dir", detailed=True)),
    )
    if 1000 in ms:
        h2_1000 = result.series_for("h2cloud").ms_at(1000)
        result.note(
            f"H2Cloud LIST of 1000 files: {h2_1000 / 1000:.2f} s (paper: ~0.35 s)."
        )
    result.note(
        "Beyond this sweep: `python -m repro.bench hugedir` pushes the "
        "same shape to m=500k (full scale) and compares monolithic vs "
        "sharded NameRings on per-op store bytes."
    )
    return result


# ======================================================================
# Figure 11: COPY vs n
# ======================================================================
def fig11_copy(ns: list[int] | None = None) -> ExperimentResult:
    ns = ns or sweep_points(quick=[10, 100, 1000], full=[10, 100, 1000, 10_000])
    result = ExperimentResult(
        experiment_id="fig11",
        title="Operation time for COPY",
        x_label="files in the copied directory (n)",
        expectation=(
            "O(n) for every system -- the three curves are close; "
            "H2Cloud's 1000-file COPY lands near the paper's ~10 s."
        ),
    )
    run_sweep(
        result,
        FIGURE_SYSTEMS,
        ns,
        setup=lambda fs, n: _fill_flat(fs, n),
        operation=lambda fs, n: (lambda: fs.copy("/dir", "/dir-copy")),
    )
    if 1000 in ns:
        h2_1000 = result.series_for("h2cloud").ms_at(1000)
        result.note(
            f"H2Cloud COPY of 1000 files: {h2_1000 / 1000:.2f} s (paper: ~10 s)."
        )
    return result


# ======================================================================
# Figure 12: MKDIR vs directory population
# ======================================================================
def fig12_mkdir(ns: list[int] | None = None) -> ExperimentResult:
    ns = ns or sweep_points(quick=[10, 100, 1000], full=[10, 100, 1000, 10_000])
    result = ExperimentResult(
        experiment_id="fig12",
        title="Operation time for MKDIR",
        x_label="existing files in the parent directory",
        expectation=(
            "Constant for all systems (the new directory is empty). "
            "Swift is fastest; H2Cloud and Dropbox sit in the "
            "150-200 ms band, acceptable to users."
        ),
    )
    return run_sweep(
        result,
        FIGURE_SYSTEMS,
        ns,
        setup=lambda fs, n: _fill_flat(fs, n),
        operation=lambda fs, n: (lambda: fs.mkdir("/dir/newdir")),
    )


# ======================================================================
# Figure 13: file access (lookup) vs depth d
# ======================================================================
def fig13_file_access(depths: list[int] | None = None) -> ExperimentResult:
    depths = depths or sweep_points(
        quick=[1, 2, 4, 8, 12, 16, 20], full=[1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20]
    )
    result = ExperimentResult(
        experiment_id="fig13",
        title="Operation time for file access (lookup only)",
        x_label="directory depth of the accessed file (d)",
        expectation=(
            "Swift: flat ~10 ms (one full-path hash). H2Cloud: "
            "proportional to d (one NameRing per level), ~61 ms at the "
            "workload-average d=4. Dropbox: roughly constant with "
            "fluctuations, above H2's average-depth cost."
        ),
    )

    def setup(fs, d):
        for path in chain_directories(d - 1):
            fs.mkdir(path)
        parent = chain_directories(d - 1)[-1] if d > 1 else ""
        sparse = fs.name not in REAL_BYTES_SYSTEMS
        fs.write(parent + "/leaf", payload_of(4096, tag="leaf", sparse=sparse))

    def operation(fs, d):
        parent = chain_directories(d - 1)[-1] if d > 1 else ""
        return lambda: fs.stat(parent + "/leaf")

    return run_sweep(result, FIGURE_SYSTEMS, depths, setup=setup, operation=operation)


# ======================================================================
# Figures 14 & 15: storage overhead (object count / object bytes)
# ======================================================================
def fig14_15_storage(user_counts: list[int] | None = None) -> tuple[ExperimentResult, ExperimentResult]:
    user_counts = user_counts or sweep_points(quick=[4, 8, 16], full=[10, 50, 150])
    fig14 = ExperimentResult(
        experiment_id="fig14",
        title="Number of objects stored",
        x_label="users hosted",
        unit="objects",
        expectation=(
            "H2Cloud stores visibly more objects than Swift: every "
            "directory and every NameRing is an object of its own."
        ),
    )
    fig15 = ExperimentResult(
        experiment_id="fig15",
        title="Size of objects stored",
        x_label="users hosted",
        unit="MB",
        expectation=(
            "The extra bytes are almost invisible: directory/NameRing "
            "objects are <1 KB against ~1 MB average file objects."
        ),
    )
    for system in ("h2cloud", "swift"):
        count_series = fig14.series_for(system)
        size_series = fig15.series_for(system)
        for n_users in user_counts:
            cluster = SwiftCluster.rack_scale()
            users = build_corpus(n_users=n_users, heavy_fraction=0.2, seed=77)
            for user in users:
                fs = make_system(system, cluster, account=user.account)
                populate(fs, user.tree(), sparse=True)
                fs.pump()
            count, nbytes = cluster.store.census()
            count_series.add(n_users, count)
            size_series.add(n_users, nbytes / MB)
    h2_bytes = fig15.series_for("h2cloud").points[-1][1]
    swift_bytes = fig15.series_for("swift").points[-1][1]
    fig15.note(
        f"Byte overhead at the largest corpus: "
        f"{(h2_bytes / swift_bytes - 1) * 100:.2f}% over Swift."
    )
    return fig14, fig15


# ======================================================================
# §5.3 "The Impact of RTT": alpha = RTT / operation time
# ======================================================================
def rtt_impact(depths: list[int] | None = None) -> ExperimentResult:
    depths = depths or [1, 2, 4, 8, 12, 16, 20]
    wan_rtt_ms = LatencyModel.rack_scale().wan_rtt_us / 1000.0
    result = ExperimentResult(
        experiment_id="rtt",
        title="alpha = RTT / operation time (file access, by depth)",
        x_label="directory depth of the accessed file (d)",
        unit="x (ratio)",
        expectation=(
            "With the paper's 58 ms average Internet RTT: alpha falls "
            "from ~2.7 toward ~0.3 for H2 as d grows 0->20; Swift "
            "hovers near 5 (its 10 ms accesses are RTT-dominated); "
            "Dropbox near 0.5. Directory operations keep alpha <= ~0.3 "
            "everywhere, so their service time dominates the user "
            "experience, which is why directory-op optimisation pays."
        ),
    )
    access = fig13_file_access(depths)
    for system in FIGURE_SYSTEMS:
        alpha_series = result.series_for(system)
        for d, ms in access.series_for(system).points:
            alpha_series.add(d, wan_rtt_ms / ms)
    # Directory-operation alphas, recorded as notes (single numbers).
    for op_name, fn in (("MKDIR", fig12_mkdir), ("MOVE", fig7_move_rename)):
        sub = fn(ns=[1000])
        for system in FIGURE_SYSTEMS:
            ms = sub.series_for(system).points[-1][1]
            result.note(
                f"alpha[{op_name}, n=1000, {system}] = {wan_rtt_ms / ms:.2f}"
            )
    return result


# ======================================================================
# Table 1: empirical complexity classes for all nine systems
# ======================================================================
TABLE1_OPS = ("file_access", "mkdir", "rmdir_move", "list", "copy")

#: which variable each system's file-access claim is about
_ACCESS_SWEEP = {
    "compressed-snapshot": "N",  # scan the metadata log
    "cas": "hash",  # O(1) by content hash
    "consistent-hash": "N",  # flat hash: O(1) however big the store
    "swift": "N",
    "single-index": "d",
    "static-partition": "d",
    "dynamic-partition": "d",
    "shared-disk-dp": "d",
    "h2cloud": "d",
}


def table1_complexity(xs: list[int] | None = None) -> ExperimentResult:
    xs = xs or sweep_points(quick=[8, 32, 128, 512], full=[8, 64, 512, 4096])
    depths = [1, 2, 4, 8, 16]
    result = ExperimentResult(
        experiment_id="table1",
        title="Table 1: measured complexity classes vs the paper's claims",
        x_label="workload scale (n = m = N for flat sweeps; d for depth)",
        expectation="Every fitted class matches the paper's claim.",
    )
    for system, (_, row) in TABLE1_SYSTEMS.items():
        claims = {
            "file_access": row.file_access,
            "mkdir": row.mkdir,
            "rmdir_move": row.rmdir_move,
            "list": row.list_,
            "copy": row.copy,
        }
        for op in TABLE1_OPS:
            points = _measure_table1(system, op, xs, depths)
            fit = fit_sweep(points)
            ok = consistent_with(points, claims[op])
            result.note(
                f"{system:20s} {op:12s} claimed {claims[op]:12s} "
                f"measured {fit} {'OK' if ok else 'MISMATCH'}"
            )
            result.series_for(f"{system}:{op}").points = points
    return result


def _measure_table1(system, op, xs, depths) -> list[tuple[float, float]]:
    points = []
    if op == "file_access":
        mode = _ACCESS_SWEEP[system]
        if mode == "d":
            for d in depths:
                fs = make_system(system, SwiftCluster.rack_scale())
                for path in chain_directories(d - 1):
                    fs.mkdir(path)
                parent = chain_directories(d - 1)[-1] if d > 1 else ""
                fs.write(parent + "/leaf", b"x")
                cost = measure_op(fs, lambda: fs.stat(parent + "/leaf"))
                points.append((d, cost / 1000.0))
            return points
        for x in xs:  # sweep N
            fs = make_system(system, SwiftCluster.rack_scale())
            _fill_flat(fs, x, size=256)
            target = "/dir/file000000"
            if mode == "hash":
                digest = fs.hash_of(target)
                thunk = lambda: fs.read_by_hash(digest)  # noqa: E731
            elif system == "compressed-snapshot":
                thunk = lambda: fs.read(target)  # noqa: E731
            else:
                thunk = lambda: fs.stat(target)  # noqa: E731
            points.append((x, measure_op(fs, thunk) / 1000.0))
        return points
    for x in xs:
        fs = make_system(system, SwiftCluster.rack_scale())
        # Work one level below a volume directory so static-partition
        # measurements reflect the claimed same-volume behaviour
        # (cross-volume renames are a different, non-Table-1 path).
        fs.mkdir("/vol")
        _fill_flat(fs, x, prefix="/vol/dir", size=256)
        if op == "mkdir":
            # Cumulus's Table-1 MKDIR is the blind append (the checked
            # variant adds an O(N) validation scan on top).
            mk = getattr(fs, "mkdir_unchecked", fs.mkdir)
            thunk = lambda mk=mk: mk("/vol/newdir")  # noqa: E731
        elif op == "rmdir_move":
            thunk = lambda: fs.move("/vol/dir", "/vol/dir2")  # noqa: E731
        elif op == "list":
            thunk = lambda: fs.listdir("/vol/dir", detailed=True)  # noqa: E731
        else:  # copy
            thunk = lambda: fs.copy("/vol/dir", "/vol/dir-copy")  # noqa: E731
        points.append((x, measure_op(fs, thunk) / 1000.0))
    return points


# ======================================================================
# §5.1 methodology: replaying a user workload on all three systems
# ======================================================================
def trace_replay(
    n_ops: int = 400, tree_seed: int = 17, files: int = 300
) -> ExperimentResult:
    """Replay one user's operation trace on H2Cloud, Swift and Dropbox.

    This is the paper's primary methodology ("we replay these H2Cloud
    users' workloads"): a seeded synthetic filesystem stands in for a
    real user's, and the same POSIX-like op mix runs against each
    system; the series report mean simulated time per operation class.
    """
    from ..workloads import TraceGenerator, TreeSpec, generate, populate
    from ..workloads import replay as replay_trace

    result = ExperimentResult(
        experiment_id="trace",
        title=f"Workload replay: {n_ops} mixed ops on one user filesystem",
        x_label="operation class (1=read 2=write 3=list 4=stat 5=mkdir "
        "6=delete 7=move 8=copy 9=rmdir)",
        expectation=(
            "On a realistic (small-directory) user workload the systems "
            "are much closer than the controlled sweeps -- O(n) terms "
            "need big directories to bite -- but H2Cloud's warm "
            "descriptor caches give it the lowest total time, and "
            "Dropbox's per-request service cost the highest."
        ),
    )
    op_order = [
        "read", "write", "list", "stat", "mkdir",
        "delete", "move", "copy", "rmdir",
    ]
    tree = generate(TreeSpec(seed=tree_seed, target_files=files, max_depth=6))
    ops = TraceGenerator(seed=tree_seed + 1).generate(tree, n_ops)
    for system in FIGURE_SYSTEMS:
        fs = make_system(system, SwiftCluster.rack_scale())
        populate(fs, tree, sparse=system not in REAL_BYTES_SYSTEMS)
        fs.pump()
        stats = replay_trace(fs, ops)
        series = result.series_for(system)
        for index, op_name in enumerate(op_order, start=1):
            if stats.count(op_name):
                series.add(index, stats.mean_us(op_name) / 1000.0)
        result.note(
            f"{system}: {stats.total_ops} ops replayed, "
            f"total {fs.clock.now_ms / 1000.0:.1f} simulated s"
        )
    return result


# ======================================================================
# §1 headline numbers
# ======================================================================
def headline_numbers() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="headline",
        title="§1 headline: LIST 1000 ~ 0.35 s, COPY 1000 ~ 10 s",
        x_label="operation",
        expectation="H2Cloud: LIST 1000 files ~0.35 s; COPY 1000 files ~10 s.",
    )
    fs = make_system("h2cloud", SwiftCluster.rack_scale())
    _fill_flat(fs, 1000)
    list_us = measure_op(fs, lambda: fs.listdir("/dir", detailed=True))
    copy_us = measure_op(fs, lambda: fs.copy("/dir", "/dir-copy"))
    result.series_for("h2cloud").add(1, list_us / 1000.0)
    result.series_for("h2cloud").add(2, copy_us / 1000.0)
    result.note(f"LIST 1000 detailed: {list_us / 1e6:.3f} s (paper ~0.35 s)")
    result.note(f"COPY 1000 x 1MB:   {copy_us / 1e6:.2f} s (paper ~10 s)")
    return result


def _scalability():
    from .scalability import scalability

    return scalability()


ALL_EXPERIMENTS = {
    "table1": table1_complexity,
    "scalability": _scalability,
    "fig7": fig7_move_rename,
    "fig8": fig8_rmdir,
    "fig9": fig9_list_vs_n,
    "fig10": fig10_list_vs_m,
    "fig11": fig11_copy,
    "fig12": fig12_mkdir,
    "fig13": fig13_file_access,
    "fig14_15": fig14_15_storage,
    "rtt": rtt_impact,
    "trace": trace_replay,
    "headline": headline_numbers,
}
