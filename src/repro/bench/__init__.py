"""`repro.bench` -- the benchmark harness for every table and figure.

``python -m repro.bench`` runs everything; ``python -m repro.bench
fig7 fig13`` runs a subset.  The pytest-benchmark suite under
``benchmarks/`` drives the same registry with shape assertions.
"""

from .complexity import Fit, classify, consistent_with, fit_power_law, is_flat, is_linear
from .experiments import (
    ALL_EXPERIMENTS,
    fig7_move_rename,
    fig8_rmdir,
    fig9_list_vs_n,
    fig10_list_vs_m,
    fig11_copy,
    fig12_mkdir,
    fig13_file_access,
    fig14_15_storage,
    headline_numbers,
    rtt_impact,
    table1_complexity,
)
from .harness import (
    FIGURE_SYSTEMS,
    ExperimentResult,
    Series,
    bench_scale,
    measure_op,
    run_sweep,
    sweep_points,
)
from .report import ascii_chart, format_result, format_table, markdown_table
from .scalability import ScalabilityPoint, scalability

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "FIGURE_SYSTEMS",
    "Fit",
    "Series",
    "ascii_chart",
    "bench_scale",
    "classify",
    "consistent_with",
    "fig10_list_vs_m",
    "fig11_copy",
    "fig12_mkdir",
    "fig13_file_access",
    "fig14_15_storage",
    "fig7_move_rename",
    "fig8_rmdir",
    "fig9_list_vs_n",
    "fit_power_law",
    "format_result",
    "format_table",
    "headline_numbers",
    "is_flat",
    "is_linear",
    "markdown_table",
    "measure_op",
    "rtt_impact",
    "run_sweep",
    "scalability",
    "ScalabilityPoint",
    "sweep_points",
    "table1_complexity",
]
