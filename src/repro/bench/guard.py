"""Bench-trajectory regression guard: fail CI on a >20% slowdown.

Compares a freshly generated pair of trajectory artifacts (the
*candidate*) against the committed pair (the *baseline*) and fails
when any guarded metric regresses by more than the tolerance:

* every per-operation ``mean_ms`` in ``BENCH_headline.json``,
* ``sim_makespan_ms`` of both artifacts,
* ``background_ms`` of the maintenance artifact,
* the traffic sections' ``store_gets`` / ``store_puts`` with the
  flags on (the tentpole win must not silently erode),
* the rebalance artifact's steady-state and mid-migration p99
  latencies (a node join must stay cheap for live clients),
* the scale artifact's fleet throughput (guarded as its inverse,
  ms-per-kop), fleet p99 overall and per op class, and the
  worst-tenant p99 from the scenario suite's SLO report cards,
* the partition artifact's per-phase write p99 and unavailable rate
  (1 - ack_rate) -- the hinted-handoff availability win under a live
  cut must not silently erode,
* the hugedir artifact's sharded-side per-op insert bytes and the
  hotspot phase's per-class p99 for both layouts -- the sub-linear
  per-op cost that justifies sharded NameRings must not regress back
  toward O(m).

Both artifacts are deterministic for a given scale (the simulated
clock is the only time source), so any drift is a real behavioural
change, not noise -- the 20% tolerance exists to let intentional
cost-model tweaks land without ceremony while catching order-of-
magnitude mistakes.

    python -m repro.bench guard --baseline-dir . --candidate-dir results/
"""

from __future__ import annotations

import json
from pathlib import Path

ARTIFACTS = (
    "BENCH_headline.json",
    "BENCH_maintenance.json",
    "BENCH_rebalance.json",
    "BENCH_scale.json",
    "BENCH_partition.json",
    "BENCH_hugedir.json",
)

#: a candidate may cost up to this factor of the baseline before failing
TOLERANCE = 1.20


class GuardError(Exception):
    """A guarded artifact is missing or unreadable."""


def _load(directory: str | Path, name: str) -> dict:
    path = Path(directory) / name
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise GuardError(f"missing artifact: {path}") from None
    except json.JSONDecodeError as exc:
        raise GuardError(f"unreadable artifact {path}: {exc}") from None


def _check(label: str, base: float, cand: float) -> str | None:
    """A violation line if ``cand`` regressed past tolerance, else None."""
    if base <= 0 or cand <= base * TOLERANCE:
        return None
    return (
        f"{label}: {cand:.3f} vs baseline {base:.3f} "
        f"(+{(cand / base - 1) * 100:.0f}%, tolerance +{(TOLERANCE - 1) * 100:.0f}%)"
    )


def _guarded_metrics(doc: dict) -> dict[str, float]:
    """The flat (label -> value) map of guarded metrics in one artifact."""
    metrics: dict[str, float] = {"sim_makespan_ms": doc["sim_makespan_ms"]}
    for op, stats in doc.get("ops", {}).items():
        metrics[f"ops.{op}.mean_ms"] = stats["mean_ms"]
    if "background_ms" in doc:
        metrics["background_ms"] = doc["background_ms"]
    optimized = doc.get("traffic", {}).get("optimized", {})
    for key in ("store_gets", "store_puts"):
        if key in optimized:
            metrics[f"traffic.optimized.{key}"] = optimized[key]
    for phase in ("steady", "migration"):
        stats = doc.get(phase, {})
        for key in ("read_p99_ms", "write_p99_ms"):
            if key in stats:
                metrics[f"{phase}.{key}"] = stats[key]
    fleet = doc.get("fleet", {})
    if fleet.get("ops_per_sec"):
        # Throughput is higher-is-better; guard on its inverse so the
        # shared "candidate must not exceed baseline * tolerance" check
        # catches a throughput *drop*.
        metrics["fleet.ms_per_kop"] = 1e6 / fleet["ops_per_sec"]
    if "latency" in fleet:
        metrics["fleet.p99_ms"] = fleet["latency"]["p99_ms"]
    for cls, stats in fleet.get("classes", {}).items():
        metrics[f"fleet.{cls}.p99_ms"] = stats["p99_ms"]
    worst = doc.get("worst_tenant", {})
    if "p99_ms" in worst:
        metrics["worst_tenant.p99_ms"] = worst["p99_ms"]
    for point in doc.get("sweep", []):
        m = point.get("m")
        for side in ("mono", "sharded"):
            costs = point.get(side, {})
            for op in ("insert", "list_page"):
                if op in costs:
                    metrics[f"sweep.m{m}.{side}.{op}.bytes_in"] = costs[op][
                        "bytes_in"
                    ]
                    metrics[f"sweep.m{m}.{side}.{op}.bytes_out"] = costs[op][
                        "bytes_out"
                    ]
    for side in ("mono", "sharded"):
        classes = doc.get("hotspot", {}).get(side, {}).get("classes", {})
        for cls, stats in classes.items():
            metrics[f"hotspot.{side}.{cls}.p99_ms"] = stats["p99_ms"]
    if "hints_on" in doc:
        for phase in ("hints_off", "hints_on"):
            stats = doc.get(phase, {})
            if "write_p99_ms" in stats:
                metrics[f"{phase}.write_p99_ms"] = stats["write_p99_ms"]
            if "ack_rate" in stats:
                # Availability is higher-is-better; guard its complement
                # so a drop in ack rate reads as a cost increase.  A 1.0
                # baseline yields 0 and is skipped by _check, but the
                # hints_off phase always fails some writes, so the pair
                # still pins the comparison.
                metrics[f"{phase}.unavailable_rate"] = round(
                    1.0 - stats["ack_rate"], 4
                )
    return metrics


def compare(baseline_dir: str | Path, candidate_dir: str | Path) -> list[str]:
    """All tolerance violations between the two artifact pairs."""
    violations: list[str] = []
    for name in ARTIFACTS:
        base_doc = _load(baseline_dir, name)
        cand_doc = _load(candidate_dir, name)
        if base_doc.get("scale") != cand_doc.get("scale"):
            violations.append(
                f"{name}: scale mismatch ({base_doc.get('scale')} vs "
                f"{cand_doc.get('scale')}) -- regenerate at the same scale"
            )
            continue
        base_metrics = _guarded_metrics(base_doc)
        cand_metrics = _guarded_metrics(cand_doc)
        for label, base_value in sorted(base_metrics.items()):
            if label not in cand_metrics:
                violations.append(f"{name}: {label} vanished from candidate")
                continue
            line = _check(label, base_value, cand_metrics[label])
            if line:
                violations.append(f"{name}: {line}")
    return violations


def run_guard(baseline_dir: str | Path, candidate_dir: str | Path) -> int:
    """CLI body: print the verdict, return the exit code."""
    try:
        violations = compare(baseline_dir, candidate_dir)
    except GuardError as exc:
        print(f"guard: {exc}")
        return 2
    if violations:
        print(f"guard: {len(violations)} regression(s) past tolerance")
        for line in violations:
            print(f"  {line}")
        return 1
    print("guard: candidate within tolerance of baseline")
    return 0
