"""CLI: regenerate the paper's tables and figures.

    python -m repro.bench                     # everything, quick scale
    python -m repro.bench fig7 fig13          # a subset
    python -m repro.bench --out results/ fig7 # also write CSV + JSON
    REPRO_BENCH_SCALE=full python -m repro.bench fig7   # paper scale
    python -m repro.bench guard --baseline-dir . --candidate-dir results/
"""

from __future__ import annotations

import sys
import time

from .experiments import ALL_EXPERIMENTS
from .harness import bench_scale
from .report import format_result


def _take_flag(argv: list[str], flag: str, default: str) -> tuple[str, list[str]]:
    if flag not in argv:
        return default, argv
    at = argv.index(flag)
    try:
        value = argv[at + 1]
    except IndexError:
        raise SystemExit(f"{flag} needs a directory") from None
    return value, argv[:at] + argv[at + 2 :]


def main(argv: list[str]) -> int:
    # "guard" is not a figure either: it diffs a candidate artifact
    # pair against the committed baseline (the nightly regression gate).
    if argv and argv[0] == "guard":
        from .guard import run_guard

        baseline, rest = _take_flag(argv[1:], "--baseline-dir", ".")
        candidate, rest = _take_flag(rest, "--candidate-dir", "results")
        if rest:
            print(f"guard: unexpected arguments {rest}")
            return 2
        return run_guard(baseline, candidate)
    out_dir = None
    if "--out" in argv:
        flag = argv.index("--out")
        try:
            out_dir = argv[flag + 1]
        except IndexError:
            print("--out needs a directory")
            return 2
        argv = argv[:flag] + argv[flag + 2 :]
    wanted = argv or list(ALL_EXPERIMENTS)
    # "trajectory" is not a figure: it writes machine-readable
    # BENCH_*.json artifacts instead of printing a chart.  "hugedir"
    # regenerates just the giant-directory artifact (the nightly
    # huge-directory job's fast path).
    run_trajectory = "trajectory" in wanted
    run_hugedir = "hugedir" in wanted
    wanted = [name for name in wanted if name not in ("trajectory", "hugedir")]
    unknown = [name for name in wanted if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}")
        print(f"available: {', '.join(ALL_EXPERIMENTS)}, trajectory, hugedir")
        return 2
    if run_trajectory:
        from .trajectory import write_bench_artifacts

        for path in write_bench_artifacts(out_dir or "."):
            print(f"wrote {path}")
        if not wanted and not run_hugedir:
            return 0
    if run_hugedir:
        from .hugedir import write_hugedir_artifact

        print(f"wrote {write_hugedir_artifact(out_dir or '.')}")
        if not wanted:
            return 0
    print(f"# H2Cloud reproduction benchmarks (scale={bench_scale()})\n")
    collected = []
    for name in wanted:
        started = time.time()
        output = ALL_EXPERIMENTS[name]()
        results = output if isinstance(output, tuple) else (output,)
        for result in results:
            print(format_result(result))
            print()
            collected.append(result)
        print(f"[{name} regenerated in {time.time() - started:.1f}s wall]\n")
    if out_dir is not None:
        from .export import export_results

        written = export_results(collected, out_dir)
        print(f"wrote {len(written)} files under {out_dir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
