"""Sparse payloads: size without bytes.

The paper's heavy users store gigabyte videos and database backups; a
simulation that allocated real buffers for them would exhaust memory
long before reaching the evaluation's scales (100 000-file sweeps of
~1 MB objects).  :class:`SparseData` carries a *declared size* and a
deterministic identity tag; the object store treats it like bytes for
every cost computation (transfer time, disk time, capacity, etag)
while storing only the few dozen bytes of the descriptor.

Baselines that slice or hash actual content (Cumulus segments, CAS)
require real bytes; the benchmark harness uses sparse payloads only on
the byte-agnostic systems (H2Cloud, Swift, DP/Dropbox), which are the
three the paper's figures compare.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SparseData:
    """A stand-in for ``bytes`` of length ``size``."""

    size: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("size must be >= 0")

    def __len__(self) -> int:
        return self.size

    def identity(self) -> str:
        """Deterministic content identity (feeds the etag)."""
        return f"sparse:{self.tag}:{self.size}"

    def __repr__(self) -> str:
        return f"SparseData(size={self.size}, tag={self.tag!r})"


def payload_of(size: int, tag: str = "", sparse: bool = True):
    """A payload of ``size`` bytes: sparse by default, real if small."""
    if not sparse:
        # Deterministic compressible-ish filler for real-bytes systems.
        pattern = (tag.encode() or b"x") * (size // max(1, len(tag or "x")) + 1)
        return pattern[:size]
    return SparseData(size=size, tag=tag)
