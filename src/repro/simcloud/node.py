"""A simulated object storage server.

Each :class:`StorageNode` stands in for one of the paper's eight
OpenStack Swift storage servers (HP DL380p, 7x 600 GB SAS).  It keeps
an in-memory shelf of replicated objects and answers the low-level
read/write/delete requests the :class:`~repro.simcloud.object_store.ObjectStore`
routes to it, reporting the disk service time for each so the store
can charge the simulated clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from .clock import Timestamp
from .errors import (
    CapacityError,
    NodeDown,
    ObjectNotFound,
    RequestTimeout,
    TransientIOError,
)
from .integrity import corrupt_record
from .latency import LatencyModel


@dataclass
class ObjectRecord:
    """One replica of one object as stored on a node's disk.

    ``checksum`` is the CRC-32C the client computed at PUT time
    (:mod:`repro.simcloud.integrity`); it rides with the record through
    replication and repair so any layer can re-verify the payload.
    Corruption faults mutate ``data`` *without* touching it -- that gap
    is what the verified read path detects.
    """

    name: str
    data: bytes
    meta: dict[str, str]
    timestamp: Timestamp
    etag: str
    checksum: str = ""

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class NodeStats:
    """Operational counters a real node would export to monitoring."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    corruptions: int = 0  # replicas silently damaged on this node's disk


class StorageNode:
    """One storage server: a keyed shelf of object replicas plus a disk model."""

    def __init__(
        self,
        node_id: int,
        latency: LatencyModel,
        capacity_bytes: int | None = None,
    ):
        self.node_id = node_id
        self._latency = latency
        self._capacity = capacity_bytes
        self._used = 0
        self._objects: dict[str, ObjectRecord] = {}
        self._down = False
        self.stats = NodeStats()
        # Per-request transient faults (see simcloud.failures.FaultPlan);
        # installed cluster-wide via SwiftCluster.install_fault_plan.
        self.fault_plan = None
        # The write that would be "in flight" if power died right now --
        # the victim of a torn-write-on-crash corruption fault.
        self._last_written: str | None = None

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    @property
    def is_down(self) -> bool:
        return self._down

    def crash(self) -> None:
        """Take the node offline; stored replicas survive (disk intact)."""
        self._down = True

    def recover(self) -> None:
        self._down = False

    def wipe(self) -> None:
        """Catastrophic loss: the node comes back empty (disk replaced)."""
        self._objects.clear()
        self._used = 0

    def _check_up(self) -> None:
        if self._down:
            raise NodeDown(self.node_id)

    def _draw_fault(self, op: str) -> int:
        """Consult the fault plan before serving ``op``.

        Returns extra service time (a slow-replica latency spike, 0 when
        healthy) or raises the injected transient error.  Faults fire
        *before* any state change, so a failed request never mutates the
        shelf -- the retry sees the node exactly as it was.
        """
        if self.fault_plan is None:
            return 0
        decision = self.fault_plan.draw(self.node_id, op)
        if decision.kind == "io_error":
            raise TransientIOError(self.node_id, op)
        if decision.kind == "timeout":
            raise RequestTimeout(self.node_id, op, decision.extra_us)
        return decision.extra_us

    # ------------------------------------------------------------------
    # storage primitives; each returns (result, disk_cost_us)
    # ------------------------------------------------------------------
    def write(self, record: ObjectRecord) -> int:
        """Store (or overwrite) a replica; returns the disk service time."""
        self._check_up()
        extra_us = self._draw_fault("write")
        old = self._objects.get(record.name)
        delta = record.size - (old.size if old else 0)
        if self._capacity is not None and self._used + delta > self._capacity:
            raise CapacityError(
                self.node_id, delta, self._capacity - self._used
            )
        self._objects[record.name] = record
        self._used += delta
        self._last_written = record.name
        self.stats.writes += 1
        self.stats.bytes_written += record.size
        return self._latency.disk_write_us(record.size) + extra_us

    def read(self, name: str) -> tuple[ObjectRecord, int]:
        self._check_up()
        extra_us = self._draw_fault("read")
        record = self._objects.get(name)
        if record is None:
            raise ObjectNotFound(name)
        # Bit-rot discovered at read time: the fault plan's seeded
        # corruption stream may silently damage the stored replica just
        # before it is served.  The damage is durable -- later reads see
        # the same rotten bytes until repair or scrub rewrites them.
        if self.fault_plan is not None:
            mode = self.fault_plan.draw_bitrot(self.node_id)
            if mode is not None:
                record = self._replace_record(
                    corrupt_record(
                        record, mode, self.fault_plan.corrupt_rng(self.node_id)
                    )
                )
        self.stats.reads += 1
        self.stats.bytes_read += record.size
        return record, self._latency.disk_read_us(record.size) + extra_us

    def head(self, name: str) -> tuple[ObjectRecord, int]:
        """Metadata-only read: pays the seek but not the transfer."""
        self._check_up()
        extra_us = self._draw_fault("head")
        record = self._objects.get(name)
        if record is None:
            raise ObjectNotFound(name)
        self.stats.reads += 1
        return record, self._latency.disk_read_us(0) + extra_us

    def delete(self, name: str) -> int:
        self._check_up()
        extra_us = self._draw_fault("delete")
        record = self._objects.pop(name, None)
        if record is None:
            raise ObjectNotFound(name)
        self._used -= record.size
        self.stats.deletes += 1
        return self._latency.disk_write_us(0) + extra_us

    def contains(self, name: str) -> bool:
        self._check_up()
        return name in self._objects

    # ------------------------------------------------------------------
    # corruption faults (no failure check: disks rot whether or not the
    # node is serving -- a crashed node can come back with damaged data)
    # ------------------------------------------------------------------
    def _replace_record(self, record: ObjectRecord) -> ObjectRecord:
        """Swap in a damaged copy of one replica, keeping accounting true."""
        old = self._objects[record.name]
        self._used += record.size - old.size
        self._objects[record.name] = record
        self.stats.corruptions += 1
        return record

    def corrupt_object(
        self,
        name: str | None = None,
        mode: str = "bitflip",
        seed: int = 0,
    ) -> str | None:
        """Silently damage one stored replica; returns the victim's name.

        ``name=None`` picks a deterministic victim seeded by ``seed``
        (scheduled ``corrupt`` events use the event's coordinates, so a
        replayed schedule always rots the same object).  Returns None
        when the node stores nothing to damage.
        """
        rng = random.Random(f"corrupt:{seed}:{self.node_id}:{name or ''}")
        if name is None:
            candidates = sorted(self._objects)
            if not candidates:
                return None
            name = rng.choice(candidates)
        record = self._objects.get(name)
        if record is None:
            return None
        self._replace_record(corrupt_record(record, mode, rng))
        return name

    def tear_last_write(self, rng: random.Random) -> str | None:
        """Truncate the most recently written replica (torn write).

        Models power loss mid-write: the write the client believed
        durable on this replica is only partially on disk.  Called by
        the failure schedule when a crash event lands and the fault
        plan's torn-write stream fires.  Returns the torn object's
        name, or None when the node never wrote anything.
        """
        name = self._last_written
        record = self._objects.get(name) if name else None
        if record is None:
            return None
        self._replace_record(corrupt_record(record, "truncate", rng))
        return name

    # ------------------------------------------------------------------
    # introspection (no failure check: used by tests/audits)
    # ------------------------------------------------------------------
    @property
    def object_count(self) -> int:
        return len(self._objects)

    @property
    def used_bytes(self) -> int:
        return self._used

    def object_names(self) -> Iterator[str]:
        return iter(self._objects)

    def peek(self, name: str) -> ObjectRecord | None:
        """Replica inspection without failure semantics or cost."""
        return self._objects.get(name)
