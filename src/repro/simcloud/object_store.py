"""The flat object storage cloud: PUT/GET/DELETE over a replicated ring.

This is the reproduction's stand-in for OpenStack Swift's object tier
(proxy + eight storage nodes, three replicas -- the paper's §5.1
deployment).  It exposes exactly the primitive vocabulary the paper
says object clouds offer -- PUT, GET, DELETE "and other primitives"
(HEAD, server-side COPY) -- and charges the simulated clock what each
primitive would cost on the rack:

    request_overhead + LAN RTT + wire transfer + disk service time

with replica fan-out in parallel (a write costs the *max* of its
replica disk times, not the sum) and quorum semantics on both paths.

It deliberately has **no** directory concept.  The only listing aid is
:meth:`scan`, a full key-space enumeration priced per examined key --
this is what condemns the plain consistent-hash baseline to O(N)
LIST/COPY in Table 1, and what the per-account file-path DB
(:mod:`repro.simcloud.container_db`) and H2's NameRings both exist to
avoid.
"""

from __future__ import annotations

import functools
import hashlib
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from ..obs.trace import NULL_TRACER
from .clock import SimClock, Timestamp, TimestampFactory
from .errors import (
    CircuitOpenError,
    CorruptObjectError,
    LinkDown,
    NodeDown,
    ObjectAlreadyExists,
    ObjectNotFound,
    QuorumError,
    RequestTimeout,
    RingError,
    SimCloudError,
    TransientIOError,
)
from .failures import mw_endpoint, node_endpoint
from .hashring import HashRing
from .integrity import checksum_of, verify_record
from .latency import CostLedger, Jitter, LatencyModel
from .node import ObjectRecord, StorageNode
from .resilience import (
    BreakerConfig,
    CircuitBreaker,
    ResilienceStats,
    RetryPolicy,
)

# Everything that makes one node unusable for one request without
# proving anything about the object itself.  LinkDown is scoped to one
# middleware's view: the node may be perfectly healthy for everyone else.
_UNREACHABLE = (
    NodeDown,
    CircuitOpenError,
    TransientIOError,
    RequestTimeout,
    LinkDown,
)

T = TypeVar("T")


def _store_span(op: str):
    """Wrap a store primitive in a ``store.<op>`` span when tracing.

    The span brackets everything the primitive charges to the clock --
    replica fan-out, retries, backoff waits -- so the critical-path
    analyzer can attribute an operation's time to individual store
    round trips.  With the null tracer the wrapper is one extra call
    frame and a truthiness check.
    """

    def decorate(method):
        @functools.wraps(method)
        def wrapper(self, name, *args, **kwargs):
            tracer = self.tracer
            if tracer.noop:
                return method(self, name, *args, **kwargs)
            with tracer.span(f"store.{op}", tags={"object": name}):
                return method(self, name, *args, **kwargs)

        return wrapper

    return decorate


@dataclass(frozen=True)
class ObjectInfo:
    """What HEAD returns: everything about an object except its bytes."""

    name: str
    size: int
    etag: str
    meta: dict[str, str]
    timestamp: Timestamp


def _etag(data) -> str:
    from .sparse import SparseData

    if isinstance(data, SparseData):
        return hashlib.md5(data.identity().encode()).hexdigest()
    return hashlib.md5(data).hexdigest()


class ObjectStore:
    """Client-facing facade over the ring and the storage nodes."""

    def __init__(
        self,
        ring: HashRing,
        nodes: dict[int, StorageNode],
        latency: LatencyModel,
        clock: SimClock,
        write_quorum: int | None = None,
        read_quorum: int = 1,
        retry_policy: RetryPolicy | None = None,
        breaker_config: BreakerConfig | None = None,
    ):
        missing = ring.node_ids - set(nodes)
        if missing:
            raise RingError(f"ring references unknown nodes: {sorted(missing)}")
        self.ring = ring
        self.nodes = nodes
        self.latency = latency
        self.clock = clock
        # Swift's defaults: write to all, succeed on majority; read one.
        self.write_quorum = write_quorum or (ring.replicas // 2 + 1)
        self.read_quorum = read_quorum
        self.ledger = CostLedger()
        self.jitter = Jitter(latency)
        self.timestamps = TimestampFactory(clock, node_id=0)
        # Fault masking: per-request retry policy, per-node breakers.
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker_config = breaker_config or BreakerConfig()
        self.breakers: dict[int, CircuitBreaker] = {
            nid: CircuitBreaker(nid, self.breaker_config) for nid in nodes
        }
        self.resilience = ResilienceStats()
        self.fault_plan = None  # installed via SwiftCluster.install_fault_plan
        # Elastic membership (set by SwiftCluster): while a migration
        # window is open, reads and writes consult the dual-ownership
        # view (current epoch union the previous epoch's owners).
        self.membership = None
        # Network partitions (set by SwiftCluster): the link-level
        # reachability matrix the request path consults.  ``origin``
        # names the middleware whose request is currently in flight
        # (None = cluster-internal maintenance plane, which repairs
        # over the rack's internal network and ignores the matrix).
        self.partitions = None
        self.origin: int | None = None
        # Hinted handoff (set by SwiftCluster.enable_hinted_handoff):
        # while armed, PUTs facing unreachable owners complete against
        # a sloppy quorum with durable hints on fallback nodes.
        self.hints = None
        # Observability: a deployment with tracing enabled swaps in its
        # shared Tracer so retry/breaker events join the span trees.
        self.tracer = NULL_TRACER
        self._retry_rng = self.retry_policy.rng()
        self._names: set[str] = set()  # authoritative key registry
        # Integrity state (see repro.simcloud.integrity).  verify_reads
        # gates checksum verification on payload-serving reads; the
        # quarantine maps object name -> node ids whose replica failed
        # verification (demoted, pending repair); unrecoverable holds
        # names a scrub found with *no* verified replica anywhere.
        self.verify_reads = True
        self.quarantine: dict[str, set[int]] = {}
        self.unrecoverable: set[str] = set()
        # Accounts hosted on this deployment (filesystem frontends
        # register here so maintenance like GC can scope itself safely).
        self.accounts: set[str] = set()

    # ------------------------------------------------------------------
    # cost plumbing
    # ------------------------------------------------------------------
    def _charge(self, cost_us: int) -> None:
        self.clock.advance(self.jitter.apply(cost_us))

    def _base_cost(self, nbytes: int = 0) -> int:
        return (
            self.latency.request_overhead_us
            + self.latency.lan_rtt_us
            + self.latency.transfer_us(nbytes)
        )

    # ------------------------------------------------------------------
    # fault masking: one node primitive under breaker + retry policy
    # ------------------------------------------------------------------
    def _breaker(self, node_id: int) -> CircuitBreaker:
        breaker = self.breakers.get(node_id)
        if breaker is None:
            breaker = self.breakers[node_id] = CircuitBreaker(
                node_id, self.breaker_config
            )
        return breaker

    def _link_ok(self, node_id: int) -> bool:
        """Can the middleware behind the current request reach ``node_id``?

        Always True on the maintenance plane (``origin`` is None: repair,
        scrub and rebalance traffic rides the rack's internal network)
        and whenever no partition cut is active -- the steady-state cost
        is one attribute check plus one dict lookup.
        """
        if self.origin is None or self.partitions is None:
            return True
        return self.partitions.reachable(
            mw_endpoint(self.origin), node_endpoint(node_id)
        )

    def _attempt(self, node: StorageNode, thunk: Callable[[], T]) -> T:
        """Run one node primitive, masking transient faults.

        A severed middleware->node link fails first with
        :class:`LinkDown` -- before the breaker is consulted and without
        feeding it, because partition-induced unreachability is scoped
        to *this* middleware's link: the node stays eligible (and its
        breaker stays closed) for every other middleware.

        The breaker is consulted next (an open breaker fails fast with
        :class:`CircuitOpenError` at zero latency cost -- that is its
        point).  Retryable faults are retried up to the policy's
        ``max_attempts`` with exponential backoff; every backoff wait
        and every timed-out request's wait is charged to the simulated
        clock so fault-masking's latency price is visible.  Node-level
        outcomes feed the breaker: any failure counts against the
        consecutive-failure threshold, a success resets it.
        """
        if not self._link_ok(node.node_id):
            self.partitions.blocked_requests += 1
            if not self.tracer.noop:
                self.tracer.event(
                    "partition.blocked",
                    tags={"store_node": node.node_id, "origin": self.origin},
                )
            raise LinkDown(mw_endpoint(self.origin), node.node_id)
        breaker = self._breaker(node.node_id)
        policy = self.retry_policy
        if not breaker.allow(self.clock.now_us):
            self.resilience.fast_failures += 1
            self.tracer.event(
                "breaker.fast_fail", tags={"store_node": node.node_id}
            )
            raise CircuitOpenError(node.node_id)
        attempt = 0
        while True:
            attempt += 1
            try:
                result = thunk()
            except policy.retryable as exc:
                if isinstance(exc, RequestTimeout):
                    # The client waited the timeout out before failing.
                    self.clock.advance(exc.waited_us)
                    self.resilience.timeouts += 1
                    self.tracer.event(
                        "store.timeout",
                        tags={
                            "store_node": node.node_id,
                            "waited_us": exc.waited_us,
                        },
                    )
                if isinstance(exc, TransientIOError):
                    self.resilience.io_errors += 1
                trips_before = breaker.trips
                breaker.record_failure(self.clock.now_us)
                if breaker.trips > trips_before:
                    self.tracer.event(
                        "breaker.trip", tags={"store_node": node.node_id}
                    )
                if attempt >= policy.max_attempts or not breaker.allow(
                    self.clock.now_us
                ):
                    raise
                wait_us = policy.backoff_us(attempt, self._retry_rng)
                self.resilience.retries += 1
                self.resilience.backoff_us += wait_us
                self.clock.advance(wait_us)
                self.tracer.event(
                    "store.retry",
                    tags={
                        "store_node": node.node_id,
                        "attempt": attempt,
                        "error": type(exc).__name__,
                        "wait_us": wait_us,
                    },
                )
                continue
            except NodeDown:
                # Binary death is not transient: don't burn retries, but
                # let the breaker learn so later requests fail fast.
                breaker.record_failure(self.clock.now_us)
                raise
            breaker.record_success(self.clock.now_us)
            return result

    def _suspended_faults(self):
        """Context manager suppressing fault injection (cleanup paths)."""
        if self.fault_plan is None:
            return nullcontext()
        return self.fault_plan.suspended()

    # ------------------------------------------------------------------
    # dual-ownership placement (open migration windows only)
    # ------------------------------------------------------------------
    def _migration_extras(self, name: str, owners: Sequence[int]) -> tuple[int, ...]:
        """Old-epoch owners of ``name`` not in the current replica set.

        Empty in steady state (no membership controller, or no open
        window), so every placement-sensitive path below degenerates to
        the classic single-ring behaviour at zero cost.
        """
        m = self.membership
        if m is None or m.plan is None:
            return ()
        return tuple(
            nid for nid in m.old_owners_for(name) if nid not in owners
        )

    def maintenance_nodes_for(self, name: str) -> list[int]:
        """Replica set for maintenance sweeps: both epochs during a window.

        Repair and scrub walk this union so that mid-rebalance healing
        reaches the old owners still serving dual reads; the stray
        copies it writes there are dropped at handoff finalize.  Nodes
        holding hinted copies are included too, so sweeps see (and can
        heal from) payloads parked by sloppy-quorum writes.
        """
        owners = list(self.ring.nodes_for(name))
        owners.extend(self._migration_extras(name, owners))
        if self.hints is not None:
            # A holder that has since departed the cluster is skipped:
            # its hint is dropped at the next drain, and sweeps must
            # only ever index live nodes.
            owners.extend(
                nid
                for nid in self.hints.holders_for(name)
                if nid not in owners and nid in self.nodes
            )
        return owners

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    @_store_span("put")
    def put(
        self,
        name: str,
        data: bytes,
        meta: dict[str, str] | None = None,
        overwrite: bool = True,
    ) -> ObjectInfo:
        """Store an object on its replica set (parallel fan-out, quorum)."""
        if not overwrite and name in self._names:
            raise ObjectAlreadyExists(name)
        record = ObjectRecord(
            name=name,
            data=data,
            meta=dict(meta or {}),
            timestamp=self.timestamps.next(),
            etag=_etag(data),
            checksum=checksum_of(data),
        )
        previous: dict[int, ObjectRecord | None] = {}
        disk_costs: list[int] = []
        written = 0
        touched: set[int] = set()  # nodes this PUT already wrote once
        failed_owners: list[int] = []
        owners = self.ring.nodes_for(name)
        for node_id in owners:
            node = self.nodes[node_id]
            if node.is_down:
                failed_owners.append(node_id)
                continue
            old = node.peek(name)
            try:
                cost = self._attempt(node, lambda node=node: node.write(record))
            except _UNREACHABLE:
                # Replica skipped: retries exhausted, node died mid-PUT,
                # its breaker is open, or the link to it is partitioned.
                # The quorum decides below; a later repair sweep (or a
                # hint drain) restores full replication.
                failed_owners.append(node_id)
                continue
            previous[node_id] = old
            disk_costs.append(cost)
            written += 1
            touched.add(node_id)
        # Migration window: write through to the old epoch's owners so
        # a dual read served by either epoch observes this write.
        # Best-effort -- the quorum is judged against the new owners
        # only -- but an undone quorum failure rolls these back too.
        for node_id in self._migration_extras(name, owners):
            if node_id in touched:
                # Already written by this PUT (an overlapping placement
                # must not write twice nor double-count the traffic).
                continue
            node = self.nodes[node_id]
            if node.is_down:
                continue
            old = node.peek(name)
            try:
                cost = self._attempt(node, lambda node=node: node.write(record))
            except _UNREACHABLE:
                continue
            previous[node_id] = old
            disk_costs.append(cost)
            touched.add(node_id)
            self.membership.write_throughs += 1
            if not self.tracer.noop:
                self.tracer.event(
                    "membership.write_through",
                    tags={"object": name, "store_node": node_id},
                )
        # Sloppy quorum: with hinted handoff armed, each missed owner's
        # payload is parked on a reachable fallback node (the next
        # distinct nodes clockwise past the owner set) and the fallback
        # write counts toward the quorum.  Hints are only registered
        # after the quorum verdict -- an undone PUT parks nothing.
        pending_hints: list[tuple[int, int]] = []  # (home, fallback)
        if self.hints is not None and failed_owners:
            exclude = set(owners) | touched | set(previous)
            candidates = self.ring.fallbacks_for(name, exclude)
            idx = 0
            for home in failed_owners:
                while idx < len(candidates):
                    fb_id = candidates[idx]
                    idx += 1
                    node = self.nodes[fb_id]
                    if node.is_down or not self._link_ok(fb_id):
                        continue
                    old = node.peek(name)
                    try:
                        cost = self._attempt(
                            node, lambda node=node: node.write(record)
                        )
                    except _UNREACHABLE:
                        continue
                    previous[fb_id] = old
                    disk_costs.append(cost)
                    written += 1
                    touched.add(fb_id)
                    pending_hints.append((home, fb_id))
                    break
        if written < min(self.write_quorum, len(self.ring.node_ids)):
            # Failed write: undo the partial replicas so a quorum
            # failure is atomic from the client's point of view
            # (readers must never observe an unacknowledged object).
            # Best-effort and fault-free: the undo must not itself be
            # starved by injected faults.
            with self._suspended_faults():
                for node_id, old in previous.items():
                    node = self.nodes[node_id]
                    try:
                        if old is None:
                            node.delete(name)
                        else:
                            node.write(old)
                    except (NodeDown, ObjectNotFound):
                        pass
            raise QuorumError(name, self.write_quorum, written)
        self._names.add(name)
        if self.hints is not None:
            if pending_hints:
                epoch = self.membership.epoch if self.membership else 0
                self.hints.sloppy_writes += 1
                for home, fb_id in pending_hints:
                    self.hints.add(
                        name,
                        home,
                        fb_id,
                        record.timestamp,
                        epoch,
                        origin=self.origin,
                    )
                    if not self.tracer.noop:
                        self.tracer.event(
                            "hints.parked",
                            tags={
                                "object": name,
                                "home": home,
                                "store_node": fb_id,
                            },
                        )
            # Every acknowledgement joins the V8 audit log: after heal
            # + quiesce some owner must hold this write (or newer).
            self.hints.record_ack(name, record.timestamp)
        # The acknowledged write put verified bytes on every replica it
        # reached; old integrity verdicts about this name are void.
        self.quarantine.pop(name, None)
        self.unrecoverable.discard(name)
        self.ledger.puts += 1
        self.ledger.bytes_in += len(data)
        self._charge(self._base_cost(len(data)) + max(disk_costs))
        return ObjectInfo(
            name=name,
            size=record.size,
            etag=record.etag,
            meta=dict(record.meta),
            timestamp=record.timestamp,
        )

    @_store_span("get")
    def get(self, name: str) -> ObjectRecord:
        """Fetch an object from the first healthy *verified* replica."""
        record, disk_cost, retries = self._read_replica(
            name, want_data=True, verify=True
        )
        self.ledger.gets += 1
        self.ledger.bytes_out += record.size
        self._charge(
            self._base_cost(record.size) + disk_cost
            + retries * self.latency.lan_rtt_us
        )
        return record

    @_store_span("get_range")
    def get_range(self, name: str, offset: int, length: int):
        """Ranged GET: fetch ``length`` bytes starting at ``offset``.

        Pays the seek and request overhead of a full GET but only the
        wire/disk transfer of the requested window -- how real object
        stores serve video seeks and Cumulus-style segment slicing.
        Returns bytes (or a SparseData window for sparse payloads).
        """
        if offset < 0 or length < 0:
            raise ValueError("offset/length must be >= 0")
        # want_data=False prices the seek, but the whole record is
        # verified before any window of it is served.
        record, _seek_cost, retries = self._read_replica(
            name, want_data=False, verify=True
        )
        window = max(0, min(length, record.size - offset))
        from .sparse import SparseData

        if isinstance(record.data, SparseData):
            payload = SparseData(size=window, tag=f"{record.data.tag}@{offset}")
        else:
            payload = record.data[offset : offset + window]
        self.ledger.gets += 1
        self.ledger.bytes_out += window
        self._charge(
            self._base_cost(window)
            + self.latency.disk_read_us(window)
            + retries * self.latency.lan_rtt_us
        )
        return payload

    @_store_span("head")
    def head(self, name: str) -> ObjectInfo:
        """Metadata-only fetch (no payload transfer)."""
        record, disk_cost, retries = self._read_replica(name, want_data=False)
        self.ledger.heads += 1
        self._charge(
            self._base_cost(0) + disk_cost + retries * self.latency.lan_rtt_us
        )
        return ObjectInfo(
            name=record.name,
            size=record.size,
            etag=record.etag,
            meta=dict(record.meta),
            timestamp=record.timestamp,
        )

    @_store_span("delete")
    def delete(self, name: str, missing_ok: bool = False) -> None:
        """Remove an object from every healthy replica."""
        if name not in self._names:
            if missing_ok:
                return
            raise ObjectNotFound(name)
        disk_costs = [0]
        # During a migration window the tombstone must reach both
        # epochs' owners, or a dual read could resurrect the object.
        for node_id in self.maintenance_nodes_for(name):
            node = self.nodes[node_id]
            if node.is_down or not node.peek(name):
                continue
            try:
                disk_costs.append(
                    self._attempt(node, lambda node=node: node.delete(name))
                )
            except (*_UNREACHABLE, ObjectNotFound):
                # Replica left behind; it is unregistered garbage now
                # (never resurrected: repair walks the key registry).
                continue
        self._names.discard(name)
        if self.hints is not None:
            # The walk above already covered hint holders (they are in
            # the maintenance set); whatever it could not reach is
            # unregistered garbage, not a deliverable hint.
            self.hints.drop_name(name)
        self.quarantine.pop(name, None)
        self.unrecoverable.discard(name)
        self.ledger.deletes += 1
        self._charge(self._base_cost(0) + max(disk_costs))

    def copy(
        self, src: str, dst: str, meta: dict[str, str] | None = None
    ) -> ObjectInfo:
        """Server-side copy: one GET plus one replicated PUT inside the rack."""
        record = self.get(src)
        new_meta = dict(record.meta)
        if meta:
            new_meta.update(meta)
        info = self.put(dst, record.data, meta=new_meta)
        self.ledger.copies += 1
        # get()+put() above already charged the data path; copy adds no RTT
        # beyond those because the proxy pipelines the two transfers.
        return info

    def exists(self, name: str) -> bool:
        """HEAD-priced existence check."""
        try:
            self.head(name)
            return True
        except ObjectNotFound:
            return False

    def _read_replica(
        self, name: str, want_data: bool, verify: bool = False
    ) -> tuple[ObjectRecord, int, int]:
        """Try replicas healthiest-first; return (record, disk_us, failovers).

        Placement order is the baseline, but replicas demoted to last
        resort come after: nodes whose circuit breaker is in quarantine,
        and replicas of *this object* quarantined for failing checksum
        verification.  Each per-node attempt runs under the retry
        policy, so transient faults are masked before a failover to the
        next replica happens at all.

        With ``verify`` (payload-serving reads), every returned record
        is checked against its write-time checksum: a mismatch
        quarantines that replica, feeds the node's breaker, and fails
        over -- corrupt bytes are never returned.  A verified read that
        follows corruption finishes with an inline read-repair rewriting
        the bad copies; if *no* located replica verifies, the caller
        gets :class:`CorruptObjectError` rather than garbage.
        """
        now_us = self.clock.now_us
        placement = list(self.ring.nodes_for(name))
        extras = self._migration_extras(name, placement)
        if extras:
            # Dual-ownership read: the new owners may not hold the
            # object yet, so the old epoch's owners back them up until
            # the partition's handoff completes.
            placement.extend(nid for nid in extras if nid not in placement)
            self.membership.dual_reads += 1
            if not self.tracer.noop:
                self.tracer.event(
                    "membership.dual_read", tags={"object": name}
                )
        if self.hints is not None:
            # Hinted copies are real, verified replicas under the real
            # name: mid-partition reads can be served from them.  The
            # dedup matters when a hint holder is also a dual-ownership
            # extra -- one node must not be attempted (or counted) twice.
            placement.extend(
                nid
                for nid in self.hints.holders_for(name)
                if nid in self.nodes and nid not in placement
            )
        bad = self.quarantine.get(name, set())
        preferred = [
            nid
            for nid in placement
            if not self._breaker(nid).is_quarantined(now_us)
            and nid not in bad
            and self._link_ok(nid)
        ]
        demoted = [nid for nid in placement if nid not in preferred]
        failovers = 0
        corrupt_nodes: list[int] = []
        last_error: Exception = ObjectNotFound(name)
        for node_id in preferred + demoted:
            node = self.nodes[node_id]
            try:
                if want_data:
                    result = self._attempt(node, lambda node=node: node.read(name))
                else:
                    result = self._attempt(node, lambda node=node: node.head(name))
            except (*_UNREACHABLE, ObjectNotFound) as exc:
                last_error = exc
                failovers += 1
                continue
            record, disk_cost = result
            if verify and self.verify_reads and not verify_record(record):
                corrupt_nodes.append(node_id)
                self.quarantine.setdefault(name, set()).add(node_id)
                self.resilience.corrupt_replicas += 1
                self._breaker(node_id).record_failure(self.clock.now_us)
                self.tracer.event(
                    "store.corrupt_replica",
                    tags={"store_node": node_id, "object": name},
                )
                failovers += 1
                continue
            if corrupt_nodes:
                self._read_repair(name, record, corrupt_nodes)
            elif verify and node_id in bad:
                # A formerly quarantined replica verified clean again
                # (healed by repair/scrub/overwrite behind our back).
                self._unquarantine(name, node_id)
            return record, disk_cost, failovers
        if corrupt_nodes:
            raise CorruptObjectError(name, tuple(corrupt_nodes))
        if isinstance(last_error, ObjectNotFound):
            raise ObjectNotFound(name)
        raise QuorumError(name, self.read_quorum, 0)

    def _unquarantine(self, name: str, node_id: int) -> None:
        nodes = self.quarantine.get(name)
        if nodes is not None:
            nodes.discard(node_id)
            if not nodes:
                del self.quarantine[name]

    def _read_repair(
        self, name: str, source: ObjectRecord, bad_nodes: list[int]
    ) -> int:
        """Rewrite corrupt replicas from a verified copy.

        Runs off the client's critical path (background-accounted, fault
        injection suspended): the read that detected the rot already
        paid its failovers; healing is the replicator's time.  Returns
        how many replicas were rewritten.
        """
        healed = 0
        with self._suspended_faults():
            for node_id in bad_nodes:
                node = self.nodes[node_id]
                if node.is_down:
                    continue
                try:
                    self.ledger.background_us += node.write(source)
                except SimCloudError:
                    continue
                healed += 1
                self.resilience.read_repairs += 1
                self._unquarantine(name, node_id)
        if healed:
            self.unrecoverable.discard(name)
            self.tracer.event(
                "store.read_repair", tags={"object": name, "healed": healed}
            )
        return healed

    @property
    def quarantined_replica_count(self) -> int:
        """Replicas currently quarantined for checksum failure."""
        return sum(len(nodes) for nodes in self.quarantine.values())

    # ------------------------------------------------------------------
    # enumeration (the expensive path flat stores are stuck with)
    # ------------------------------------------------------------------
    def scan(self, prefix: str = "") -> list[str]:
        """Enumerate every object name, keep those matching ``prefix``.

        Costs one row-examination per object *in the whole store* --
        the O(N) tax that Table 1 assigns to directory traversal on a
        plain consistent-hash layout.
        """
        names = sorted(self._names)
        matched = [n for n in names if n.startswith(prefix)]
        self.ledger.scans += 1
        self._charge(
            self._base_cost(0) + len(names) * self.latency.db_row_us
        )
        return matched

    # ------------------------------------------------------------------
    # client-side parallelism
    # ------------------------------------------------------------------
    def parallel(
        self, thunks: Iterable[Callable[[], T]], lanes: int | None = None
    ) -> list[T]:
        """Issue a batch of requests over a connection pool of ``lanes``."""
        return self.clock.parallel(thunks, lanes or self.latency.meta_concurrency)

    # ------------------------------------------------------------------
    # maintenance & introspection (cost-free: operator tooling)
    # ------------------------------------------------------------------
    def repair(self) -> int:
        """Reconcile replica sets: fill holes, refresh stale copies.

        Models Swift's background replicator: for every object the
        newest reachable replica is pushed to peers that miss it *or*
        hold an older timestamp (a node that crashed across an
        overwrite comes back with yesterday's bytes -- without the
        staleness pass a read hitting it first would travel back in
        time).  Returns the number of replicas written.  Free of
        foreground cost; background time lands in
        ``ledger.background_us``.

        Thin wrapper over :class:`~repro.simcloud.repair.RepairSweeper`,
        which additionally reports what it found and fixed.
        """
        from .repair import RepairSweeper

        return RepairSweeper(self).sweep().replicas_written

    def scrub(self):
        """Verify every replica's checksum; heal from verified copies.

        Models Swift's background object auditor / ZFS scrub: corrupt
        replicas are rewritten from the newest verified copy, objects
        with no verified reachable copy are recorded in
        :attr:`unrecoverable`.  Background-accounted.  Returns the
        :class:`~repro.simcloud.scrub.ScrubReport`.
        """
        from .scrub import Scrubber

        return Scrubber(self).scrub()

    def rebalance(self) -> tuple[int, int]:
        """Migrate replicas to match the current ring (after node churn).

        Two passes, both off the client path (background-accounted):
        :meth:`repair` writes replicas that the new placement expects
        but the nodes lack, then stale replicas on nodes that are no
        longer responsible are dropped.  Returns (written, dropped).
        Models Swift's replicator converging after a ring change.
        """
        written = self.repair()
        dropped = 0
        with self._suspended_faults():
            for name in sorted(self._names):
                responsible = set(self.ring.nodes_for(name))
                if self.hints is not None:
                    # A hinted copy parked on a non-owner is not a stray:
                    # it may be the only replica holding an acked write
                    # until the hint drains home.
                    responsible.update(self.hints.holders_for(name))
                for node_id, node in self.nodes.items():
                    if node_id in responsible or node.is_down:
                        continue
                    if node.peek(name) is not None:
                        cost = node.delete(name)
                        self.ledger.background_us += cost
                        dropped += 1
        return written, dropped

    def replica_health(self, name: str) -> tuple[int, int]:
        """(healthy replicas present, expected replicas) for an object."""
        expected = self.ring.nodes_for(name)
        present = sum(
            1
            for node_id in expected
            if not self.nodes[node_id].is_down
            and self.nodes[node_id].peek(name) is not None
        )
        return present, len(expected)

    def census(self, prefix: str = "") -> tuple[int, int]:
        """(object count, logical bytes) under ``prefix`` -- Fig 14/15 data."""
        count = 0
        nbytes = 0
        for name in self._names:
            if not name.startswith(prefix):
                continue
            count += 1
            for node_id in self.ring.nodes_for(name):
                record = self.nodes[node_id].peek(name)
                if record is not None:
                    nbytes += record.size
                    break
        return count, nbytes

    @property
    def object_count(self) -> int:
        return len(self._names)

    def names(self) -> frozenset[str]:
        """Cost-free view of the key registry (tests and audits only)."""
        return frozenset(self._names)
