"""Fault-masking machinery: retry policies and per-node circuit breakers.

Production object clouds live in a world of transient faults -- blips
the client library is expected to absorb with retries, and repeat
offenders it is expected to route around.  This module supplies the two
client-side halves of that contract for the simulated rack:

* :class:`RetryPolicy` -- exponential backoff with deterministic
  jitter; every retry's wait is charged to the simulated clock by the
  caller so fault-masking shows up in benchmark latency, not just in
  counters;
* :class:`CircuitBreaker` -- the classic closed -> open -> half-open
  state machine, one per storage node.  After ``failure_threshold``
  consecutive failures the node is quarantined for ``cooldown_us`` of
  simulated time; the first request after the cooldown is a probe that
  either closes the breaker or re-opens it.

:class:`ResilienceStats` aggregates what the masking cost, for
monitoring (`core/monitoring.py`) and the deployment report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .errors import RequestTimeout, TransientIOError

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """How a client masks transient per-request faults.

    ``backoff_us(attempt, rng)`` yields the wait before retry number
    ``attempt`` (1-based): exponential growth from ``base_backoff_us``
    capped at ``backoff_cap_us``, with multiplicative jitter drawn from
    a seeded stream so runs stay bit-reproducible.
    """

    max_attempts: int = 4
    base_backoff_us: int = 2_000
    backoff_cap_us: int = 500_000
    multiplier: float = 2.0
    jitter_frac: float = 0.5  # wait drawn from [raw*(1-frac), raw]
    seed: int = 0xB0FF
    retryable: tuple[type[BaseException], ...] = (
        TransientIOError,
        RequestTimeout,
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_us < 0 or self.backoff_cap_us < 0:
            raise ValueError("backoff durations must be >= 0")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be within [0, 1]")

    def rng(self) -> random.Random:
        """A fresh deterministic jitter stream for one store instance."""
        return random.Random(self.seed)

    def backoff_us(self, attempt: int, rng: random.Random) -> int:
        """Wait before retrying after failed attempt number ``attempt``."""
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        raw = min(
            self.backoff_cap_us,
            int(self.base_backoff_us * self.multiplier ** (attempt - 1)),
        )
        if self.jitter_frac <= 0.0 or raw == 0:
            return raw
        return int(rng.uniform(raw * (1.0 - self.jitter_frac), raw))

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retryable)

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Fail on the first error -- the seed repo's original behaviour."""
        return cls(max_attempts=1)


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs for every per-node circuit breaker of one deployment."""

    failure_threshold: int = 5  # consecutive failures before tripping
    cooldown_us: int = 2_000_000  # quarantine length (simulated time)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_us < 0:
            raise ValueError("cooldown_us must be >= 0")


class CircuitBreaker:
    """Quarantine state for one storage node, driven by simulated time.

    Transitions (all recorded in :attr:`transitions` for observability)::

        closed --K consecutive failures--> open
        open   --cooldown elapsed, next allow()--> half-open
        half-open --probe success--> closed
        half-open --probe failure--> open (fresh cooldown)
    """

    def __init__(self, node_id: int, config: BreakerConfig | None = None):
        self.node_id = node_id
        self.config = config or BreakerConfig()
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at_us = 0
        self.trips = 0  # closed/half-open -> open transitions
        self.transitions: list[tuple[int, str, str]] = []  # (at_us, from, to)

    def _transition(self, now_us: int, new_state: str) -> None:
        self.transitions.append((now_us, self.state, new_state))
        self.state = new_state

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    def allow(self, now_us: int) -> bool:
        """May a request be sent to this node right now?

        Mutating: an open breaker whose cooldown has elapsed moves to
        half-open and admits the caller as the probe request.
        """
        if self.state == BREAKER_OPEN:
            if now_us - self.opened_at_us < self.config.cooldown_us:
                return False
            self._transition(now_us, BREAKER_HALF_OPEN)
        return True

    def is_quarantined(self, now_us: int) -> bool:
        """Non-mutating peek: still inside the open-state cooldown?"""
        return (
            self.state == BREAKER_OPEN
            and now_us - self.opened_at_us < self.config.cooldown_us
        )

    def record_success(self, now_us: int) -> None:
        self.consecutive_failures = 0
        if self.state != BREAKER_CLOSED:
            self._transition(now_us, BREAKER_CLOSED)

    def record_failure(self, now_us: int) -> None:
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN:
            self._trip(now_us)
        elif (
            self.state == BREAKER_CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self._trip(now_us)

    def _trip(self, now_us: int) -> None:
        self._transition(now_us, BREAKER_OPEN)
        self.opened_at_us = now_us
        self.trips += 1


@dataclass
class ResilienceStats:
    """What fault-masking cost one :class:`ObjectStore`, in aggregate."""

    retries: int = 0  # per-node attempts repeated after a fault
    backoff_us: int = 0  # simulated time spent waiting between attempts
    timeouts: int = 0  # RequestTimeout faults observed
    io_errors: int = 0  # TransientIOError faults observed
    fast_failures: int = 0  # requests refused by an open breaker
    repaired_replicas: int = 0  # replicas rewritten by repair sweeps
    corrupt_replicas: int = 0  # checksum mismatches caught before serving
    read_repairs: int = 0  # bad replicas rewritten inline by verified reads
    scrub_repairs: int = 0  # bad replicas rewritten by the scrubber

    def snapshot(self) -> dict[str, int]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}

    def reset(self) -> None:
        for k in self.__dataclass_fields__:
            setattr(self, k, 0)
