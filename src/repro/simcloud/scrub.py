"""The background scrubber: find silent corruption before clients do.

Verified reads (:meth:`~repro.simcloud.object_store.ObjectStore.get`)
only catch rot on objects somebody asks for; a replica of a cold object
can sit rotten for months and be the *source* the next repair copies
from.  Every serious storage system therefore walks its disks in the
background re-verifying checksums -- Swift's object auditor, ZFS
``scrub``, HDFS's block scanner.  :class:`Scrubber` is that walk for
the simulated rack:

* every present replica of every registered object is re-read and
  verified against its write-time checksum
  (:mod:`repro.simcloud.integrity`);
* replicas that fail are rewritten from the newest replica that *does*
  verify, and their quarantine entries are cleared;
* objects with **no** verified reachable replica are reported (and
  recorded in ``store.unrecoverable``) distinctly from repairable ones:
  the data may still exist on a crashed node, so a later scrub can
  rescue it, but right now every copy the cluster can read is garbage
  and serving the object would mean serving garbage.

The scrub is maintenance: it runs with fault injection suspended, and
its disk time lands in ``ledger.background_us`` on the simulated clock
rather than stalling any client.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from .integrity import verify_record


@dataclass
class ScrubReport:
    """What one scrub pass found and healed."""

    objects_scanned: int = 0
    replicas_checked: int = 0
    corrupt_replicas: int = 0  # replicas failing checksum verification
    repaired_replicas: int = 0  # bad copies rewritten from a verified one
    unrecoverable: list[str] = field(default_factory=list)  # no verified copy

    @property
    def clean(self) -> bool:
        return self.corrupt_replicas == 0 and not self.unrecoverable

    def summary(self) -> str:
        if self.clean:
            status = "CLEAN"
        else:
            status = (
                f"{self.repaired_replicas} REPAIRED, "
                f"{len(self.unrecoverable)} UNRECOVERABLE"
            )
        return (
            f"scrub: {status} -- {self.objects_scanned} objects, "
            f"{self.replicas_checked} replicas checked, "
            f"{self.corrupt_replicas} corrupt"
        )


class Scrubber:
    """Walks every replica of every object, verifying and healing."""

    def __init__(self, store):
        self._store = store

    def scrub(self, prefix: str = "") -> ScrubReport:
        """One full pass; returns the :class:`ScrubReport`.

        For each object every reachable replica is verified; corrupt
        copies are rewritten from the newest verified replica.  When no
        reachable replica verifies, the object is reported unrecoverable
        and all its bad copies are quarantined so the read path won't
        prefer them -- nothing is rewritten (there is no trustworthy
        source), and the verdict is revisited on every later scrub.
        """
        store = self._store
        report = ScrubReport()
        plan = getattr(store, "fault_plan", None)
        guard = plan.suspended() if plan is not None else nullcontext()
        with store.tracer.span("scrub") as span, guard:
            for name in sorted(store.names()):
                if prefix and not name.startswith(prefix):
                    continue
                report.objects_scanned += 1
                self._scrub_object(name, report)
            span.tag("objects", report.objects_scanned)
            span.tag("corrupt", report.corrupt_replicas)
            span.tag("repaired", report.repaired_replicas)
            span.tag("unrecoverable", len(report.unrecoverable))
        return report

    def _scrub_object(self, name: str, report: ScrubReport) -> None:
        store = self._store
        source = None
        corrupt: list[tuple[int, object]] = []
        # Union of both epochs' owners while a migration window is open.
        for node_id in store.maintenance_nodes_for(name):
            node = store.nodes[node_id]
            if node.is_down:
                continue
            record = node.peek(name)
            if record is None:
                continue
            report.replicas_checked += 1
            # The auditor pays to read every replica it verifies.
            store.ledger.background_us += store.latency.disk_read_us(
                record.size
            )
            if verify_record(record):
                if source is None or record.timestamp > source.timestamp:
                    source = record
            else:
                corrupt.append((node_id, node))
                report.corrupt_replicas += 1
                store.tracer.event(
                    "scrub.corrupt_replica",
                    tags={"store_node": node_id, "object": name},
                )
        if not corrupt:
            # Nothing rotten among the reachable copies; a previous
            # unrecoverable verdict stands only while a bad copy exists.
            if source is not None:
                store.unrecoverable.discard(name)
            return
        if source is None:
            report.unrecoverable.append(name)
            store.unrecoverable.add(name)
            for node_id, _ in corrupt:
                store.quarantine.setdefault(name, set()).add(node_id)
            store.tracer.event("scrub.unrecoverable", tags={"object": name})
            return
        for node_id, node in corrupt:
            store.ledger.background_us += node.write(source)
            report.repaired_replicas += 1
            store.resilience.scrub_repairs += 1
            store._unquarantine(name, node_id)
            store.tracer.event(
                "scrub.repair", tags={"store_node": node_id, "object": name}
            )
        store.unrecoverable.discard(name)
