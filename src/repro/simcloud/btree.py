"""A from-scratch disk-shaped B-tree.

OpenStack Swift accelerates LIST and COPY with a per-account SQLite
"file-path DB" that is binary-searched per lookup (paper §2, Figure 3).
SQLite's table is itself a B-tree, so the faithful substrate is a real
B-tree, not a Python dict: the costing of the Swift baseline hinges on
each point operation visiting O(log N) *pages*, and delimiter-style
directory listings issuing one descent per returned child (which is
exactly where the paper's O(m · log N) LIST bound comes from).

The tree counts node visits so the wrapping
:class:`~repro.simcloud.container_db.ContainerDB` can convert structure
walks into simulated microseconds.
"""

from __future__ import annotations

from typing import Any, Iterator


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: list[str] = []
        self.values: list[Any] = []
        self.children: list[_Node] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree:
    """String-keyed B-tree with range scans and visit accounting.

    ``min_degree`` is CLRS's *t*: every node except the root holds
    between t-1 and 2t-1 keys.  The default models a few hundred rows
    per 4 KB page, like SQLite.
    """

    def __init__(self, min_degree: int = 64):
        if min_degree < 2:
            raise ValueError("min_degree must be >= 2")
        self._t = min_degree
        self._root = _Node()
        self._size = 0
        self.visits = 0  # node touches since construction (cost hook)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: str) -> bool:
        return self.get(key, default=None) is not None or self._has(key)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _has(self, key: str) -> bool:
        node = self._root
        while True:
            self.visits += 1
            i = self._lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return True
            if node.is_leaf:
                return False
            node = node.children[i]

    def get(self, key: str, default: Any = None) -> Any:
        node = self._root
        while True:
            self.visits += 1
            i = self._lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return node.values[i]
            if node.is_leaf:
                return default
            node = node.children[i]

    @staticmethod
    def _lower_bound(keys: list[str], key: str) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def insert(self, key: str, value: Any) -> bool:
        """Insert or overwrite; returns True if the key is new."""
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        inserted = self._insert_nonfull(root, key, value)
        if inserted:
            self._size += 1
        return inserted

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _Node()
        self.visits += 3  # parent, child, sibling pages all dirtied
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        if not child.is_leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(index, child.keys[t - 1])
        parent.values.insert(index, child.values[t - 1])
        parent.children.insert(index + 1, sibling)
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]

    def _insert_nonfull(self, node: _Node, key: str, value: Any) -> bool:
        while True:
            self.visits += 1
            i = self._lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value
                return False
            if node.is_leaf:
                node.keys.insert(i, key)
                node.values.insert(i, value)
                return True
            if len(node.children[i].keys) == 2 * self._t - 1:
                self._split_child(node, i)
                if key == node.keys[i]:
                    node.values[i] = value
                    return False
                if key > node.keys[i]:
                    i += 1
            node = node.children[i]

    # ------------------------------------------------------------------
    # delete (CLRS full algorithm)
    # ------------------------------------------------------------------
    def delete(self, key: str) -> bool:
        """Remove ``key``; returns True if it was present."""
        removed = self._delete(self._root, key)
        if not self._root.keys and self._root.children:
            self._root = self._root.children[0]
        if removed:
            self._size -= 1
        return removed

    def _delete(self, node: _Node, key: str) -> bool:
        t = self._t
        self.visits += 1
        i = self._lower_bound(node.keys, key)
        if i < len(node.keys) and node.keys[i] == key:
            if node.is_leaf:
                node.keys.pop(i)
                node.values.pop(i)
                return True
            left, right = node.children[i], node.children[i + 1]
            if len(left.keys) >= t:
                pk, pv = self._pop_max(left)
                node.keys[i], node.values[i] = pk, pv
                return True
            if len(right.keys) >= t:
                pk, pv = self._pop_min(right)
                node.keys[i], node.values[i] = pk, pv
                return True
            self._merge_children(node, i)
            return self._delete(left, key)
        if node.is_leaf:
            return False
        child = node.children[i]
        if len(child.keys) < t:
            i = self._refill(node, i)
            child = node.children[i] if i < len(node.children) else node.children[-1]
        return self._delete(child, key)

    def _pop_max(self, node: _Node) -> tuple[str, Any]:
        while not node.is_leaf:
            self.visits += 1
            if len(node.children[-1].keys) < self._t:
                self._refill(node, len(node.children) - 1)
                if node.is_leaf:  # refill may have merged into node
                    break
            node = node.children[-1]
        self.visits += 1
        return node.keys.pop(), node.values.pop()

    def _pop_min(self, node: _Node) -> tuple[str, Any]:
        while not node.is_leaf:
            self.visits += 1
            if len(node.children[0].keys) < self._t:
                self._refill(node, 0)
                if node.is_leaf:
                    break
            node = node.children[0]
        self.visits += 1
        return node.keys.pop(0), node.values.pop(0)

    def _refill(self, parent: _Node, index: int) -> int:
        """Ensure child ``index`` has >= t keys; returns its (new) index."""
        t = self._t
        child = parent.children[index]
        if index > 0 and len(parent.children[index - 1].keys) >= t:
            left = parent.children[index - 1]
            self.visits += 2
            child.keys.insert(0, parent.keys[index - 1])
            child.values.insert(0, parent.values[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            parent.values[index - 1] = left.values.pop()
            if not left.is_leaf:
                child.children.insert(0, left.children.pop())
            return index
        if (
            index < len(parent.children) - 1
            and len(parent.children[index + 1].keys) >= t
        ):
            right = parent.children[index + 1]
            self.visits += 2
            child.keys.append(parent.keys[index])
            child.values.append(parent.values[index])
            parent.keys[index] = right.keys.pop(0)
            parent.values[index] = right.values.pop(0)
            if not right.is_leaf:
                child.children.append(right.children.pop(0))
            return index
        if index < len(parent.children) - 1:
            self._merge_children(parent, index)
            return index
        self._merge_children(parent, index - 1)
        return index - 1

    def _merge_children(self, parent: _Node, index: int) -> None:
        left = parent.children[index]
        right = parent.children.pop(index + 1)
        self.visits += 3
        left.keys.append(parent.keys.pop(index))
        left.values.append(parent.values.pop(index))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)

    # ------------------------------------------------------------------
    # range scans
    # ------------------------------------------------------------------
    def scan_from(self, marker: str, limit: int) -> list[tuple[str, Any]]:
        """Up to ``limit`` pairs with key > ``marker``, in key order.

        One B-tree descent plus a bounded leaf walk -- the building
        block of Swift's marker-paged container listings.
        """
        out: list[tuple[str, Any]] = []
        self._scan(self._root, marker, limit, out)
        return out

    def _scan(
        self, node: _Node, marker: str, limit: int, out: list[tuple[str, Any]]
    ) -> None:
        self.visits += 1
        i = self._upper_bound(node.keys, marker)
        if node.is_leaf:
            for j in range(i, len(node.keys)):
                if len(out) >= limit:
                    return
                out.append((node.keys[j], node.values[j]))
            return
        for j in range(i, len(node.keys)):
            if len(out) >= limit:
                return
            self._scan(node.children[j], marker, limit, out)
            if len(out) >= limit:
                return
            out.append((node.keys[j], node.values[j]))
        if len(out) < limit:
            self._scan(node.children[len(node.keys)], marker, limit, out)

    @staticmethod
    def _upper_bound(keys: list[str], key: str) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] <= key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def items(self) -> Iterator[tuple[str, Any]]:
        """Full in-order iteration (maintenance/tests; not costed)."""
        yield from self._items(self._root)

    def _items(self, node: _Node) -> Iterator[tuple[str, Any]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for i, key in enumerate(node.keys):
            yield from self._items(node.children[i])
            yield key, node.values[i]
        yield from self._items(node.children[-1])

    # ------------------------------------------------------------------
    # invariant checking (tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert B-tree structural invariants; raises AssertionError."""
        keys = [k for k, _ in self.items()]
        assert keys == sorted(keys), "keys out of order"
        assert len(set(keys)) == len(keys), "duplicate keys"
        assert len(keys) == self._size, "size counter drifted"
        self._check_node(self._root, is_root=True)

    def _check_node(self, node: _Node, is_root: bool) -> int:
        t = self._t
        if not is_root:
            assert len(node.keys) >= t - 1, "underfull node"
        assert len(node.keys) <= 2 * t - 1, "overfull node"
        assert node.keys == sorted(node.keys), "node keys out of order"
        if node.is_leaf:
            return 1
        assert len(node.children) == len(node.keys) + 1, "child count"
        depths = {self._check_node(c, is_root=False) for c in node.children}
        assert len(depths) == 1, "leaves at different depths"
        return depths.pop() + 1
