"""Cluster assembly: the paper's nine-server rack in one object.

:class:`SwiftCluster` wires together the consistent-hash ring, the
storage nodes, the object-store facade, the simulated clock and the
failure schedule -- everything below the filesystem layer.  Both
H2Cloud and every baseline build on a cluster, so experiments construct
one cluster per system under test and the harness compares like with
like.
"""

from __future__ import annotations

from dataclasses import dataclass

from .clock import SimClock
from .failures import FailureSchedule, FaultPlan, PartitionPlan
from .hashring import HashRing
from .hints import HintDeliverySweeper, HintStore
from .latency import LatencyModel
from .membership import ClusterMembership
from .node import StorageNode
from .object_store import ObjectStore
from .repair import RepairReport, RepairSweeper
from .resilience import BreakerConfig, RetryPolicy


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs for one simulated deployment."""

    storage_nodes: int = 8  # the paper's rack: 8 storage + 1 proxy
    replicas: int = 3  # paper: "three replicas are kept"
    vnodes: int = 128
    node_capacity_bytes: int | None = None
    write_quorum: int | None = None  # default: majority of replicas

    def __post_init__(self) -> None:
        if self.storage_nodes < 1:
            raise ValueError("need at least one storage node")
        if self.replicas < 1:
            raise ValueError("need at least one replica")
        # An out-of-range quorum used to be accepted here and only blow
        # up (or silently never be met) deep inside the first PUT.
        if self.write_quorum is not None and not (
            1 <= self.write_quorum <= self.replicas
        ):
            raise ValueError(
                f"write_quorum must satisfy 1 <= q <= replicas "
                f"({self.write_quorum} vs {self.replicas} replicas)"
            )


class SwiftCluster:
    """A ready-to-use simulated object storage deployment."""

    def __init__(
        self,
        config: ClusterConfig | None = None,
        latency: LatencyModel | None = None,
        clock: SimClock | None = None,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_config: BreakerConfig | None = None,
    ):
        self.config = config or ClusterConfig()
        self.latency = latency or LatencyModel.rack_scale()
        self.clock = clock or SimClock()
        self.ring = HashRing(
            replicas=self.config.replicas, vnodes=self.config.vnodes
        )
        self.nodes: dict[int, StorageNode] = {}
        for node_id in range(1, self.config.storage_nodes + 1):
            self.nodes[node_id] = StorageNode(
                node_id,
                latency=self.latency,
                capacity_bytes=self.config.node_capacity_bytes,
            )
            self.ring.add_node(node_id)
        self.store = ObjectStore(
            ring=self.ring,
            nodes=self.nodes,
            latency=self.latency,
            clock=self.clock,
            write_quorum=self.config.write_quorum,
            retry_policy=retry_policy,
            breaker_config=breaker_config,
        )
        self.failures = FailureSchedule(self.clock, self.nodes)
        self.fault_plan: FaultPlan | None = None
        if fault_plan is not None:
            self.install_fault_plan(fault_plan)
        # Elastic membership: epoch-versioned join/drain/remove with
        # live rebalancing.  The store holds a back-reference so its
        # read/write paths can honour an open migration window.
        self.membership = ClusterMembership(self)
        self.store.membership = self.membership
        # Link-level network partitions: the matrix is always present
        # (the store's reachability check is one dict lookup when no
        # cut is active) but cuts only exist when a test schedules them.
        self.partitions = PartitionPlan(clock=self.clock)
        self.store.partitions = self.partitions

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def rack_scale(cls) -> "SwiftCluster":
        """The paper's §5.1 deployment (8 storage nodes, 3 replicas)."""
        return cls(ClusterConfig(), LatencyModel.rack_scale())

    @classmethod
    def fast(cls) -> "SwiftCluster":
        """Zero-latency cluster for pure-semantics unit tests."""
        return cls(ClusterConfig(vnodes=16), LatencyModel.zero())

    # ------------------------------------------------------------------
    # fault tolerance
    # ------------------------------------------------------------------
    def install_fault_plan(self, plan: FaultPlan) -> FaultPlan:
        """Arm per-request fault injection on every storage node.

        The plan is shared: the store keeps a reference so maintenance
        paths (repair, quorum undo) can run with faults suspended, and
        the plan gets the cluster clock so time-windowed fault storms
        know what time it is.
        """
        plan.clock = self.clock
        self.fault_plan = plan
        self.store.fault_plan = plan
        for node in self.nodes.values():
            node.fault_plan = plan
        return plan

    def enable_auto_repair(self) -> RepairSweeper:
        """Sweep for under-replicated objects after every node recovery.

        Turns the schedule's ``recover``/``wipe`` events into healing:
        as soon as :meth:`FailureSchedule.pump` applies one, the sweeper
        re-replicates everything the outage left short or stale.
        """
        sweeper = RepairSweeper(self.store)
        self.repair_reports: list[RepairReport] = []
        self.failures.on_recover = lambda node_id: self.repair_reports.append(
            sweeper.sweep()
        )
        return sweeper

    def enable_hinted_handoff(self) -> HintDeliverySweeper:
        """Arm sloppy-quorum writes with durable hints on fallbacks.

        While a replica owner is unreachable (crashed, breaker-open or
        partitioned away from the writing middleware), PUTs complete
        against a *sloppy* quorum: the payload lands on a reachable
        fallback node together with a hint naming the home replica.  The
        returned sweeper drains hints to their homes; it is also hooked
        to the partition plan so every heal triggers a drain immediately
        (mirrors :meth:`enable_auto_repair`).
        """
        if self.store.hints is None:
            self.store.hints = HintStore()
        sweeper = HintDeliverySweeper(self.store)
        self.hint_sweeper = sweeper
        self.partitions.on_heal = lambda cut: sweeper.drain()
        return sweeper

    # ------------------------------------------------------------------
    # simulation stepping
    # ------------------------------------------------------------------
    def step(self, delta_us: int = 0) -> list:
        """Advance simulated time and apply any due failure events.

        The single-step entry point the deterministic-simulation harness
        drives: explorer-chosen ``advance`` points move the clock, and
        every scheduled crash/recover/wipe whose time has come is applied
        in order.  Returns the events that fired.
        """
        if delta_us:
            self.clock.advance(delta_us)
        self.partitions.pump()
        return self.failures.pump()

    # ------------------------------------------------------------------
    # cluster-wide operations
    # ------------------------------------------------------------------
    def add_storage_node(self) -> StorageNode:
        """Scale out by one node (ring rebalance happens implicitly)."""
        node_id = max(self.nodes) + 1
        node = StorageNode(
            node_id,
            latency=self.latency,
            capacity_bytes=self.config.node_capacity_bytes,
        )
        node.fault_plan = self.fault_plan
        self.nodes[node_id] = node
        self.ring.add_node(node_id)
        return node

    def storage_stats(self) -> dict[int, tuple[int, int]]:
        """Per-node (object replicas held, bytes used)."""
        return {
            nid: (node.object_count, node.used_bytes)
            for nid, node in sorted(self.nodes.items())
        }
