"""Exception hierarchy for the simulated object storage cloud.

Every error that a real object storage deployment (OpenStack Swift,
Amazon S3, ...) can surface to a client has a counterpart here, so
that the H2Cloud middleware and all baseline filesystems exercise the
same error-handling paths a production client would.
"""

from __future__ import annotations


class SimCloudError(Exception):
    """Base class for every error raised by :mod:`repro.simcloud`."""


class RingError(SimCloudError):
    """The consistent-hash ring is misconfigured or cannot place data.

    Raised e.g. when the ring has fewer distinct nodes than the
    requested replica count, or when a node id is added twice.
    """


class MembershipError(SimCloudError):
    """An elastic-membership transition was refused.

    Raised when a join/drain/remove would be unsafe right now: a
    previous transition's migration window is still open (one epoch
    change at a time), the node id is unknown, or the departure would
    leave the ring empty.
    """


class ObjectNotFound(SimCloudError, KeyError):
    """GET/HEAD/DELETE addressed an object name that does not exist."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return f"object not found: {self.name!r}"


class ObjectAlreadyExists(SimCloudError):
    """A PUT with ``overwrite=False`` hit an existing object name."""

    def __init__(self, name: str):
        super().__init__(f"object already exists: {name!r}")
        self.name = name


class NodeDown(SimCloudError):
    """A request was routed to a storage node that is crashed/partitioned."""

    def __init__(self, node_id: int):
        super().__init__(f"storage node {node_id} is down")
        self.node_id = node_id


class LinkDown(SimCloudError):
    """A request could not traverse a severed network link.

    Unlike :class:`NodeDown` the storage node itself is healthy -- only
    the link between *this* middleware and the node is partitioned, so
    the failure is scoped to the (origin, node) pair and must not feed
    the node's fleet-wide circuit breaker: other middlewares may still
    reach the node just fine.
    """

    def __init__(self, origin: str, node_id: int):
        super().__init__(
            f"network link {origin} -> node {node_id} is partitioned"
        )
        self.origin = origin
        self.node_id = node_id


class TransientIOError(SimCloudError):
    """A storage node failed one request with a retryable I/O error.

    The disk hiccupped, a connection was reset, a worker process was
    OOM-killed mid-request -- the node itself is healthy and an
    immediate retry is expected to succeed.  Injected by
    :class:`~repro.simcloud.failures.FaultPlan`.
    """

    def __init__(self, node_id: int, op: str):
        super().__init__(f"transient I/O error on node {node_id} during {op}")
        self.node_id = node_id
        self.op = op


class RequestTimeout(SimCloudError):
    """A request to a storage node timed out.

    Unlike :class:`TransientIOError` the client *paid* for the failure:
    ``waited_us`` of simulated time elapsed before the client gave up
    on the connection.  The store charges that wait to the clock when
    it catches the error, so fault-masking has a visible latency cost.
    """

    def __init__(self, node_id: int, op: str, waited_us: int):
        super().__init__(
            f"request to node {node_id} timed out during {op} "
            f"after {waited_us} us"
        )
        self.node_id = node_id
        self.op = op
        self.waited_us = waited_us


class CircuitOpenError(SimCloudError):
    """A request was refused locally because the node's breaker is open.

    Costs (almost) nothing: the point of the circuit breaker is to fail
    fast instead of burning a timeout on a node known to be unhealthy.
    """

    def __init__(self, node_id: int):
        super().__init__(f"circuit breaker open for node {node_id}")
        self.node_id = node_id


class CorruptObjectError(SimCloudError):
    """Every located replica of an object failed checksum verification.

    Raised by the verified read path only after quarantining the bad
    replicas and exhausting failover: the store *never* serves bytes
    that do not match their write-time checksum, so when no verified
    copy survives the client gets this instead of silent garbage.  A
    later repair/scrub may still heal the object (e.g. once a crashed
    node holding a clean replica recovers).
    """

    def __init__(self, name: str, bad_nodes: tuple[int, ...] = ()):
        detail = f"no verified replica of {name!r}"
        if bad_nodes:
            detail += f" (corrupt on nodes {sorted(bad_nodes)})"
        super().__init__(detail)
        self.name = name
        self.bad_nodes = tuple(bad_nodes)


class QuorumError(SimCloudError):
    """Not enough replicas were reachable to satisfy a quorum read/write."""

    def __init__(self, name: str, wanted: int, got: int):
        super().__init__(
            f"quorum not met for {name!r}: wanted {wanted}, reached {got}"
        )
        self.name = name
        self.wanted = wanted
        self.got = got


class CapacityError(SimCloudError):
    """A storage node ran out of configured capacity."""

    def __init__(self, node_id: int, needed: int, free: int):
        super().__init__(
            f"node {node_id} out of capacity: need {needed} B, free {free} B"
        )
        self.node_id = node_id
        self.needed = needed
        self.free = free


class FilesystemError(SimCloudError):
    """Base class for filesystem-level errors raised by FS frontends.

    Lives here (rather than in :mod:`repro.core`) because *every*
    filesystem implementation -- H2Cloud and all baselines -- shares the
    same user-facing error vocabulary.
    """


class PathNotFound(FilesystemError):
    """A path component does not exist."""

    def __init__(self, path: str):
        super().__init__(f"no such file or directory: {path!r}")
        self.path = path


class NotADirectory(FilesystemError):
    """A path component that must be a directory is a regular file."""

    def __init__(self, path: str):
        super().__init__(f"not a directory: {path!r}")
        self.path = path


class IsADirectory(FilesystemError):
    """A file operation addressed a directory."""

    def __init__(self, path: str):
        super().__init__(f"is a directory: {path!r}")
        self.path = path


class AlreadyExists(FilesystemError):
    """MKDIR/WRITE/MOVE destination already exists."""

    def __init__(self, path: str):
        super().__init__(f"already exists: {path!r}")
        self.path = path


class DirectoryNotEmpty(FilesystemError):
    """RMDIR addressed a non-empty directory and recursion was off."""

    def __init__(self, path: str):
        super().__init__(f"directory not empty: {path!r}")
        self.path = path


class InvalidPath(FilesystemError):
    """The path string itself is malformed (empty component, bad chars)."""

    def __init__(self, path: str, reason: str = ""):
        msg = f"invalid path: {path!r}"
        if reason:
            msg += f" ({reason})"
        super().__init__(msg)
        self.path = path
        self.reason = reason


class CrossDeviceMove(FilesystemError):
    """MOVE across statically partitioned servers (AFS baseline)."""

    def __init__(self, src: str, dst: str):
        super().__init__(f"cross-partition move: {src!r} -> {dst!r}")
        self.src = src
        self.dst = dst


class ServiceUnavailable(FilesystemError):
    """The metadata service cannot serve requests (CAP trade-off paths)."""


class PreconditionFailed(FilesystemError):
    """A conditional write's If-Match expectation did not hold.

    The optimistic-concurrency signal a sync client uses to detect a
    conflicting update (it then re-reads, merges, retries).
    """

    def __init__(self, path: str, expected: str, actual: str):
        super().__init__(
            f"precondition failed for {path!r}: expected etag "
            f"{expected!r}, found {actual!r}"
        )
        self.path = path
        self.expected = expected
        self.actual = actual
