"""Object integrity: checksums, verification, and corruption models.

Real object stores treat *silent* data corruption -- bit-rot on a
quiet disk, a write torn by a power loss, a truncated object -- as a
first-class failure mode alongside crashes and timeouts: S3 verifies
checksums on every read, Swift runs a background object auditor, ZFS
scrubs.  The failure regimes in :mod:`repro.simcloud.failures` were
purely fail-stop until this module; it supplies the primitives the
whole verify-quarantine-repair pipeline is built from:

* :func:`crc32c` -- the Castagnoli CRC (the checksum S3/iSCSI/ext4
  use), table-driven and chainable so payloads can be checksummed in
  chunks;
* :func:`checksum_of` -- one content checksum for any storable payload
  (``bytes`` or :class:`~repro.simcloud.sparse.SparseData`, whose
  declared identity stands in for bytes the simulation never keeps);
* :func:`verify_record` -- does a stored replica's payload still match
  the checksum computed when it was written?
* :func:`corrupt_record` -- the adversary: produce a bit-flipped or
  truncated copy of a replica *without* touching its checksum, which
  is exactly what makes the damage silent until a verified read.

The checksum is computed once, client-side, at PUT time
(:meth:`~repro.simcloud.object_store.ObjectStore.put`) and travels
with the record through replication, repair and scrubbing; any layer
can re-verify at any time without coordination.
"""

from __future__ import annotations

import random
from dataclasses import replace

from .sparse import SparseData

#: incremental API chunk size -- checksums are identical whether a
#: payload is hashed whole or fed through in CHUNK_SIZE pieces.
CHUNK_SIZE = 64 * 1024

_POLY = 0x82F63B78  # reflected Castagnoli polynomial (CRC-32C)


def _build_table() -> tuple[int, ...]:
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC-32C of ``data``, chainable like :func:`zlib.crc32`.

    ``crc32c(b + c) == crc32c(c, crc32c(b))`` -- the pre/post
    inversion makes partial checksums compose, so large payloads can
    stream through in chunks.
    """
    crc ^= 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def checksum_of(data) -> str:
    """The stored checksum of one payload: 8 hex chars of CRC-32C.

    ``bytes`` payloads are hashed in :data:`CHUNK_SIZE` pieces through
    the chainable CRC; sparse payloads hash their deterministic
    identity (the simulation never holds their bytes, and the identity
    changes whenever the modelled content would).
    """
    if isinstance(data, SparseData):
        return f"{crc32c(data.identity().encode()):08x}"
    crc = 0
    for start in range(0, len(data), CHUNK_SIZE):
        crc = crc32c(data[start : start + CHUNK_SIZE], crc)
    return f"{crc:08x}"


def verify_record(record) -> bool:
    """Does a replica's payload still match its write-time checksum?

    Records without a checksum (hand-built fixtures, pre-checksum
    objects) cannot be verified and are taken at their word -- the
    store stamps every PUT, so in a live deployment this is the
    corruption detector.
    """
    if not record.checksum:
        return True
    return checksum_of(record.data) == record.checksum


# ----------------------------------------------------------------------
# the adversary
# ----------------------------------------------------------------------

CORRUPT_BITFLIP = "bitflip"
CORRUPT_TRUNCATE = "truncate"

CORRUPTION_MODES = (CORRUPT_BITFLIP, CORRUPT_TRUNCATE)


def corrupt_record(record, mode: str, rng: random.Random):
    """A silently corrupted copy of ``record`` (checksum left stale).

    The returned record is a *new* object: replicas share record
    instances when healthy, so mutating in place would rot every copy
    at once instead of the one disk the fault hit.

    * ``bitflip`` -- one random bit inverted (empty payloads grow one
      garbage byte: rot on a zero-length object still changes bytes);
    * ``truncate`` -- the payload cut short at a random point (a torn
      or interrupted write).

    Sparse payloads corrupt by identity: the tag (bitflip) or declared
    size (truncate) changes, which is what their checksum covers.
    """
    if mode not in CORRUPTION_MODES:
        raise ValueError(f"unknown corruption mode: {mode!r}")
    data = record.data
    if isinstance(data, SparseData):
        if mode == CORRUPT_BITFLIP:
            mutated = SparseData(size=data.size, tag=data.tag + "☠rot")
        else:
            mutated = SparseData(
                size=rng.randrange(data.size) if data.size else 0,
                tag=data.tag,
            )
        return replace(record, data=mutated)
    if mode == CORRUPT_BITFLIP:
        if not data:
            return replace(record, data=b"\xff")
        buf = bytearray(data)
        bit = rng.randrange(len(buf) * 8)
        buf[bit // 8] ^= 1 << (bit % 8)
        return replace(record, data=bytes(buf))
    # truncate: strictly shorter when possible
    return replace(record, data=data[: rng.randrange(len(data))] if data else b"")
