"""Simulated time.

The whole reproduction is a single-threaded discrete-cost simulation:
instead of sleeping, components *charge* microseconds to a
:class:`SimClock`.  All "operation time" numbers in the benchmark
harness are read off this clock, which is what lets a laptop-scale
pure-Python build reproduce the *shape* of the paper's rack-scale
measurements (the paper's Figures 7-13 plot operation time as a
deterministic function of how many object-level primitives an
operation issues and what each primitive costs).

Two pieces live here:

* :class:`SimClock` -- the global microsecond counter, plus the
  ``capture``/``parallel`` machinery used to model client-side
  concurrency (a batch of object requests issued over ``k`` worker
  connections advances the clock by the batch *makespan*, not the sum).
* :class:`TimestampFactory` -- Lamport-style unique timestamps used by
  NameRing tuples and the gossip protocol.  Uniqueness is guaranteed by
  a strictly increasing per-factory sequence number even when the
  simulated wall time stands still or is rewound by ``capture``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Iterable, Sequence, TypeVar

T = TypeVar("T")

US_PER_MS = 1_000
US_PER_S = 1_000_000


def makespan_us(costs: Sequence[int], workers: int) -> int:
    """Makespan of running ``costs`` (µs each) on ``workers`` parallel lanes.

    Uses greedy longest-processing-time scheduling, which is how a
    connection pool with a shared work queue actually behaves (each
    idle connection grabs the next request).  LPT is within 4/3 of
    optimal, which is far tighter than the modelling error elsewhere.
    """
    if not costs:
        return 0
    if workers <= 1 or len(costs) == 1:
        return sum(costs)
    lanes = [0] * min(workers, len(costs))
    heapq.heapify(lanes)
    for cost in sorted(costs, reverse=True):
        heapq.heappush(lanes, heapq.heappop(lanes) + cost)
    return max(lanes)


@dataclass
class _Capture:
    start_us: int
    elapsed_us: int = 0


class SimClock:
    """A monotonically advancing simulated microsecond counter."""

    def __init__(self, start_us: int = 0):
        if start_us < 0:
            raise ValueError("clock cannot start before the epoch")
        self._now_us = start_us
        self._frozen = 0
        self._listeners: list[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # basic time
    # ------------------------------------------------------------------
    @property
    def now_us(self) -> int:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        return self._now_us / US_PER_MS

    @property
    def now_s(self) -> float:
        return self._now_us / US_PER_S

    def advance(self, delta_us: int) -> int:
        """Advance the clock by ``delta_us`` (>= 0) and return the new time."""
        if delta_us < 0:
            raise ValueError(f"cannot advance clock by {delta_us} us")
        if not self._frozen:
            self._now_us += int(delta_us)
            if delta_us and self._listeners:
                for listener in tuple(self._listeners):
                    listener(self._now_us)
        return self._now_us

    # ------------------------------------------------------------------
    # advance listeners (step hooks)
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[int], None]) -> Callable[[int], None]:
        """Register a callback fired after every real advance.

        The callback receives the new ``now_us``.  This is the hook the
        deterministic-simulation harness uses to land scheduled failure
        events *mid-operation*: any component that charges time can
        trigger a pending crash/recover exactly at its simulated due
        time.  Listeners must not advance the clock recursively without
        their own reentrancy guard.  Returns the listener for symmetric
        :meth:`unsubscribe` calls.
        """
        self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: Callable[[int], None]) -> None:
        """Remove a previously subscribed advance listener (idempotent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # measuring and parallelism
    # ------------------------------------------------------------------
    def measure(self, thunk: Callable[[], T]) -> tuple[T, int]:
        """Run ``thunk`` and return ``(result, elapsed_us)``.

        The clock advances normally while the thunk runs; this simply
        brackets it with timestamps.
        """
        start = self._now_us
        result = thunk()
        return result, self._now_us - start

    def run_isolated(self, thunk: Callable[[], T]) -> tuple[T, int]:
        """Run ``thunk``, measure its cost, then rewind the clock.

        Used to cost out one lane of a parallel batch: each thunk is
        executed (its side effects are real) but only the batch
        *makespan* -- computed by the caller from the collected lane
        costs -- is charged to the clock.
        """
        start = self._now_us
        result = thunk()
        elapsed = self._now_us - start
        self._now_us = start
        return result, elapsed

    def parallel(self, thunks: Iterable[Callable[[], T]], workers: int) -> list[T]:
        """Run thunks "concurrently" over ``workers`` lanes.

        All side effects happen (sequentially, deterministically, in
        input order) but the clock only advances by the makespan of the
        per-thunk costs over ``workers`` lanes -- the discrete-cost
        analogue of issuing the requests through a connection pool.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        results: list[T] = []
        costs: list[int] = []
        for thunk in thunks:
            result, cost = self.run_isolated(thunk)
            results.append(result)
            costs.append(cost)
        self.advance(makespan_us(costs, workers))
        return results

    def freeze(self) -> "SimClock":
        """Context manager: suppress all advances (background accounting).

        Work executed inside a frozen section has its side effects but
        costs no foreground time; callers that care about background
        cost measure it separately (see ``CostLedger.background_us``).
        """
        return self  # __enter__/__exit__ below implement the protocol

    def __enter__(self) -> "SimClock":
        self._frozen += 1
        return self

    def __exit__(self, *exc) -> None:
        self._frozen -= 1


@dataclass(frozen=True, order=True)
class Timestamp:
    """A totally ordered, globally unique logical timestamp.

    Ordering is ``(wall_us, seq, node_id)``: wall time first so that
    last-writer-wins matches user intuition, then the strictly
    increasing per-factory sequence number to break ties between events
    that share a microsecond, then the node id so two factories can
    never produce equal timestamps.
    """

    wall_us: int
    seq: int
    node_id: int = field(default=0)

    def __str__(self) -> str:
        return f"{self.wall_us}.{self.seq}.{self.node_id}"

    @classmethod
    def parse(cls, text: str) -> "Timestamp":
        wall, seq, node = text.split(".")
        return cls(wall_us=int(wall), seq=int(seq), node_id=int(node))

    ZERO: ClassVar["Timestamp"]


Timestamp.ZERO = Timestamp(0, 0, 0)


class TimestampFactory:
    """Issues unique, strictly increasing :class:`Timestamp` values.

    ``seq`` never decreases even if the simulated clock is rewound by
    ``SimClock.run_isolated``; this preserves causality inside a single
    middleware node regardless of how the cost model replays work.
    """

    def __init__(self, clock: SimClock, node_id: int = 0):
        self._clock = clock
        self._node_id = node_id
        self._seq = 0

    @property
    def node_id(self) -> int:
        return self._node_id

    def next(self) -> Timestamp:
        self._seq += 1
        return Timestamp(self._clock.now_us, self._seq, self._node_id)
