"""Service-time model for the simulated rack.

The paper's testbed is nine HP DL380p servers (8-core Xeon, 32 GB RAM,
7x 600 GB 15K-RPM SAS disks) on a 1-Gbps LAN, with a 100-Mbps WAN
uplink; Dropbox is reached over the Internet with a measured average
PING of 58 ms (range 24-83 ms).  :class:`LatencyModel` encodes those
physical constants as per-primitive service times; every simulated
component asks the model how long its work takes and charges the
result to the :class:`~repro.simcloud.clock.SimClock`.

Calibration targets (see DESIGN.md §5): a single object GET on the
rack costs ~10 ms (Fig 13, Swift flat line), an H2Cloud MKDIR lands in
the 150-200 ms band (Fig 12), a detailed LIST of 1000 children costs
~0.35 s and a COPY of 1000 files ~10 s (§1 of the paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class LatencyModel:
    """Per-primitive service times, all in microseconds unless noted."""

    # --- network -------------------------------------------------------
    lan_rtt_us: int = 400  # same-rack TCP round trip incl. proxy hop
    wan_rtt_us: int = 58_000  # Internet RTT (paper: avg 58 ms PING)
    wan_rtt_min_us: int = 24_000  # paper: 24 ms
    wan_rtt_max_us: int = 83_000  # paper: 83 ms
    lan_bandwidth_bps: int = 1_000_000_000  # 1 Gbps LAN
    wan_bandwidth_bps: int = 100_000_000  # 100 Mbps WAN

    # --- storage node --------------------------------------------------
    disk_seek_us: int = 8_000  # 15K-RPM SAS: seek + rotational latency
    disk_bandwidth_bps: int = 120_000_000 * 8  # ~120 MB/s sequential
    request_overhead_us: int = 1_200  # auth, parsing, WSGI dispatch

    # --- container / file-path DB (Swift's SQLite-style DB) -------------
    db_node_us: int = 90  # one B-tree node visit (page read, compare)
    db_row_us: int = 35  # materialise one row of a range scan
    db_write_us: int = 600  # WAL append + page dirty for one mutation

    # --- index server (GFS namenode / DP metadata server baselines) -----
    index_op_us: int = 300  # one in-memory tree operation
    index_hop_rtt_us: int = 500  # RTT between client and an index server
    index_lock_us: int = 2_500  # distributed lock acquire (shared-disk DP)

    # --- client-side concurrency ----------------------------------------
    meta_concurrency: int = 32  # parallel lanes for metadata requests
    data_concurrency: int = 8  # parallel lanes for bulk object copies

    # --- determinism -----------------------------------------------------
    jitter_frac: float = 0.08  # +/- fraction of service time
    seed: int = 0x48320  # "H2" -- drives the jitter stream

    def rng(self) -> random.Random:
        """A fresh deterministic jitter stream for one simulation run."""
        return random.Random(self.seed)

    # ------------------------------------------------------------------
    # derived costs
    # ------------------------------------------------------------------
    def transfer_us(self, nbytes: int, bandwidth_bps: int | None = None) -> int:
        """Wire time to move ``nbytes`` at ``bandwidth_bps`` (default LAN)."""
        bw = bandwidth_bps or self.lan_bandwidth_bps
        return (nbytes * 8 * 1_000_000) // bw

    def disk_read_us(self, nbytes: int) -> int:
        return self.disk_seek_us + (nbytes * 8 * 1_000_000) // self.disk_bandwidth_bps

    def disk_write_us(self, nbytes: int) -> int:
        # Writes pay the same seek; commodity object servers fsync.
        return self.disk_seek_us + (nbytes * 8 * 1_000_000) // self.disk_bandwidth_bps

    def with_(self, **overrides) -> "LatencyModel":
        """A copy with some parameters replaced (frozen dataclass helper)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def rack_scale(cls) -> "LatencyModel":
        """The paper's nine-server IDC rack (defaults as declared)."""
        return cls()

    @classmethod
    def geo_scale(cls) -> "LatencyModel":
        """A geographically distributed deployment (paper §4.1: "the
        object storage cloud is geographically distributed across
        several data centers").  Inter-DC RTT replaces the rack's LAN
        RTT, and bandwidth drops to a dedicated inter-DC link."""
        return cls(
            lan_rtt_us=15_000,  # ~15 ms between nearby regions
            lan_bandwidth_bps=10_000_000_000 // 8,  # shared inter-DC trunk
        )

    @classmethod
    def zero(cls) -> "LatencyModel":
        """All service times zero -- for pure-semantics unit tests."""
        return cls(
            lan_rtt_us=0,
            wan_rtt_us=0,
            wan_rtt_min_us=0,
            wan_rtt_max_us=0,
            disk_seek_us=0,
            request_overhead_us=0,
            db_node_us=0,
            db_row_us=0,
            db_write_us=0,
            index_op_us=0,
            index_hop_rtt_us=0,
            index_lock_us=0,
            jitter_frac=0.0,
        )


class Jitter:
    """Deterministic multiplicative jitter around modelled service times.

    Real measurements (the paper's box plots) show ~10 % spread; a
    seeded stream keeps every simulation run bit-reproducible.
    """

    def __init__(self, model: LatencyModel):
        self._frac = model.jitter_frac
        self._rng = model.rng()

    def apply(self, cost_us: int) -> int:
        if self._frac <= 0.0 or cost_us <= 0:
            return cost_us
        factor = 1.0 + self._rng.uniform(-self._frac, self._frac)
        return max(0, int(cost_us * factor))

    def wan_rtt_us(self, model: LatencyModel) -> int:
        """One Internet round trip, drawn from the paper's PING range."""
        if model.wan_rtt_max_us <= model.wan_rtt_min_us:
            return model.wan_rtt_us
        # Triangular around the measured mean keeps the average at 58 ms.
        return int(
            self._rng.triangular(
                model.wan_rtt_min_us, model.wan_rtt_max_us, model.wan_rtt_us
            )
        )


@dataclass
class CostLedger:
    """Accounting of what a component spent, primitive by primitive.

    The benchmark harness reads ``foreground_us`` off the clock; the
    ledger exists so tests can assert *why* an operation cost what it
    did (how many GETs, how many bytes, how much background merge work).
    """

    puts: int = 0
    gets: int = 0
    heads: int = 0
    deletes: int = 0
    copies: int = 0
    scans: int = 0
    db_reads: int = 0
    db_writes: int = 0
    index_ops: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    background_us: int = 0

    def snapshot(self) -> dict[str, int]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}

    def diff(self, earlier: dict[str, int]) -> dict[str, int]:
        """Per-field delta since an earlier :meth:`snapshot`."""
        return {k: getattr(self, k) - earlier[k] for k in earlier}

    def reset(self) -> None:
        for k in self.__dataclass_fields__:
            setattr(self, k, 0)

    @property
    def total_requests(self) -> int:
        return self.puts + self.gets + self.heads + self.deletes + self.copies
