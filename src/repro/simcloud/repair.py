"""Replica repair: the sweep that makes node recovery actually heal.

A crash/recover cycle leaves a node holding yesterday's replicas; a
wipe/recover cycle leaves it holding nothing.  Writes accepted while
the node was down landed on the surviving replicas only, so after
recovery the cluster is *under-replicated* (objects with fewer live
copies than the ring expects) and *stale-replicated* (copies whose
timestamp predates the newest one).  :class:`RepairSweeper` walks the
key registry, finds both, and pushes the newest reachable replica to
every reachable peer that misses it -- Swift's background replicator,
with a report.

The sweep is background-accounted (disk time lands in
``ledger.background_us``) and runs with any installed
:class:`~repro.simcloud.failures.FaultPlan` suspended: healing must not
be starved by the transient faults it coexists with.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from .integrity import verify_record


@dataclass
class RepairReport:
    """What one repair sweep found and fixed."""

    objects_scanned: int = 0
    under_replicated: int = 0  # objects missing >=1 reachable replica
    stale_replicas: int = 0  # replicas older than the newest copy
    corrupt_replicas: int = 0  # replicas failing checksum verification
    replicas_written: int = 0  # holes filled + stale/corrupt copies refreshed
    unrecoverable: list[str] = field(default_factory=list)  # no verified source

    @property
    def clean(self) -> bool:
        return self.replicas_written == 0 and not self.unrecoverable

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{self.replicas_written} REPAIRED"
        return (
            f"repair: {status} -- {self.objects_scanned} objects scanned, "
            f"{self.under_replicated} under-replicated, "
            f"{self.stale_replicas} stale replicas, "
            f"{self.corrupt_replicas} corrupt replicas, "
            f"{len(self.unrecoverable)} unrecoverable"
        )


class RepairSweeper:
    """Walks the ring and re-replicates under-replicated/stale objects."""

    def __init__(self, store):
        self._store = store

    def sweep(self, prefix: str = "") -> RepairReport:
        """One full pass; returns the :class:`RepairReport`.

        For every registered object name the newest reachable *verified*
        replica is pushed to reachable peers that miss it, hold an older
        timestamp, or fail checksum verification.  A replica that does
        not verify is never used as a source -- repair must not fan
        corruption out -- and objects with no verified reachable replica
        at all (holders wiped, down, or rotten) are reported as
        unrecoverable; they may heal on a later sweep once a clean
        holder comes back.
        """
        store = self._store
        report = RepairReport()
        plan = getattr(store, "fault_plan", None)
        guard = plan.suspended() if plan is not None else nullcontext()
        with guard:
            for name in sorted(store.names()):
                if prefix and not name.startswith(prefix):
                    continue
                report.objects_scanned += 1
                source = None
                reachable = []
                corrupt = []
                # Both epochs' owners during a migration window, so
                # mid-rebalance healing also refreshes the old owners
                # still serving dual reads.
                for node_id in store.maintenance_nodes_for(name):
                    node = store.nodes[node_id]
                    if node.is_down:
                        continue
                    record = node.peek(name)
                    if record is not None and not verify_record(record):
                        corrupt.append(node)
                        report.corrupt_replicas += 1
                        continue
                    reachable.append((node, record))
                    if record is not None and (
                        source is None or record.timestamp > source.timestamp
                    ):
                        source = record
                if source is None:
                    report.unrecoverable.append(name)
                    continue
                missing = [n for n, r in reachable if r is None]
                stale = [
                    n
                    for n, r in reachable
                    if r is not None and r.timestamp < source.timestamp
                ]
                if missing:
                    report.under_replicated += 1
                report.stale_replicas += len(stale)
                for node in missing + stale + corrupt:
                    cost = node.write(source)
                    store.ledger.background_us += cost
                    report.replicas_written += 1
                    quarantine = getattr(store, "quarantine", None)
                    if quarantine is not None:
                        store._unquarantine(name, node.node_id)
                if corrupt and hasattr(store, "unrecoverable"):
                    store.unrecoverable.discard(name)
        store.resilience.repaired_replicas += report.replicas_written
        return report
